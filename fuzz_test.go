package rrsched_test

// Fuzz target for the user-reachable checkpoint reader: RestoreStream must
// reject arbitrary and corrupted checkpoint bytes with an error — never a
// panic — and a checkpoint it does accept must yield a scheduler that can
// make progress.

import (
	"encoding/json"
	"testing"

	"rrsched"
)

func FuzzRestoreStream(f *testing.F) {
	// Seed with a real checkpoint taken mid-run, so the fuzzer starts from
	// the accepted grammar and mutates outward.
	s, err := rrsched.NewStream(4, 8)
	if err != nil {
		f.Fatal(err)
	}
	for r := int64(0); r < 24; r++ {
		// Disjoint color ranges per delay bound: a color's bound is fixed.
		jobs := []rrsched.Job{
			{ID: 2 * r, Color: rrsched.Color(r % 3), Arrival: r, Delay: 4},
			{ID: 2*r + 1, Color: rrsched.Color(10 + r%5), Arrival: r, Delay: 8},
		}
		if _, err := s.Push(r, jobs); err != nil {
			f.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	// A truncation, a splice, and non-checkpoint bytes.
	f.Add(snap[:len(snap)/2])
	f.Add(append(append([]byte{}, snap[len(snap)/3:]...), snap[:len(snap)/3]...))
	f.Add([]byte(`{"schema":"bogus"}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := rrsched.RestoreStream(data)
		if err != nil {
			return // rejected gracefully
		}
		// Accepted checkpoints must produce a usable scheduler. Push exactly
		// the next unprocessed round (the checkpoint's "round" field): pushing
		// a later round would make the scheduler catch up one round at a time,
		// which is unbounded work if the fuzzer crafts a huge round value.
		var next struct {
			Round int64 `json:"round"`
		}
		if err := json.Unmarshal(data, &next); err != nil {
			t.Fatalf("accepted checkpoint is not JSON: %v", err)
		}
		if _, err := restored.Push(next.Round, nil); err != nil {
			return
		}
		// And a round already processed must error, not panic.
		if _, err := restored.Push(next.Round, nil); err == nil {
			t.Fatal("re-pushing a processed round succeeded")
		}
	})
}
