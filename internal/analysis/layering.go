package analysis

import (
	"strconv"
	"strings"
)

// Layering returns the analyzer that pins the package DAG. rules maps each
// package path to the module-internal import paths it may use; an import
// outside its set, or a package missing from the table entirely, is a
// diagnostic. Forcing every package into the table means adding a dependency
// edge (or a new package) is always an explicit, reviewable rules change —
// the table is the architecture document.
//
// Only non-test files are checked: tests may reach across layers freely.
func Layering(rules map[string][]string) *Analyzer {
	allowed := map[string]map[string]bool{}
	for pkg, deps := range rules {
		set := map[string]bool{}
		for _, d := range deps {
			set[d] = true
		}
		allowed[pkg] = set
	}
	a := &Analyzer{
		Name: "layering",
		Doc:  "enforces the declared package DAG (model/queue are leaves; sim never imports experiments; each cmd declares its internals)",
	}
	a.Run = func(pass *Pass) {
		set, declared := allowed[pass.Pkg.Path]
		if !declared {
			pass.Reportf(pass.Pkg.Files[0].Package, "package %s is not declared in the layering table; add it (and its permitted imports) to analysis.DefaultLayeringRules", pass.Pkg.Path)
			return
		}
		modPrefix := modulePrefix(pass.Pkg.Path)
		for _, f := range pass.Pkg.Files {
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if !strings.HasPrefix(p, modPrefix+"/") && p != modPrefix {
					continue
				}
				if !set[p] {
					pass.Reportf(spec.Pos(), "layering violation: %s may not import %s (permitted: %s)", pass.Pkg.Path, p, strings.Join(rules[pass.Pkg.Path], ", "))
				}
			}
		}
	}
	return a
}

// modulePrefix recovers the module path from a package path: everything up
// to the first path element, which is enough for single-segment module names
// like "rrsched"; multi-segment module paths are handled by the caller
// passing full package paths in the rules.
func modulePrefix(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// DefaultLayeringRules is this repository's package DAG: for every package,
// the module-internal imports it may use (in non-test files). The key
// architectural constraints, in one place:
//
//   - internal/model and internal/queue are leaves: they import no sibling
//     internal packages, so every layer can build on them without cycles;
//   - internal/sim sees only model and queue — in particular it never
//     imports internal/experiments, keeping the engine reusable and the
//     evaluation harness strictly above it;
//   - internal/analysis (this linter) imports nothing from the module: it
//     must be able to analyze every package, including a broken one;
//   - each cmd/* and examples/* declares exactly the internals it uses
//     beyond the public rrsched API.
func DefaultLayeringRules() map[string][]string {
	const m = "rrsched/internal/"
	return map[string][]string{
		// Public API surface.
		"rrsched": {m + "core", m + "model", m + "offline", m + "reduce", m + "sim", m + "stream"},

		// Leaves.
		m + "model":    {},
		m + "queue":    {},
		m + "paging":   {},
		m + "stats":    {},
		m + "sweep":    {},
		m + "analysis": {},
		m + "atomicio": {},

		// The incremental checkpoint store: content-addressed chunks, delta
		// chains, manifests, and streaming decision logs. Pure persistence —
		// it knows nothing about scheduling, so it sits just above atomicio.
		m + "ckptstore": {m + "atomicio"},

		// Observability: metrics, tracing, event sinks. Near-leaf by design.
		m + "obs": {m + "model"},

		// Core layers.
		m + "workload":   {m + "model"},
		m + "sim":        {m + "model", m + "obs", m + "queue"},
		m + "core":       {m + "model", m + "obs", m + "sim"},
		m + "reduce":     {m + "model", m + "obs", m + "sim"},
		m + "baseline":   {m + "model", m + "sim"},
		m + "introspect": {m + "model"},
		m + "edf":        {m + "core", m + "model", m + "queue", m + "sim"},
		m + "offline":    {m + "edf", m + "model", m + "sim"},
		m + "stream":     {m + "core", m + "model", m + "queue", m + "reduce"},
		m + "chaos":      {m + "model", m + "obs", m + "sim", m + "stream", m + "workload"},
		m + "adversary":  {m + "model", m + "offline", m + "sim", m + "stats"},

		// The network service wraps stream schedulers behind an HTTP ingest
		// layer; it builds only on model, obs, and stream, so serving never
		// grows a dependency on the evaluation stack.
		m + "serve": {m + "atomicio", m + "ckptstore", m + "model", m + "obs", m + "stream"},

		// The dispatcher/worker tier is the fault-tolerant control plane over
		// hosted serve workers: leases, heartbeats, checkpoint failover. It
		// builds only on obs and serve — scheduling knowledge stays below it.
		m + "dispatch": {m + "atomicio", m + "ckptstore", m + "obs", m + "serve"},

		// The benchmark harness drives the engine, policies, queues, the
		// streaming scheduler, the sweep substrate, the checkpoint store,
		// and the serve wire codecs; like experiments it sits above the core
		// layers and nothing imports it but its cmd.
		m + "perf": {
			m + "ckptstore", m + "core", m + "model", m + "obs", m + "queue",
			m + "serve", m + "sim", m + "stream", m + "sweep", m + "workload",
		},

		// The evaluation harness sits on top of everything.
		m + "experiments": {
			m + "adversary", m + "baseline", m + "chaos", m + "core", m + "edf",
			m + "model", m + "offline", m + "paging", m + "reduce", m + "sim",
			m + "stats", m + "sweep", m + "workload",
		},

		// Commands: public API plus declared internals.
		"rrsched/cmd/rrbench":    {m + "perf"},
		"rrsched/cmd/rrexp":      {m + "experiments", m + "obs"},
		"rrsched/cmd/rrcover":    {},
		"rrsched/cmd/rrdispatch": {m + "dispatch", m + "serve"},
		"rrsched/cmd/rrlint":     {m + "analysis"},
		"rrsched/cmd/rrload":     {m + "dispatch", m + "model", m + "obs", m + "serve", m + "workload"},
		"rrsched/cmd/rrworker":   {m + "dispatch"},
		"rrsched/cmd/rropt":      {m + "core", m + "model", m + "offline", m + "reduce", m + "workload"},
		"rrsched/cmd/rrreplay":   {m + "introspect", m + "model", m + "workload"},
		"rrsched/cmd/rrserve":    {m + "serve"},
		"rrsched/cmd/rrsim":      {m + "baseline", m + "core", m + "model", m + "obs", m + "offline", m + "reduce", m + "sim", m + "workload"},
		"rrsched/cmd/rrtrace":    {m + "model", m + "workload"},

		// Examples: public API plus declared internals.
		"rrsched/examples/adaptive":   {m + "core", m + "introspect", m + "sim", m + "workload"},
		"rrsched/examples/background": {m + "baseline", m + "core", m + "model", m + "reduce", m + "sim", m + "workload"},
		"rrsched/examples/datacenter": {"rrsched", m + "baseline", m + "obs", m + "offline", m + "sim", m + "workload"},
		"rrsched/examples/paging":     {m + "paging"},
		"rrsched/examples/quickstart": {"rrsched"},
		"rrsched/examples/router":     {"rrsched", m + "baseline", m + "model", m + "offline", m + "sim", m + "workload"},
		"rrsched/examples/stream":     {"rrsched"},
	}
}
