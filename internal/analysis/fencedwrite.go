package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FencedWrite returns the analyzer that makes the dispatcher's 409
// zombie-rejection protocol real: in pkgPath, any function that both takes
// an epoch-bearing wire request (a parameter whose same-package struct type
// carries a fenceField field, directly or nested one or two levels down) and
// mutates the stateType lease table must, somewhere in its body, compare a
// fenceField against the request (`l.epoch == info.Epoch`, `l.epoch !=
// req.Epoch`). A handler that writes placement or checkpoint state on behalf
// of a worker without consulting the fence would let a partitioned zombie
// overwrite its successor's state — the exact failure the lease epochs
// exist to prevent.
//
// Functions without an epoch-bearing parameter (the sweeper, which *sets*
// the fence; the persistence and boot paths) are exempt by construction: the
// fence guards externally-driven writes, not the dispatcher's own
// bookkeeping. The check is presence-based, not order-based, because the
// lost-lease loop legitimately bumps epochs before the comparison that
// classifies the worker's view.
func FencedWrite(pkgPath, stateType, fenceField string) *Analyzer {
	a := &Analyzer{
		Name: "fencedwrite",
		Doc:  "requires epoch-fence comparisons in dispatch handlers that mutate lease state on behalf of a wire request",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Path != pkgPath {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if !hasFenceBearingParam(pass, fn, fenceField) {
					continue
				}
				mutation := firstStateMutation(pass, fn.Body, stateType)
				if mutation == nil {
					continue
				}
				if hasFenceComparison(fn.Body, fenceField) {
					continue
				}
				pass.Reportf(mutation.Pos(), "%s state mutated on behalf of a request carrying %q without consulting the fence; compare the request's %s against the lease first (stale writers must be rejected)", stateType, fenceField, fenceField)
			}
		}
	}
	return a
}

// hasFenceBearingParam reports whether any parameter's type is (or points
// to) a struct defined in this package that carries fenceField, directly or
// nested through same-package struct fields, slices, or arrays.
func hasFenceBearingParam(pass *Pass, fn *ast.FuncDecl, fenceField string) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if typeCarriesFence(tv.Type, fenceField, pass.Pkg.Types, 3) {
			return true
		}
	}
	return false
}

// typeCarriesFence walks a type looking for a field named fenceField
// (case-insensitive). Recursion stays inside structs defined in pkg so the
// walk cannot wander into the standard library, and depth bounds it.
func typeCarriesFence(t types.Type, fenceField string, pkg *types.Package, depth int) bool {
	if depth < 0 {
		return false
	}
	switch t := t.(type) {
	case *types.Pointer:
		return typeCarriesFence(t.Elem(), fenceField, pkg, depth)
	case *types.Slice:
		return typeCarriesFence(t.Elem(), fenceField, pkg, depth)
	case *types.Array:
		return typeCarriesFence(t.Elem(), fenceField, pkg, depth)
	case *types.Named:
		if t.Obj().Pkg() != pkg {
			return false
		}
		return typeCarriesFence(t.Underlying(), fenceField, pkg, depth)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if strings.EqualFold(f.Name(), fenceField) {
				return true
			}
			if typeCarriesFence(f.Type(), fenceField, pkg, depth-1) {
				return true
			}
		}
	}
	return false
}

// firstStateMutation finds the first assignment or ++/-- whose target is a
// field of the stateType (or a whole stateType value), in source order.
func firstStateMutation(pass *Pass, body *ast.BlockStmt, stateType string) ast.Node {
	var first ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if first != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isStateTarget(pass, lhs, stateType) {
					first = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if isStateTarget(pass, n.X, stateType) {
				first = n
				return false
			}
		}
		return true
	})
	return first
}

// isStateTarget reports whether an assignment target writes the state: a
// field selected from a stateType value, or a stateType element/slot
// (`leases[i] = lease{...}`). A bare identifier is never a state write —
// binding a local, even one of the state type (`l := &t.leases[i]`), reads
// the table; mutations go through selectors or indexes.
func isStateTarget(pass *Pass, e ast.Expr, stateType string) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return false
	case *ast.SelectorExpr:
		return isStateType(pass, e.X, stateType) || isStateType(pass, e, stateType)
	default:
		return isStateType(pass, e, stateType)
	}
}

// isStateType reports whether an expression's type (behind pointers) is the
// named stateType declared in the package under analysis.
func isStateType(pass *Pass, e ast.Expr, stateType string) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == stateType && named.Obj().Pkg() == pass.Pkg.Types
}

// hasFenceComparison reports whether the body contains an ==/!= comparison
// with a fenceField operand on either side.
func hasFenceComparison(body *ast.BlockStmt, fenceField string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			switch s := side.(type) {
			case *ast.SelectorExpr:
				if strings.EqualFold(s.Sel.Name, fenceField) {
					found = true
				}
			case *ast.Ident:
				if strings.EqualFold(s.Name, fenceField) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
