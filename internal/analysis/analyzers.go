package analysis

// Analyzers returns the default analyzer set with this repository's
// configuration: the five v1 invariant checkers (wired to the audited
// nopanic allowlist, the floatcmp package scope, and the layering DAG) and
// the five v2 concurrency/protocol checkers for the serve/dispatch tier.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		NoPanic(DefaultNoPanicAllowlist()),
		ErrCheck(),
		FloatCmp("rrsched/internal/experiments", "rrsched/internal/stats"),
		Layering(DefaultLayeringRules()),
		LockCheck(),
		GoroLeak(),
		AtomicWrite(DefaultAtomicWriteSanctioned()),
		FencedWrite("rrsched/internal/dispatch", "lease", "epoch"),
		HTTPHarden(DefaultHTTPHardenSanctioned()),
	}
}

// DefaultAtomicWriteSanctioned names the functions allowed to call
// os.WriteFile/os.Create on state paths directly: the tmp+rename helper
// itself. Everything else must route state writes through it.
func DefaultAtomicWriteSanctioned() map[string]bool {
	return map[string]bool{
		"rrsched/internal/atomicio.WriteFile": true,
	}
}

// DefaultHTTPHardenSanctioned names the constructors allowed to build raw
// http.Server literals: the hardened constructor that pins timeouts.
func DefaultHTTPHardenSanctioned() map[string]bool {
	return map[string]bool{
		"rrsched/internal/serve.HardenedServer": true,
	}
}

// ByName returns the analyzers selected by enable/disable name lists: with
// enable non-empty only those names run; disable then removes names. Unknown
// names are returned in the second result so drivers can reject typos.
func ByName(enable, disable []string) (selected []*Analyzer, unknown []string) {
	all := Analyzers()
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	picked := all
	if len(enable) > 0 {
		picked = nil
		for _, n := range enable {
			a, ok := byName[n]
			if !ok {
				unknown = append(unknown, n)
				continue
			}
			picked = append(picked, a)
		}
	}
	drop := map[string]bool{}
	for _, n := range disable {
		if _, ok := byName[n]; !ok {
			unknown = append(unknown, n)
			continue
		}
		drop[n] = true
	}
	for _, a := range picked {
		if !drop[a.Name] {
			selected = append(selected, a)
		}
	}
	return selected, unknown
}

// DefaultNoPanicAllowlist is the audit record of every surviving panic site
// in library code: each entry names a function that may panic and the
// one-line justification for why a panic (rather than an error return) is
// the right contract there. Adding a panic anywhere else fails the lint; so
// does adding an entry without a justification (the allowlist test enforces
// non-empty reasons). Must*-prefixed functions are panicking-by-contract
// wrappers and need no entry.
func DefaultNoPanicAllowlist() map[string]string {
	return map[string]string{
		// internal/model — constructor and arithmetic preconditions.
		"rrsched/internal/model.NewSchedule":     "constructor invariant guard: a schedule with no resources or speed < 1 is unrepresentable, and every caller passes literals or validated Env fields",
		"rrsched/internal/model.FloorPowerOfTwo": "documented arithmetic precondition (v > 0); callers validate delay bounds before calling",

		// internal/queue — container misuse guards, mirroring the stdlib
		// container/heap contract that popping an empty container is a
		// programming bug in the caller, not an input error.
		"rrsched/internal/queue.NewHeap":              "nil comparator is a programming bug caught at construction",
		"rrsched/internal/queue.NewIndexedHeap":       "nil comparator is a programming bug caught at construction",
		"rrsched/internal/queue.(Heap).Peek":          "peek of an empty container is caller misuse, as in container/heap",
		"rrsched/internal/queue.(Heap).Pop":           "pop of an empty container is caller misuse, as in container/heap",
		"rrsched/internal/queue.(IndexedHeap).Peek":   "peek of an empty container is caller misuse, as in container/heap",
		"rrsched/internal/queue.(Ring).Peek":          "peek of an empty container is caller misuse, as in container/heap",
		"rrsched/internal/queue.(Ring).Pop":           "pop of an empty container is caller misuse, as in container/heap",
		"rrsched/internal/queue.(BucketQueue).Push":   "pushing below the monotone front breaks the bucket invariant; callers push nondecreasing keys by construction",
		"rrsched/internal/queue.(BucketQueue).PopMin": "pop of an empty container is caller misuse, as in container/heap",

		// internal/core — the Section 3 policies' own invariants: a
		// violation means the policy's accounting broke, not that the user
		// passed bad input (user input is validated at the sim/API layer).
		"rrsched/internal/core.NewTracker":                  "constructor invariant guards on the paper's preconditions (batched arrivals, positive Δ)",
		"rrsched/internal/core.NewDynamicTracker":           "constructor invariant guard: non-positive reconfiguration cost",
		"rrsched/internal/core.(Tracker).Register":          "re-registering a color with a different delay bound breaks the ΔLRU timestamp algebra",
		"rrsched/internal/core.(Tracker).SetTimestampK":     "timestamp depth < 1 breaks the ΔLRU timestamp algebra",
		"rrsched/internal/core.(Tracker).EnableSuperEpochs": "non-positive threshold breaks the super-epoch construction",
		"rrsched/internal/core.(DeltaLRUEDF).Reset":         "LRU slot quota outside [0, Slots()] means the policy's own arithmetic broke",
		"rrsched/internal/core.edfUpdate":                   "cache overflow here means the EDF set construction itself is wrong",

		// internal/reduce — arithmetic preconditions of the reduction
		// lemmas (Lemmas 4-6); inputs are validated by the public wrappers.
		"rrsched/internal/reduce.BatchedDelay":        "non-positive delay bound violates the VarBatch lemma's precondition",
		"rrsched/internal/reduce.Block":               "non-positive block size violates the blocking lemma's precondition",
		"rrsched/internal/reduce.HalfBlock":           "odd or non-positive delay bound violates the half-block lemma's precondition",
		"rrsched/internal/reduce.(SubcolorMap).Outer": "lookup of an inner color the map itself minted; a miss is an internal bug",

		// internal/edf, internal/offline — offline reference bounds with
		// programmer-side preconditions; the cmd tools validate m >= 1
		// before calling.
		"rrsched/internal/edf.ParEDFDrops":       "m >= 1 is a precondition of the offline drop bound, checked by the cmd layer",
		"rrsched/internal/edf.ParEDFDropsBucket": "m >= 1 is a precondition of the offline drop bound, checked by the cmd layer",
		"rrsched/internal/offline.WindowGreedy":  "the greedy script is audited after construction; an illegal schedule is an internal bug, not bad input",

		// internal/experiments — init-time registry guard.
		"rrsched/internal/experiments.register": "duplicate-ID guard that fires during package init, before any user input exists",
	}
}
