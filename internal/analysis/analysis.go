// Package analysis is a from-scratch static-analysis engine, written only
// against the standard library's go/parser, go/ast, go/types, and go/token,
// that machine-checks the repository invariants the compiler cannot see:
//
//   - determinism: schedules must be reproducible for a given seed, so wall
//     clocks, the global math/rand source, and map-iteration-order-dependent
//     output are banned from library code (model.Audit replays runs
//     byte-exactly; checkpoint resume is verified decision-for-decision);
//   - nopanic: library panics were deliberately converted to error returns,
//     so new panic sites outside constructor invariant guards and Must*
//     wrappers are banned;
//   - errcheck: silently discarded error returns are banned;
//   - floatcmp: exact floating-point equality is banned in the statistics
//     and experiment layers;
//   - layering: the package DAG is pinned (model and queue are leaves, sim
//     never sees experiments, each cmd declares its internals).
//
// The concurrent tier (internal/serve, internal/dispatch) is guarded by a
// second, type-aware generation of analyzers:
//
//   - lockcheck: sync.Mutex/RWMutex discipline — every Lock is released on
//     every return path, and no lock is held across a blocking operation
//     (channel send/receive, select, time.Sleep, http.Client calls);
//   - goroleak: every `go` statement is tied to a shutdown path (WaitGroup,
//     done channel, channel loop, or an http.Server serve loop), and
//     goroutine launches inside unbounded loops are flagged;
//   - atomicwrite: os.WriteFile/os.Create on paths that flow from
//     state/checkpoint vocabulary must go through the sanctioned tmp+rename
//     helper (internal/atomicio);
//   - fencedwrite: in internal/dispatch, every lease mutation driven by an
//     epoch-bearing wire request must consult the epoch-fence comparison —
//     the rule that makes the 409 zombie-rejection protocol real;
//   - httpharden: http.Server values are built via serve.HardenedServer and
//     http.Client literals carry a non-zero Timeout.
//
// The engine loads every package of the module (see LoadModule), runs each
// enabled Analyzer over each package, and reports Diagnostics with file:line
// positions. `//lint:ignore <analyzer> <reason>` comments suppress a
// diagnostic on the same line or the line directly below the comment; an
// ignore with no reason is itself a diagnostic, and so is a stale ignore
// whose analyzer ran but found nothing to suppress. cmd/rrlint is the
// driver.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding at a source position. Suppressed
// findings survive in Result.Diags with Suppressed set and the directive's
// justification in SuppressReason, so machine consumers see the full audit
// trail, not just the gate.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`

	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppress_reason,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named analysis pass. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the full outcome of an Analyze run.
type Result struct {
	// Diags holds every diagnostic in (file, line, column, analyzer) order:
	// surviving findings, suppressed findings (Suppressed set, with the
	// directive's reason), and the "lint" pseudo-diagnostics for malformed
	// or stale ignore directives.
	Diags []Diagnostic
}

// Findings returns the diagnostics that gate the build: everything not
// covered by an ignore directive, including the "lint" pseudo-diagnostics.
func (r *Result) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Analyze applies each analyzer to each package and returns every diagnostic
// with suppression metadata resolved: findings covered by a
// `//lint:ignore <analyzer> <reason>` directive are marked Suppressed and
// carry the directive's reason. Malformed directives, and stale directives
// whose analyzer ran but suppressed nothing, are reported under the
// pseudo-analyzer "lint" (stale directives for analyzers that did not run
// are left alone — a subset run proves nothing about them).
func Analyze(pkgs []*Package, analyzers []*Analyzer) *Result {
	var diags []Diagnostic
	sup := newSuppressions()
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
		sup.collect(pkg)
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if ig := sup.match(d); ig != nil {
			d.Suppressed = true
			d.SuppressReason = ig.reason
		}
		out = append(out, d)
	}
	out = append(out, sup.malformed...)
	out = append(out, sup.unused(ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return &Result{Diags: out}
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics in (file, line, column, analyzer) order. Suppressed
// diagnostics are dropped; malformed or stale suppression comments are
// reported under the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return Analyze(pkgs, analyzers).Findings()
}
