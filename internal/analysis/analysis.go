// Package analysis is a from-scratch static-analysis engine, written only
// against the standard library's go/parser, go/ast, go/types, and go/token,
// that machine-checks the repository invariants the compiler cannot see:
//
//   - determinism: schedules must be reproducible for a given seed, so wall
//     clocks, the global math/rand source, and map-iteration-order-dependent
//     output are banned from library code (model.Audit replays runs
//     byte-exactly; checkpoint resume is verified decision-for-decision);
//   - nopanic: library panics were deliberately converted to error returns,
//     so new panic sites outside constructor invariant guards and Must*
//     wrappers are banned;
//   - errcheck: silently discarded error returns are banned;
//   - floatcmp: exact floating-point equality is banned in the statistics
//     and experiment layers;
//   - layering: the package DAG is pinned (model and queue are leaves, sim
//     never sees experiments, each cmd declares its internals).
//
// The engine loads every package of the module (see LoadModule), runs each
// enabled Analyzer over each package, and reports Diagnostics with file:line
// positions. `//lint:ignore <analyzer> <reason>` comments suppress a
// diagnostic on the same line or the line directly below the comment; an
// ignore with no reason is itself a diagnostic. cmd/rrlint is the driver.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named analysis pass. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics in (file, line, column, analyzer) order. Suppressed
// diagnostics are dropped; malformed suppression comments are reported under
// the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := newSuppressions()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
		sup.collect(pkg)
	}
	out := sup.malformed
	for _, d := range diags {
		if !sup.covers(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
