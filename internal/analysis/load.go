package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: the invariants guard
// library and command code, and tests legitimately use clocks, unseeded
// randomness, and panics.
type Package struct {
	// Path is the import path ("rrsched/internal/sim").
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is the module-wide file set (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test files, in filename order.
	Files []*ast.File
	// Filenames are the absolute filenames, parallel to Files.
	Filenames []string
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded module: every non-test package, parsed and
// type-checked, in dependency (topological) order.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Root is the absolute directory containing go.mod.
	Root string
	Fset *token.FileSet
	Pkgs []*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSpace(ln)
		if rest, ok := strings.CutPrefix(ln, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under root
// (which must contain go.mod). Directories named testdata or vendor, and
// hidden or underscore-prefixed directories, are skipped. Stdlib imports are
// resolved with the standard gc importer (falling back to the source
// importer); module-internal imports are resolved against the packages being
// loaded, in topological order, so no build step or external tooling is
// needed.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Path: modPath, Root: root, Fset: fset}

	// Discover and parse package directories.
	byPath := map[string]*Package{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, root, modPath, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order by module-internal imports.
	order, err := toposort(byPath, modPath)
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order.
	imp := &moduleImporter{
		fset:   fset,
		loaded: map[string]*types.Package{},
	}
	for _, pkg := range order {
		conf := types.Config{Importer: imp}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		imp.loaded[pkg.Path] = tpkg
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// parseDir parses the non-test Go files of one directory, returning nil if
// there are none.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, n := range names {
		filename := filepath.Join(dir, n)
		f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, filename)
	}
	return pkg, nil
}

// moduleImports returns the package's imports that live in this module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// toposort orders packages so every module-internal import precedes its
// importer, failing on cycles.
func toposort(byPath map[string]*Package, modPath string) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0 // unvisited
		gray  = 1 // on the stack
		black = 2 // done
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle: %s -> %s", strings.Join(chain, " -> "), path)
		}
		state[path] = gray
		pkg := byPath[path]
		if pkg != nil {
			for _, dep := range moduleImports(pkg, modPath) {
				if _, ok := byPath[dep]; !ok {
					return fmt.Errorf("analysis: %s imports %s, which has no Go files in the module", path, dep)
				}
				if err := visit(dep, append(chain, path)); err != nil {
					return err
				}
			}
		}
		state[path] = black
		if pkg != nil {
			order = append(order, pkg)
		}
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the already
// type-checked packages and everything else through the standard importers.
type moduleImporter struct {
	fset   *token.FileSet
	loaded map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.loaded[path]; ok {
		return pkg, nil
	}
	if m.gc == nil {
		m.gc = importer.ForCompiler(m.fset, "gc", nil)
	}
	pkg, gcErr := m.gc.Import(path)
	if gcErr == nil {
		return pkg, nil
	}
	// Fall back to type-checking the dependency from source (handles
	// toolchains without prebuilt export data).
	if m.source == nil {
		m.source = importer.ForCompiler(m.fset, "source", nil)
	}
	pkg, srcErr := m.source.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("import %q: %v (gc importer: %v)", path, srcErr, gcErr)
	}
	return pkg, nil
}
