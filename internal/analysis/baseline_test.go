package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diag(analyzer, file, msg string, line int) Diagnostic {
	return Diagnostic{Analyzer: analyzer, File: file, Line: line, Col: 1, Message: msg}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Diagnostic{
		diag("lockcheck", "a.go", "held", 10),
		diag("lockcheck", "a.go", "held", 30),
		diag("goroleak", "b.go", "leak", 5),
	}
	b := NewBaseline(findings)
	if len(b.Entries) != 2 {
		t.Fatalf("want 2 collapsed entries, got %+v", b.Entries)
	}
	if b.Entries[0].File != "a.go" || b.Entries[0].Count != 2 {
		t.Fatalf("entries not collapsed/sorted: %+v", b.Entries)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BaselineSchema || len(got.Entries) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestBaselineDiff(t *testing.T) {
	b := NewBaseline([]Diagnostic{
		diag("lockcheck", "a.go", "held", 10),
		diag("lockcheck", "a.go", "held", 30),
		diag("goroleak", "b.go", "leak", 5),
	})

	// Same findings: everything baselined, nothing fresh or stale.
	fresh, baselined, stale := b.Diff([]Diagnostic{
		diag("lockcheck", "a.go", "held", 11),
		diag("lockcheck", "a.go", "held", 31),
		diag("goroleak", "b.go", "leak", 6),
	})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("line drift must not break the baseline: fresh=%v stale=%v", fresh, stale)
	}
	for i, ok := range baselined {
		if !ok {
			t.Fatalf("finding %d not baselined", i)
		}
	}

	// A new finding class is fresh.
	fresh, _, _ = b.Diff([]Diagnostic{
		diag("lockcheck", "a.go", "held", 10),
		diag("lockcheck", "a.go", "held", 30),
		diag("goroleak", "b.go", "leak", 5),
		diag("atomicwrite", "c.go", "torn", 7),
	})
	if len(fresh) != 1 || fresh[0].Analyzer != "atomicwrite" {
		t.Fatalf("want the new finding fresh, got %v", fresh)
	}

	// One lockcheck finding fixed: its entry goes stale with the residue.
	fresh, _, stale = b.Diff([]Diagnostic{
		diag("lockcheck", "a.go", "held", 10),
		diag("goroleak", "b.go", "leak", 5),
	})
	if len(fresh) != 0 {
		t.Fatalf("want nothing fresh, got %v", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "lockcheck" || stale[0].Count != 1 {
		t.Fatalf("want one stale lockcheck entry with count 1, got %+v", stale)
	}
}

func TestReadBaselineRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := ReadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("want error for a missing file")
	}
	if _, err := ReadBaseline(write("garbage.json", "{")); err == nil {
		t.Error("want error for unparseable JSON")
	}
	if _, err := ReadBaseline(write("schema.json", `{"schema":"other/v9","entries":[]}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("want schema error, got %v", err)
	}
	if _, err := ReadBaseline(write("incomplete.json", `{"schema":"rrlint-baseline/v1","entries":[{"analyzer":"x","file":"","message":"m","count":1}]}`)); err == nil {
		t.Error("want error for an incomplete entry")
	}
}

// TestRepoBaselineIsEmpty pins the self-host contract: the committed
// baseline carries zero accepted debt, so any future finding fails CI until
// fixed or explicitly baselined in review.
func TestRepoBaselineIsEmpty(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(filepath.Join(root, "lint_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("the committed baseline must stay empty; found %d entr(ies): %+v", len(b.Entries), b.Entries)
	}
}
