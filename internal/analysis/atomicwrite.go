package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// atomicWriteVocab are the lowercase substrings that mark a path expression
// (or the function writing it) as persistent-state vocabulary: a write to
// such a path must be crash-consistent. "chunk" and "manifest" cover the
// incremental checkpoint store, whose content-addressed chunk files and
// manifests are exactly the artifacts a restore trusts.
var atomicWriteVocab = []string{"state", "checkpoint", "snapshot", "chunk", "manifest"}

// AtomicWrite returns the analyzer that forces state and checkpoint writes
// through the sanctioned tmp+rename helper (internal/atomicio). A plain
// os.WriteFile truncates the destination before writing, so a crash between
// truncate and flush leaves a torn file — and a torn checkpoint is exactly
// the artifact the dispatcher's failover protocol trusts to restore a shard.
//
// The check is a small intra-procedural taint pass: an os.WriteFile or
// os.Create call is flagged when its path argument mentions state vocabulary
// ("state", "checkpoint", "snapshot", "chunk", "manifest" — as an
// identifier, a selected field, or a called function's name), when the path
// flows through local
// assignments from such an expression (`path := d.statePath(i); tmp := path
// + ".tmp"`), or when the enclosing function's own name carries the
// vocabulary. Functions named in sanctioned — the tmp+rename helpers
// themselves, keyed like the nopanic allowlist ("pkgpath.Func") — are
// exempt.
func AtomicWrite(sanctioned map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: "atomicwrite",
		Doc:  "flags os.WriteFile/os.Create on state/checkpoint paths outside the sanctioned tmp+rename helper",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if sanctioned[funcKey(pass.Pkg, fn)] {
					continue
				}
				checkAtomicWrites(pass, fn)
			}
		}
	}
	return a
}

// vocabWord reports whether a name contains state vocabulary.
func vocabWord(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range atomicWriteVocab {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// checkAtomicWrites flags non-atomic writes to tainted paths in one
// function.
func checkAtomicWrites(pass *Pass, fn *ast.FuncDecl) {
	tainted := map[string]bool{}
	// Two propagation passes are enough for the straight-line chains the
	// repo uses (path := statePath(...); tmp := path + ".tmp").
	for i := 0; i < 2; i++ {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsTainted := false
			for _, rhs := range as.Rhs {
				if exprMentionsVocab(pass, rhs, tainted) {
					rhsTainted = true
					break
				}
			}
			if !rhsTainted {
				return true
			}
			for _, lhs := range as.Lhs {
				if key, _ := exprKey(pass, lhs); key != "" {
					tainted[key] = true
				}
			}
			return true
		})
	}
	fnNameTainted := vocabWord(fn.Name.Name)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		writer := osWriteCall(pass, call)
		if writer == "" || len(call.Args) == 0 {
			return true
		}
		if fnNameTainted || exprMentionsVocab(pass, call.Args[0], tainted) {
			pass.Reportf(call.Pos(), "os.%s writes a state/checkpoint path in place; a crash mid-write leaves a torn file — use the sanctioned tmp+rename helper (atomicio.WriteFile)", writer)
		}
		return true
	})
}

// osWriteCall returns "WriteFile" or "Create" when the call is the
// corresponding os function, else "".
func osWriteCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return ""
	}
	if sel.Sel.Name == "WriteFile" || sel.Sel.Name == "Create" {
		return sel.Sel.Name
	}
	return ""
}

// exprMentionsVocab reports whether an expression mentions state vocabulary
// directly (identifier, selected field, or called function name) or through
// a tainted local.
func exprMentionsVocab(pass *Pass, e ast.Expr, tainted map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if vocabWord(n.Name) {
				found = true
			} else if key, _ := exprKey(pass, n); key != "" && tainted[key] {
				found = true
			}
		case *ast.SelectorExpr:
			if vocabWord(n.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}
