package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Determinism returns the analyzer that guards reproducibility: every run of
// a seeded scenario must produce byte-identical schedules and summaries
// (model.Audit replays runs exactly; checkpoint resume is verified
// decision-for-decision). It flags, in non-test code:
//
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - the global math/rand source (top-level rand.Intn, rand.Float64,
//     rand.Shuffle, ... — seeded rand.New(rand.NewSource(seed)) instances
//     are the approved pattern and are not flagged);
//   - ranging over a map while appending to a slice, writing output, or
//     encoding — the classic map-iteration-order leak. Loops that sort
//     afterwards carry a //lint:ignore determinism comment saying so.
func Determinism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "flags wall clocks, the global math/rand source, and map-iteration-order-dependent output",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					checkDeterminismSelector(pass, sel)
				}
				return true
			})
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					checkMapRanges(pass, fn.Body)
				}
			}
		}
	}
	return a
}

// wallClockFuncs are the time functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand functions that are fine to call: they
// construct explicitly seeded generators rather than drawing from the global
// source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func checkDeterminismSelector(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	// Only package-level functions matter: type references (rand.Rand,
	// rand.Source) and method calls on seeded *rand.Rand values are fine.
	if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; seeded runs must not depend on real time", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; use a seeded rand.New(rand.NewSource(seed))", sel.Sel.Name)
		}
	}
}

// orderSensitiveCalls are method/function names that emit output in call
// order, so calling them while ranging over a map leaks iteration order.
var orderSensitiveCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// checkMapRanges flags `range m` over a map whose body appends to a slice,
// writes output, or encodes: the result depends on Go's randomized map
// iteration order. Bodies that only update maps or commutative accumulators
// are fine, and so is the canonical collect-then-sort idiom — an append
// whose target is passed to a sort.* or slices.Sort* call later in the same
// function is not flagged. (The heuristic cannot see whether the sort key is
// total; a sort with ties broken by nothing still leaks map order and must
// be caught in review.)
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		culprit, targets := mapRangeCulprit(pass, rng)
		if culprit == "" {
			return true
		}
		if len(targets) > 0 && allSortedAfter(pass, body, rng, targets) {
			return true
		}
		pass.Reportf(rng.Pos(), "range over a map %s: output depends on map iteration order; iterate over sorted keys instead", culprit)
		return true
	})
}

// mapRangeCulprit scans a map-range body for order-sensitive effects. For
// appends it also returns the keys of the append targets (x = append(x, ...)
// or x.f.g = append(x.f.g, ...)), so the caller can look for a later sort.
// Appends to variables declared inside the loop body build per-iteration
// values and are not order-sensitive.
func mapRangeCulprit(pass *Pass, rng *ast.RangeStmt) (culprit string, targets []string) {
	appendOnly := true
	captured := map[*ast.CallExpr]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					key, root := exprKey(pass, n.Lhs[0])
					if root != nil && rng.Body.Pos() <= root.Pos() && root.Pos() <= rng.Body.End() {
						// Per-iteration local: each iteration builds its own
						// value, so order cannot leak through it.
						captured[call] = true
						return true
					}
					if key != "" {
						if culprit == "" {
							culprit = "appends to a slice"
						}
						targets = append(targets, key)
						captured[call] = true
					}
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if isBuiltinAppend(pass, n) && !captured[n] {
					// append not captured by a plain `x = append(x, ...)`
					// assignment: cannot prove a later sort covers it.
					culprit = "appends to a slice"
					appendOnly = false
				}
			case *ast.SelectorExpr:
				if orderSensitiveCalls[fun.Sel.Name] {
					culprit = "calls " + fun.Sel.Name
					appendOnly = false
				}
			}
		}
		return true
	})
	if !appendOnly {
		targets = nil
	}
	return culprit, targets
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append" && pass.Pkg.Info.Uses[id] == types.Universe.Lookup("append")
}

// exprKey canonicalizes an ident or selector chain (out, cp.Inner.Subcolors)
// into a comparable key plus the root identifier's object. Anything else
// (index expressions, calls) yields "".
func exprKey(pass *Pass, e ast.Expr) (string, types.Object) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[e]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[e]
		}
		if obj == nil {
			return "", nil
		}
		return fmt.Sprintf("%p", obj), obj
	case *ast.SelectorExpr:
		base, root := exprKey(pass, e.X)
		if base == "" {
			return "", nil
		}
		return base + "." + e.Sel.Name, root
	default:
		return "", nil
	}
}

// allSortedAfter reports whether every append target is passed to a sorting
// call (sort.* or slices.Sort*) after the range statement in the same
// function body.
func allSortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, targets []string) bool {
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if key, _ := exprKey(pass, arg); key != "" {
				sorted[key] = true
			}
		}
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
