package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a diagnostic:
//
//	//lint:ignore <analyzer> <reason>
//
// It suppresses diagnostics of the named analyzer (or every analyzer, for
// "all") on the comment's own line or on the line directly below it, so both
// trailing and leading placement work. The reason is mandatory: a
// suppression is only as good as its justification, and the self-run doubles
// as documentation of every accepted exception.
const ignoreDirective = "lint:ignore"

// ParseIgnoreDirective parses one comment's raw text (including the "//" or
// "/* */" markers) as an ignore directive. found reports whether the comment
// is a lint:ignore directive at all; malformed reports a directive that is
// missing its analyzer name or its reason. A malformed directive suppresses
// nothing — it is itself a diagnostic. For a well-formed directive the
// analyzer name and the (whitespace-normalized) reason are returned.
func ParseIgnoreDirective(text string) (analyzer, reason string, found, malformed bool) {
	t := strings.TrimPrefix(text, "//")
	t = strings.TrimSpace(strings.TrimPrefix(t, "/*"))
	t = strings.TrimSuffix(t, "*/")
	rest, ok := strings.CutPrefix(t, ignoreDirective)
	if !ok {
		return "", "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", true, true
	}
	return fields[0], strings.Join(fields[1:], " "), true, false
}

// directive is one well-formed ignore directive found in a source file.
type directive struct {
	analyzer string // "all" matches every analyzer
	reason   string
	pos      token.Position // where the directive's comment starts
	line     int            // effective line: the comment's end line
	used     bool           // set when the directive suppresses a diagnostic
}

// suppressions indexes ignore directives by file and line.
type suppressions struct {
	byLine    map[string]map[int][]*directive
	all       []*directive
	malformed []Diagnostic
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: make(map[string]map[int][]*directive)}
}

// collect scans every comment of the package for ignore directives.
func (s *suppressions) collect(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, reason, found, malformed := ParseIgnoreDirective(c.Text)
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if malformed {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed ignore: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := &directive{
					analyzer: analyzer,
					reason:   reason,
					pos:      pos,
					line:     pkg.Fset.Position(c.End()).Line,
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					s.byLine[pos.Filename] = lines
				}
				lines[d.line] = append(lines[d.line], d)
				s.all = append(s.all, d)
			}
		}
	}
}

// match returns the directive that covers the diagnostic — one on the
// diagnostic's line or the line directly above naming its analyzer (or
// "all") — marking it used, or nil.
func (s *suppressions) match(d Diagnostic) *directive {
	lines := s.byLine[d.File]
	if lines == nil {
		return nil
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, ig := range lines[line] {
			if ig.analyzer == d.Analyzer || ig.analyzer == "all" {
				ig.used = true
				return ig
			}
		}
	}
	return nil
}

// unused reports every directive that suppressed nothing even though its
// named analyzer ran: the finding it once justified has been fixed, so the
// directive is stale and must be deleted. Directives naming analyzers that
// did not run are left alone (a subset run proves nothing), and "all"
// directives are exempt for the same reason.
func (s *suppressions) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, ig := range s.all {
		if ig.used || ig.analyzer == "all" || !ran[ig.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "lint",
			Pos:      ig.pos,
			File:     ig.pos.Filename,
			Line:     ig.pos.Line,
			Col:      ig.pos.Column,
			Message:  fmt.Sprintf("unused ignore: no %s finding on this or the next line; delete the stale directive", ig.analyzer),
		})
	}
	return out
}
