package analysis

import (
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a diagnostic:
//
//	//lint:ignore <analyzer> <reason>
//
// It suppresses diagnostics of the named analyzer (or every analyzer, for
// "all") on the comment's own line or on the line directly below it, so both
// trailing and leading placement work. The reason is mandatory: a
// suppression is only as good as its justification, and the self-run doubles
// as documentation of every accepted exception.
const ignoreDirective = "lint:ignore"

type ignore struct {
	analyzer string // "all" matches every analyzer
}

// suppressions indexes ignore directives by file and line.
type suppressions struct {
	byLine    map[string]map[int][]ignore
	malformed []Diagnostic
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: make(map[string]map[int][]ignore)}
}

// collect scans every comment of the package for ignore directives.
func (s *suppressions) collect(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				text = strings.TrimSuffix(text, "*/")
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed ignore: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]ignore)
					s.byLine[pos.Filename] = lines
				}
				end := pkg.Fset.Position(c.End()).Line
				lines[end] = append(lines[end], ignore{analyzer: fields[0]})
			}
		}
	}
}

// covers reports whether an ignore directive on the diagnostic's line, or on
// the line directly above it, names the diagnostic's analyzer.
func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byLine[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, ig := range lines[line] {
			if ig.analyzer == d.Analyzer || ig.analyzer == "all" {
				return true
			}
		}
	}
	return false
}
