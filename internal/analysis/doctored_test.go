package analysis

import (
	"strings"
	"testing"
)

// These tests doctor known-good code into the exact bug each v2 analyzer
// exists to catch, and assert the analyzer fires — the negative control for
// the self-host gate: a clean run means something only if breaking the
// invariant is proven to trip the analyzer.

// assertFires runs one analyzer over doctored source and requires a finding
// whose message contains want.
func assertFires(t *testing.T, a *Analyzer, src, want string) {
	t.Helper()
	mod := loadTempModule(t, map[string]string{"a.go": src})
	diags := Run(mod.Pkgs, []*Analyzer{a})
	for _, d := range diags {
		if d.Analyzer == a.Name && strings.Contains(d.Message, want) {
			return
		}
	}
	t.Fatalf("doctored source did not trip %s (want message containing %q); got %v", a.Name, want, diags)
}

// TestDoctoredLockAcrossSend doctors the serve Tick shape — a channel send
// under the round-barrier mutex — minus the justification.
func TestDoctoredLockAcrossSend(t *testing.T) {
	assertFires(t, LockCheck(), `package tmp

import "sync"

type svc struct {
	mu sync.Mutex
	ch chan int
}

func (s *svc) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1
}
`, "channel send while holding s.mu")
}

// TestDoctoredLockLeak doctors an early return between Lock and Unlock.
func TestDoctoredLockLeak(t *testing.T) {
	assertFires(t, LockCheck(), `package tmp

import "sync"

type svc struct {
	mu sync.Mutex
	n  int
}

func (s *svc) Get(fast bool) int {
	s.mu.Lock()
	if fast {
		return s.n
	}
	s.mu.Unlock()
	return 0
}
`, "locked but not released on this return path")
}

// TestDoctoredUnfencedPlacementWrite doctors the dispatcher's checkpoint
// handler with the epoch fence deleted: the zombie write goes through.
func TestDoctoredUnfencedPlacementWrite(t *testing.T) {
	assertFires(t, FencedWrite("fix/tmp", "lease", "epoch"), `package tmp

type lease struct {
	worker string
	epoch  int64
	data   []byte
}

type push struct {
	Worker string
	Shard  int
	Epoch  int64
	Data   []byte
}

type disp struct {
	leases []lease
}

func (d *disp) StoreCheckpoint(req *push) {
	d.leases[req.Shard].data = req.Data
	d.leases[req.Shard].worker = req.Worker
}
`, "without consulting the fence")
}

// TestDoctoredFireAndForgetGoroutine doctors a worker loop with its done
// channel removed.
func TestDoctoredFireAndForgetGoroutine(t *testing.T) {
	assertFires(t, GoroLeak(), `package tmp

func Monitor() {
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}
`, "not tied to a shutdown path")
}

// TestDoctoredTornCheckpointWrite doctors the persist path back to a plain
// os.WriteFile.
func TestDoctoredTornCheckpointWrite(t *testing.T) {
	assertFires(t, AtomicWrite(nil), `package tmp

import "os"

func persist(checkpointPath string, data []byte) error {
	return os.WriteFile(checkpointPath, data, 0o644)
}
`, "torn file")
}

// TestDoctoredRawServer doctors worker bring-up to bypass HardenedServer.
func TestDoctoredRawServer(t *testing.T) {
	assertFires(t, HTTPHarden(nil), `package tmp

import "net/http"

func listen(h http.Handler) *http.Server {
	return &http.Server{Handler: h}
}
`, "raw http.Server literal")
}

// TestDoctoredZeroTimeoutClient doctors the dispatch client's timeout away.
func TestDoctoredZeroTimeoutClient(t *testing.T) {
	assertFires(t, HTTPHarden(nil), `package tmp

import "net/http"

var client = &http.Client{}
`, "without a Timeout")
}
