package analysis

import (
	"strings"
	"testing"
)

// FuzzParseSuppression hammers the directive parser with arbitrary comment
// text: it must never panic, and its result invariants must hold — a
// well-formed directive always carries a non-empty analyzer name and reason,
// and malformed implies found.
func FuzzParseSuppression(f *testing.F) {
	f.Add("//lint:ignore determinism keys are sorted below")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore errcheck")
	f.Add("/*lint:ignore all everything justified*/")
	f.Add("// ordinary comment")
	f.Add("//lint:ignoredeterminism smashed together")
	f.Add("//lint:ignore\tall\ttabs as separators")
	f.Add("/*lint:ignore*/")
	f.Add("//lint:ignore all \x00\xff")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, found, malformed := ParseIgnoreDirective(text)
		if malformed && !found {
			t.Fatalf("malformed implies found: %q", text)
		}
		if found && !malformed {
			if analyzer == "" || reason == "" {
				t.Fatalf("well-formed directive with empty fields: %q -> (%q, %q)", text, analyzer, reason)
			}
			if strings.ContainsAny(analyzer, " \t") {
				t.Fatalf("analyzer name contains whitespace: %q -> %q", text, analyzer)
			}
		}
		if !found && (analyzer != "" || reason != "" || malformed) {
			t.Fatalf("non-directive returned data: %q -> (%q, %q, %v, %v)", text, analyzer, reason, found, malformed)
		}
	})
}
