package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic returns the analyzer that keeps library code panic-free: PR 1
// deliberately converted library panics into error returns so faulty inputs
// degrade gracefully, and this analyzer stops new panic sites from creeping
// back in. It flags every `panic(...)` in non-main packages except:
//
//   - functions whose name starts with "Must" (documented panicking
//     wrappers around error-returning twins);
//   - functions in the allowlist, keyed "pkgpath.Func" or
//     "pkgpath.(Recv).Method", each with a one-line justification — the
//     allowlist doubles as the audit record of every surviving panic site.
//
// Re-raising a recovered panic (`panic(r)` inside a recover branch) is not
// distinguished; such sites belong in the allowlist too.
func NoPanic(allowlist map[string]string) *Analyzer {
	a := &Analyzer{
		Name: "nopanic",
		Doc:  "flags panic sites in library packages outside Must* wrappers and the audited allowlist",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types.Name() == "main" {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if strings.HasPrefix(fn.Name.Name, "Must") {
					continue
				}
				key := funcKey(pass.Pkg, fn)
				if _, ok := allowlist[key]; ok {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok || id.Name != "panic" {
						return true
					}
					if pass.Pkg.Info.Uses[id] != types.Universe.Lookup("panic") {
						return true
					}
					pass.Reportf(call.Pos(), "panic in library function %s: return an error instead, or audit the site into the nopanic allowlist", key)
					return true
				})
			}
		}
	}
	return a
}

// funcKey names a function for the allowlist: "pkgpath.Func" for functions,
// "pkgpath.(Recv).Method" for methods (pointer receivers use the base type
// name).
func funcKey(pkg *Package, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return pkg.Path + "." + fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver Type[T]
			t = u.X
		case *ast.IndexListExpr: // generic receiver Type[T1, T2]
			t = u.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return pkg.Path + ".(" + id.Name + ")." + fn.Name.Name
			}
			return pkg.Path + "." + fn.Name.Name
		}
	}
}
