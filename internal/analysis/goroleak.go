package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak returns the analyzer that ties every goroutine to a shutdown
// path. A `go` statement in non-test code must launch a body that shows
// evidence of supervision:
//
//   - a (*sync.WaitGroup).Done call (the launcher waits);
//   - a close(...) of a done channel (the launcher observes completion);
//   - any channel operation — send, receive, range over a channel, or a
//     select — because a channel-coupled goroutine exits when its peer
//     closes the conversation;
//   - an (*net/http.Server).Serve/ListenAndServe loop, whose lifecycle is
//     owned by Server.Close/Shutdown.
//
// A launch whose body cannot be resolved in the same package (a method or
// function from another package) is flagged too: the analyzer cannot prove
// supervision, and the fix — wrap the launch in a supervised closure — is
// cheap. Independently, a launch lexically inside an unbounded loop
// (`for {}` with no condition) is flagged even when supervised: each
// iteration stacks another goroutine with no bound.
func GoroLeak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "flags goroutines with no shutdown path (WaitGroup, done channel, channel loop, or server loop) and launches inside unbounded loops",
	}
	a.Run = func(pass *Pass) {
		decls := funcDeclIndex(pass.Pkg)
		for _, f := range pass.Pkg.Files {
			unbounded := unboundedLoopBodies(f)
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				for _, rng := range unbounded {
					if rng[0] <= g.Pos() && g.Pos() < rng[1] {
						pass.Reportf(g.Pos(), "goroutine launched inside an unbounded loop; each iteration stacks another goroutine — bound the loop or pool the workers")
						break
					}
				}
				if ok, why := goShutdownEvidence(pass, decls, g); !ok {
					pass.Reportf(g.Pos(), "goroutine is not tied to a shutdown path (%s); supervise it with a WaitGroup, a done channel, or a channel loop", why)
				}
				return true
			})
		}
	}
	return a
}

// unboundedLoopBodies collects the body spans of `for {}` loops (no
// condition, so nothing bounds the iteration count) in one file.
func unboundedLoopBodies(f *ast.File) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond == nil {
			out = append(out, [2]token.Pos{fs.Body.Pos(), fs.Body.End()})
		}
		return true
	})
	return out
}

// funcDeclIndex maps each function object defined in the package to its
// declaration, so `go pkgFunc()` and `go recv.method()` launches can be
// resolved to a body.
func funcDeclIndex(pkg *Package) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// serveMethods are the http.Server entry points whose goroutines are owned
// by Server.Close/Shutdown rather than a caller-side channel.
var serveMethods = map[string]bool{
	"(*net/http.Server).Serve":             true,
	"(*net/http.Server).ServeTLS":          true,
	"(*net/http.Server).ListenAndServe":    true,
	"(*net/http.Server).ListenAndServeTLS": true,
}

// goShutdownEvidence reports whether the launched body shows shutdown
// evidence, with a reason when it does not.
func goShutdownEvidence(pass *Pass, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) (ok bool, why string) {
	if isServeCall(pass, g.Call) {
		return true, ""
	}
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if obj := calleeObject(pass, g.Call.Fun); obj != nil {
			if fd := decls[obj]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return false, "the body is defined outside this package, so supervision cannot be verified"
	}
	if bodyHasShutdownEvidence(pass, body) {
		return true, ""
	}
	return false, "no WaitGroup.Done, close, channel operation, or server loop in the body"
}

// isServeCall reports whether the call is an http.Server serve loop.
func isServeCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.Pkg.Info.Selections[sel]
	if selection == nil {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	return ok && serveMethods[fn.FullName()]
}

// calleeObject resolves the object a call expression invokes: a plain
// function ident or a method/package selector.
func calleeObject(pass *Pass, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.Pkg.Info.Selections[fun]; selection != nil {
			return selection.Obj()
		}
		return pass.Pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
}

// bodyHasShutdownEvidence scans a goroutine body (nested literals included —
// a Done in a deferred closure still counts) for supervision evidence.
func bodyHasShutdownEvidence(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" &&
				pass.Pkg.Info.Uses[id] == types.Universe.Lookup("close") {
				found = true
				break
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if selection := pass.Pkg.Info.Selections[sel]; selection != nil {
					if fn, ok := selection.Obj().(*types.Func); ok {
						full := fn.FullName()
						if full == "(*sync.WaitGroup).Done" || serveMethods[full] {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}
