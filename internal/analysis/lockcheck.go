package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck returns the type-aware analyzer that enforces sync.Mutex and
// sync.RWMutex discipline in non-test code. Two rules, both intra-procedural:
//
//   - every Lock/RLock must be released on every return path, either by an
//     unlock before the return or by a deferred unlock;
//   - no lock may be held across a blocking operation — a channel send or
//     receive (including ranging over a channel), a select without a default
//     clause, time.Sleep, or an http.Client round trip — because a peer that
//     never answers then holds the lock, and every contender, indefinitely.
//
// The walker is deliberately simple: lock identity is the receiver's
// ident/selector chain (locks behind index expressions or pointers returned
// from calls are not tracked), branches are merged by union so a lock still
// held on any surviving path counts as held, and function literals are
// analyzed with fresh state (they run on their own stack). Intentional
// blocking under a lock — a round barrier, for instance — carries a
// //lint:ignore lockcheck justification.
func LockCheck() *Analyzer {
	a := &Analyzer{
		Name: "lockcheck",
		Doc:  "flags locks not released on every return path and locks held across blocking operations (channel ops, select, time.Sleep, http.Client calls)",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkLockBody(pass, fn.Body)
					}
				case *ast.FuncLit:
					checkLockBody(pass, fn.Body)
				}
				return true
			})
		}
	}
	return a
}

// heldLock is one tracked lock acquisition.
type heldLock struct {
	name     string // display form of the receiver ("s.tickMu")
	deferred bool   // a deferred unlock covers the return paths
}

// lockState maps a lock's canonical receiver key to its acquisition record.
type lockState map[string]heldLock

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mutexAcquire and mutexRelease name the sync methods that take and release
// locks, keyed by go/types' full method name.
var (
	mutexAcquire = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	mutexRelease = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
)

// mutexCall classifies a call as a lock acquire/release on a trackable
// receiver, returning the receiver's canonical key and display name.
func mutexCall(pass *Pass, call *ast.CallExpr) (acquire, release bool, key, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, false, "", ""
	}
	selection := pass.Pkg.Info.Selections[sel]
	if selection == nil {
		return false, false, "", ""
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false, false, "", ""
	}
	full := fn.FullName()
	if !mutexAcquire[full] && !mutexRelease[full] {
		return false, false, "", ""
	}
	key, _ = exprKey(pass, sel.X)
	if key == "" {
		return false, false, "", ""
	}
	return mutexAcquire[full], mutexRelease[full], key, exprDisplay(sel.X)
}

// exprDisplay renders an ident/selector chain for diagnostics.
func exprDisplay(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprDisplay(e.X) + "." + e.Sel.Name
	default:
		return "lock"
	}
}

// checkLockBody runs the lock-state walk over one function body. Nested
// function literals are skipped here (the analyzer visits them separately
// with fresh state).
func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	st := lockState{}
	terminated := walkLockStmts(pass, st, body.List)
	if !terminated {
		reportHeld(pass, st, body.End(), "function exit")
	}
}

// walkLockStmts walks a statement list in order, returning true if control
// cannot flow past the last statement (it returned or branched).
func walkLockStmts(pass *Pass, st lockState, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if walkLockStmt(pass, st, s) {
			return true
		}
	}
	return false
}

// walkLockStmt applies one statement to the lock state, reporting blocking
// operations executed while locks are held and returns taken while locks
// lack a deferred unlock. It returns true when the statement terminates the
// control path.
func walkLockStmt(pass *Pass, st lockState, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		checkBlockingExpr(pass, st, s.X)
		applyLockCalls(pass, st, s.X, false)
	case *ast.SendStmt:
		reportBlocking(pass, st, s.Arrow, "channel send")
		checkBlockingExpr(pass, st, s.Value)
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt:
		checkBlockingExpr(pass, st, stmt)
	case *ast.GoStmt:
		// The goroutine body runs on its own stack; only the call's
		// argument expressions are evaluated here.
		for _, arg := range s.Call.Args {
			checkBlockingExpr(pass, st, arg)
		}
	case *ast.DeferStmt:
		applyLockCalls(pass, st, s.Call, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkBlockingExpr(pass, st, r)
		}
		reportHeld(pass, st, s.Pos(), "return")
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return walkLockStmts(pass, st, s.List)
	case *ast.LabeledStmt:
		return walkLockStmt(pass, st, s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, st, s.Init)
		}
		checkBlockingExpr(pass, st, s.Cond)
		thenSt := st.clone()
		thenTerm := walkLockStmt(pass, thenSt, s.Body)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = walkLockStmt(pass, elseSt, s.Else)
		}
		return mergeBranches(st, []lockState{thenSt, elseSt}, []bool{thenTerm, elseTerm})
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, st, s.Init)
		}
		checkBlockingExpr(pass, st, s.Tag)
		walkLockClauses(pass, st, s.Body, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, st, s.Init)
		}
		walkLockClauses(pass, st, s.Body, false)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			reportBlocking(pass, st, s.Pos(), "select without a default clause")
		}
		walkLockClauses(pass, st, s.Body, true)
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, st, s.Init)
		}
		checkBlockingExpr(pass, st, s.Cond)
		// The body may run zero times: walk it on a copy for its own
		// reports, keep the pre-loop state afterwards.
		bodySt := st.clone()
		walkLockStmt(pass, bodySt, s.Body)
		if s.Post != nil {
			walkLockStmt(pass, bodySt, s.Post)
		}
	case *ast.RangeStmt:
		if tv, ok := pass.Pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				reportBlocking(pass, st, s.Pos(), "channel receive (range over a channel)")
			}
		}
		checkBlockingExpr(pass, st, s.X)
		bodySt := st.clone()
		walkLockStmt(pass, bodySt, s.Body)
	}
	return false
}

// walkLockClauses walks the case clauses of a switch or select body, each on
// a copy of the state, and merges the survivors back. isSelect skips the
// comm statement (its send/receive only fires when ready — the select itself
// is reported as the blocking point).
func walkLockClauses(pass *Pass, st lockState, body *ast.BlockStmt, isSelect bool) {
	var outs []lockState
	var terms []bool
	sawDefault := false
	for _, clause := range body.List {
		cs := st.clone()
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				sawDefault = true
			}
			for _, e := range c.List {
				checkBlockingExpr(pass, st, e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				sawDefault = true
			} else if !isSelect {
				walkLockStmt(pass, cs, c.Comm)
			}
			stmts = c.Body
		}
		terms = append(terms, walkLockStmts(pass, cs, stmts))
		outs = append(outs, cs)
	}
	if !sawDefault {
		// Without a default the zero-match path keeps the incoming state.
		outs = append(outs, st.clone())
		terms = append(terms, false)
	}
	mergeBranches(st, outs, terms)
}

// mergeBranches folds branch out-states into st: a lock stays held if ANY
// non-terminated branch still holds it (a single path that forgot the unlock
// is a leak), and it counts as deferred-covered only if every branch that
// holds it recorded the deferral. Returns true when every branch terminated.
func mergeBranches(st lockState, outs []lockState, terms []bool) bool {
	live := outs[:0]
	for i, out := range outs {
		if !terms[i] {
			live = append(live, out)
		}
	}
	if len(live) == 0 {
		return true
	}
	for key := range st {
		delete(st, key)
	}
	for _, out := range live {
		for key, h := range out {
			if prev, ok := st[key]; ok {
				prev.deferred = prev.deferred && h.deferred
				st[key] = prev
			} else {
				st[key] = h
			}
		}
	}
	return false
}

// applyLockCalls applies Lock/Unlock effects of an expression to the state.
// In deferred position an unlock marks its lock covered instead of releasing
// it immediately; a deferred function literal is scanned for unlock calls so
// `defer func() { mu.Unlock() }()` counts too.
func applyLockCalls(pass *Pass, st lockState, e ast.Expr, deferred bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if deferred {
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if inner, ok := n.(*ast.CallExpr); ok {
					applyLockCalls(pass, st, inner, true)
				}
				return true
			})
			return
		}
	}
	acquire, release, key, name := mutexCall(pass, call)
	switch {
	case acquire && !deferred:
		st[key] = heldLock{name: name}
	case release && deferred:
		if h, ok := st[key]; ok {
			h.deferred = true
			st[key] = h
		}
	case release:
		delete(st, key)
	}
}

// checkBlockingExpr reports blocking operations nested inside an expression
// or simple statement evaluated while locks are held. Function literals are
// opaque: their bodies execute elsewhere.
func checkBlockingExpr(pass *Pass, st lockState, node ast.Node) {
	if node == nil || len(st) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocking(pass, st, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if what := blockingCallName(pass, n); what != "" {
				reportBlocking(pass, st, n.Pos(), what)
			}
		}
		return true
	})
}

// httpClientMethods are the (*net/http.Client) round-trip entry points.
var httpClientMethods = map[string]bool{
	"(*net/http.Client).Do":       true,
	"(*net/http.Client).Get":      true,
	"(*net/http.Client).Head":     true,
	"(*net/http.Client).Post":     true,
	"(*net/http.Client).PostForm": true,
}

// blockingCallName classifies a call as a known blocking operation.
func blockingCallName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if selection := pass.Pkg.Info.Selections[sel]; selection != nil {
		if fn, ok := selection.Obj().(*types.Func); ok && httpClientMethods[fn.FullName()] {
			return "http.Client round trip"
		}
		return ""
	}
	// Package-qualified call: time.Sleep.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok &&
			pn.Imported().Path() == "time" && sel.Sel.Name == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}

// reportBlocking emits one diagnostic naming every lock held across the
// blocking operation.
func reportBlocking(pass *Pass, st lockState, pos token.Pos, what string) {
	if len(st) == 0 {
		return
	}
	pass.Reportf(pos, "%s while holding %s; a peer that never answers holds the lock (and every contender) indefinitely", what, heldNames(st))
}

// reportHeld emits one diagnostic per lock held without deferred coverage at
// a control-flow exit.
func reportHeld(pass *Pass, st lockState, pos token.Pos, where string) {
	var names []string
	for _, h := range st {
		if !h.deferred {
			names = append(names, h.name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pass.Reportf(pos, "%s locked but not released on this %s path; unlock before returning or defer the unlock", name, where)
	}
}

// heldNames renders the held-lock display names, sorted for determinism.
func heldNames(st lockState) string {
	names := make([]string, 0, len(st))
	for _, h := range st {
		names = append(names, h.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}
