package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// HTTPHarden returns the analyzer that keeps the HTTP edge uniform:
//
//   - every http.Server must be built through the sanctioned constructor
//     (serve.HardenedServer, which pins read/write/idle timeouts and the
//     header cap) — a raw &http.Server{...} literal silently ships with no
//     timeouts at all, and one slowloris client can pin every dispatcher
//     connection;
//   - every http.Client composite literal must set a non-zero Timeout —
//     the zero value waits forever, and the serve/dispatch tier's liveness
//     arguments (lease expiry, failover) all assume bounded round trips.
//
// sanctioned maps function keys ("pkgpath.Func", like the nopanic allowlist)
// to true for the constructors allowed to build raw http.Server values.
func HTTPHarden(sanctioned map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: "httpharden",
		Doc:  "requires http.Server construction via the hardened constructor and non-zero http.Client timeouts",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				exempt := false
				if fn, ok := decl.(*ast.FuncDecl); ok {
					exempt = sanctioned[funcKey(pass.Pkg, fn)]
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					switch {
					case !exempt && isNetHTTPType(pass, cl, "Server"):
						pass.Reportf(cl.Pos(), "raw http.Server literal has no timeouts; build it with serve.HardenedServer so slow clients cannot pin connections")
					case isNetHTTPType(pass, cl, "Client"):
						checkClientTimeout(pass, cl)
					}
					return true
				})
			}
		}
	}
	return a
}

// isNetHTTPType reports whether a composite literal's type is the named
// net/http type.
func isNetHTTPType(pass *Pass, cl *ast.CompositeLit, name string) bool {
	tv, ok := pass.Pkg.Info.Types[cl]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkClientTimeout flags an http.Client literal whose Timeout is absent or
// provably zero.
func checkClientTimeout(pass *Pass, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional http.Client literals don't appear in practice; a
			// keyless literal gets the missing-Timeout report below.
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Timeout" {
			continue
		}
		if tv, ok := pass.Pkg.Info.Types[kv.Value]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
				pass.Reportf(kv.Value.Pos(), "http.Client Timeout is zero, which means no timeout at all; a hung peer then hangs the caller — set a bounded timeout")
			}
		}
		return
	}
	pass.Reportf(cl.Pos(), "http.Client literal without a Timeout waits forever on a hung peer; set a bounded Timeout")
}
