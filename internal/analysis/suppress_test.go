package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadTempModule writes a one-package module with the given file contents
// and loads it.
func loadTempModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fix/tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		in               string
		analyzer, reason string
		found, malformed bool
	}{
		{"//lint:ignore determinism keys are sorted", "determinism", "keys are sorted", true, false},
		{"// not a directive", "", "", false, false},
		{"//lint:ignore", "", "", true, true},
		{"//lint:ignore determinism", "", "", true, true},
		{"//lint:ignore all multi word reason here", "all", "multi word reason here", true, false},
		{"/*lint:ignore errcheck block comment form*/", "errcheck", "block comment form", true, false},
		{"//   lint:ignore determinism padded", "determinism", "padded", true, false}, // padding after the comment marker is tolerated
	}
	for _, c := range cases {
		analyzer, reason, found, malformed := ParseIgnoreDirective(c.in)
		if analyzer != c.analyzer || reason != c.reason || found != c.found || malformed != c.malformed {
			t.Errorf("ParseIgnoreDirective(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				c.in, analyzer, reason, found, malformed, c.analyzer, c.reason, c.found, c.malformed)
		}
	}
}

// TestSuppressDirectiveOnLastLine pins that a trailing directive on the very
// last line of a file (no newline after it) still suppresses.
func TestSuppressDirectiveOnLastLine(t *testing.T) {
	mod := loadTempModule(t, map[string]string{
		"a.go": "package tmp\n\nimport \"time\"\n\nfunc Last() int64 {\n\treturn time.Now().UnixNano() //lint:ignore determinism test: directive on the final line\n}",
	})
	diags := Run(mod.Pkgs, []*Analyzer{Determinism()})
	if len(diags) != 0 {
		t.Fatalf("want clean, got %v", diags)
	}
}

// TestSuppressMultipleDirectivesOneLine pins that two block-comment
// directives on one line each suppress their own analyzer's finding there.
func TestSuppressMultipleDirectivesOneLine(t *testing.T) {
	mod := loadTempModule(t, map[string]string{
		"a.go": `package tmp

import (
	"os"
	"time"
)

func Both(f *os.File) int64 {
	/*lint:ignore determinism test: wall clock*/ /*lint:ignore errcheck test: close on exit*/
	t := time.Now().UnixNano(); f.Close()
	return t
}
`,
	})
	diags := Run(mod.Pkgs, []*Analyzer{Determinism(), ErrCheck()})
	if len(diags) != 0 {
		t.Fatalf("want both findings suppressed by the two directives, got %v", diags)
	}
}

// TestSuppressWrongAnalyzerName pins that a typo'd analyzer name suppresses
// nothing — the real finding survives, and the directive is reported as
// stale when its named analyzer also ran.
func TestSuppressWrongAnalyzerName(t *testing.T) {
	mod := loadTempModule(t, map[string]string{
		"a.go": "package tmp\n\nimport \"time\"\n\nfunc Typo() int64 {\n\t//lint:ignore determinsm test: misspelled analyzer\n\treturn time.Now().UnixNano()\n}\n",
	})
	diags := Run(mod.Pkgs, []*Analyzer{Determinism()})
	if len(diags) != 1 || diags[0].Analyzer != "determinism" {
		t.Fatalf("want the determinism finding to survive a misspelled directive, got %v", diags)
	}
	// The misspelled name matches no analyzer that ran, so the directive is
	// not reported stale (a subset run proves nothing about it) — but the
	// finding above is the signal that the suppression failed.
}

// TestSuppressStaleDirective pins the unused-ignore report: the named
// analyzer ran and suppressed nothing.
func TestSuppressStaleDirective(t *testing.T) {
	mod := loadTempModule(t, map[string]string{
		"a.go": "package tmp\n\nfunc Fine() int {\n\t//lint:ignore determinism test: nothing to suppress\n\treturn 1\n}\n",
	})
	diags := Run(mod.Pkgs, []*Analyzer{Determinism()})
	if len(diags) != 1 || diags[0].Analyzer != "lint" || !strings.Contains(diags[0].Message, "unused ignore") {
		t.Fatalf("want one unused-ignore diagnostic, got %v", diags)
	}
}

// TestSuppressStaleDirectiveNotReportedOnSubsetRun pins the converse: when
// the directive's analyzer did not run, the directive is left alone.
func TestSuppressStaleDirectiveNotReportedOnSubsetRun(t *testing.T) {
	mod := loadTempModule(t, map[string]string{
		"a.go": "package tmp\n\nfunc Fine() int {\n\t//lint:ignore determinism test: nothing to suppress\n\treturn 1\n}\n",
	})
	diags := Run(mod.Pkgs, []*Analyzer{ErrCheck()})
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics when the directive's analyzer did not run, got %v", diags)
	}
}

// TestSuppressedFindingsKeepMetadata pins the Analyze audit trail: the
// suppressed diagnostic survives in Result.Diags with the justification.
func TestSuppressedFindingsKeepMetadata(t *testing.T) {
	mod := loadTempModule(t, map[string]string{
		"a.go": "package tmp\n\nimport \"time\"\n\nfunc Now() int64 {\n\t//lint:ignore determinism test: audit trail\n\treturn time.Now().UnixNano()\n}\n",
	})
	result := Analyze(mod.Pkgs, []*Analyzer{Determinism()})
	if len(result.Findings()) != 0 {
		t.Fatalf("want no surviving findings, got %v", result.Findings())
	}
	if len(result.Diags) != 1 {
		t.Fatalf("want the suppressed diagnostic in Diags, got %v", result.Diags)
	}
	d := result.Diags[0]
	if !d.Suppressed || d.SuppressReason != "test: audit trail" {
		t.Fatalf("suppression metadata not carried: %+v", d)
	}
}
