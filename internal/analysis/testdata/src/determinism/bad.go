// Package determinism is a known-bad fixture for the determinism analyzer.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Clock reads the wall clock: flagged.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Elapsed uses time.Since: flagged.
func Elapsed(t time.Time) time.Duration {
	return time.Since(t)
}

// GlobalRand draws from the unseeded global source: flagged.
func GlobalRand() int {
	return rand.Intn(10)
}

// SeededRand uses an explicitly seeded generator: fine.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// LeakOrder appends map keys without sorting: flagged.
func LeakOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// CollectThenSort appends map keys and sorts them after: fine.
func CollectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PrintOrder writes output while ranging a map: flagged.
func PrintOrder(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v)
	}
}

// Accumulate only sums values: fine (addition commutes).
func Accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
