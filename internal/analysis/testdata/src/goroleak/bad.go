// Package goroleak is the known-bad fixture for the goroleak analyzer:
// fire-and-forget goroutines, launches inside unbounded loops, and launches
// whose bodies cannot be verified.
package goroleak

import (
	"fmt"
	"net/http"
	"sync"
)

// LeakFireAndForget launches a goroutine nothing can stop or observe.
func LeakFireAndForget(n int) {
	go func() { // want: no shutdown evidence
		total := 0
		for i := 0; i < n; i++ {
			total += i
		}
		fmt.Println(total)
	}()
}

// LeakInUnboundedLoop stacks a goroutine per iteration of a for{} loop. The
// launch itself is supervised (channel send), so only the loop finding
// fires.
func LeakInUnboundedLoop(out chan int) {
	i := 0
	for {
		go func(v int) { // want: launched inside an unbounded loop
			out <- v
		}(i)
		i++
	}
}

// leakHelper is a named function with no shutdown evidence.
func leakHelper() {
	fmt.Println("working")
}

// LeakNamed launches the unsupervised named helper.
func LeakNamed() {
	go leakHelper() // want: no shutdown evidence in resolved body
}

// LeakForeign launches a body defined outside this package: unverifiable.
func LeakForeign() {
	go fmt.Println("bye") // want: body outside this package
}

// CleanWaitGroup is supervised by the launcher's Wait.
func CleanWaitGroup(items []int) int {
	var wg sync.WaitGroup
	results := make([]int, len(items))
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			results[i] = it * it
		}(i, it)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += r
	}
	return total
}

// CleanDoneChannel signals completion by closing a channel.
func CleanDoneChannel() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fmt.Println("tick")
	}()
	return done
}

// drain is a named channel-loop worker: it exits when its channel closes.
func drain(ch chan int) {
	for v := range ch {
		fmt.Println(v)
	}
}

// CleanNamedRange launches the channel-coupled named worker.
func CleanNamedRange(ch chan int) {
	go drain(ch)
}

// CleanServe launches an http.Server loop whose lifecycle Server.Close owns.
func CleanServe(srv *http.Server) {
	go srv.ListenAndServe()
}

// CleanSelectLoop is a supervised worker: the select observes a done channel.
func CleanSelectLoop(work chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case v := <-work:
				fmt.Println(v)
			case <-done:
				return
			}
		}
	}()
}
