module fix/goroleak

go 1.22
