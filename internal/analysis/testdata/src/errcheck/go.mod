module fix/errcheck

go 1.22
