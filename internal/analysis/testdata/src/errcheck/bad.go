// Package errcheck is a known-bad fixture for the errcheck analyzer.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// DropStatement discards an error as a bare statement: flagged.
func DropStatement() {
	fallible()
}

// DropDefer discards an error in a defer: flagged.
func DropDefer() {
	defer fallible()
}

// DropBlankBare discards with `_ =` and no annotation: flagged.
func DropBlankBare() {
	_ = fallible()
}

// DropBlankAnnotated discards with `_ =` and a same-line comment: fine.
func DropBlankAnnotated() {
	_ = fallible() // best-effort: the fixture says so
}

// DropSecond discards only the error half of a pair, unannotated: flagged.
func DropSecond() int {
	n, _ := pair()
	return n
}

// Handled checks the error: fine.
func Handled() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

// StdoutOutput uses best-effort CLI writers: fine.
func StdoutOutput(sb *strings.Builder) {
	fmt.Println("hello")
	fmt.Fprintln(os.Stderr, "world")
	fmt.Fprintf(sb, "n=%d", 1)
	sb.WriteString("tail")
}
