// Package a is a leaf in the fixture's layering table; importing b is a
// violation.
package a

import (
	"fix/layering/b"
)

// UseB drags in a forbidden dependency.
func UseB() int { return b.Value() }
