// Package c is missing from the fixture's layering table: flagged.
package c

// Value is a trivial export.
func Value() int { return 7 }
