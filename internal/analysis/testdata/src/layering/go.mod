module fix/layering

go 1.22
