// Package b is a declared leaf with no module-internal imports: fine.
package b

// Value is a trivial export.
func Value() int { return 42 }
