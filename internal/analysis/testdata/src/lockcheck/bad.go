// Package lockcheck is the known-bad fixture for the lockcheck analyzer:
// locks leaked on return paths and locks held across blocking operations.
package lockcheck

import (
	"net/http"
	"sync"
	"time"
)

type table struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	vals map[string]int
}

// LeakOnReturn forgets the unlock on the early-return path.
func (t *table) LeakOnReturn(k string) int {
	t.mu.Lock()
	if v, ok := t.vals[k]; ok {
		return v // want: held at return
	}
	t.mu.Unlock()
	return 0
}

// LeakAtEnd never unlocks at all.
func (t *table) LeakAtEnd(k string, v int) {
	t.mu.Lock()
	t.vals[k] = v
} // want: held at function exit

// SendWhileHolding blocks on a channel send with the mutex held.
func (t *table) SendWhileHolding(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ch <- v // want: channel send while holding
}

// RecvWhileHolding blocks on a channel receive with the mutex held.
func (t *table) RecvWhileHolding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch // want: channel receive while holding
}

// SleepWhileHolding parks the lock for the whole sleep.
func (t *table) SleepWhileHolding() {
	t.rw.Lock()
	time.Sleep(time.Second) // want: time.Sleep while holding
	t.rw.Unlock()
}

// HTTPWhileHolding performs a network round trip under the lock.
func (t *table) HTTPWhileHolding(c *http.Client) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := c.Get("http://example.invalid/") // want: http.Client round trip while holding
	return err
}

// SelectWhileHolding blocks in a select with no default under the lock.
func (t *table) SelectWhileHolding(done chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want: select without a default clause while holding
	case v := <-t.ch:
		t.vals["last"] = v
	case <-done:
	}
}

// BranchLeak unlocks in one branch only.
func (t *table) BranchLeak(cond bool) {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
	}
} // want: held at function exit (merge keeps the held lock)

// CleanDeferred is the canonical correct form.
func (t *table) CleanDeferred(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vals[k]
}

// CleanStraightLine releases on every path explicitly.
func (t *table) CleanStraightLine(k string) int {
	t.mu.Lock()
	if v, ok := t.vals[k]; ok {
		t.mu.Unlock()
		return v
	}
	t.mu.Unlock()
	return 0
}

// CleanSelectDefault polls without blocking: a select with a default clause
// cannot park the goroutine, so holding the lock is fine.
func (t *table) CleanSelectDefault() {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-t.ch:
		t.vals["last"] = v
	default:
	}
}

// CleanBarrier is the Lock-then-Unlock memory barrier idiom.
func (t *table) CleanBarrier() {
	t.mu.Lock()
	t.mu.Unlock()
	t.ch <- 1
}

// CleanRWRead covers RLock/RUnlock pairing.
func (t *table) CleanRWRead(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.vals[k]
}
