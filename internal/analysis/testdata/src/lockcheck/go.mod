module fix/lockcheck

go 1.22
