// Package atomicwrite is the known-bad fixture for the atomicwrite
// analyzer: in-place writes to state/checkpoint paths.
package atomicwrite

import (
	"os"
	"path/filepath"
)

// SaveState's own name carries the vocabulary: every raw write inside is a
// finding.
func SaveState(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "out.json"), data, 0o644) // want: in-place state write
}

// Persist is vocabulary-free by name, but the path argument mentions a
// checkpoint field.
type store struct {
	checkpointPath string
}

func (s *store) Persist(data []byte) error {
	return os.WriteFile(s.checkpointPath, data, 0o644) // want: path mentions checkpoint
}

// CreateSnapshot covers the os.Create form.
func CreateSnapshot(dir string) (*os.File, error) {
	return os.Create(filepath.Join(dir, "snapshot.bin")) // want: os.Create on snapshot path
}

func statePathFor(dir string, shard int) string {
	return filepath.Join(dir, "shard.json")
}

// Flow taints a local through two assignments before the write.
func Flow(dir string, shard int, data []byte) error {
	p := statePathFor(dir, shard)
	tmp := p + ".new"
	return os.WriteFile(tmp, data, 0o644) // want: tainted via statePathFor
}

// WriteStats has no state vocabulary anywhere: clean.
func WriteStats(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "stats.csv"), data, 0o644)
}

// writeFileAtomic is the sanctioned helper (exempted by configuration).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Atomic routes a state write through the sanctioned helper: clean.
func Atomic(dir string, data []byte) error {
	return writeFileAtomic(filepath.Join(dir, "state.json"), data)
}
