// Package atomicwrite is the known-bad fixture for the atomicwrite
// analyzer: in-place writes to state/checkpoint paths.
package atomicwrite

import (
	"os"
	"path/filepath"
)

// SaveState's own name carries the vocabulary: every raw write inside is a
// finding.
func SaveState(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "out.json"), data, 0o644) // want: in-place state write
}

// Persist is vocabulary-free by name, but the path argument mentions a
// checkpoint field.
type store struct {
	checkpointPath string
}

func (s *store) Persist(data []byte) error {
	return os.WriteFile(s.checkpointPath, data, 0o644) // want: path mentions checkpoint
}

// CreateSnapshot covers the os.Create form.
func CreateSnapshot(dir string) (*os.File, error) {
	return os.Create(filepath.Join(dir, "snapshot.bin")) // want: os.Create on snapshot path
}

func statePathFor(dir string, shard int) string {
	return filepath.Join(dir, "shard.json")
}

// Flow taints a local through two assignments before the write.
func Flow(dir string, shard int, data []byte) error {
	p := statePathFor(dir, shard)
	tmp := p + ".new"
	return os.WriteFile(tmp, data, 0o644) // want: tainted via statePathFor
}

// chunkPath mirrors the checkpoint store's content-addressed layout.
func chunkPath(dir string, id uint64) string {
	return filepath.Join(dir, "0000000000000000.bin")
}

// CommitChunk is the chunk-writer shape: the path flows from chunkPath, so a
// raw in-place write is a finding (a torn chunk poisons every manifest that
// references it).
func CommitChunk(dir string, id uint64, enc []byte) error {
	p := chunkPath(dir, id)
	return os.WriteFile(p, enc, 0o644) // want: tainted via chunkPath
}

// PublishManifest covers the manifest vocabulary through a selected field.
type shardStore struct {
	manifestPath string
}

func (s *shardStore) Publish(data []byte) error {
	return os.WriteFile(s.manifestPath, data, 0o644) // want: path mentions manifest
}

// CommitChunkAtomic routes the same chunk write through the sanctioned
// helper: clean.
func CommitChunkAtomic(dir string, id uint64, enc []byte) error {
	return writeFileAtomic(chunkPath(dir, id), enc)
}

// WriteStats has no state vocabulary anywhere: clean.
func WriteStats(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "stats.csv"), data, 0o644)
}

// writeFileAtomic is the sanctioned helper (exempted by configuration).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Atomic routes a state write through the sanctioned helper: clean.
func Atomic(dir string, data []byte) error {
	return writeFileAtomic(filepath.Join(dir, "state.json"), data)
}
