module fix/atomicwrite

go 1.22
