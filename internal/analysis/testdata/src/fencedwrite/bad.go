// Package fencedwrite is the known-bad fixture for the fencedwrite
// analyzer: lease-table mutations driven by epoch-bearing requests that
// never consult the epoch fence.
package fencedwrite

// lease is the fixture's protected state (analyzer stateType = "lease").
type lease struct {
	worker     string
	epoch      int64
	round      int64
	checkpoint []byte
}

// Push is an epoch-bearing wire request (direct Epoch field).
type Push struct {
	Worker string
	Shard  int
	Epoch  int64
	Data   []byte
}

// Held nests the epoch one struct down.
type Held struct {
	Shard int
	Epoch int64
}

// Beat carries epochs behind a slice of Held (nested discovery).
type Beat struct {
	Worker string
	Held   []Held
}

type table struct {
	leases []lease
}

// StoreUnfenced writes the checkpoint a zombie could still be pushing:
// no epoch comparison anywhere in the body.
func (t *table) StoreUnfenced(req *Push) {
	l := &t.leases[req.Shard]
	l.checkpoint = req.Data // want: unfenced lease mutation
	l.worker = req.Worker
}

// StoreFenced consults the fence before writing: clean.
func (t *table) StoreFenced(req *Push) bool {
	l := &t.leases[req.Shard]
	if l.worker != req.Worker || l.epoch != req.Epoch {
		return false
	}
	l.checkpoint = req.Data
	return true
}

// RenewNested mutates via ++ under a nested epoch-bearing request, without
// a fence.
func (t *table) RenewNested(req *Beat) {
	for _, h := range req.Held {
		t.leases[h.Shard].round++ // want: unfenced lease mutation (IncDecStmt)
	}
}

// RenewFenced is the same loop with the fence consulted: clean.
func (t *table) RenewFenced(req *Beat) {
	for _, h := range req.Held {
		l := &t.leases[h.Shard]
		if l.epoch == h.Epoch {
			l.round++
		}
	}
}

// Sweep has no epoch-bearing parameter: the dispatcher's own bookkeeping
// (it sets the fence) is exempt by construction.
func (t *table) Sweep(now int64) {
	for i := range t.leases {
		t.leases[i].epoch++
		t.leases[i].worker = ""
	}
}

// Stats reads but never mutates under an epoch-bearing request: clean.
func (t *table) Stats(req *Push) int64 {
	return t.leases[req.Shard].round
}
