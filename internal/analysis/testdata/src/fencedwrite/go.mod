module fix/fencedwrite

go 1.22
