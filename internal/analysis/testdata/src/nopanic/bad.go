// Package nopanic is a known-bad fixture for the nopanic analyzer.
package nopanic

import "errors"

// Explode panics in a plain library function: flagged.
func Explode(v int) int {
	if v < 0 {
		panic("negative")
	}
	return v
}

// MustParse is a Must* wrapper: fine by convention.
func MustParse(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}

// NewGuarded is covered by the test's allowlist: fine.
func NewGuarded(n int) int {
	if n <= 0 {
		panic("non-positive")
	}
	return n
}

// Safe returns an error like library code should: fine.
func Safe(v int) (int, error) {
	if v < 0 {
		return 0, errors.New("negative")
	}
	return v, nil
}

// deepPanic hides the panic inside a closure: still flagged.
func deepPanic() func() {
	return func() {
		panic("from closure")
	}
}
