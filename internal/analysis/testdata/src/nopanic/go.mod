module fix/nopanic

go 1.22
