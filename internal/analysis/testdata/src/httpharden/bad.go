// Package httpharden is the known-bad fixture for the httpharden analyzer:
// raw http.Server literals and un-timed http.Clients.
package httpharden

import (
	"net/http"
	"time"
)

// RawServer builds an http.Server with no timeouts outside the sanctioned
// constructor.
func RawServer(h http.Handler) *http.Server {
	return &http.Server{Handler: h} // want: raw server literal
}

// hardened is the fixture's sanctioned constructor (exempted by
// configuration): the one place a raw literal is allowed.
func hardened(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Build routes construction through the sanctioned helper: clean.
func Build(h http.Handler) *http.Server {
	return hardened(h)
}

// NoTimeout omits the Timeout field entirely.
func NoTimeout() *http.Client {
	return &http.Client{} // want: client without Timeout
}

// ZeroTimeout sets it to the provably zero value, which still means "wait
// forever".
func ZeroTimeout() *http.Client {
	return &http.Client{Timeout: 0} // want: zero Timeout
}

// Bounded sets a real timeout: clean.
func Bounded() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

// pkgClient is a package-level literal: declarations outside any function
// are never exempt.
var pkgClient = &http.Client{Transport: http.DefaultTransport} // want: client without Timeout
