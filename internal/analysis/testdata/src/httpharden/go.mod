module fix/httpharden

go 1.22
