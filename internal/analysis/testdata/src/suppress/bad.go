// Package suppress exercises //lint:ignore handling.
package suppress

import "time"

// LeadingIgnore is suppressed by a comment on the line above.
func LeadingIgnore() int64 {
	//lint:ignore determinism fixture: testing leading suppression
	return time.Now().UnixNano()
}

// TrailingIgnore is suppressed by a comment on the same line.
func TrailingIgnore() int64 {
	return time.Now().UnixNano() //lint:ignore determinism fixture: testing trailing suppression
}

// WrongAnalyzer names a different analyzer, so the finding survives.
func WrongAnalyzer() int64 {
	//lint:ignore errcheck fixture: wrong analyzer name
	return time.Now().UnixNano()
}

// AllIgnore suppresses every analyzer on the next line.
func AllIgnore() int64 {
	//lint:ignore all fixture: testing the all wildcard
	return time.Now().UnixNano()
}

// Malformed has no reason, which is itself a diagnostic, and the finding
// survives.
func Malformed() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}

// Unsuppressed has no ignore at all.
func Unsuppressed() int64 {
	return time.Now().UnixNano()
}

// Stale carries a determinism ignore on a line with nothing to suppress;
// since determinism runs here, the directive itself becomes a finding.
func Stale() int {
	//lint:ignore determinism fixture: nothing here needs suppressing
	return 42
}
