module fix/suppress

go 1.22
