module fix/floatcmp

go 1.22
