// Package floatcmp is a known-bad fixture for the floatcmp analyzer.
package floatcmp

// EqualFloats compares floats exactly: flagged.
func EqualFloats(a, b float64) bool {
	return a == b
}

// NotEqualFloat32 compares float32 exactly: flagged.
func NotEqualFloat32(a float32) bool {
	return a != 0.5
}

// MixedCompare has one float operand: flagged.
func MixedCompare(a float64) bool {
	return a == 1
}

// IntCompare is exact integer equality: fine.
func IntCompare(a, b int64) bool {
	return a == b
}

// Ordered float comparisons are fine: only ==/!= are rounding traps.
func Ordered(a, b float64) bool {
	return a < b
}
