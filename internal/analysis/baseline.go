package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineSchema versions the on-disk baseline format.
const BaselineSchema = "rrlint-baseline/v1"

// BaselineEntry is one accepted finding class in a committed baseline:
// Count findings of one analyzer in one file with one message. Line numbers
// are deliberately excluded so unrelated edits above a baselined finding do
// not churn the file; a message is specific enough to identify the finding
// class, and Count still ratchets.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is a committed snapshot of accepted rrlint findings. The contract
// is a ratchet, as with the coverage floors: findings not in the baseline
// fail the run, and baseline entries no longer observed ("stale") also fail
// the run until the baseline is regenerated — the debt ledger may only
// shrink, and must shrink explicitly.
type Baseline struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// baselineKey identifies a finding class.
type baselineKey struct {
	Analyzer, File, Message string
}

// NewBaseline builds a baseline from the surviving findings of a run.
func NewBaseline(findings []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range findings {
		counts[baselineKey{d.Analyzer, d.File, d.Message}]++
	}
	b := &Baseline{Schema: BaselineSchema, Entries: []BaselineEntry{}}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{Analyzer: k.Analyzer, File: k.File, Message: k.Message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// ReadBaseline loads and validates a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("baseline %s has schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline %s entry %d is incomplete", path, i)
		}
	}
	return &b, nil
}

// WriteBaseline writes the baseline as stable, indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff splits a run's findings against the baseline. fresh holds findings
// not covered by the baseline (each entry absorbs up to Count findings of
// its class, in source order); baselined is index-aligned with findings and
// marks the absorbed ones; stale lists entries whose class was observed
// fewer times than Count — evidence the debt shrank and the baseline must be
// regenerated to match.
func (b *Baseline) Diff(findings []Diagnostic) (fresh []Diagnostic, baselined []bool, stale []BaselineEntry) {
	budget := map[baselineKey]int{}
	for _, e := range b.Entries {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	baselined = make([]bool, len(findings))
	for i, d := range findings {
		k := baselineKey{d.Analyzer, d.File, d.Message}
		if budget[k] > 0 {
			budget[k]--
			baselined[i] = true
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, e := range b.Entries {
		if left := budget[baselineKey{e.Analyzer, e.File, e.Message}]; left > 0 {
			se := e
			se.Count = left
			stale = append(stale, se)
		}
	}
	return fresh, baselined, stale
}
