package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp returns the analyzer that bans exact floating-point equality in
// the given packages (by import path). The statistics and experiment layers
// compare measured ratios and quantiles; an exact `==`/`!=` there is almost
// always a rounding-sensitive bug — compare with a tolerance, or restructure
// to integer arithmetic. Comparisons that are genuinely exact (sentinel
// values, checking for a prior exact assignment) carry a
// //lint:ignore floatcmp comment with the justification.
func FloatCmp(pkgPaths ...string) *Analyzer {
	paths := map[string]bool{}
	for _, p := range pkgPaths {
		paths[p] = true
	}
	a := &Analyzer{
		Name: "floatcmp",
		Doc:  "flags ==/!= between floating-point operands in the statistics and experiment layers",
	}
	a.Run = func(pass *Pass) {
		if !paths[pass.Pkg.Path] {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass, be.X) || isFloat(pass, be.Y) {
					pass.Reportf(be.Pos(), "floating-point %s comparison; compare with a tolerance or justify with //lint:ignore floatcmp", be.Op)
				}
				return true
			})
		}
	}
	return a
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
