package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the expected-diagnostics files from the current
// analyzer output: go test ./internal/analysis -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata expected.txt files")

// fixtureAnalyzers configures the analyzers under test for each fixture
// module: repo-independent fixtures need fixture-local package paths and
// allowlists.
func fixtureAnalyzers(name string) []*Analyzer {
	switch name {
	case "determinism", "suppress":
		return []*Analyzer{Determinism()}
	case "nopanic":
		return []*Analyzer{NoPanic(map[string]string{
			"fix/nopanic.NewGuarded": "fixture: constructor invariant guard recorded in the allowlist",
		})}
	case "errcheck":
		return []*Analyzer{ErrCheck()}
	case "floatcmp":
		return []*Analyzer{FloatCmp("fix/floatcmp")}
	case "layering":
		return []*Analyzer{Layering(map[string][]string{
			"fix/layering/a": {},
			"fix/layering/b": {},
			// fix/layering/c deliberately missing: undeclared packages are
			// findings.
		})}
	case "lockcheck":
		return []*Analyzer{LockCheck()}
	case "goroleak":
		return []*Analyzer{GoroLeak()}
	case "atomicwrite":
		return []*Analyzer{AtomicWrite(map[string]bool{
			"fix/atomicwrite.writeFileAtomic": true,
		})}
	case "fencedwrite":
		return []*Analyzer{FencedWrite("fix/fencedwrite", "lease", "epoch")}
	case "httpharden":
		return []*Analyzer{HTTPHarden(map[string]bool{
			"fix/httpharden.hardened": true,
		})}
	default:
		return nil
	}
}

// TestGolden runs each analyzer over its known-bad fixture module and
// compares the diagnostics against the fixture's expected.txt.
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			analyzers := fixtureAnalyzers(name)
			if analyzers == nil {
				t.Fatalf("no analyzer configuration for fixture %q", name)
			}
			dir := filepath.Join("testdata", "src", name)
			mod, err := LoadModule(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(mod.Pkgs, analyzers)
			var b strings.Builder
			for _, d := range diags {
				rel, err := filepath.Rel(mod.Root, d.File)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), d.Line, d.Col, d.Analyzer, d.Message)
			}
			got := b.String()
			expPath := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(expPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("missing expected-diagnostics file (run with -update to create): %v", err)
			}
			if got != string(wantBytes) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, wantBytes)
			}
		})
	}
}

// TestFixturesExitNonZero pins the acceptance criterion that every testdata
// fixture yields at least one finding with a position inside the fixture.
func TestFixturesExitNonZero(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		dir := filepath.Join("testdata", "src", name)
		mod, err := LoadModule(dir)
		if err != nil {
			t.Fatal(err)
		}
		diags := Run(mod.Pkgs, fixtureAnalyzers(name))
		if len(diags) == 0 {
			t.Errorf("fixture %s: want at least one diagnostic, got none", name)
			continue
		}
		for _, d := range diags {
			if d.Line <= 0 || d.File == "" {
				t.Errorf("fixture %s: diagnostic without a position: %+v", name, d)
			}
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(d.File, abs+string(filepath.Separator)) {
				t.Errorf("fixture %s: diagnostic outside the fixture: %s", name, d.File)
			}
		}
	}
}

// TestSelfHost is the self-hosting gate: the engine, run with the
// repository's own configuration, must be clean on the repository.
func TestSelfHost(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod.Pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("rrlint is not clean on its own repository: %d finding(s)", len(diags))
	}
	if len(mod.Pkgs) < 25 {
		t.Fatalf("loaded only %d packages; the module walker is missing directories", len(mod.Pkgs))
	}
}

// TestNoPanicAllowlistJustified keeps the allowlist honest: every entry
// names a module-internal function and carries a non-empty justification.
func TestNoPanicAllowlistJustified(t *testing.T) {
	for key, why := range DefaultNoPanicAllowlist() {
		if strings.TrimSpace(why) == "" {
			t.Errorf("allowlist entry %s has no justification", key)
		}
		if !strings.HasPrefix(key, "rrsched/internal/") {
			t.Errorf("allowlist entry %s does not name a module-internal function", key)
		}
	}
}

// TestNoPanicAllowlistLive cross-checks the allowlist against the tree:
// every allowlisted function must still contain a panic, so stale entries
// are flushed out when the panic is refactored away.
func TestNoPanicAllowlistLive(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run nopanic with an empty allowlist: the union of flagged function
	// keys is exactly the set of live panic sites.
	live := map[string]bool{}
	diags := Run(mod.Pkgs, []*Analyzer{NoPanic(nil)})
	for _, d := range diags {
		// Message format: "panic in library function <key>: ..."
		const pfx = "panic in library function "
		msg := strings.TrimPrefix(d.Message, pfx)
		if i := strings.Index(msg, ":"); i >= 0 && msg != d.Message {
			live[msg[:i]] = true
		}
	}
	for key := range DefaultNoPanicAllowlist() {
		if !live[key] {
			t.Errorf("allowlist entry %s matches no live panic site; delete the stale entry", key)
		}
	}
}

// TestByName covers the enable/disable selection logic.
func TestByName(t *testing.T) {
	sel, unknown := ByName(nil, nil)
	if len(unknown) != 0 || len(sel) != len(Analyzers()) {
		t.Fatalf("default selection: got %d analyzers, unknown=%v", len(sel), unknown)
	}
	sel, unknown = ByName([]string{"determinism", "nopanic"}, []string{"nopanic"})
	if len(unknown) != 0 || len(sel) != 1 || sel[0].Name != "determinism" {
		t.Fatalf("enable+disable: got %v unknown=%v", names(sel), unknown)
	}
	_, unknown = ByName([]string{"nope"}, []string{"alsono"})
	if len(unknown) != 2 {
		t.Fatalf("want 2 unknown names, got %v", unknown)
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestFindModuleRootErrors pins the failure mode outside any module.
func TestFindModuleRootErrors(t *testing.T) {
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatal("want an error when no go.mod exists above the directory")
	}
}
