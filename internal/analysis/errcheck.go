package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck returns the analyzer that bans silently discarded errors. PR 1
// turned library panics into error returns; an error return that callers
// drop on the floor undoes that work. It flags:
//
//   - a call used as a statement (or deferred, or its value assigned
//     entirely to blanks) whose results include an error;
//   - `_` in an error position of an assignment when the line carries no
//     comment — an annotated discard (`_ = w.Close() // best-effort`) is an
//     explicit, reviewable decision and passes.
//
// Conventionally infallible writers are excluded: fmt.Print* to stdout,
// fmt.Fprint* directly to os.Stdout or os.Stderr (best-effort CLI output),
// and writes to strings.Builder / bytes.Buffer (their Write methods are
// documented never to return an error), including via fmt.Fprint*.
func ErrCheck() *Analyzer {
	a := &Analyzer{
		Name: "errcheck",
		Doc:  "flags discarded error returns, including unannotated `_ =` discards",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			commented := commentLines(pass, f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDiscardedCall(pass, call)
					}
				case *ast.DeferStmt:
					checkDiscardedCall(pass, n.Call)
				case *ast.AssignStmt:
					checkBlankError(pass, n, commented)
				}
				return true
			})
		}
	}
	return a
}

// commentLines collects the lines of f that carry any comment; a same-line
// comment annotates (and thereby permits) a blank error discard.
func commentLines(pass *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			lines[pass.Fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// checkDiscardedCall flags a call whose error results vanish because the
// call is a bare statement or deferred.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	if !returnsError(pass, call) || infallible(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or annotate an explicit `_ =` discard", callName(pass, call))
}

// checkBlankError flags `_` in an error position of an assignment when the
// line has no comment explaining the discard.
func checkBlankError(pass *Pass, as *ast.AssignStmt, commented map[int]bool) {
	// Only the single-call form (x, _ := f() or _ = f()) has result
	// positions to match against the left-hand sides.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || infallible(pass, call) {
		return
	}
	results := resultTypes(pass, call)
	if len(results) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !isErrorType(results[i]) {
			continue
		}
		if commented[pass.Fset.Position(as.Pos()).Line] {
			continue
		}
		pass.Reportf(lhs.Pos(), "error result of %s discarded with `_` and no annotation; handle it or add a comment justifying the discard", callName(pass, call))
	}
}

// resultTypes returns the call's result types (nil for a conversion or a
// call with no recorded type).
func resultTypes(pass *Pass, call *ast.CallExpr) []types.Type {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

func returnsError(pass *Pass, call *ast.CallExpr) bool {
	for _, t := range resultTypes(pass, call) {
		if isErrorType(t) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// infallible reports whether the call is on the exclusion list of
// conventionally error-free writers.
func infallible(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt functions.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true // stdout: best-effort CLI output
			case "Fprint", "Fprintf", "Fprintln":
				// Infallible when the destination cannot fail.
				return len(call.Args) > 0 && isInfallibleWriter(pass, call.Args[0])
			}
			return false
		}
	}
	// Methods on infallible writers (strings.Builder, bytes.Buffer).
	return isInfallibleWriter(pass, sel.X)
}

// isInfallibleWriter reports whether the expression is a strings.Builder or
// bytes.Buffer (possibly behind a pointer), whose Write methods are
// documented to never return an error, or the os.Stdout / os.Stderr
// streams, where CLI output is best-effort by convention.
func isInfallibleWriter(pass *Pass, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
					return true
				}
			}
		}
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// callName renders the call target for diagnostics.
func callName(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
