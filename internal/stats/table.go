// Package stats provides the reporting substrate: aligned-text and CSV
// tables, numeric series (the paper-figure analogue), and summary helpers
// (competitive-ratio arithmetic over cost brackets).
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a caption, rendered as aligned
// text (for terminals) or CSV (for plotting).
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table with the given caption and headers.
func NewTable(caption string, headers ...string) *Table {
	return &Table{Caption: caption, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (3 decimals, trailing zeros kept for
// alignment; infinities rendered as "inf").
func FormatFloat(v float64) string {
	//lint:ignore floatcmp v != v is the canonical NaN test
	if v != v {
		return "nan"
	}
	if v > 1e300 {
		return "inf"
	}
	return fmt.Sprintf("%.3f", v)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		b.WriteString(t.Caption)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (caption as a comment line).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	if t.Caption != "" {
		b.WriteString("# ")
		b.WriteString(t.Caption)
		b.WriteByte('\n')
	}
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Ratio returns num/den as a float, with den == 0 mapping to +inf when num
// is positive and 1 when both are zero (two zero-cost schedules tie).
func Ratio(num, den int64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return 1e308
	}
	return float64(num) / float64(den)
}
