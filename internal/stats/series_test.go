package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSeries() *Series {
	s := NewSeries("ratio vs n", "n")
	for _, x := range []float64{4, 8, 16} {
		s.AddPoint(x)
	}
	for _, y := range []float64{2.2, 1.3, 0.4} {
		s.AddY("ratio", y)
	}
	for _, y := range []float64{1, 1, 1} {
		s.AddY("baseline", y)
	}
	return s
}

func TestSeriesTable(t *testing.T) {
	s := buildSeries()
	tb, err := s.Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Headers) != 3 || tb.Headers[0] != "n" || tb.Headers[1] != "ratio" {
		t.Errorf("headers = %v", tb.Headers)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestSeriesValidate(t *testing.T) {
	s := NewSeries("bad", "x")
	s.AddPoint(1)
	s.AddPoint(2)
	s.AddY("y", 5) // only one y for two x
	if s.Validate() == nil {
		t.Fatal("ragged series validated")
	}
	if _, err := s.Table(); err == nil {
		t.Fatal("ragged series tabled")
	}
	var b strings.Builder
	if err := s.Render(&b, 4); err == nil {
		t.Fatal("ragged series rendered")
	}
}

func TestSeriesRenderChart(t *testing.T) {
	s := buildSeries()
	var b strings.Builder
	if err := s.Render(&b, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ratio vs n") || !strings.Contains(out, "#") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "(max)") || !strings.Contains(out, "(min)") {
		t.Errorf("chart axis labels missing:\n%s", out)
	}
	// Both columns charted.
	if strings.Count(out, "(max)") != 2 {
		t.Errorf("want 2 charts:\n%s", out)
	}
}

func TestSeriesColumns(t *testing.T) {
	s := buildSeries()
	cols := s.Columns()
	if len(cols) != 2 || cols[0] != "ratio" || cols[1] != "baseline" {
		t.Errorf("columns = %v", cols)
	}
}

func TestAsciiChartShapes(t *testing.T) {
	out := asciiChart([]float64{1, 2, 3}, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// max label, 3 grid rows, min label
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Bottom grid row fully filled; top row only the last bar.
	if lines[3] != "###" {
		t.Errorf("bottom row = %q", lines[3])
	}
	if strings.Count(lines[1], "#") != 1 {
		t.Errorf("top row = %q", lines[1])
	}
	if asciiChart(nil, 3) != "(empty)\n" {
		t.Error("empty chart")
	}
	// Constant series does not divide by zero.
	if !strings.Contains(asciiChart([]float64{5, 5}, 3), "#") {
		t.Error("flat chart empty")
	}
}

func TestQuantiles(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	qs := Quantiles(vals, 0, 0.5, 1)
	if qs[0] != 1 || qs[2] != 4 {
		t.Errorf("quantiles = %v", qs)
	}
	if qs[1] < 2 || qs[1] > 3 {
		t.Errorf("median = %v", qs[1])
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty quantiles = %v", got)
	}
}

// TestQuantilesMonotoneProperty: quantiles are monotone in q and bounded by
// the extremes.
func TestQuantilesMonotoneProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		qs := Quantiles(vals, 0, 0.25, 0.5, 0.75, 1)
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
}
