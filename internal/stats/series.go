package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is the figure analogue of Table: a shared x-axis with one or more
// named y-columns, rendered as an aligned table plus an ASCII chart so the
// *shape* of a result (who wins, where crossovers fall) is visible in a
// terminal or a test log.
type Series struct {
	Caption string
	XLabel  string
	X       []float64
	columns []seriesColumn
}

type seriesColumn struct {
	name string
	y    []float64
}

// NewSeries returns an empty series with the given caption and x-axis label.
func NewSeries(caption, xlabel string) *Series {
	return &Series{Caption: caption, XLabel: xlabel}
}

// AddPoint appends an x value; subsequent AddY calls fill the columns.
func (s *Series) AddPoint(x float64) { s.X = append(s.X, x) }

// AddY appends a y value to the named column, creating it on first use.
// Columns must be filled densely: the n-th AddY for a column pairs with the
// n-th x value.
func (s *Series) AddY(name string, y float64) {
	for i := range s.columns {
		if s.columns[i].name == name {
			s.columns[i].y = append(s.columns[i].y, y)
			return
		}
	}
	s.columns = append(s.columns, seriesColumn{name: name, y: []float64{y}})
}

// Columns returns the column names in insertion order.
func (s *Series) Columns() []string {
	out := make([]string, len(s.columns))
	for i, c := range s.columns {
		out[i] = c.name
	}
	return out
}

// Validate checks that every column has one y per x.
func (s *Series) Validate() error {
	for _, c := range s.columns {
		if len(c.y) != len(s.X) {
			return fmt.Errorf("stats: column %q has %d points for %d x values", c.name, len(c.y), len(s.X))
		}
	}
	return nil
}

// Table converts the series into a Table (x column first).
func (s *Series) Table() (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	headers := append([]string{s.XLabel}, s.Columns()...)
	t := NewTable(s.Caption, headers...)
	for i := range s.X {
		row := make([]any, 0, len(headers))
		row = append(row, FormatFloat(s.X[i]))
		for _, c := range s.columns {
			row = append(row, c.y[i])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Render writes the series as a table followed by one ASCII chart per
// column (height rows, width = number of points, log-friendly).
func (s *Series) Render(w io.Writer, height int) error {
	t, err := s.Table()
	if err != nil {
		return err
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if height < 2 {
		height = 8
	}
	for _, c := range s.columns {
		if _, err := fmt.Fprintf(w, "\n%s\n%s", c.name, asciiChart(c.y, height)); err != nil {
			return err
		}
	}
	return nil
}

// asciiChart renders values as a bar chart, one column per point.
func asciiChart(y []float64, height int) string {
	if len(y) == 0 {
		return "(empty)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 0 {
		lo = 0 // anchor bars at zero for positive data
	}
	span := hi - lo
	//lint:ignore floatcmp exact zero-span guard before dividing by span
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(y)))
	}
	for i, v := range y {
		level := int(math.Round((v - lo) / span * float64(height-1)))
		for r := 0; r <= level; r++ {
			grid[height-1-r][i] = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max)\n", FormatFloat(hi))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s (min)\n", FormatFloat(lo))
	return b.String()
}

// Quantiles returns the q-quantiles (0 <= q <= 1, sorted input copy) of vals;
// convenience for summarizing sweeps.
func Quantiles(vals []float64, qs ...float64) []float64 {
	if len(vals) == 0 {
		return make([]float64, len(qs))
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		} else {
			out[i] = sorted[lo]
		}
	}
	return out
}

// Mean returns the arithmetic mean of vals (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
