package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("caption", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // caption, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "caption" {
		t.Errorf("caption line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// All data lines align: the value column starts at the same offset.
	off := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][off:], "1") || !strings.HasPrefix(lines[4][off:], "22") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1.23456)
	if !strings.Contains(tb.String(), "1.235") {
		t.Errorf("float not rounded: %q", tb.String())
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	if FormatFloat(math.Inf(1)) != "inf" {
		t.Error("inf formatting")
	}
	nan := 0.0
	nan = nan / nan
	if FormatFloat(nan) != "nan" {
		t.Error("nan formatting")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("cap", "a", "b")
	tb.AddRow("x,y", 1)
	tb.AddRow(`quote"inside`, 2)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# cap\n") {
		t.Errorf("caption comment missing: %q", out)
	}
	if !strings.Contains(out, `"x,y",1`) {
		t.Errorf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, `"quote""inside",2`) {
		t.Errorf("quote not escaped: %q", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3)")
	}
	if Ratio(0, 0) != 1 {
		t.Error("Ratio(0,0) should be 1 (two zero-cost schedules tie)")
	}
	if Ratio(5, 0) < 1e307 {
		t.Error("Ratio(5,0) should be huge")
	}
}
