package introspect

import (
	"strings"
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func handSchedule(t *testing.T) (*model.Sequence, *model.Schedule) {
	t.Helper()
	// 2 jobs color 0 (D=4) at round 0; 2 jobs color 1 (D=4) at round 4.
	seq := model.NewBuilder(2).Add(0, 0, 4, 2).Add(4, 1, 4, 2).MustBuild()
	s := model.NewSchedule(1, 1)
	s.AddReconfig(0, 0, 0, 0)
	s.AddExec(0, 0, 0, 0)
	s.AddExec(1, 0, 0, 1)
	s.AddReconfig(4, 0, 0, 1)
	s.AddExec(4, 0, 0, 2)
	s.AddExec(5, 0, 0, 3)
	return seq, s
}

func TestAnalyzeHandSchedule(t *testing.T) {
	seq, s := handSchedule(t)
	rep, err := Analyze(seq, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost.Total() != 4 { // 2 reconfigs × Δ=2
		t.Errorf("cost = %v", rep.Cost)
	}
	if len(rep.PerColor) != 2 {
		t.Fatalf("per-color entries = %d", len(rep.PerColor))
	}
	c0, c1 := rep.PerColor[0], rep.PerColor[1]
	if c0.Reconfigs != 1 || c0.Executed != 2 || c0.Dropped != 0 {
		t.Errorf("color 0 stats = %+v", c0)
	}
	if c1.Reconfigs != 1 || c1.Executed != 2 {
		t.Errorf("color 1 stats = %+v", c1)
	}
	// Color 0 resident rounds [0,4) = 4; color 1 resident [4, horizon+1=9).
	if c0.Residency != 4 {
		t.Errorf("color 0 residency = %d, want 4", c0.Residency)
	}
	if c1.Residency != 5 {
		t.Errorf("color 1 residency = %d, want 5", c1.Residency)
	}
	// Utilization: 4 executions over 9 configured slots.
	if rep.Utilization < 0.43 || rep.Utilization > 0.46 {
		t.Errorf("utilization = %v", rep.Utilization)
	}
	if rep.ThrashIndex != 1.0 { // zero drops
		t.Errorf("thrash = %v", rep.ThrashIndex)
	}
	if rep.ReconfigRounds != 2 {
		t.Errorf("reconfig rounds = %d", rep.ReconfigRounds)
	}
	if !strings.Contains(rep.Summary(), "cost=4") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestAnalyzeRejectsIllegal(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	s := model.NewSchedule(1, 1)
	s.AddExec(0, 0, 0, 0) // unconfigured
	if _, err := Analyze(seq, s); err == nil {
		t.Fatal("illegal schedule analyzed")
	}
	if _, err := CostTimeline(seq, s); err == nil {
		t.Fatal("illegal schedule timelined")
	}
}

func TestCostTimelineMonotoneAndTotal(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 4, Delta: 3, Colors: 5, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.9, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
	tl, err := CostTimeline(seq, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Reconfig < tl[i-1].Reconfig || tl[i].Drop < tl[i-1].Drop {
			t.Fatalf("timeline decreased at round %d", i)
		}
	}
	if last := tl[len(tl)-1]; last != res.Cost {
		t.Errorf("timeline end %v != cost %v", last, res.Cost)
	}
}

func TestAnalyzeMatchesEngineOnPolicies(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 6, Delta: 4, Colors: 8, Rounds: 128,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
	rep, err := Analyze(seq, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != res.Cost {
		t.Errorf("report cost %v != engine %v", rep.Cost, res.Cost)
	}
	var executed, dropped, reconfigs int
	for _, s := range rep.PerColor {
		executed += s.Executed
		dropped += s.Dropped
		reconfigs += s.Reconfigs
	}
	if executed != res.Executed || dropped != res.Dropped {
		t.Errorf("per-color sums %d/%d != engine %d/%d", executed, dropped, res.Executed, res.Dropped)
	}
	if reconfigs != res.Schedule.NumReconfigs() {
		t.Errorf("reconfig sum %d != schedule %d", reconfigs, res.Schedule.NumReconfigs())
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization = %v", rep.Utilization)
	}
	if rep.ThrashIndex < 0 || rep.ThrashIndex > 1 {
		t.Errorf("thrash = %v", rep.ThrashIndex)
	}
}

func TestTopReconfigured(t *testing.T) {
	seq, s := handSchedule(t)
	rep, err := Analyze(seq, s)
	if err != nil {
		t.Fatal(err)
	}
	top := rep.TopReconfigured(1)
	if len(top) != 1 {
		t.Fatalf("top = %v", top)
	}
	all := rep.TopReconfigured(10)
	if len(all) != 2 {
		t.Fatalf("top(10) = %v", all)
	}
}

func TestAnalyzeEmptySchedule(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 2, 3).MustBuild()
	rep, err := Analyze(seq, model.NewSchedule(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost.Drop != 3 || rep.Utilization != 0 || rep.ThrashIndex != 0 {
		t.Errorf("report = %+v", rep)
	}
}
