package introspect

import (
	"strings"
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func TestGanttHandSchedule(t *testing.T) {
	seq, s := handSchedule(t)
	var b strings.Builder
	if err := Gantt(seq, s, GanttOptions{}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "r00 |") {
		t.Errorf("missing resource row:\n%s", out)
	}
	// Round 0-3 color 0 ('a', executed rounds 0,1 uppercase), rounds 4+
	// color 1 ('b').
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("executed-round uppercase letters missing:\n%s", out)
	}
	if !strings.Contains(out, "legend: a=c0 b=c1") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestGanttDownsampling(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 1, Delta: 4, Colors: 5, Rounds: 1024,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.6, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
	var b strings.Builder
	if err := Gantt(seq, res.Schedule, GanttOptions{Width: 40}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	for _, line := range lines {
		if strings.HasPrefix(line, "r0") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) > 40 {
				t.Fatalf("row wider than requested: %d", len(inner))
			}
		}
	}
}

func TestGanttWindow(t *testing.T) {
	seq, s := handSchedule(t)
	var b strings.Builder
	if err := Gantt(seq, s, GanttOptions{From: 4, To: 6}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rounds [4,6)") {
		t.Errorf("window header wrong:\n%s", b.String())
	}
}

func TestGanttRejectsIllegal(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	s := model.NewSchedule(1, 1)
	s.AddExec(0, 0, 0, 0)
	var b strings.Builder
	if err := Gantt(seq, s, GanttOptions{}, &b); err == nil {
		t.Fatal("illegal schedule rendered")
	}
}
