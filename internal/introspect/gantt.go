package introspect

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rrsched/internal/model"
)

// GanttOptions controls the schedule chart rendering.
type GanttOptions struct {
	// From/To bound the rendered rounds ([From, To); To 0 means the whole
	// schedule).
	From, To int64
	// Width caps the number of rendered columns; longer ranges are
	// downsampled (each column shows the color holding the location at the
	// column's first round). Default 96.
	Width int
}

// Gantt renders a per-resource timeline of the schedule as ASCII art: one
// row per location, one column per (possibly downsampled) round, with each
// color drawn as a distinct letter, '.' for black, and uppercase letters
// marking rounds in which the location actually executed a job. It is the
// quickest way to *see* thrashing (striped rows) versus stable residency
// (long runs), and is used by rrreplay and the examples.
func Gantt(seq *model.Sequence, sched *model.Schedule, opts GanttOptions, w io.Writer) error {
	if _, err := model.Audit(seq, sched); err != nil {
		return err
	}
	horizon := seq.Horizon()
	for _, r := range sched.Reconfigs {
		if r.Round > horizon {
			horizon = r.Round
		}
	}
	from := opts.From
	to := opts.To
	if to <= 0 || to > horizon+1 {
		to = horizon + 1
	}
	if from < 0 || from >= to {
		from = 0
	}
	width := opts.Width
	if width <= 0 {
		width = 96
	}
	span := to - from
	step := (span + int64(width) - 1) / int64(width)
	if step < 1 {
		step = 1
	}
	cols := int((span + step - 1) / step)

	// Reconstruct per-location color timelines.
	recs := make([]model.Reconfigure, len(sched.Reconfigs))
	copy(recs, sched.Reconfigs)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Round != recs[j].Round {
			return recs[i].Round < recs[j].Round
		}
		return recs[i].Mini < recs[j].Mini
	})
	execAt := map[[2]int64]bool{} // (location, round)
	for _, e := range sched.Execs {
		execAt[[2]int64{int64(e.Resource), e.Round}] = true
	}

	// Color letters: ascending colors get 'a', 'b', ... cycling.
	letters := map[model.Color]byte{}
	for i, c := range seq.Colors() {
		letters[c] = byte('a' + i%26)
	}
	letterOf := func(c model.Color) byte {
		if c == model.Black {
			return '.'
		}
		if b, ok := letters[c]; ok {
			return b
		}
		return '?'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "gantt: rounds [%d,%d) step %d, %d locations ('.'=black, letter=color, UPPERCASE=executed)\n",
		from, to, step, sched.NumResources)
	cur := make([]model.Color, sched.NumResources)
	for i := range cur {
		cur[i] = model.Black
	}
	next := 0
	rows := make([][]byte, sched.NumResources)
	for i := range rows {
		rows[i] = make([]byte, cols)
		for j := range rows[i] {
			rows[i][j] = ' '
		}
	}
	for r := int64(0); r < to; r++ {
		for next < len(recs) && recs[next].Round == r {
			cur[recs[next].Resource] = recs[next].To
			next++
		}
		if r < from {
			continue
		}
		col := int((r - from) / step)
		for loc := 0; loc < sched.NumResources; loc++ {
			ch := letterOf(cur[loc])
			if execAt[[2]int64{int64(loc), r}] && ch != '.' {
				ch = ch - 'a' + 'A'
			}
			// First write wins per column unless an execution upgrades it.
			if rows[loc][col] == ' ' || (ch >= 'A' && ch <= 'Z') {
				rows[loc][col] = ch
			}
		}
	}
	for loc, row := range rows {
		fmt.Fprintf(&b, "r%02d |%s|\n", loc, string(row))
	}
	// Legend.
	b.WriteString("legend:")
	for _, c := range seq.Colors() {
		fmt.Fprintf(&b, " %c=%v", letterOf(c), c)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
