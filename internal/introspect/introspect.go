// Package introspect provides schedule introspection: per-color
// reconfiguration and residency statistics, utilization, cost timelines, and
// a thrashing index. The experiments and examples use it to explain *why* a
// policy paid what it paid — the thrashing vs underutilization decomposition
// the paper's introduction frames the problem with.
package introspect

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
)

// ColorStats summarizes one color's treatment by a schedule.
type ColorStats struct {
	Color model.Color
	// Reconfigs counts recolorings TO this color (location-level).
	Reconfigs int
	// Executed and Dropped partition the color's jobs.
	Executed int
	Dropped  int
	// Residency is the total number of (location, round) pairs the color
	// held, counting from each recoloring to the next recoloring of that
	// location (or the end of the schedule).
	Residency int64
}

// Report is a full schedule analysis.
type Report struct {
	Cost model.Cost
	// PerColor, in ascending color order.
	PerColor []ColorStats
	// Utilization is executed jobs divided by total execution slots offered
	// by non-black locations (busy fraction of configured capacity).
	Utilization float64
	// ThrashIndex is reconfiguration cost divided by total cost (0 = pure
	// drops / underutilization regime, 1 = pure reconfigurations / thrashing
	// regime).
	ThrashIndex float64
	// ReconfigRounds counts rounds with at least one reconfiguration.
	ReconfigRounds int
	// MeanResidency is the average residency (in rounds) of a configured
	// stretch, over all recolorings.
	MeanResidency float64
}

// Analyze audits the schedule and derives the report. It fails if the
// schedule is illegal for the sequence.
func Analyze(seq *model.Sequence, sched *model.Schedule) (*Report, error) {
	cost, err := model.Audit(seq, sched)
	if err != nil {
		return nil, err
	}
	horizon := seq.Horizon()
	for _, r := range sched.Reconfigs {
		if r.Round > horizon {
			horizon = r.Round
		}
	}
	for _, e := range sched.Execs {
		if e.Round > horizon {
			horizon = e.Round
		}
	}

	stats := map[model.Color]*ColorStats{}
	get := func(c model.Color) *ColorStats {
		s := stats[c]
		if s == nil {
			s = &ColorStats{Color: c}
			stats[c] = s
		}
		return s
	}

	// Per-location residency segments.
	type segment struct {
		color model.Color
		start int64
	}
	current := make([]segment, sched.NumResources)
	for i := range current {
		current[i] = segment{color: model.Black}
	}
	recs := make([]model.Reconfigure, len(sched.Reconfigs))
	copy(recs, sched.Reconfigs)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Round != recs[j].Round {
			return recs[i].Round < recs[j].Round
		}
		return recs[i].Mini < recs[j].Mini
	})
	var stretchLens []int64
	closeSegment := func(loc int, end int64) {
		seg := current[loc]
		if seg.color == model.Black {
			return
		}
		get(seg.color).Residency += end - seg.start
		stretchLens = append(stretchLens, end-seg.start)
	}
	reconfigRounds := map[int64]bool{}
	for _, r := range recs {
		closeSegment(r.Resource, r.Round)
		current[r.Resource] = segment{color: r.To, start: r.Round}
		if r.To != model.Black {
			get(r.To).Reconfigs++
		}
		reconfigRounds[r.Round] = true
	}
	for loc := range current {
		closeSegment(loc, horizon+1)
	}

	// Job outcomes.
	executed := sched.ExecutedJobIDs()
	for _, j := range seq.Jobs() {
		s := get(j.Color)
		if executed[j.ID] {
			s.Executed++
		} else {
			s.Dropped++
		}
	}

	var totalResidency int64
	perColor := make([]ColorStats, 0, len(stats))
	for _, s := range stats {
		totalResidency += s.Residency
		perColor = append(perColor, *s)
	}
	sort.Slice(perColor, func(i, j int) bool { return perColor[i].Color < perColor[j].Color })

	rep := &Report{Cost: cost, PerColor: perColor, ReconfigRounds: len(reconfigRounds)}
	if slots := totalResidency * int64(sched.Speed); slots > 0 {
		rep.Utilization = float64(len(sched.Execs)) / float64(slots)
	}
	if total := cost.Total(); total > 0 {
		rep.ThrashIndex = float64(cost.Reconfig) / float64(total)
	}
	if len(stretchLens) > 0 {
		var sum int64
		for _, l := range stretchLens {
			sum += l
		}
		rep.MeanResidency = float64(sum) / float64(len(stretchLens))
	}
	return rep, nil
}

// CostTimeline returns cumulative (reconfig, drop) cost per round, derived
// from the schedule record: reconfigurations charge Δ in their round, and a
// job charges its drop in its deadline round when never executed.
func CostTimeline(seq *model.Sequence, sched *model.Schedule) ([]model.Cost, error) {
	if _, err := model.Audit(seq, sched); err != nil {
		return nil, err
	}
	horizon := seq.Horizon()
	for _, r := range sched.Reconfigs {
		if r.Round > horizon {
			horizon = r.Round
		}
	}
	timeline := make([]model.Cost, horizon+1)
	for _, r := range sched.Reconfigs {
		timeline[r.Round].Reconfig += seq.Delta()
	}
	executed := sched.ExecutedJobIDs()
	for _, j := range seq.Jobs() {
		if !executed[j.ID] {
			timeline[j.Deadline()].Drop++
		}
	}
	// Prefix sums.
	for i := 1; i <= int(horizon); i++ {
		timeline[i] = timeline[i].Add(timeline[i-1])
	}
	return timeline, nil
}

// Summary renders the report as a short multi-line string.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"cost=%d (reconfig=%d, drop=%d)  utilization=%.2f  thrash=%.2f  mean residency=%.1f rounds  reconfig rounds=%d",
		r.Cost.Total(), r.Cost.Reconfig, r.Cost.Drop,
		r.Utilization, r.ThrashIndex, r.MeanResidency, r.ReconfigRounds)
}

// TopReconfigured returns the k colors with the most recolorings.
func (r *Report) TopReconfigured(k int) []ColorStats {
	out := make([]ColorStats, len(r.PerColor))
	copy(out, r.PerColor)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Reconfigs > out[j].Reconfigs })
	if len(out) > k {
		out = out[:k]
	}
	return out
}
