// Package workload generates input sequences: the adversarial constructions
// of Appendix A (against ΔLRU) and Appendix B (against EDF), randomized
// batched / rate-limited / general workloads (uniform, Zipf, bursty, phase
// shifting), the motivating background-vs-short-term scenario from the
// paper's introduction, and a JSON trace format for the CLI tools.
package workload

import (
	"fmt"

	"rrsched/internal/model"
)

// DeltaLRUAdversary builds the Appendix A lower-bound instance against ΔLRU:
// n/2 "short-term" colors with delay bound 2^j receiving Δ jobs at every
// multiple of 2^j, plus one "long-term" color with delay bound 2^k receiving
// 2^k jobs at round 0, with 2^k > 2^(j+1) > nΔ. ΔLRU caches the short-term
// colors (their timestamps are always at least as recent) and drops the
// 2^k long-term jobs, while the offline schedule serves the long-term color
// with one resource and one reconfiguration.
func DeltaLRUAdversary(n int, delta int64, j, k uint) (*model.Sequence, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("workload: adversary needs even n >= 2, got %d", n)
	}
	dj := int64(1) << j
	dk := int64(1) << k
	if !(dk > 2*dj && 2*dj > int64(n)*delta) {
		return nil, fmt.Errorf("workload: need 2^k > 2^(j+1) > n*Delta (2^j=%d, 2^k=%d, nΔ=%d)", dj, dk, int64(n)*delta)
	}
	b := model.NewBuilder(delta)
	short := n / 2
	longColor := model.Color(short)
	// Long-term color: 2^k jobs at the very beginning.
	b.Add(0, longColor, dk, int(dk))
	// Short-term colors: Δ jobs each at every multiple of 2^j during the
	// 2^k rounds.
	for r := int64(0); r < dk; r += dj {
		for c := 0; c < short; c++ {
			b.Add(r, model.Color(c), dj, int(delta))
		}
	}
	return b.Build()
}

// EDFAdversary builds the Appendix B lower-bound instance against EDF: one
// color with delay bound 2^j receiving Δ jobs at every multiple of 2^j until
// round 2^(k-1), plus n/2 colors with delay bounds 2^k, 2^(k+1), ...,
// 2^(k+n/2-1), where color p receives 2^(k+p-1) jobs at round 0, with
// 2^k > 2^j > Δ > n. EDF thrashes between the short color and the long
// colors; the offline schedule serves each long color in its own contiguous
// stretch with n/2 + 1 reconfigurations and no drops.
func EDFAdversary(n int, delta int64, j, k uint) (*model.Sequence, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("workload: adversary needs even n >= 2, got %d", n)
	}
	dj := int64(1) << j
	dk := int64(1) << k
	if !(dk > dj && dj > delta && delta > int64(n)) {
		return nil, fmt.Errorf("workload: need 2^k > 2^j > Delta > n (2^j=%d, 2^k=%d, Δ=%d, n=%d)", dj, dk, delta, n)
	}
	b := model.NewBuilder(delta)
	shortColor := model.Color(0)
	// Short color: Δ jobs at each multiple of 2^j until round 2^(k-1).
	for r := int64(0); r < dk/2; r += dj {
		b.Add(r, shortColor, dj, int(delta))
	}
	// Long colors p = 0..n/2-1 with delay bound 2^(k+p): 2^(k+p-1) jobs at
	// round 0.
	for p := 0; p < n/2; p++ {
		d := dk << uint(p)
		b.Add(0, model.Color(1+p), d, int(d/2))
	}
	return b.Build()
}
