package workload

import (
	"testing"

	"rrsched/internal/model"
)

func TestDiurnalStructure(t *testing.T) {
	seq, err := Diurnal(DiurnalConfig{
		Seed: 1, Delta: 4, Colors: 6, Period: 256, Days: 2,
		Delay: 4, PeakLoad: 1.0, TroughFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if !seq.IsBatched() {
		t.Error("diurnal workload not batched")
	}
	if len(seq.Colors()) != 6 {
		t.Errorf("colors = %d", len(seq.Colors()))
	}
	if seq.NumRounds() > 512 {
		t.Errorf("rounds = %d", seq.NumRounds())
	}
}

func TestDiurnalPhasesRotate(t *testing.T) {
	// Color 0 peaks at phase 0 (start of day), color c at phase c/colors.
	// Check that color 0's arrivals are denser near the start of the day
	// than half a period later, and that an opposite-phase color inverts.
	seq, err := Diurnal(DiurnalConfig{
		Seed: 2, Delta: 4, Colors: 2, Period: 512, Days: 4,
		Delay: 2, PeakLoad: 2.0, TroughFrac: 0.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	countIn := func(c model.Color, lo, hi int64) int {
		n := 0
		for r := lo; r < hi; r++ {
			for _, j := range seq.Request(r) {
				if j.Color == c {
					n++
				}
			}
		}
		return n
	}
	// Day 1 window near phase 0 vs phase π for color 0.
	peak0 := countIn(0, 0, 128) + countIn(0, 512, 640)
	trough0 := countIn(0, 192, 320) + countIn(0, 704, 832)
	if peak0 <= trough0 {
		t.Errorf("color 0: peak %d <= trough %d", peak0, trough0)
	}
	// Color 1 is phase-shifted by π: inverted.
	peak1 := countIn(1, 192, 320) + countIn(1, 704, 832)
	trough1 := countIn(1, 0, 128) + countIn(1, 512, 640)
	if peak1 <= trough1 {
		t.Errorf("color 1: peak %d <= trough %d", peak1, trough1)
	}
}

func TestDiurnalValidation(t *testing.T) {
	bad := []DiurnalConfig{
		{},
		{Delta: 1, Colors: 1, Period: 8, Days: 1, Delay: 2, TroughFrac: 2},
		{Delta: 1, Colors: 1, Period: 8, Days: 1, Delay: 2, PeakLoad: -1},
	}
	for i, cfg := range bad {
		if _, err := Diurnal(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	cfg := DiurnalConfig{Seed: 9, Delta: 2, Colors: 3, Period: 64, Days: 1, Delay: 2, PeakLoad: 0.5, TroughFrac: 0.2}
	a, _ := Diurnal(cfg)
	b, _ := Diurnal(cfg)
	if a.NumJobs() != b.NumJobs() {
		t.Fatal("same seed differs")
	}
}
