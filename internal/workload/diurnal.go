package workload

import (
	"fmt"
	"math"
	"math/rand"

	"rrsched/internal/model"
)

// DiurnalConfig parameterizes a day/night load pattern: per-color load
// follows a sinusoid with a per-color phase offset, modeling the
// time-of-day traffic mixes of shared data centers (services peak at
// different hours, so the optimal processor allocation rotates).
type DiurnalConfig struct {
	Seed   int64
	Delta  int64
	Colors int
	// Period is the length of one day in rounds.
	Period int64
	// Days is the number of periods to generate.
	Days int
	// Delay is the common power-of-two delay bound.
	Delay int64
	// PeakLoad is the per-color load at its peak (jobs per round); the
	// trough is PeakLoad * TroughFrac.
	PeakLoad   float64
	TroughFrac float64
}

// Diurnal generates the day/night workload. Colors peak at evenly spaced
// phases across the period, so at any instant roughly the same total load is
// offered but its composition rotates once per day — a regime where a good
// policy reconfigures O(colors) times per day.
func Diurnal(cfg DiurnalConfig) (*model.Sequence, error) {
	if cfg.Delta <= 0 || cfg.Colors <= 0 || cfg.Period <= 0 || cfg.Days <= 0 || cfg.Delay <= 0 {
		return nil, fmt.Errorf("workload: invalid diurnal config %+v", cfg)
	}
	if cfg.PeakLoad < 0 || cfg.TroughFrac < 0 || cfg.TroughFrac > 1 {
		return nil, fmt.Errorf("workload: invalid diurnal load (peak %v, trough fraction %v)", cfg.PeakLoad, cfg.TroughFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(cfg.Delta)
	total := cfg.Period * int64(cfg.Days)
	for c := 0; c < cfg.Colors; c++ {
		phase := 2 * math.Pi * float64(c) / float64(cfg.Colors)
		for r := int64(0); r < total; r += cfg.Delay {
			t := 2*math.Pi*float64(r%cfg.Period)/float64(cfg.Period) - phase
			// Sinusoid in [TroughFrac, 1] scaled by PeakLoad.
			level := cfg.TroughFrac + (1-cfg.TroughFrac)*(0.5+0.5*math.Cos(t))
			mean := cfg.PeakLoad * level * float64(cfg.Delay)
			if n := samplePoissonish(rng, mean); n > 0 {
				b.Add(r, model.Color(c), cfg.Delay, n)
			}
		}
	}
	return b.Build()
}
