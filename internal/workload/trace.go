package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rrsched/internal/model"
)

// Trace is the JSON on-disk representation of an instance, used by the CLI
// tools to save and reload workloads.
type Trace struct {
	Delta    int64          `json:"delta"`
	Colors   []TraceColor   `json:"colors"`
	Requests []TraceRequest `json:"requests"`
}

// TraceColor declares a color and its delay bound.
type TraceColor struct {
	ID    int32 `json:"id"`
	Delay int64 `json:"delay"`
}

// TraceRequest is one round's arrivals, as (color, count) pairs.
type TraceRequest struct {
	Round int64       `json:"round"`
	Jobs  []TraceJobs `json:"jobs"`
}

// TraceJobs is a batch of identical jobs.
type TraceJobs struct {
	Color int32 `json:"color"`
	Count int   `json:"count"`
}

// ToTrace converts a sequence to its trace representation.
func ToTrace(seq *model.Sequence) *Trace {
	t := &Trace{Delta: seq.Delta()}
	for _, c := range seq.Colors() {
		d, _ := seq.DelayBound(c)
		t.Colors = append(t.Colors, TraceColor{ID: int32(c), Delay: d})
	}
	for r := int64(0); r < seq.NumRounds(); r++ {
		req := seq.Request(r)
		if len(req) == 0 {
			continue
		}
		counts := map[model.Color]int{}
		order := []model.Color{}
		for _, j := range req {
			if counts[j.Color] == 0 {
				order = append(order, j.Color)
			}
			counts[j.Color]++
		}
		// Canonical color order within a round: ascending. A sequence in
		// canonical form (model.Sequence.Canonical) survives the round trip
		// with identical job IDs, keeping saved schedules replayable.
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		tr := TraceRequest{Round: r}
		for _, c := range order {
			tr.Jobs = append(tr.Jobs, TraceJobs{Color: int32(c), Count: counts[c]})
		}
		t.Requests = append(t.Requests, tr)
	}
	return t
}

// Hard ceilings for decoded traces. No generator in this repository comes
// near them; they exist so a corrupted or hostile trace is rejected up front
// instead of driving huge allocations (the builder allocates one request slot
// per round up to the largest round mentioned, and one job per counted unit).
const (
	maxTraceRound  = int64(1) << 20
	maxTraceColors = 1 << 16
	maxTraceJobs   = 1 << 24
)

// ToSequence converts a trace back into a validated sequence. Malformed
// traces — negative rounds or counts, undeclared or duplicated colors, and
// absurd sizes — are rejected with an error.
func (t *Trace) ToSequence() (*model.Sequence, error) {
	if len(t.Colors) > maxTraceColors {
		return nil, fmt.Errorf("workload: trace declares %d colors (limit %d)", len(t.Colors), maxTraceColors)
	}
	delays := map[model.Color]int64{}
	for _, c := range t.Colors {
		if c.ID < 0 {
			return nil, fmt.Errorf("workload: trace declares negative color %d", c.ID)
		}
		if c.Delay <= 0 {
			return nil, fmt.Errorf("workload: trace color %d has non-positive delay %d", c.ID, c.Delay)
		}
		if _, ok := delays[model.Color(c.ID)]; ok {
			return nil, fmt.Errorf("workload: trace declares color %d twice", c.ID)
		}
		delays[model.Color(c.ID)] = c.Delay
	}
	b := model.NewBuilder(t.Delta)
	totalJobs := int64(0)
	for _, req := range t.Requests {
		if req.Round < 0 || req.Round > maxTraceRound {
			return nil, fmt.Errorf("workload: trace request round %d out of range [0,%d]", req.Round, maxTraceRound)
		}
		for _, jb := range req.Jobs {
			d, ok := delays[model.Color(jb.Color)]
			if !ok {
				return nil, fmt.Errorf("workload: trace request in round %d references undeclared color %d", req.Round, jb.Color)
			}
			if jb.Count < 0 {
				return nil, fmt.Errorf("workload: trace request in round %d has negative count %d", req.Round, jb.Count)
			}
			totalJobs += int64(jb.Count)
			if totalJobs > maxTraceJobs {
				return nil, fmt.Errorf("workload: trace has more than %d jobs", maxTraceJobs)
			}
			b.Add(req.Round, model.Color(jb.Color), d, jb.Count)
		}
	}
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return seq, seq.Validate()
}

// WriteTrace serializes a sequence as indented JSON.
func WriteTrace(w io.Writer, seq *model.Sequence) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToTrace(seq))
}

// ReadTrace parses a JSON trace into a sequence.
func ReadTrace(r io.Reader) (*model.Sequence, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return t.ToSequence()
}
