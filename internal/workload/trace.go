package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rrsched/internal/model"
)

// Trace is the JSON on-disk representation of an instance, used by the CLI
// tools to save and reload workloads.
type Trace struct {
	Delta    int64          `json:"delta"`
	Colors   []TraceColor   `json:"colors"`
	Requests []TraceRequest `json:"requests"`
}

// TraceColor declares a color and its delay bound.
type TraceColor struct {
	ID    int32 `json:"id"`
	Delay int64 `json:"delay"`
}

// TraceRequest is one round's arrivals, as (color, count) pairs.
type TraceRequest struct {
	Round int64       `json:"round"`
	Jobs  []TraceJobs `json:"jobs"`
}

// TraceJobs is a batch of identical jobs.
type TraceJobs struct {
	Color int32 `json:"color"`
	Count int   `json:"count"`
}

// ToTrace converts a sequence to its trace representation.
func ToTrace(seq *model.Sequence) *Trace {
	t := &Trace{Delta: seq.Delta()}
	for _, c := range seq.Colors() {
		d, _ := seq.DelayBound(c)
		t.Colors = append(t.Colors, TraceColor{ID: int32(c), Delay: d})
	}
	for r := int64(0); r < seq.NumRounds(); r++ {
		req := seq.Request(r)
		if len(req) == 0 {
			continue
		}
		counts := map[model.Color]int{}
		order := []model.Color{}
		for _, j := range req {
			if counts[j.Color] == 0 {
				order = append(order, j.Color)
			}
			counts[j.Color]++
		}
		// Canonical color order within a round: ascending. A sequence in
		// canonical form (model.Sequence.Canonical) survives the round trip
		// with identical job IDs, keeping saved schedules replayable.
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		tr := TraceRequest{Round: r}
		for _, c := range order {
			tr.Jobs = append(tr.Jobs, TraceJobs{Color: int32(c), Count: counts[c]})
		}
		t.Requests = append(t.Requests, tr)
	}
	return t
}

// ToSequence converts a trace back into a validated sequence.
func (t *Trace) ToSequence() (*model.Sequence, error) {
	delays := map[model.Color]int64{}
	for _, c := range t.Colors {
		if c.Delay <= 0 {
			return nil, fmt.Errorf("workload: trace color %d has non-positive delay %d", c.ID, c.Delay)
		}
		delays[model.Color(c.ID)] = c.Delay
	}
	b := model.NewBuilder(t.Delta)
	for _, req := range t.Requests {
		for _, jb := range req.Jobs {
			d, ok := delays[model.Color(jb.Color)]
			if !ok {
				return nil, fmt.Errorf("workload: trace request in round %d references undeclared color %d", req.Round, jb.Color)
			}
			b.Add(req.Round, model.Color(jb.Color), d, jb.Count)
		}
	}
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return seq, seq.Validate()
}

// WriteTrace serializes a sequence as indented JSON.
func WriteTrace(w io.Writer, seq *model.Sequence) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToTrace(seq))
}

// ReadTrace parses a JSON trace into a sequence.
func ReadTrace(r io.Reader) (*model.Sequence, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return t.ToSequence()
}
