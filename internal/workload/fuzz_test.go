package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser: arbitrary bytes must either fail
// cleanly or produce a sequence that validates and round-trips.
func FuzzReadTrace(f *testing.F) {
	seed, err := RandomBatched(RandomConfig{
		Seed: 1, Delta: 2, Colors: 3, Rounds: 16,
		MinDelayExp: 1, MaxDelayExp: 2, Load: 0.8, RateLimited: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2}],"requests":[{"round":0,"jobs":[{"color":0,"count":1}]}]}`)
	f.Add(`{"delta":-1}`)
	f.Add(`garbage`)
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2}],"requests":[{"round":-3,"jobs":[{"color":0,"count":1}]}]}`)
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2}],"requests":[{"round":0,"jobs":[{"color":0,"count":-5}]}]}`)
	// Hardening corners: duplicate and negative color declarations, rounds and
	// job totals beyond the reader's ceilings, undeclared colors in requests.
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2},{"id":0,"delay":4}],"requests":[]}`)
	f.Add(`{"delta":1,"colors":[{"id":-2,"delay":2}],"requests":[]}`)
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2}],"requests":[{"round":1048577,"jobs":[{"color":0,"count":1}]}]}`)
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2}],"requests":[{"round":0,"jobs":[{"color":0,"count":2147483647}]}]}`)
	f.Add(`{"delta":1,"colors":[{"id":0,"delay":2}],"requests":[{"round":0,"jobs":[{"color":9,"count":1}]}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		seq, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		if verr := seq.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid sequence: %v\ninput: %q", verr, data)
		}
		// Round trip must be stable for accepted inputs.
		var out bytes.Buffer
		if err := WriteTrace(&out, seq); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.NumJobs() != seq.NumJobs() {
			t.Fatalf("round trip changed job count: %d -> %d", seq.NumJobs(), back.NumJobs())
		}
	})
}
