package workload

import (
	"testing"

	"rrsched/internal/model"
)

func TestMMPPStructure(t *testing.T) {
	seq, err := MMPP(MMPPConfig{
		Seed: 1, Delta: 4, Colors: 6, Rounds: 512,
		MinDelayExp: 1, MaxDelayExp: 3,
		OnLoad: 1.0, OffLoad: 0.05, MeanOn: 32, MeanOff: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if !seq.IsBatched() || !seq.PowerOfTwoDelays() {
		t.Error("MMPP output not batched / pow2")
	}
	if seq.NumJobs() == 0 {
		t.Error("empty workload")
	}
}

func TestMMPPBurstiness(t *testing.T) {
	// With long sojourns and a large ON/OFF contrast, per-batch counts
	// should be strongly bimodal: the variance of batch sizes must exceed
	// what a constant-rate process with the same mean would give.
	seq, err := MMPP(MMPPConfig{
		Seed: 3, Delta: 2, Colors: 1, Rounds: 4096,
		MinDelayExp: 2, MaxDelayExp: 2,
		OnLoad: 2.0, OffLoad: 0.0, MeanOn: 64, MeanOff: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []float64
	for r := int64(0); r < seq.NumRounds(); r += 4 {
		sizes = append(sizes, float64(len(seq.Request(r))))
	}
	mean, varSum := 0.0, 0.0
	for _, s := range sizes {
		mean += s
	}
	mean /= float64(len(sizes))
	for _, s := range sizes {
		varSum += (s - mean) * (s - mean)
	}
	variance := varSum / float64(len(sizes))
	// A Poisson-like process has variance ≈ mean; the MMPP with OFF=0 and
	// half the time off must be far more dispersed.
	if variance < 2*mean {
		t.Errorf("variance %v not > 2x mean %v: burst structure missing", variance, mean)
	}
}

func TestMMPPValidation(t *testing.T) {
	bad := []MMPPConfig{
		{},
		{Delta: 1, Colors: 1, Rounds: 8, OnLoad: 0.1, OffLoad: 0.5, MeanOn: 2, MeanOff: 2}, // Off > On
		{Delta: 1, Colors: 1, Rounds: 8, OnLoad: 1, OffLoad: 0, MeanOn: 0.5, MeanOff: 2},   // sojourn < 1
		{Delta: 1, Colors: 1, Rounds: 8, MinDelayExp: 3, MaxDelayExp: 1, OnLoad: 1, MeanOn: 2, MeanOff: 2},
	}
	for i, cfg := range bad {
		if _, err := MMPP(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestMMPPDeterministic(t *testing.T) {
	cfg := MMPPConfig{Seed: 7, Delta: 2, Colors: 3, Rounds: 128,
		MinDelayExp: 1, MaxDelayExp: 2, OnLoad: 0.8, OffLoad: 0.1, MeanOn: 16, MeanOff: 16}
	a, _ := MMPP(cfg)
	b, _ := MMPP(cfg)
	if a.NumJobs() != b.NumJobs() {
		t.Fatal("same seed differs")
	}
	var _ *model.Sequence = a
}
