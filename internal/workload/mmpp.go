package workload

import (
	"fmt"
	"math/rand"

	"rrsched/internal/model"
)

// MMPPConfig parameterizes a Markov-modulated arrival process: each color
// independently alternates between an ON state (high arrival intensity) and
// an OFF state (low or zero intensity) with geometric sojourn times — the
// standard bursty-traffic model for packet processing systems, matching the
// paper's router motivation more closely than i.i.d. arrivals.
type MMPPConfig struct {
	Seed   int64
	Delta  int64
	Colors int
	Rounds int64
	// MinDelayExp/MaxDelayExp bound per-color delay bounds to powers of two.
	MinDelayExp uint
	MaxDelayExp uint
	// OnLoad and OffLoad are per-round arrival intensities in the two states.
	OnLoad  float64
	OffLoad float64
	// MeanOn and MeanOff are the expected sojourn times (rounds) in each
	// state; transitions are geometric with rate 1/mean.
	MeanOn  float64
	MeanOff float64
}

func (c MMPPConfig) validate() error {
	if c.Delta <= 0 || c.Colors <= 0 || c.Rounds <= 0 {
		return fmt.Errorf("workload: invalid MMPP dimensions %+v", c)
	}
	if c.MinDelayExp > c.MaxDelayExp {
		return fmt.Errorf("workload: MinDelayExp > MaxDelayExp")
	}
	if c.OnLoad < 0 || c.OffLoad < 0 || c.OnLoad < c.OffLoad {
		return fmt.Errorf("workload: need OnLoad >= OffLoad >= 0, got %v/%v", c.OnLoad, c.OffLoad)
	}
	if c.MeanOn < 1 || c.MeanOff < 1 {
		return fmt.Errorf("workload: sojourn means must be >= 1 round")
	}
	return nil
}

// MMPP generates the Markov-modulated workload. Arrivals land on each
// color's batch grid (multiples of its delay bound) so the output is
// batched; intensity within a batch is the mean intensity over the covered
// rounds, keeping the process's burst structure at the batch scale.
func MMPP(cfg MMPPConfig) (*model.Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	delays := colorDelays(rng, RandomConfig{
		Colors: cfg.Colors, MinDelayExp: cfg.MinDelayExp, MaxDelayExp: cfg.MaxDelayExp,
	})
	b := model.NewBuilder(cfg.Delta)
	for c := 0; c < cfg.Colors; c++ {
		d := delays[c]
		on := rng.Intn(2) == 0 // random initial state per color
		pOffOn := 1 / cfg.MeanOff
		pOnOff := 1 / cfg.MeanOn
		for r := int64(0); r < cfg.Rounds; r += d {
			// Evolve the chain across the batch period and accumulate the
			// mean intensity.
			var sum float64
			for step := int64(0); step < d; step++ {
				if on {
					sum += cfg.OnLoad
					if rng.Float64() < pOnOff {
						on = false
					}
				} else {
					sum += cfg.OffLoad
					if rng.Float64() < pOffOn {
						on = true
					}
				}
			}
			if n := samplePoissonish(rng, sum); n > 0 {
				b.Add(r, model.Color(c), d, n)
			}
		}
	}
	return b.Build()
}
