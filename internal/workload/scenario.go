package workload

import (
	"fmt"
	"math/rand"

	"rrsched/internal/model"
)

// BackgroundConfig parameterizes the introduction's motivating scenario:
// "background" colors with deadlines far in the future compete with
// intermittently arriving "short-term" colors for the same resources.
type BackgroundConfig struct {
	Seed  int64
	Delta int64
	// ShortColors short-term colors with delay bound ShortDelay.
	ShortColors int
	ShortDelay  int64
	// BackgroundColors background colors with delay bound BackgroundDelay.
	BackgroundColors int
	BackgroundDelay  int64
	// Rounds is the length of the arrival window.
	Rounds int64
	// BurstProb is the probability that a short-term color bursts in a given
	// period; a burst delivers ShortDelay jobs (full load).
	BurstProb float64
	// BackgroundJobs is the number of background jobs per background color,
	// all arriving at round 0.
	BackgroundJobs int
}

// BackgroundShortTerm generates the intro scenario: background jobs arrive
// up front with a long delay bound; short-term jobs arrive in intermittent
// bursts. Pure LRU-style policies underutilize idle cycles (dropping
// background work); pure EDF-style policies thrash reconfiguring background
// colors in and out between bursts.
func BackgroundShortTerm(cfg BackgroundConfig) (*model.Sequence, error) {
	if cfg.Delta <= 0 || cfg.Rounds <= 0 || cfg.ShortDelay <= 0 || cfg.BackgroundDelay <= 0 {
		return nil, fmt.Errorf("workload: invalid background scenario config %+v", cfg)
	}
	if cfg.BackgroundDelay <= cfg.ShortDelay {
		return nil, fmt.Errorf("workload: background delay (%d) must exceed short delay (%d)", cfg.BackgroundDelay, cfg.ShortDelay)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(cfg.Delta)
	// Background colors first (ids 0..BackgroundColors-1).
	for c := 0; c < cfg.BackgroundColors; c++ {
		for r := int64(0); r < cfg.Rounds; r += cfg.BackgroundDelay {
			b.Add(r, model.Color(c), cfg.BackgroundDelay, cfg.BackgroundJobs)
		}
	}
	// Short-term colors burst intermittently at multiples of ShortDelay.
	for c := 0; c < cfg.ShortColors; c++ {
		col := model.Color(cfg.BackgroundColors + c)
		for r := int64(0); r < cfg.Rounds; r += cfg.ShortDelay {
			if rng.Float64() < cfg.BurstProb {
				b.Add(r, col, cfg.ShortDelay, int(cfg.ShortDelay))
			}
		}
	}
	return b.Build()
}

// PhaseShiftConfig parameterizes a shared-data-center style workload whose
// service mix changes across phases (the paper's data-center motivation:
// processor allocations must track workload composition).
type PhaseShiftConfig struct {
	Seed   int64
	Delta  int64
	Colors int
	// PhaseLen is the length of each phase in rounds.
	PhaseLen int64
	// Phases is the number of phases.
	Phases int
	// ActivePerPhase is how many colors are hot in each phase.
	ActivePerPhase int
	// Delay is the common power-of-two delay bound of all colors.
	Delay int64
	// Load is the per-hot-color load fraction (jobs per round per color).
	Load float64
}

// PhaseShift generates a workload where each phase activates a different
// subset of colors at high load while the rest stay silent. Good policies
// reconfigure once per phase; thrashing policies reconfigure within phases.
func PhaseShift(cfg PhaseShiftConfig) (*model.Sequence, error) {
	if cfg.Delta <= 0 || cfg.Colors <= 0 || cfg.PhaseLen <= 0 || cfg.Phases <= 0 || cfg.Delay <= 0 {
		return nil, fmt.Errorf("workload: invalid phase shift config %+v", cfg)
	}
	if cfg.ActivePerPhase <= 0 || cfg.ActivePerPhase > cfg.Colors {
		return nil, fmt.Errorf("workload: ActivePerPhase %d out of range (1..%d)", cfg.ActivePerPhase, cfg.Colors)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(cfg.Delta)
	for ph := 0; ph < cfg.Phases; ph++ {
		perm := rng.Perm(cfg.Colors)
		active := perm[:cfg.ActivePerPhase]
		start := int64(ph) * cfg.PhaseLen
		for r := start; r < start+cfg.PhaseLen; r++ {
			if r%cfg.Delay != 0 {
				continue
			}
			for _, c := range active {
				n := samplePoissonish(rng, cfg.Load*float64(cfg.Delay))
				if n > 0 {
					b.Add(r, model.Color(c), cfg.Delay, n)
				}
			}
		}
	}
	return b.Build()
}
