package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"rrsched/internal/model"
)

func TestDeltaLRUAdversaryStructure(t *testing.T) {
	n, delta := 8, int64(4)
	j, k := uint(6), uint(9)
	seq, err := DeltaLRUAdversary(n, delta, j, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if !seq.IsBatched() {
		t.Error("adversary instance not batched")
	}
	// n/2 short colors + 1 long color.
	if got := len(seq.Colors()); got != n/2+1 {
		t.Errorf("colors = %d", got)
	}
	long := model.Color(n / 2)
	if d, _ := seq.DelayBound(long); d != 1<<k {
		t.Errorf("long delay = %d", d)
	}
	if got := seq.JobsOfColor(long); got != 1<<k {
		t.Errorf("long jobs = %d, want 2^k", got)
	}
	// Short colors: Δ jobs per multiple of 2^j over 2^k rounds.
	if got := seq.JobsOfColor(0); int64(got) != delta*(1<<(k-j)) {
		t.Errorf("short jobs = %d", got)
	}
}

func TestDeltaLRUAdversaryRejectsBadParams(t *testing.T) {
	if _, err := DeltaLRUAdversary(7, 4, 6, 9); err == nil {
		t.Error("odd n accepted")
	}
	if _, err := DeltaLRUAdversary(8, 4, 2, 9); err == nil {
		t.Error("2^(j+1) <= nΔ accepted")
	}
	if _, err := DeltaLRUAdversary(8, 4, 6, 7); err == nil {
		t.Error("2^k <= 2^(j+1) accepted")
	}
}

func TestEDFAdversaryStructure(t *testing.T) {
	n, delta := 4, int64(8)
	j, k := uint(4), uint(7)
	seq, err := EDFAdversary(n, delta, j, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if !seq.IsBatched() {
		t.Error("adversary instance not batched")
	}
	// 1 short color + n/2 long colors.
	if got := len(seq.Colors()); got != n/2+1 {
		t.Errorf("colors = %d", got)
	}
	// Long color p has 2^(k+p-1) jobs and delay 2^(k+p).
	for p := 0; p < n/2; p++ {
		c := model.Color(1 + p)
		if d, _ := seq.DelayBound(c); d != 1<<(k+uint(p)) {
			t.Errorf("long color %d delay = %d", p, d)
		}
		if got := seq.JobsOfColor(c); got != 1<<(k+uint(p)-1) {
			t.Errorf("long color %d jobs = %d", p, got)
		}
	}
}

func TestEDFAdversaryRejectsBadParams(t *testing.T) {
	if _, err := EDFAdversary(4, 8, 2, 7); err == nil {
		t.Error("2^j <= Δ accepted")
	}
	if _, err := EDFAdversary(4, 2, 4, 7); err == nil {
		t.Error("Δ <= n accepted")
	}
}

func TestRandomBatchedProperties(t *testing.T) {
	f := func(seedRaw uint8, rateLimited bool) bool {
		seq, err := RandomBatched(RandomConfig{
			Seed: int64(seedRaw), Delta: 4, Colors: 6, Rounds: 64,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 1.5, RateLimited: rateLimited,
		})
		if err != nil {
			return false
		}
		if seq.Validate() != nil || !seq.IsBatched() || !seq.PowerOfTwoDelays() {
			return false
		}
		if rateLimited && !seq.IsRateLimited() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomGeneralValidates(t *testing.T) {
	seq, err := RandomGeneral(RandomConfig{
		Seed: 1, Delta: 4, Colors: 6, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	cfg := RandomConfig{Seed: 7, Delta: 4, Colors: 5, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.7}
	a, _ := RandomGeneral(cfg)
	b, _ := RandomGeneral(cfg)
	if a.NumJobs() != b.NumJobs() {
		t.Fatal("same seed, different instance")
	}
	cfg.Seed = 8
	c, _ := RandomGeneral(cfg)
	if a.NumJobs() == c.NumJobs() && a.NumRounds() == c.NumRounds() {
		ja, jc := a.Jobs(), c.Jobs()
		same := len(ja) == len(jc)
		for i := 0; same && i < len(ja); i++ {
			same = ja[i] == jc[i]
		}
		if same {
			t.Fatal("different seeds produced identical instances")
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	bad := []RandomConfig{
		{Delta: 0, Colors: 1, Rounds: 1},
		{Delta: 1, Colors: 0, Rounds: 1},
		{Delta: 1, Colors: 1, Rounds: 0},
		{Delta: 1, Colors: 1, Rounds: 1, MinDelayExp: 3, MaxDelayExp: 1},
		{Delta: 1, Colors: 1, Rounds: 1, Load: -1},
	}
	for i, cfg := range bad {
		if _, err := RandomBatched(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
		if _, err := RandomGeneral(cfg); err == nil {
			t.Errorf("config %d accepted by RandomGeneral: %+v", i, cfg)
		}
	}
}

func TestZipfWeightsSkew(t *testing.T) {
	w := colorWeights(RandomConfig{Colors: 10, ZipfS: 1.8})
	if w[0] <= w[9] {
		t.Errorf("zipf weights not decreasing: %v", w)
	}
	flat := colorWeights(RandomConfig{Colors: 10})
	for _, v := range flat {
		if v != 1 {
			t.Errorf("flat weights = %v", flat)
		}
	}
}

func TestBackgroundShortTermStructure(t *testing.T) {
	seq, err := BackgroundShortTerm(BackgroundConfig{
		Seed: 1, Delta: 8, ShortColors: 4, ShortDelay: 8,
		BackgroundColors: 2, BackgroundDelay: 256,
		Rounds: 512, BurstProb: 0.5, BackgroundJobs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if !seq.IsBatched() {
		t.Error("scenario not batched")
	}
	// Background colors are 0..1 with delay 256.
	if d, _ := seq.DelayBound(0); d != 256 {
		t.Errorf("background delay = %d", d)
	}
	if d, _ := seq.DelayBound(2); d != 8 {
		t.Errorf("short delay = %d", d)
	}
}

func TestBackgroundConfigValidation(t *testing.T) {
	_, err := BackgroundShortTerm(BackgroundConfig{
		Seed: 1, Delta: 8, ShortColors: 1, ShortDelay: 8,
		BackgroundColors: 1, BackgroundDelay: 4, // <= short delay
		Rounds: 64, BurstProb: 0.5, BackgroundJobs: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "must exceed") {
		t.Errorf("err = %v", err)
	}
}

func TestPhaseShiftStructure(t *testing.T) {
	seq, err := PhaseShift(PhaseShiftConfig{
		Seed: 1, Delta: 4, Colors: 9, PhaseLen: 32, Phases: 3,
		ActivePerPhase: 3, Delay: 4, Load: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.NumRounds() > 3*32 {
		t.Errorf("rounds = %d", seq.NumRounds())
	}
}

func TestPhaseShiftValidation(t *testing.T) {
	if _, err := PhaseShift(PhaseShiftConfig{Delta: 1, Colors: 3, PhaseLen: 8, Phases: 1, ActivePerPhase: 9, Delay: 2}); err == nil {
		t.Error("ActivePerPhase > Colors accepted")
	}
	if _, err := PhaseShift(PhaseShiftConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig, err := RandomGeneral(RandomConfig{
		Seed: 5, Delta: 3, Colors: 4, Rounds: 32,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumJobs() != orig.NumJobs() || back.Delta() != orig.Delta() {
		t.Fatalf("roundtrip changed instance: %d/%d jobs", back.NumJobs(), orig.NumJobs())
	}
	for r := int64(0); r < orig.NumRounds(); r++ {
		if len(back.Request(r)) != len(orig.Request(r)) {
			t.Fatalf("round %d: %d != %d jobs", r, len(back.Request(r)), len(orig.Request(r)))
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		orig, err := RandomBatched(RandomConfig{
			Seed: int64(seedRaw), Delta: 2, Colors: 3, Rounds: 32,
			MinDelayExp: 1, MaxDelayExp: 2, Load: 0.8, RateLimited: true,
		})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if WriteTrace(&buf, orig) != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if back.NumJobs() != orig.NumJobs() {
			return false
		}
		// Per-color delay bounds and counts survive.
		for _, c := range orig.Colors() {
			do, _ := orig.DelayBound(c)
			db, ok := back.DelayBound(c)
			if !ok || do != db || orig.JobsOfColor(c) != back.JobsOfColor(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTraceDecodeErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"delta":1,"colors":[{"id":0,"delay":0}],"requests":[]}`,
		`{"delta":1,"colors":[],"requests":[{"round":0,"jobs":[{"color":7,"count":1}]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestSamplePoissonishMeanRoughlyPreserved(t *testing.T) {
	rngSeq, err := RandomBatched(RandomConfig{
		Seed: 9, Delta: 2, Colors: 1, Rounds: 4096,
		MinDelayExp: 1, MaxDelayExp: 1, Load: 0.5, RateLimited: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected jobs: load(0.5) * D(2) per batch * 2048 batches = 2048.
	got := float64(rngSeq.NumJobs())
	if got < 1500 || got > 2600 {
		t.Errorf("generated %v jobs, want ~2048", got)
	}
}

// TestTracePreservesCanonicalJobIDs: a canonical sequence survives the trace
// round trip with identical job IDs, so saved schedules stay replayable.
func TestTracePreservesCanonicalJobIDs(t *testing.T) {
	orig, err := RandomGeneral(RandomConfig{
		Seed: 13, Delta: 3, Colors: 5, Rounds: 48,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	canon := orig.Canonical()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, canon); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := canon.Jobs(), back.Jobs()
	if len(ja) != len(jb) {
		t.Fatalf("job counts differ: %d vs %d", len(ja), len(jb))
	}
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, ja[i], jb[i])
		}
	}
}
