package workload

import (
	"fmt"
	"math"
	"math/rand"

	"rrsched/internal/model"
)

// RandomConfig parameterizes the randomized generators. All generators are
// deterministic given Seed.
type RandomConfig struct {
	Seed   int64
	Delta  int64
	Colors int
	// Rounds is the number of arrival rounds to generate.
	Rounds int64
	// MinDelayExp/MaxDelayExp bound the per-color delay bounds to
	// 2^MinDelayExp .. 2^MaxDelayExp (inclusive), chosen uniformly per color.
	MinDelayExp uint
	MaxDelayExp uint
	// Load is the expected number of jobs per color per delay-bound period,
	// as a fraction of the delay bound (1.0 means a color fully loads one
	// resource on average).
	Load float64
	// ZipfS, if > 1, skews per-color load by a Zipf distribution with
	// parameter ZipfS (color popularity ranks follow the color order).
	ZipfS float64
	// RateLimited caps each batch at D_ℓ jobs.
	RateLimited bool
	// PowerOfTwoOnly forces power-of-two delay bounds (always true when both
	// exponent bounds are used); setting MinDelayExp == MaxDelayExp gives
	// uniform delay bounds.
	_ struct{}
}

func (c RandomConfig) validate() error {
	if c.Delta <= 0 {
		return fmt.Errorf("workload: non-positive Delta %d", c.Delta)
	}
	if c.Colors <= 0 {
		return fmt.Errorf("workload: need at least one color")
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("workload: need at least one round")
	}
	if c.MinDelayExp > c.MaxDelayExp {
		return fmt.Errorf("workload: MinDelayExp > MaxDelayExp")
	}
	if c.Load < 0 {
		return fmt.Errorf("workload: negative load")
	}
	return nil
}

// colorDelays samples per-color power-of-two delay bounds.
func colorDelays(rng *rand.Rand, cfg RandomConfig) []int64 {
	delays := make([]int64, cfg.Colors)
	for i := range delays {
		exp := cfg.MinDelayExp
		if cfg.MaxDelayExp > cfg.MinDelayExp {
			exp += uint(rng.Intn(int(cfg.MaxDelayExp-cfg.MinDelayExp) + 1))
		}
		delays[i] = int64(1) << exp
	}
	return delays
}

// colorWeights returns per-color load multipliers (Zipf-skewed if requested),
// normalized to mean 1.
func colorWeights(cfg RandomConfig) []float64 {
	w := make([]float64, cfg.Colors)
	if cfg.ZipfS <= 1 {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		sum += w[i]
	}
	for i := range w {
		w[i] *= float64(cfg.Colors) / sum
	}
	return w
}

// RandomBatched generates a batched instance [Δ | 1 | D_ℓ | D_ℓ]: jobs of
// color ℓ arrive only at multiples of D_ℓ, in batches whose expected size is
// Load · weight_ℓ · D_ℓ (Poisson-like via a geometric mixture). With
// cfg.RateLimited the batch size is capped at D_ℓ, producing a rate-limited
// instance.
func RandomBatched(cfg RandomConfig) (*model.Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	delays := colorDelays(rng, cfg)
	weights := colorWeights(cfg)
	b := model.NewBuilder(cfg.Delta)
	for c := 0; c < cfg.Colors; c++ {
		d := delays[c]
		mean := cfg.Load * weights[c] * float64(d)
		for r := int64(0); r < cfg.Rounds; r += d {
			n := samplePoissonish(rng, mean)
			if cfg.RateLimited && int64(n) > d {
				n = int(d)
			}
			if n > 0 {
				b.Add(r, model.Color(c), d, n)
			}
		}
	}
	return b.Build()
}

// RandomGeneral generates a general instance [Δ | 1 | D_ℓ | 1]: jobs of
// color ℓ arrive at arbitrary rounds with per-round intensity
// Load · weight_ℓ (so a color's expected load per delay period matches
// RandomBatched).
func RandomGeneral(cfg RandomConfig) (*model.Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	delays := colorDelays(rng, cfg)
	weights := colorWeights(cfg)
	b := model.NewBuilder(cfg.Delta)
	for c := 0; c < cfg.Colors; c++ {
		mean := cfg.Load * weights[c]
		for r := int64(0); r < cfg.Rounds; r++ {
			if n := samplePoissonish(rng, mean); n > 0 {
				b.Add(r, model.Color(c), delays[c], n)
			}
		}
	}
	return b.Build()
}

// samplePoissonish samples a nonnegative integer with the given mean using
// a simple inversion-free scheme: the integer part is deterministic and the
// fractional part is a Bernoulli trial, then a geometric jitter spreads
// bursts. It avoids math.Exp while keeping the mean exact.
func samplePoissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	base := int(mean)
	frac := mean - float64(base)
	n := base
	if rng.Float64() < frac {
		n++
	}
	// Burst jitter: move mass between adjacent rounds without changing the
	// long-run mean: with probability 1/4 double this sample, with
	// probability 1/4 zero it.
	switch rng.Intn(4) {
	case 0:
		n *= 2
	case 1:
		n = 0
	}
	return n
}
