package ckptstore

import (
	"bytes"
	"testing"
)

// FuzzDecodeManifest pins that arbitrary bytes never panic the manifest
// decoder, and that anything it accepts re-encodes canonically.
func FuzzDecodeManifest(f *testing.F) {
	seed, err := EncodeManifest(&Manifest{
		Schema: ManifestSchema, Shard: 1, Shards: 4, Round: 9, PlacementEpoch: 1,
		Tenants: []TenantRef{
			{Name: "a", Chunk: FormatChunkID(0xbeef), Chain: 2},
			{Name: "b", Chunk: FormatChunkID(0xc01d), Evicted: true, Epoch: 3, Class: "batch"},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"schema":"rrckpt/v1","shard":0,"shards":1,"round":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		enc, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest fails to re-encode: %v", err)
		}
		m2, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding fails to decode: %v", err)
		}
		enc2, err := EncodeManifest(m2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatal("manifest canonical encoding is not a fixed point")
		}
	})
}

// FuzzChunkStore pins that the chunk container and delta codec never panic on
// arbitrary bytes, and that a store fed an arbitrary chunk file under a
// committed ID either refuses it or resolves without reading outside the
// store's own committed state.
func FuzzChunkStore(f *testing.F) {
	full, _ := EncodeFull([]byte(`{"round":1}`))
	ops := MakeDelta([]byte(`{"round":1}`), []byte(`{"round":2}`))
	delta, _ := EncodeDelta(Hash64(full), ops)
	f.Add(full, []byte(`{"round":1}`))
	f.Add(delta, ops)
	f.Add([]byte("rrck\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00"), []byte{0x80})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, chunk, ops []byte) {
		c, err := DecodeChunk(chunk)
		if err == nil && c.Kind == KindFull {
			// A decodable full chunk must verify only under its true address.
			if err := VerifyChunk(Hash64(chunk), chunk); err != nil {
				t.Fatalf("chunk rejects its own content address: %v", err)
			}
		}
		// The delta codec must error, never panic, on arbitrary ops.
		if out, err := ApplyDelta(chunk, ops); err == nil {
			if len(out) > MaxChunkLen {
				t.Fatalf("ApplyDelta produced %d bytes past the bound", len(out))
			}
		}
		// An in-memory store must refuse mislabeled chunks and resolve only
		// committed state.
		m := NewMemStore(0)
		if err := m.Add(Hash64(chunk), chunk); err == nil {
			if _, _, err := m.Resolve(Hash64(chunk)); err != nil {
				// A delta whose parent is absent resolves to an error — fine;
				// the invariant is no panic and no fabricated payload.
				_ = err
			}
		}
	})
}

// FuzzDecodeBundle pins that arbitrary bytes never panic the bundle decoder
// and that every chunk in an accepted bundle verifies.
func FuzzDecodeBundle(f *testing.F) {
	manifest, _ := EncodeManifest(&Manifest{Schema: ManifestSchema, Shard: 0, Shards: 1, Round: 1})
	enc1, id1 := EncodeFull([]byte("a"))
	bundle, err := EncodeBundle(manifest, map[uint64][]byte{id1: enc1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bundle)
	f.Add([]byte("rrcb\x01"))
	f.Add([]byte(`{"schema":"rrserve-state/v1"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(data)
		if err != nil {
			return
		}
		for id, chunk := range b.Chunks {
			if err := VerifyChunk(id, chunk); err != nil {
				t.Fatalf("accepted bundle holds unverified chunk: %v", err)
			}
		}
	})
}
