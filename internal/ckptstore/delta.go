package ckptstore

import (
	"encoding/binary"
	"fmt"
)

// The delta codec is a prefix/suffix diff: a delta records how many leading
// and trailing bytes the target shares with its parent and carries only the
// middle verbatim. Tenant checkpoint payloads are canonical JSON whose edits
// between cuts are localized (a round counter, a few queue entries, appended
// decisions), so the shared prefix and suffix absorb most of the bytes — and
// the codec stays trivially deterministic and linear-time, which the cut path
// (inside the shard goroutine, between rounds) requires.
//
// Encoding: uvarint prefixLen, uvarint suffixLen, middle bytes (to the end of
// the ops). ApplyDelta validates every length against the parent before
// allocating, errors on any inconsistency, and never panics on arbitrary
// bytes — the FuzzChunkStore target pins that.

// MakeDelta encodes target as a delta against parent. The result is always
// valid to apply, but only worth storing when shorter than the target; the
// store's put path makes that call.
func MakeDelta(parent, target []byte) []byte {
	prefix := 0
	max := len(parent)
	if len(target) < max {
		max = len(target)
	}
	for prefix < max && parent[prefix] == target[prefix] {
		prefix++
	}
	suffix := 0
	for suffix < max-prefix && parent[len(parent)-1-suffix] == target[len(target)-1-suffix] {
		suffix++
	}
	mid := target[prefix : len(target)-suffix]
	ops := make([]byte, 0, 2*binary.MaxVarintLen64+len(mid))
	ops = binary.AppendUvarint(ops, uint64(prefix))
	ops = binary.AppendUvarint(ops, uint64(suffix))
	ops = append(ops, mid...)
	return ops
}

// ApplyDelta reconstructs the target payload from a parent payload and delta
// ops. Malformed ops (truncated varints, lengths exceeding the parent or the
// chunk bound) are errors, never panics.
func ApplyDelta(parent, ops []byte) ([]byte, error) {
	prefix, n := binary.Uvarint(ops)
	if n <= 0 {
		return nil, fmt.Errorf("ckptstore: delta truncated in prefix length")
	}
	ops = ops[n:]
	suffix, n := binary.Uvarint(ops)
	if n <= 0 {
		return nil, fmt.Errorf("ckptstore: delta truncated in suffix length")
	}
	mid := ops[n:]
	if prefix > uint64(len(parent)) || suffix > uint64(len(parent))-prefix {
		return nil, fmt.Errorf("ckptstore: delta claims prefix %d + suffix %d of a %d-byte parent", prefix, suffix, len(parent))
	}
	total := prefix + suffix + uint64(len(mid))
	if total > MaxChunkLen {
		return nil, fmt.Errorf("ckptstore: delta reconstructs %d bytes, exceeding the %d-byte bound", total, MaxChunkLen)
	}
	out := make([]byte, 0, total)
	out = append(out, parent[:prefix]...)
	out = append(out, mid...)
	out = append(out, parent[len(parent)-int(suffix):]...)
	return out, nil
}
