package ckptstore

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// A bundle is the dispatcher-wire form of an incremental checkpoint: the
// shard's manifest plus whichever chunks the receiver has not acknowledged
// yet. It replaces pushing the full flattened shard state each checkpoint —
// a steady-state push carries only the dirty tenants' delta chunks and a
// small manifest. The bundle magic is distinct from '{', so a receiver can
// sniff a push body and fall back to the legacy JSON checkpoint unchanged.

// bundleMagic opens every encoded bundle.
const bundleMagic = "rrcb"

// bundleVersion is the bundle container version.
const bundleVersion = 1

// MaxBundleLen bounds one encoded bundle.
const MaxBundleLen = 256 << 20

// maxBundleChunks bounds the chunk table of one bundle.
const maxBundleChunks = 1 << 24

// Bundle is a decoded checkpoint bundle.
type Bundle struct {
	Manifest []byte            // encoded manifest (not yet validated)
	Chunks   map[uint64][]byte // encoded chunks by content address, all verified
}

// IsBundle reports whether data starts like an encoded bundle. It reads only
// the magic, so it is safe to call on arbitrary push bodies.
func IsBundle(data []byte) bool {
	return len(data) >= len(bundleMagic)+1 && string(data[:len(bundleMagic)]) == bundleMagic
}

// EncodeBundle serializes a manifest and a set of encoded chunks. Chunks are
// written in ascending ID order so the encoding is a pure function of the
// content.
func EncodeBundle(manifest []byte, chunks map[uint64][]byte) ([]byte, error) {
	if len(manifest) == 0 || len(manifest) > MaxManifestLen {
		return nil, fmt.Errorf("ckptstore: bundle manifest of %d bytes out of range", len(manifest))
	}
	ids := make([]uint64, 0, len(chunks))
	for id := range chunks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, len(bundleMagic)+1+binary.MaxVarintLen64+len(manifest))
	buf = append(buf, bundleMagic...)
	buf = append(buf, bundleVersion)
	buf = binary.AppendUvarint(buf, uint64(len(manifest)))
	buf = append(buf, manifest...)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		data := chunks[id]
		if err := VerifyChunk(id, data); err != nil {
			return nil, err
		}
		var p [8]byte
		binary.BigEndian.PutUint64(p[:], id)
		buf = append(buf, p[:]...)
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
	}
	if len(buf) > MaxBundleLen {
		return nil, fmt.Errorf("ckptstore: bundle of %d bytes exceeds the %d-byte bound", len(buf), MaxBundleLen)
	}
	return buf, nil
}

// DecodeBundle parses an encoded bundle, verifying every chunk against its
// claimed content address. Malformed input is an error, never a panic, and no
// partially-decoded state escapes. The manifest bytes are returned unvalidated
// so the caller can decide how to treat an unknown manifest schema.
func DecodeBundle(data []byte) (*Bundle, error) {
	if len(data) > MaxBundleLen {
		return nil, fmt.Errorf("ckptstore: bundle of %d bytes exceeds the %d-byte bound", len(data), MaxBundleLen)
	}
	if !IsBundle(data) {
		return nil, fmt.Errorf("ckptstore: not a bundle (bad magic)")
	}
	if v := data[len(bundleMagic)]; v != bundleVersion {
		return nil, fmt.Errorf("ckptstore: bundle version %d, want %d", v, bundleVersion)
	}
	rest := data[len(bundleMagic)+1:]
	mlen, n := binary.Uvarint(rest)
	if n <= 0 || mlen == 0 || mlen > MaxManifestLen {
		return nil, fmt.Errorf("ckptstore: bundle has bad manifest length")
	}
	rest = rest[n:]
	if uint64(len(rest)) < mlen {
		return nil, fmt.Errorf("ckptstore: bundle truncated in manifest")
	}
	manifest := append([]byte(nil), rest[:mlen]...)
	rest = rest[mlen:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > maxBundleChunks {
		return nil, fmt.Errorf("ckptstore: bundle has bad chunk count")
	}
	rest = rest[n:]
	chunks := make(map[uint64][]byte, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 8 {
			return nil, fmt.Errorf("ckptstore: bundle truncated in chunk id")
		}
		id := binary.BigEndian.Uint64(rest[:8])
		rest = rest[8:]
		clen, n := binary.Uvarint(rest)
		if n <= 0 || clen > MaxChunkLen {
			return nil, fmt.Errorf("ckptstore: bundle chunk %016x has bad length", id)
		}
		rest = rest[n:]
		if uint64(len(rest)) < clen {
			return nil, fmt.Errorf("ckptstore: bundle truncated in chunk %016x", id)
		}
		chunk := append([]byte(nil), rest[:clen]...)
		rest = rest[clen:]
		if err := VerifyChunk(id, chunk); err != nil {
			return nil, err
		}
		if _, dup := chunks[id]; dup {
			return nil, fmt.Errorf("ckptstore: bundle repeats chunk %016x", id)
		}
		chunks[id] = chunk
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ckptstore: bundle carries %d trailing bytes", len(rest))
	}
	return &Bundle{Manifest: manifest, Chunks: chunks}, nil
}
