package ckptstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	payload := []byte(`{"name":"t0","round":42}`)
	enc, id := EncodeFull(payload)
	if err := VerifyChunk(id, enc); err != nil {
		t.Fatalf("VerifyChunk(full): %v", err)
	}
	c, err := DecodeChunk(enc)
	if err != nil {
		t.Fatalf("DecodeChunk(full): %v", err)
	}
	if c.Kind != KindFull || !bytes.Equal(c.Body, payload) {
		t.Fatalf("full chunk round-trip mismatch: kind=%d body=%q", c.Kind, c.Body)
	}

	ops := MakeDelta(payload, []byte(`{"name":"t0","round":43}`))
	encD, idD := EncodeDelta(id, ops)
	if err := VerifyChunk(idD, encD); err != nil {
		t.Fatalf("VerifyChunk(delta): %v", err)
	}
	d, err := DecodeChunk(encD)
	if err != nil {
		t.Fatalf("DecodeChunk(delta): %v", err)
	}
	if d.Kind != KindDelta || d.Parent != id || !bytes.Equal(d.Body, ops) {
		t.Fatalf("delta chunk round-trip mismatch: kind=%d parent=%x", d.Kind, d.Parent)
	}
}

func TestChunkDecodeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("rr"),
		[]byte("nope" + "\x01\x00"),
		[]byte("rrck\x02\x00"),         // bad version
		[]byte("rrck\x01\x07"),         // unknown kind
		[]byte("rrck\x01\x01\x00\x01"), // delta truncated before parent id
	}
	for i, data := range cases {
		if _, err := DecodeChunk(data); err == nil {
			t.Errorf("case %d: DecodeChunk accepted malformed input %q", i, data)
		}
	}
	enc, id := EncodeFull([]byte("x"))
	if err := VerifyChunk(id+1, enc); err == nil {
		t.Error("VerifyChunk accepted a wrong content address")
	}
}

func TestHash64Stable(t *testing.T) {
	// The address must be stable across processes: pin one known vector.
	if got := Hash64([]byte("rrsched")); got != Hash64([]byte("rrsched")) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64([]byte("a")) == Hash64([]byte("b")) {
		t.Fatal("Hash64 collides on trivial inputs")
	}
	// Payloads differing only in the trailing byte must land far apart.
	a := Hash64([]byte(`{"round":1}`))
	b := Hash64([]byte(`{"round":2}`))
	if a == b {
		t.Fatal("Hash64 collides on trailing-byte edit")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := []struct{ parent, target string }{
		{"", ""},
		{"", "abc"},
		{"abc", ""},
		{"abc", "abc"},
		{`{"round":1,"queued":[]}`, `{"round":2,"queued":[]}`},
		{`{"round":1,"queued":[]}`, `{"round":1,"queued":["j1"]}`},
		{"aaaa", "aa"},
		{"aa", "aaaa"},
		{"xyz", "pqr"},
	}
	for _, c := range cases {
		ops := MakeDelta([]byte(c.parent), []byte(c.target))
		got, err := ApplyDelta([]byte(c.parent), ops)
		if err != nil {
			t.Fatalf("ApplyDelta(%q→%q): %v", c.parent, c.target, err)
		}
		if string(got) != c.target {
			t.Fatalf("delta round-trip %q→%q produced %q", c.parent, c.target, got)
		}
	}
}

func TestApplyDeltaRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x80},             // truncated uvarint
		{0x05},             // missing suffix length
		{0x05, 0x05},       // prefix+suffix beyond parent
		{0x02, 0x02, 0x41}, // prefix+suffix beyond 3-byte parent
	}
	for i, ops := range cases {
		if _, err := ApplyDelta([]byte("abc"), ops); err == nil {
			t.Errorf("case %d: ApplyDelta accepted malformed ops", i)
		}
	}
}

func TestStorePutDedupeAndChain(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	base := []byte(`{"name":"t0","round":0,"queued":["a","b","c"]}`)
	r0, err := s.PutFull(base)
	if err != nil {
		t.Fatal(err)
	}
	if !r0.Wrote || r0.Ref.Chain != 0 {
		t.Fatalf("first put: %+v", r0)
	}
	// Identical bytes dedupe.
	r0b, err := s.PutFull(base)
	if err != nil {
		t.Fatal(err)
	}
	if r0b.Wrote || r0b.Ref != r0.Ref {
		t.Fatalf("dedupe put: %+v", r0b)
	}

	// Successive small edits chain as deltas until the bound folds them.
	parent := r0.Ref
	folded := false
	for i := 1; i <= 5; i++ {
		payload := []byte(fmt.Sprintf(`{"name":"t0","round":%d,"queued":["a","b","c"]}`, i))
		res, err := s.Put(payload, parent)
		if err != nil {
			t.Fatal(err)
		}
		got, chain, err := s.Resolve(res.Ref.ID)
		if err != nil {
			t.Fatalf("resolve after put %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("resolve after put %d: got %q want %q", i, got, payload)
		}
		if chain != res.Ref.Chain {
			t.Fatalf("put %d: walked chain %d, ref says %d", i, chain, res.Ref.Chain)
		}
		if res.Folded {
			folded = true
			if res.Ref.Chain != 0 || res.Delta {
				t.Fatalf("folded put %d is not a full chunk: %+v", i, res)
			}
		} else if i <= 3 && (!res.Delta || res.Ref.Chain != i) {
			t.Fatalf("put %d expected delta chain %d: %+v", i, i, res)
		}
		if res.Ref.Chain > 3 {
			t.Fatalf("put %d exceeded the chain bound: %+v", i, res)
		}
		parent = res.Ref
	}
	if !folded {
		t.Fatal("chain bound of 3 never folded across 5 delta puts")
	}
}

func TestStoreGCKeepsClosureRemovesOrphans(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := s.PutFull([]byte("base-payload-with-some-length"))
	r1, err := s.Put([]byte("base-payload-with-more-length"), r0.Ref)
	if err != nil {
		t.Fatal(err)
	}
	orphan, _ := s.PutFull([]byte("stranded by a crash before the manifest rename"))
	removed, err := s.GC([]uint64{r1.Ref.ID})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d chunks, want 1", removed)
	}
	if s.Has(orphan.Ref.ID) {
		t.Fatal("orphan chunk survived GC")
	}
	// The delta's parent is in the closure and must survive.
	if !s.Has(r0.Ref.ID) || !s.Has(r1.Ref.ID) {
		t.Fatal("GC removed live chunks")
	}
	got, _, err := s.Resolve(r1.Ref.ID)
	if err != nil || string(got) != "base-payload-with-more-length" {
		t.Fatalf("resolve after GC: %q, %v", got, err)
	}
}

func TestStoreRejectsCorruptChunk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.PutFull([]byte("payload"))
	path := filepath.Join(dir, fmt.Sprintf("%016x.chunk", res.Ref.ID))
	if err := os.WriteFile(path, []byte("rrck\x01\x00corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Resolve(res.Ref.ID); err == nil {
		t.Fatal("Resolve accepted a chunk whose content no longer matches its address")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Schema:         ManifestSchema,
		Shard:          1,
		Shards:         4,
		Round:          17,
		PlacementEpoch: 2,
		Tenants: []TenantRef{
			{Name: "zeta", Chunk: FormatChunkID(0xfeed), Chain: 2},
			{Name: "alpha", Chunk: FormatChunkID(0xbeef)},
			{Name: "cold", Chunk: FormatChunkID(0xc01d), Evicted: true, Epoch: 3, Class: "batch"},
		},
	}
	enc, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 17 || got.PlacementEpoch != 2 || len(got.Tenants) != 3 {
		t.Fatalf("manifest round-trip: %+v", got)
	}
	if got.Tenants[0].Name != "alpha" || got.Tenants[2].Name != "zeta" {
		t.Fatalf("manifest tenants not sorted: %+v", got.Tenants)
	}
	enc2, err := EncodeManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("manifest re-encode is not byte-identical")
	}
	roots, err := got.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 3 {
		t.Fatalf("roots: %v", roots)
	}
}

func TestManifestValidation(t *testing.T) {
	valid := func() *Manifest {
		return &Manifest{
			Schema: ManifestSchema, Shard: 0, Shards: 1, Round: 5,
			Tenants: []TenantRef{{Name: "a", Chunk: FormatChunkID(1)}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"schema", func(m *Manifest) { m.Schema = "rrckpt/v0" }},
		{"shard range", func(m *Manifest) { m.Shard = 1 }},
		{"negative round", func(m *Manifest) { m.Round = -1 }},
		{"empty name", func(m *Manifest) { m.Tenants[0].Name = "" }},
		{"bad chunk hex", func(m *Manifest) { m.Tenants[0].Chunk = "zz" }},
		{"negative chain", func(m *Manifest) { m.Tenants[0].Chain = -1 }},
		{"epoch past round", func(m *Manifest) { m.Tenants[0].Evicted = true; m.Tenants[0].Epoch = 9 }},
		{"evicted fields without flag", func(m *Manifest) { m.Tenants[0].Class = "batch" }},
		{"duplicate names", func(m *Manifest) {
			m.Tenants = append(m.Tenants, TenantRef{Name: "a", Chunk: FormatChunkID(2)})
		}},
	}
	for _, c := range cases {
		m := valid()
		c.mut(m)
		if _, err := EncodeManifest(m); err == nil {
			t.Errorf("%s: EncodeManifest accepted an invalid manifest", c.name)
		}
	}
	if _, err := DecodeManifest([]byte(`{`)); err == nil {
		t.Error("DecodeManifest accepted truncated JSON")
	}
}

func TestDecLogAppendReadRotate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDecLog(dir, 64) // tiny segments to force rotation
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 20; r++ {
		tenant := fmt.Sprintf("t%d", r%3)
		if err := l.Append(tenant, r, []byte(fmt.Sprintf(`{"Round":%d}`, r))); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.ReadTenant("t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("t1 has %d records, want 7", len(recs))
	}
	for i, rec := range recs {
		want := int64(3*i + 1)
		if rec.Round != want || string(rec.Payload) != fmt.Sprintf(`{"Round":%d}`, want) {
			t.Fatalf("t1 record %d: %+v", i, rec)
		}
	}
	segs, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("64-byte segments never rotated: %v", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and keep appending; history must be intact.
	l2, err := OpenDecLog(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append("t1", 22, []byte(`{"Round":22}`)); err != nil {
		t.Fatal(err)
	}
	recs, err = l2.ReadTenant("t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 || recs[7].Round != 22 {
		t.Fatalf("after reopen t1 has %d records (last %+v)", len(recs), recs[len(recs)-1])
	}
	if l2.Bytes() <= 0 {
		t.Fatal("Bytes() not tracking log size")
	}
	_ = l2.Close()
}

func TestDecLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDecLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("good", 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn record at the tail.
	path := filepath.Join(dir, "seg-00000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x04, 't', 'o'}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	l2, err := OpenDecLog(dir, 0)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	recs, err := l2.ReadTenant("good")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Round != 1 {
		t.Fatalf("torn-tail recovery lost the committed record: %+v", recs)
	}
	if err := l2.Append("good", 2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	recs, _ = l2.ReadTenant("good")
	if len(recs) != 2 {
		t.Fatalf("append after torn-tail recovery: %+v", recs)
	}
	_ = l2.Close()
}

func TestDecLogTruncateFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDecLog(dir, 48)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 10; r++ {
		if err := l.Append("t", r, []byte(fmt.Sprintf("p%d", r))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateFrom(6); err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadTenant("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("TruncateFrom(6) left %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.Round != int64(i) {
			t.Fatalf("record %d has round %d", i, rec.Round)
		}
	}
	// Appends continue cleanly after a truncate.
	if err := l.Append("t", 6, []byte("again")); err != nil {
		t.Fatal(err)
	}
	recs, _ = l.ReadTenant("t")
	if len(recs) != 7 || string(recs[6].Payload) != "again" {
		t.Fatalf("append after truncate: %+v", recs)
	}
	_ = l.Close()
}

func TestBundleRoundTrip(t *testing.T) {
	manifest, err := EncodeManifest(&Manifest{
		Schema: ManifestSchema, Shard: 0, Shards: 2, Round: 3,
		Tenants: []TenantRef{{Name: "a", Chunk: FormatChunkID(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	encA, idA := EncodeFull([]byte("payload-a"))
	ops := MakeDelta([]byte("payload-a"), []byte("payload-b"))
	encB, idB := EncodeDelta(idA, ops)
	enc, err := EncodeBundle(manifest, map[uint64][]byte{idA: encA, idB: encB})
	if err != nil {
		t.Fatal(err)
	}
	if !IsBundle(enc) {
		t.Fatal("encoded bundle fails the sniff")
	}
	if IsBundle(manifest) {
		t.Fatal("JSON sniffs as a bundle")
	}
	b, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Manifest, manifest) || len(b.Chunks) != 2 {
		t.Fatalf("bundle round-trip: %d chunks", len(b.Chunks))
	}
	if !bytes.Equal(b.Chunks[idA], encA) || !bytes.Equal(b.Chunks[idB], encB) {
		t.Fatal("bundle chunk bytes differ")
	}

	// A corrupted chunk is refused at decode.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xff
	if _, err := DecodeBundle(bad); err == nil {
		t.Fatal("DecodeBundle accepted a corrupted chunk")
	}
	if _, err := DecodeBundle(enc[:len(enc)-4]); err == nil {
		t.Fatal("DecodeBundle accepted a truncated bundle")
	}
}

func TestMemStorePutResolvePrune(t *testing.T) {
	m := NewMemStore(2)
	r0, err := m.Put([]byte("state-zero-with-length"), Ref{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.Put([]byte("state-one!-with-length"), r0.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Delta || r1.Ref.Chain != 1 {
		t.Fatalf("expected delta: %+v", r1)
	}
	got, _, err := m.Resolve(r1.Ref.ID)
	if err != nil || string(got) != "state-one!-with-length" {
		t.Fatalf("resolve: %q, %v", got, err)
	}
	// Put against a pruned parent falls back to a self-contained full chunk.
	m.Prune(map[uint64]bool{})
	if m.Len() != 0 {
		t.Fatalf("prune left %d chunks", m.Len())
	}
	r2, err := m.Put([]byte("state-two-with-length!"), r1.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Delta {
		t.Fatalf("put against pruned parent produced a delta: %+v", r2)
	}
	got, _, err = m.Resolve(r2.Ref.ID)
	if err != nil || string(got) != "state-two-with-length!" {
		t.Fatalf("resolve after prune: %q, %v", got, err)
	}
	// Add verifies content addresses.
	enc, id := EncodeFull([]byte("x"))
	if err := m.Add(id+1, enc); err == nil {
		t.Fatal("Add accepted a mislabeled chunk")
	}
	if err := m.Add(id, enc); err != nil {
		t.Fatal(err)
	}
}
