package ckptstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rrsched/internal/atomicio"
)

// DefaultSegmentBytes is the decision-log segment rotation threshold when the
// caller does not configure one.
const DefaultSegmentBytes = 4 << 20

// maxLogRecordLen bounds one decision-log record (tenant name plus payload).
const maxLogRecordLen = 1 << 20

// LogRecord is one appended decision: the global round it was decided at and
// its serialized payload. The log stores only non-trivial decisions; rounds
// absent for a tenant were empty, and the reader synthesizes them — that
// elision is what keeps the log linear in decisions made rather than in
// tenants × rounds.
type LogRecord struct {
	Round   int64
	Payload []byte
}

// DecLog is one shard's streaming decision log: append-only segment files
// (seg-00000.log, seg-00001.log, ...) holding length-prefixed records. The
// current segment's tail is buffered in memory and flushed before any read,
// so /v1/decisions serves from disk plus the in-memory tail while resident
// history no longer grows the heap. A torn tail record (crash mid-append) is
// truncated away at open; whole-round rollback happens via TruncateFrom,
// driven by the round of the last committed manifest.
//
// Not safe for concurrent use: each log is owned by its shard goroutine.
type DecLog struct {
	dir     string
	maxSeg  int64
	f       *os.File
	w       *bufio.Writer
	seg     int
	segSize int64
	total   int64
}

// OpenDecLog opens (creating if needed) the decision log rooted at dir.
// maxSeg is the segment rotation threshold; 0 selects DefaultSegmentBytes.
// Existing segments are scanned; a torn record at the tail of the last
// segment is truncated away, while corruption in any earlier segment is an
// error (earlier segments were sealed by a successful rotation).
func OpenDecLog(dir string, maxSeg int64) (*DecLog, error) {
	if maxSeg < 0 {
		return nil, fmt.Errorf("ckptstore: negative segment bound %d", maxSeg)
	}
	if maxSeg == 0 {
		maxSeg = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptstore: creating decision log dir: %w", err)
	}
	l := &DecLog{dir: dir, maxSeg: maxSeg}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		data, err := os.ReadFile(l.segPath(seg))
		if err != nil {
			return nil, fmt.Errorf("ckptstore: reading decision log segment %d: %w", seg, err)
		}
		good, scanErr := scanRecords(data, nil)
		if scanErr != nil {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("ckptstore: decision log segment %d corrupt mid-stream: %w", seg, scanErr)
			}
			// Torn tail: a crash interrupted the last append. Keep the good
			// prefix.
			if err := os.Truncate(l.segPath(seg), good); err != nil {
				return nil, fmt.Errorf("ckptstore: truncating torn decision log tail: %w", err)
			}
			data = data[:good]
		}
		l.total += int64(len(data))
		if i == len(segs)-1 {
			l.seg = seg
			l.segSize = int64(len(data))
		}
	}
	if len(segs) == 0 {
		l.seg = 0
		l.segSize = 0
	}
	return l, nil
}

func (l *DecLog) segPath(seg int) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%05d.log", seg))
}

// segments lists existing segment indices in ascending order.
func (l *DecLog) segments() ([]int, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: scanning decision log dir: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var i int
		if n, err := fmt.Sscanf(e.Name(), "seg-%d.log", &i); err != nil || n != 1 {
			continue
		}
		if e.Name() != fmt.Sprintf("seg-%05d.log", i) {
			continue
		}
		segs = append(segs, i)
	}
	sort.Ints(segs)
	return segs, nil
}

// scanRecords walks encoded records, invoking fn (when non-nil) per record.
// It returns the offset of the last complete record and an error describing
// the first malformed or truncated one, if any.
func scanRecords(data []byte, fn func(tenant string, rec LogRecord) error) (int64, error) {
	off := int64(0)
	rest := data
	for len(rest) > 0 {
		tenant, round, payload, n, err := decodeRecord(rest)
		if err != nil {
			return off, err
		}
		if fn != nil {
			if err := fn(tenant, LogRecord{Round: round, Payload: payload}); err != nil {
				return off, err
			}
		}
		rest = rest[n:]
		off += int64(n)
	}
	return off, nil
}

// appendRecord encodes one record: uvarint name length, name, uvarint round,
// uvarint payload length, payload.
func appendRecord(buf []byte, tenant string, round int64, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(tenant)))
	buf = append(buf, tenant...)
	buf = binary.AppendUvarint(buf, uint64(round))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf
}

func decodeRecord(data []byte) (tenant string, round int64, payload []byte, n int, err error) {
	nameLen, k := binary.Uvarint(data)
	if k <= 0 || nameLen > maxLogRecordLen {
		return "", 0, nil, 0, fmt.Errorf("ckptstore: decision log record has bad name length")
	}
	n += k
	if uint64(len(data)-n) < nameLen {
		return "", 0, nil, 0, fmt.Errorf("ckptstore: decision log record truncated in name")
	}
	tenant = string(data[n : n+int(nameLen)])
	n += int(nameLen)
	r, k := binary.Uvarint(data[n:])
	if k <= 0 {
		return "", 0, nil, 0, fmt.Errorf("ckptstore: decision log record truncated in round")
	}
	n += k
	payLen, k := binary.Uvarint(data[n:])
	if k <= 0 || payLen > maxLogRecordLen {
		return "", 0, nil, 0, fmt.Errorf("ckptstore: decision log record has bad payload length")
	}
	n += k
	if uint64(len(data)-n) < payLen {
		return "", 0, nil, 0, fmt.Errorf("ckptstore: decision log record truncated in payload")
	}
	payload = data[n : n+int(payLen)]
	n += int(payLen)
	return tenant, int64(r), payload, n, nil
}

// Append records one decision. The write is buffered; Flush (or any read)
// commits it.
func (l *DecLog) Append(tenant string, round int64, payload []byte) error {
	if round < 0 {
		return fmt.Errorf("ckptstore: negative decision round %d", round)
	}
	if len(tenant) == 0 || len(tenant) > maxLogRecordLen || len(payload) > maxLogRecordLen {
		return fmt.Errorf("ckptstore: decision log record out of bounds (tenant %d bytes, payload %d bytes)", len(tenant), len(payload))
	}
	if l.f == nil {
		if err := l.openSegment(); err != nil {
			return err
		}
	}
	rec := appendRecord(nil, tenant, round, payload)
	if _, err := l.w.Write(rec); err != nil {
		return fmt.Errorf("ckptstore: appending decision record: %w", err)
	}
	l.segSize += int64(len(rec))
	l.total += int64(len(rec))
	if l.segSize >= l.maxSeg {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	return nil
}

func (l *DecLog) openSegment() error {
	f, err := os.OpenFile(l.segPath(l.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ckptstore: opening decision log segment: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

func (l *DecLog) rotate() error {
	if err := l.closeSegment(); err != nil {
		return err
	}
	l.seg++
	l.segSize = 0
	return nil
}

func (l *DecLog) closeSegment() error {
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("ckptstore: flushing decision log: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("ckptstore: closing decision log segment: %w", err)
	}
	l.f = nil
	l.w = nil
	return nil
}

// Flush commits the buffered tail to the current segment file.
func (l *DecLog) Flush() error {
	if l.w == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("ckptstore: flushing decision log: %w", err)
	}
	return nil
}

// Bytes returns the total log size across segments, including the buffered
// tail.
func (l *DecLog) Bytes() int64 { return l.total }

// ReadTenant returns every record appended for one tenant, in append order.
// The buffered tail is flushed first, so the result reflects every Append so
// far.
func (l *DecLog) ReadTenant(tenant string) ([]LogRecord, error) {
	if err := l.Flush(); err != nil {
		return nil, err
	}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	var out []LogRecord
	for _, seg := range segs {
		data, err := os.ReadFile(l.segPath(seg))
		if err != nil {
			return nil, fmt.Errorf("ckptstore: reading decision log segment %d: %w", seg, err)
		}
		if _, err := scanRecords(data, func(name string, rec LogRecord) error {
			if name == tenant {
				out = append(out, LogRecord{Round: rec.Round, Payload: append([]byte(nil), rec.Payload...)})
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("ckptstore: decision log segment %d: %w", seg, err)
		}
	}
	return out, nil
}

// ReadAll walks every record in the log in append order, invoking fn per
// record. The buffered tail is flushed first. Used at boot when a shard-count
// change forces redistributing the whole log across a new ring.
func (l *DecLog) ReadAll(fn func(tenant string, rec LogRecord) error) error {
	if err := l.Flush(); err != nil {
		return err
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		data, err := os.ReadFile(l.segPath(seg))
		if err != nil {
			return fmt.Errorf("ckptstore: reading decision log segment %d: %w", seg, err)
		}
		if _, err := scanRecords(data, func(name string, rec LogRecord) error {
			return fn(name, LogRecord{Round: rec.Round, Payload: append([]byte(nil), rec.Payload...)})
		}); err != nil {
			return fmt.Errorf("ckptstore: decision log segment %d: %w", seg, err)
		}
	}
	return nil
}

// TruncateFrom drops every record at or past round: the restore-time rollback
// to the last committed manifest. Records are not globally round-ordered (a
// fault-in appends a migrated tenant's older records after newer ones), so
// every segment is scanned and rewritten only if it holds a violating record.
func (l *DecLog) TruncateFrom(round int64) error {
	if err := l.closeSegment(); err != nil {
		return err
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	l.total = 0
	for _, seg := range segs {
		path := l.segPath(seg)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("ckptstore: reading decision log segment %d: %w", seg, err)
		}
		var kept []byte
		dirty := false
		if _, err := scanRecords(data, func(name string, rec LogRecord) error {
			if rec.Round >= round {
				dirty = true
				return nil
			}
			kept = appendRecord(kept, name, rec.Round, rec.Payload)
			return nil
		}); err != nil {
			return fmt.Errorf("ckptstore: decision log segment %d: %w", seg, err)
		}
		if dirty {
			if err := atomicio.WriteFile(path, kept, 0o644); err != nil {
				return fmt.Errorf("ckptstore: rewriting decision log segment %d: %w", seg, err)
			}
			data = kept
		}
		l.total += int64(len(data))
		l.seg = seg
		l.segSize = int64(len(data))
	}
	if len(segs) == 0 {
		l.seg = 0
		l.segSize = 0
	}
	return nil
}

// Close flushes and closes the log.
func (l *DecLog) Close() error { return l.closeSegment() }
