package ckptstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rrsched/internal/atomicio"
)

// DefaultMaxChain is the hard bound on delta chain length when the caller
// does not configure one: the eighth consecutive delta cut of a tenant is
// folded back into a full chunk, so a restore never applies more than
// DefaultMaxChain deltas for any tenant.
const DefaultMaxChain = 8

// maxResolveDepth bounds chain walks defensively above any legal chain, so a
// corrupted store with a parent cycle terminates with an error instead of
// recursing forever.
const maxResolveDepth = 1024

// PutResult describes one chunk put.
type PutResult struct {
	// Ref names the committed chunk.
	Ref Ref
	// Wrote reports whether new bytes landed; false means an identical chunk
	// already existed (deduplicated).
	Wrote bool
	// Delta reports whether the chunk was stored as a delta.
	Delta bool
	// Folded reports whether a delta chain hit the length bound and was
	// folded into a full chunk (the compaction event).
	Folded bool
	// Bytes is the encoded chunk size (also counted when deduplicated — it is
	// the size a migration of this chunk would move).
	Bytes int
}

// Store is the on-disk content-addressed chunk store. One store serves every
// shard of a service: chunks are immutable and content-addressed, so sharing
// a directory is what makes reshard migration free of data movement. Writes
// go through internal/atomicio; the mutex serializes them so two shards
// evicting identical tenants never race on one temp file.
type Store struct {
	dir      string
	maxChain int

	mu sync.Mutex
}

// Open opens (creating if needed) a chunk store rooted at dir. maxChain
// bounds delta chains; 0 selects DefaultMaxChain.
func Open(dir string, maxChain int) (*Store, error) {
	if maxChain < 0 {
		return nil, fmt.Errorf("ckptstore: negative max chain %d", maxChain)
	}
	if maxChain == 0 {
		maxChain = DefaultMaxChain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptstore: creating chunk dir: %w", err)
	}
	return &Store{dir: dir, maxChain: maxChain}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.chunk", id))
}

// PutFull stores payload as a full chunk.
func (s *Store) PutFull(payload []byte) (PutResult, error) {
	enc, id := EncodeFull(payload)
	wrote, err := s.write(id, enc)
	if err != nil {
		return PutResult{}, err
	}
	return PutResult{Ref: Ref{ID: id}, Wrote: wrote, Bytes: len(enc)}, nil
}

// Put stores payload, as a delta against parent when that is both legal
// (the chain bound keeps room) and smaller than a full chunk; otherwise as a
// full chunk. A zero parent ID always stores full.
func (s *Store) Put(payload []byte, parent Ref) (PutResult, error) {
	if parent.ID == 0 {
		return s.PutFull(payload)
	}
	if parent.Chain+1 > s.maxChain {
		// Compaction: the chain is at its bound, fold back to a full chunk.
		res, err := s.PutFull(payload)
		if err != nil {
			return PutResult{}, err
		}
		res.Folded = true
		return res, nil
	}
	parentPayload, _, err := s.Resolve(parent.ID)
	if err != nil {
		return PutResult{}, fmt.Errorf("ckptstore: resolving delta parent: %w", err)
	}
	ops := MakeDelta(parentPayload, payload)
	encDelta, deltaID := EncodeDelta(parent.ID, ops)
	encFull, fullID := EncodeFull(payload)
	if len(encDelta) >= len(encFull) {
		wrote, err := s.write(fullID, encFull)
		if err != nil {
			return PutResult{}, err
		}
		return PutResult{Ref: Ref{ID: fullID}, Wrote: wrote, Bytes: len(encFull)}, nil
	}
	wrote, err := s.write(deltaID, encDelta)
	if err != nil {
		return PutResult{}, err
	}
	return PutResult{Ref: Ref{ID: deltaID, Chain: parent.Chain + 1}, Wrote: wrote, Delta: true, Bytes: len(encDelta)}, nil
}

// write commits encoded chunk bytes under their content address, returning
// whether new bytes landed (false = an identical chunk already exists).
func (s *Store) write(id uint64, enc []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path(id)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed dedupe: the bytes are already committed.
		return false, nil
	}
	if err := atomicio.WriteFile(path, enc, 0o644); err != nil {
		return false, fmt.Errorf("ckptstore: writing chunk %016x: %w", id, err)
	}
	return true, nil
}

// Has reports whether a chunk is committed.
func (s *Store) Has(id uint64) bool {
	_, err := os.Stat(s.path(id))
	return err == nil
}

// get reads and verifies one committed chunk.
func (s *Store) get(id uint64) ([]byte, error) {
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("ckptstore: reading chunk %016x: %w", id, err)
	}
	if err := VerifyChunk(id, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Resolve reconstructs the payload committed under id, following delta
// parents, and reports the chain length walked.
func (s *Store) Resolve(id uint64) ([]byte, int, error) {
	return resolveFrom(s.get, id)
}

// resolveFrom walks a chunk's delta chain through an arbitrary fetcher,
// applying deltas child-last. Shared by the disk store, the in-memory pool,
// and bundle flattening.
func resolveFrom(get func(uint64) ([]byte, error), id uint64) ([]byte, int, error) {
	// Collect the chain root-last, bounded against parent cycles.
	var chain []*Chunk
	for depth := 0; ; depth++ {
		if depth > maxResolveDepth {
			return nil, 0, fmt.Errorf("ckptstore: chunk %016x has a delta chain deeper than %d (cycle?)", id, maxResolveDepth)
		}
		data, err := get(id)
		if err != nil {
			return nil, 0, err
		}
		c, err := DecodeChunk(data)
		if err != nil {
			return nil, 0, fmt.Errorf("ckptstore: chunk %016x: %w", id, err)
		}
		chain = append(chain, c)
		if c.Kind == KindFull {
			break
		}
		id = c.Parent
	}
	payload := chain[len(chain)-1].Body
	for i := len(chain) - 2; i >= 0; i-- {
		var err error
		payload, err = ApplyDelta(payload, chain[i].Body)
		if err != nil {
			return nil, 0, err
		}
	}
	// The root's body aliases the read buffer; copy so callers own the bytes.
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, len(chain) - 1, nil
}

// Closure expands roots to the full set of chunk IDs a restore from them may
// read: every root plus every delta parent, transitively.
func (s *Store) Closure(roots []uint64) (map[uint64]bool, error) {
	return closureFrom(s.get, roots)
}

func closureFrom(get func(uint64) ([]byte, error), roots []uint64) (map[uint64]bool, error) {
	live := make(map[uint64]bool, len(roots))
	var walk func(id uint64, depth int) error
	walk = func(id uint64, depth int) error {
		if id == 0 || live[id] {
			return nil
		}
		if depth > maxResolveDepth {
			return fmt.Errorf("ckptstore: chunk %016x parent chain deeper than %d (cycle?)", id, maxResolveDepth)
		}
		data, err := get(id)
		if err != nil {
			return err
		}
		c, err := DecodeChunk(data)
		if err != nil {
			return fmt.Errorf("ckptstore: chunk %016x: %w", id, err)
		}
		live[id] = true
		if c.Kind == KindDelta {
			return walk(c.Parent, depth+1)
		}
		return nil
	}
	for _, id := range roots {
		if err := walk(id, 0); err != nil {
			return nil, err
		}
	}
	return live, nil
}

// GC removes every committed chunk outside the closure of roots. Orphans are
// exactly the chunks a crash can strand between a chunk write and a manifest
// rename: no committed manifest references them, so no restore will ever read
// them, and removing them is safe at any commit point. Returns the number of
// chunks removed.
func (s *Store) GC(roots []uint64) (int, error) {
	live, err := s.Closure(roots)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("ckptstore: scanning chunk dir: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".chunk") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".chunk"), 16, 64)
		if err != nil {
			continue // not a chunk file
		}
		if live[id] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return removed, fmt.Errorf("ckptstore: removing orphan chunk %s: %w", name, err)
		}
		removed++
	}
	return removed, nil
}

// List returns the committed chunk IDs in ascending order.
func (s *Store) List() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: scanning chunk dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".chunk") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".chunk"), 16, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// MemStore is the in-memory chunk pool of the hosted tier: the worker side
// accumulates cut chunks in one, and the dispatcher merges pushed bundle
// chunks into another before flattening. Same addressing and chain rules as
// the disk store, no durability. Not safe for concurrent use; both owners
// already serialize access (the shard goroutine, the dispatcher mutex).
type MemStore struct {
	chunks   map[uint64][]byte
	maxChain int
}

// NewMemStore returns an empty in-memory chunk pool. maxChain bounds delta
// chains; 0 selects DefaultMaxChain.
func NewMemStore(maxChain int) *MemStore {
	if maxChain <= 0 {
		maxChain = DefaultMaxChain
	}
	return &MemStore{chunks: map[uint64][]byte{}, maxChain: maxChain}
}

// Len returns the number of pooled chunks.
func (m *MemStore) Len() int { return len(m.chunks) }

// Get returns the encoded bytes of one pooled chunk.
func (m *MemStore) Get(id uint64) ([]byte, bool) {
	data, ok := m.chunks[id]
	return data, ok
}

// Add admits an encoded chunk under its claimed ID, verifying the content
// address first.
func (m *MemStore) Add(id uint64, data []byte) error {
	if err := VerifyChunk(id, data); err != nil {
		return err
	}
	if _, ok := m.chunks[id]; !ok {
		m.chunks[id] = append([]byte(nil), data...)
	}
	return nil
}

// Put stores payload in the pool, as a delta against parent when legal and
// smaller (same policy as Store.Put).
func (m *MemStore) Put(payload []byte, parent Ref) (PutResult, error) {
	if parent.ID != 0 && parent.Chain+1 <= m.maxChain {
		if parentPayload, _, err := m.Resolve(parent.ID); err == nil {
			ops := MakeDelta(parentPayload, payload)
			encDelta, deltaID := EncodeDelta(parent.ID, ops)
			encFull, fullID := EncodeFull(payload)
			if len(encDelta) < len(encFull) {
				wrote := m.add(deltaID, encDelta)
				return PutResult{Ref: Ref{ID: deltaID, Chain: parent.Chain + 1}, Wrote: wrote, Delta: true, Bytes: len(encDelta)}, nil
			}
			wrote := m.add(fullID, encFull)
			return PutResult{Ref: Ref{ID: fullID}, Wrote: wrote, Bytes: len(encFull)}, nil
		}
		// An unresolvable parent (pruned after an ack reset) falls through to
		// a self-contained full chunk.
	}
	enc, id := EncodeFull(payload)
	wrote := m.add(id, enc)
	res := PutResult{Ref: Ref{ID: id}, Wrote: wrote, Bytes: len(enc)}
	if parent.ID != 0 && parent.Chain+1 > m.maxChain {
		res.Folded = true
	}
	return res, nil
}

func (m *MemStore) add(id uint64, enc []byte) bool {
	if _, ok := m.chunks[id]; ok {
		return false
	}
	m.chunks[id] = enc
	return true
}

func (m *MemStore) get(id uint64) ([]byte, error) {
	data, ok := m.chunks[id]
	if !ok {
		return nil, fmt.Errorf("ckptstore: chunk %016x not in pool", id)
	}
	return data, nil
}

// Resolve reconstructs the payload pooled under id.
func (m *MemStore) Resolve(id uint64) ([]byte, int, error) {
	return resolveFrom(m.get, id)
}

// Closure expands roots through delta parents within the pool.
func (m *MemStore) Closure(roots []uint64) (map[uint64]bool, error) {
	return closureFrom(m.get, roots)
}

// Prune drops every pooled chunk outside live.
func (m *MemStore) Prune(live map[uint64]bool) {
	for id := range m.chunks {
		if !live[id] {
			delete(m.chunks, id)
		}
	}
}
