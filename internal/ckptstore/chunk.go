// Package ckptstore is the incremental checkpoint store of the serve tier: a
// content-addressed chunk store with delta encoding, small manifests that
// reference chunks instead of embedding state, an append-only streaming
// decision log, and a bundle format for shipping manifests plus missing
// chunks over the dispatcher wire.
//
// The design mirrors the paper's cost-of-movement framing: a checkpoint cut
// pays bytes only for tenants whose state actually changed (delta chunks),
// identical state is never written twice (content addressing dedupes), and a
// reshard moves references, not tenant images. Chunks are immutable once
// written; manifests are the only mutable commit points, written atomically
// via internal/atomicio, so a crash between a chunk write and a manifest
// rename leaves orphan chunks that are garbage-collected and never read.
package ckptstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// chunkMagic opens every chunk file. Distinct from JSON ('{') and from the
// bundle magic, so a sniffing reader can classify any artifact.
const chunkMagic = "rrck"

// chunkVersion is the chunk container version.
const chunkVersion = 1

// Chunk kinds.
const (
	// KindFull marks a chunk whose body is the complete payload.
	KindFull = 0
	// KindDelta marks a chunk whose body is a delta against a parent chunk's
	// resolved payload; the parent ID follows the header.
	KindDelta = 1
)

// chunkHeaderLen is the fixed prefix of every chunk: magic, version, kind.
const chunkHeaderLen = len(chunkMagic) + 2

// MaxChunkLen bounds one decoded chunk, the same order as the serve tier's
// largest checkpoint payloads; a length prefix beyond it is rejected before
// any allocation.
const MaxChunkLen = 64 << 20

// Chunk is one decoded chunk: a full payload, or a delta plus the parent it
// applies to.
type Chunk struct {
	Kind   int
	Parent uint64 // chunk ID of the parent (delta chunks only)
	Body   []byte // full payload (KindFull) or delta ops (KindDelta)
}

// Ref names one committed chunk: its content address and the length of the
// delta chain behind it (0 for a full chunk).
type Ref struct {
	ID    uint64
	Chain int
}

// Hash64 is the chunk content address: FNV-1a 64 with the MurmurHash3 fmix64
// avalanche finalizer — the same recipe as the serve tier's tenant ring hash,
// stable across processes and architectures. The finalizer matters here for
// the same reason it does on the ring: raw FNV-1a barely mixes a trailing
// byte, and chunk payloads that differ only near the end (a round counter, an
// appended decision) must land on independent addresses.
func Hash64(data []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(data) // infallible per hash.Hash contract
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// EncodeFull encodes a full chunk around payload and returns the encoded
// bytes with their content address.
func EncodeFull(payload []byte) ([]byte, uint64) {
	buf := make([]byte, 0, chunkHeaderLen+len(payload))
	buf = append(buf, chunkMagic...)
	buf = append(buf, chunkVersion, KindFull)
	buf = append(buf, payload...)
	return buf, Hash64(buf)
}

// EncodeDelta encodes a delta chunk: ops against the resolved payload of the
// parent chunk named by parentID. The content address covers the parent ID,
// so the same ops against different parents are distinct chunks.
func EncodeDelta(parentID uint64, ops []byte) ([]byte, uint64) {
	buf := make([]byte, 0, chunkHeaderLen+8+len(ops))
	buf = append(buf, chunkMagic...)
	buf = append(buf, chunkVersion, KindDelta)
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], parentID)
	buf = append(buf, p[:]...)
	buf = append(buf, ops...)
	return buf, Hash64(buf)
}

// DecodeChunk parses one encoded chunk. It never panics on arbitrary bytes;
// malformed input is an error. The body aliases data.
func DecodeChunk(data []byte) (*Chunk, error) {
	if len(data) > MaxChunkLen {
		return nil, fmt.Errorf("ckptstore: chunk of %d bytes exceeds the %d-byte bound", len(data), MaxChunkLen)
	}
	if len(data) < chunkHeaderLen || string(data[:len(chunkMagic)]) != chunkMagic {
		return nil, fmt.Errorf("ckptstore: not a chunk (bad magic)")
	}
	if v := data[len(chunkMagic)]; v != chunkVersion {
		return nil, fmt.Errorf("ckptstore: chunk version %d, want %d", v, chunkVersion)
	}
	kind := int(data[len(chunkMagic)+1])
	body := data[chunkHeaderLen:]
	switch kind {
	case KindFull:
		return &Chunk{Kind: KindFull, Body: body}, nil
	case KindDelta:
		if len(body) < 8 {
			return nil, fmt.Errorf("ckptstore: delta chunk truncated before parent id")
		}
		return &Chunk{
			Kind:   KindDelta,
			Parent: binary.BigEndian.Uint64(body[:8]),
			Body:   body[8:],
		}, nil
	default:
		return nil, fmt.Errorf("ckptstore: unknown chunk kind %d", kind)
	}
}

// VerifyChunk checks that encoded chunk bytes decode and carry the claimed
// content address. Bundles and stores use it so a corrupted or mislabeled
// chunk is refused at the door rather than resolved into tenant state.
func VerifyChunk(id uint64, data []byte) error {
	if _, err := DecodeChunk(data); err != nil {
		return err
	}
	if got := Hash64(data); got != id {
		return fmt.Errorf("ckptstore: chunk claims id %016x, content hashes to %016x", id, got)
	}
	return nil
}
