package ckptstore

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// ManifestSchema versions the manifest format. A manifest is the commit
// point of one shard's incremental checkpoint: a small JSON document naming,
// per tenant, the content-addressed chunk that holds its state. Writing the
// manifest (atomically, via internal/atomicio) is what commits a cut; chunks
// written before a crash that never made it into a committed manifest are
// orphans, garbage-collected and never read.
const ManifestSchema = "rrckpt/v1"

// MaxManifestLen bounds one decoded manifest.
const MaxManifestLen = 64 << 20

// maxManifestTenants bounds the tenant list of one manifest, far above any
// real shard but low enough that a hostile length cannot drive allocation.
const maxManifestTenants = 1 << 24

// Manifest is one shard's checkpoint commit record.
type Manifest struct {
	Schema string `json:"schema"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
	// Round is the shard's next round at the cut; chunk payloads may record
	// earlier rounds (a clean tenant's chunk is reused across cuts), and the
	// restored scheduler fast-forwards the gap deterministically.
	Round int64 `json:"round"`
	// PlacementEpoch mirrors the serve-tier placement epoch at the cut.
	PlacementEpoch int64 `json:"placement_epoch,omitempty"`

	Tenants []TenantRef `json:"tenants,omitempty"`
}

// TenantRef names one tenant's state chunk within a manifest.
type TenantRef struct {
	Name string `json:"name"`
	// Chunk is the content address, as fixed-width hex (JSON numbers cannot
	// carry a uint64 faithfully).
	Chunk string `json:"chunk"`
	// Chain is the delta chain length behind the chunk (0 = full chunk).
	Chain int `json:"chain,omitempty"`
	// Evicted marks a cold tenant paged out of memory: its state lives only
	// in the store, and the serve tier faults it back in on next submission.
	Evicted bool `json:"evicted,omitempty"`
	// Epoch and Class are carried for evicted tenants only, so the serve tier
	// can answer decision queries and route reshards without faulting the
	// tenant in.
	Epoch int64  `json:"epoch,omitempty"`
	Class string `json:"class,omitempty"`
}

// ChunkID parses the reference's content address.
func (t TenantRef) ChunkID() (uint64, error) {
	if len(t.Chunk) != 16 {
		return 0, fmt.Errorf("ckptstore: tenant %q chunk %q is not 16 hex digits", t.Name, t.Chunk)
	}
	id, err := strconv.ParseUint(t.Chunk, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("ckptstore: tenant %q chunk %q: %w", t.Name, t.Chunk, err)
	}
	return id, nil
}

// Ref returns the reference's chunk address and chain length.
func (t TenantRef) Ref() (Ref, error) {
	id, err := t.ChunkID()
	if err != nil {
		return Ref{}, err
	}
	return Ref{ID: id, Chain: t.Chain}, nil
}

// FormatChunkID renders a content address the way manifests carry it.
func FormatChunkID(id uint64) string { return fmt.Sprintf("%016x", id) }

// EncodeManifest validates and serializes a manifest (indented JSON, the
// repo's canonical state encoding). Tenants are sorted by name first so the
// encoding is a pure function of the manifest's content.
func EncodeManifest(m *Manifest) ([]byte, error) {
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].Name < m.Tenants[j].Name })
	if err := validateManifest(m); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses and validates one manifest. It never panics on
// arbitrary bytes (FuzzDecodeManifest pins that), and anything it accepts
// re-encodes to the same bytes.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) > MaxManifestLen {
		return nil, fmt.Errorf("ckptstore: manifest of %d bytes exceeds the %d-byte bound", len(data), MaxManifestLen)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ckptstore: decoding manifest: %w", err)
	}
	if err := validateManifest(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func validateManifest(m *Manifest) error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("ckptstore: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Shard < 0 || m.Shards < 1 || m.Shard >= m.Shards {
		return fmt.Errorf("ckptstore: manifest names shard %d of %d", m.Shard, m.Shards)
	}
	if m.Round < 0 {
		return fmt.Errorf("ckptstore: manifest has negative round %d", m.Round)
	}
	if m.PlacementEpoch < 0 {
		return fmt.Errorf("ckptstore: manifest has negative placement epoch %d", m.PlacementEpoch)
	}
	if len(m.Tenants) > maxManifestTenants {
		return fmt.Errorf("ckptstore: manifest lists %d tenants, exceeding the %d bound", len(m.Tenants), maxManifestTenants)
	}
	for i := range m.Tenants {
		t := &m.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("ckptstore: manifest tenant %d has an empty name", i)
		}
		if i > 0 && m.Tenants[i-1].Name >= t.Name {
			return fmt.Errorf("ckptstore: manifest tenants out of order at %q", t.Name)
		}
		if _, err := t.ChunkID(); err != nil {
			return err
		}
		if t.Chain < 0 || t.Chain > maxResolveDepth {
			return fmt.Errorf("ckptstore: tenant %q chain %d out of range", t.Name, t.Chain)
		}
		if t.Epoch < 0 {
			return fmt.Errorf("ckptstore: tenant %q has negative epoch %d", t.Name, t.Epoch)
		}
		if t.Epoch > m.Round {
			return fmt.Errorf("ckptstore: tenant %q epoch %d exceeds manifest round %d", t.Name, t.Epoch, m.Round)
		}
		if !t.Evicted && (t.Epoch != 0 || t.Class != "") {
			return fmt.Errorf("ckptstore: tenant %q carries evicted-only fields without the evicted flag", t.Name)
		}
	}
	return nil
}

// Roots collects the manifest's referenced chunk IDs (the GC roots one shard
// contributes).
func (m *Manifest) Roots() ([]uint64, error) {
	roots := make([]uint64, 0, len(m.Tenants))
	for i := range m.Tenants {
		id, err := m.Tenants[i].ChunkID()
		if err != nil {
			return nil, err
		}
		roots = append(roots, id)
	}
	return roots, nil
}
