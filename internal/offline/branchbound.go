package offline

import (
	"fmt"

	"rrsched/internal/model"
)

// BBOptions bounds the branch-and-bound solver.
type BBOptions struct {
	// MaxNodes caps the number of expanded search nodes (default 2e6).
	MaxNodes int
}

// ExactBB computes the exact optimal total cost by depth-first branch and
// bound over the same round-layer state space as Exact, with two prunes
// that let it reach larger instances:
//
//   - incumbent pruning: the search starts from the BestGreedy heuristic
//     cost and discards any node whose accumulated cost plus an admissible
//     remaining-cost bound reaches the incumbent;
//   - dominance pruning: a node is discarded when the same (round, state)
//     was already reached at an equal or lower cost.
//
// The admissible remaining bound charges, for every color with pending or
// future jobs that is not in the node's configuration, the inevitable
// min(Δ, #remaining jobs) the optimal completion must still pay — the
// per-color component of LowerBound, localized to the suffix.
//
// ExactBB returns the same value as Exact (cross-checked by property tests)
// and ErrTooLarge when the node budget is exhausted.
func ExactBB(seq *model.Sequence, m int, opts BBOptions) (int64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("offline: ExactBB needs at least one resource")
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 2_000_000
	}
	horizon := seq.Horizon()
	delta := seq.Delta()

	// futureJobs[c][k] = number of color-c jobs arriving in rounds >= k.
	futureJobs := map[model.Color][]int64{}
	for _, c := range seq.Colors() {
		futureJobs[c] = make([]int64, horizon+2)
	}
	for r := int64(0); r < seq.NumRounds(); r++ {
		for _, j := range seq.Request(r) {
			futureJobs[j.Color][r]++
		}
	}
	for _, counts := range futureJobs {
		for k := horizon - 1; k >= 0; k-- {
			counts[k] += counts[k+1]
		}
	}

	incumbent := BestGreedy(seq, m).Cost.Total()
	best := incumbent
	seen := map[string]int64{}
	nodes := 0

	var dfs func(k int64, st dpState, g int64) error
	dfs = func(k int64, st dpState, g int64) error {
		nodes++
		if nodes > opts.MaxNodes {
			return ErrTooLarge
		}
		if k > horizon {
			if g < best {
				best = g
			}
			return nil
		}
		// Drop + arrival phases (deterministic).
		st = st.clone()
		g += st.pending.dropDue(k)
		for _, j := range seq.Request(k) {
			st.pending.add(j.Color, j.Deadline())
		}
		if g >= best {
			return nil
		}
		if g+suffixBound(st, futureJobs, k, delta) >= best {
			return nil
		}
		key := fmt.Sprintf("%d|%s", k, st.key())
		if prev, ok := seen[key]; ok && prev <= g {
			return nil
		}
		seen[key] = g

		for _, cfg := range usefulConfigs(st, m) {
			next := st.clone()
			rc := reconfigCost(next.config, cfg, delta)
			if g+rc >= best {
				continue
			}
			next.config = cfg
			next.pending.execute(cfg)
			if err := dfs(k+1, next, g+rc); err != nil {
				return err
			}
		}
		return nil
	}

	start := dpState{config: blackConfig(m), pending: pendingProfile{}}
	if err := dfs(0, start, 0); err != nil {
		return 0, err
	}
	return best, nil
}

// suffixBound is an admissible lower bound on the remaining cost from round
// k with the given state: every color with pending-or-future jobs that is
// not currently configured must still pay min(Δ, remaining jobs of that
// color); configured colors may serve the rest for free in the relaxation.
func suffixBound(st dpState, futureJobs map[model.Color][]int64, k int64, delta int64) int64 {
	inCfg := map[model.Color]bool{}
	for _, c := range st.config {
		inCfg[c] = true
	}
	var lb int64
	for c, counts := range futureJobs {
		if inCfg[c] {
			continue
		}
		// Round k's arrivals are already in the pending profile when the
		// bound is evaluated, so only strictly later arrivals count.
		remaining := int64(len(st.pending[c]))
		if int(k+1) < len(counts) {
			remaining += counts[k+1]
		}
		if remaining == 0 {
			continue
		}
		if remaining < delta {
			lb += remaining
		} else {
			lb += delta
		}
	}
	return lb
}
