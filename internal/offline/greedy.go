package offline

import (
	"sort"

	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// GreedyResult is a feasible offline schedule with its audited cost.
type GreedyResult struct {
	Window   int64
	Cost     model.Cost
	Schedule *model.Schedule
}

// WindowGreedy builds a feasible offline schedule with m resources by
// partitioning time into windows of length w and, at each window start,
// reassigning resources to the colors with the largest executable backlog in
// the window, with a Δ switching penalty discouraging churn. It is a
// heuristic upper bound on OPT: any feasible schedule costs at least OPT.
//
// Offline knowledge is used only to compute per-window color loads; the
// schedule itself is realized (and its cost derived) by sim.Replay +
// model.Audit, so the result is feasible by construction.
func WindowGreedy(seq *model.Sequence, m int, w int64) GreedyResult {
	if m <= 0 {
		panic("offline: WindowGreedy needs at least one resource")
	}
	if w <= 0 {
		panic("offline: WindowGreedy needs a positive window")
	}
	horizon := seq.Horizon()
	delta := seq.Delta()

	// Per-window load: jobs whose execution window intersects the window.
	// load[c] approximates how much work color c could give a resource.
	var recs []model.Reconfigure
	config := make([]model.Color, m)
	for i := range config {
		config[i] = model.Black
	}
	for start := int64(0); start <= horizon; start += w {
		end := start + w
		load := make(map[model.Color]int64)
		for r := maxInt64(0, start-maxDelay(seq)); r < end && r < seq.NumRounds(); r++ {
			for _, j := range seq.Request(r) {
				if j.Arrival < end && j.Deadline() > start {
					load[j.Color]++
				}
			}
		}
		next := assignResources(config, load, m, w, delta)
		for i := 0; i < m; i++ {
			if next[i] != config[i] && next[i] != model.Black {
				recs = append(recs, model.Reconfigure{Round: start, Mini: 0, Resource: i, To: next[i]})
			}
			if next[i] != model.Black {
				config[i] = next[i]
			}
		}
	}

	sched, err := sim.Replay(seq, m, 1, recs)
	if err != nil {
		panic("offline: WindowGreedy produced an invalid script: " + err.Error())
	}
	cost, err := model.Audit(seq, sched)
	if err != nil {
		panic("offline: WindowGreedy produced an illegal schedule: " + err.Error())
	}
	return GreedyResult{Window: w, Cost: cost, Schedule: sched}
}

// assignResources chooses the next per-resource colors for one window:
// resources keep their color while it still has load; freed resources are
// given to the unserved colors with the largest load, provided the gain
// (executable jobs, capped at the window length) exceeds the Δ switch cost.
func assignResources(config []model.Color, load map[model.Color]int64, m int, w, delta int64) []model.Color {
	next := make([]model.Color, m)
	remaining := make(map[model.Color]int64, len(load))
	for c, n := range load {
		remaining[c] = n
	}
	// Keep resources whose color still has work (no switch cost).
	free := make([]int, 0, m)
	for i, c := range config {
		if c != model.Black && remaining[c] > 0 {
			next[i] = c
			remaining[c] -= minInt64(remaining[c], w)
		} else {
			next[i] = config[i] // provisional: may be overwritten below
			free = append(free, i)
		}
	}
	// Candidates sorted by remaining load, deterministic tie break.
	type cand struct {
		c model.Color
		n int64
	}
	cands := make([]cand, 0, len(remaining))
	for c, n := range remaining {
		if n > 0 {
			cands = append(cands, cand{c: c, n: n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].c < cands[j].c
	})
	ci := 0
	for _, slot := range free {
		for ci < len(cands) && cands[ci].n <= 0 {
			ci++
		}
		if ci >= len(cands) {
			break
		}
		gain := minInt64(cands[ci].n, w)
		if gain > delta {
			next[slot] = cands[ci].c
			cands[ci].n -= gain
		}
	}
	return next
}

// BestGreedy runs WindowGreedy over a geometric ladder of window lengths and
// returns the cheapest audited schedule. The ladder spans the natural time
// scales of the instance: Δ, the delay bounds, and the horizon.
func BestGreedy(seq *model.Sequence, m int) GreedyResult {
	windows := candidateWindows(seq)
	best := WindowGreedy(seq, m, windows[0])
	for _, w := range windows[1:] {
		if r := WindowGreedy(seq, m, w); r.Cost.Total() < best.Cost.Total() {
			best = r
		}
	}
	return best
}

func candidateWindows(seq *model.Sequence) []int64 {
	set := map[int64]bool{1: true}
	add := func(v int64) {
		if v >= 1 {
			set[v] = true
		}
	}
	add(seq.Delta())
	add(2 * seq.Delta())
	add(4 * seq.Delta())
	for _, c := range seq.Colors() {
		d, _ := seq.DelayBound(c)
		add(d)
	}
	h := seq.Horizon()
	add(h)
	add(h / 2)
	add(h / 4)
	out := make([]int64, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxDelay(seq *model.Sequence) int64 {
	var d int64 = 1
	for _, c := range seq.Colors() {
		if v, _ := seq.DelayBound(c); v > d {
			d = v
		}
	}
	return d
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
