// Package offline provides the offline side of the competitive-ratio
// measurements: an exact optimal-schedule solver for small instances
// (dynamic programming over configurations), certified lower bounds on the
// optimal cost for large instances, and a feasible offline heuristic whose
// audited cost upper-bounds OPT. Together they bracket OPT:
//
//	LowerBound(σ, m) <= OPT(σ, m) <= BestGreedy(σ, m).Cost.Total()
//
// so measured ratios cost(ALG)/LowerBound are upper bounds on the true
// competitive ratio.
package offline

import (
	"rrsched/internal/edf"
	"rrsched/internal/model"
)

// LowerBound returns a certified lower bound on the total cost of every
// schedule for seq with m uni-speed resources. It is the maximum of two
// bounds:
//
//   - the drop bound (Lemma 3.7): Par-EDF with m resources drops the fewest
//     jobs any m-resource schedule can, so its drop count lower-bounds even
//     the optimal schedule's total cost;
//   - the per-color bound: for each color ℓ the optimal schedule either
//     configures ℓ at least once (>= Δ reconfiguration cost attributable to
//     ℓ, since resources start black) or drops all jobs of ℓ (>= #jobs_ℓ),
//     so it pays at least min(Δ, #jobs_ℓ) per color.
func LowerBound(seq *model.Sequence, m int) int64 {
	drop := edf.ParEDFDrops(seq, m)
	var perColor int64
	for _, c := range seq.Colors() {
		n := int64(seq.JobsOfColor(c))
		if n == 0 {
			continue
		}
		if n < seq.Delta() {
			perColor += n
		} else {
			perColor += seq.Delta()
		}
	}
	if perColor > drop {
		return perColor
	}
	return drop
}

// Bracket bounds OPT from both sides: LB is certified, UB is the audited
// cost of the best feasible offline heuristic schedule.
type Bracket struct {
	LB int64
	UB int64
}

// BracketOPT computes a LowerBound/heuristic bracket around OPT(seq, m).
func BracketOPT(seq *model.Sequence, m int) Bracket {
	lb := LowerBound(seq, m)
	ub := BestGreedy(seq, m).Cost.Total()
	return Bracket{LB: lb, UB: ub}
}
