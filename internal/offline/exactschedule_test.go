package offline

import (
	"testing"
	"testing/quick"

	"rrsched/internal/model"
)

// TestExactScheduleAuditsToOptimal: the materialized schedule is legal and
// its audited cost equals the DP's optimal value (it cannot be below OPT,
// and the realization never pays more than the DP accounted).
func TestExactScheduleAuditsToOptimal(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seq := tinyRandom(int64(seedRaw))
		if seq.NumJobs() == 0 {
			return true
		}
		m := 1 + int(seedRaw)%2
		opt, sched, err := ExactSchedule(seq, m, ExactOptions{})
		if err != nil {
			return true // too large: skip
		}
		cost, err := model.Audit(seq, sched)
		if err != nil {
			t.Logf("seed %d: illegal optimal schedule: %v", seedRaw, err)
			return false
		}
		if cost.Total() != opt {
			t.Logf("seed %d m=%d: audited %d != OPT %d", seedRaw, m, cost.Total(), opt)
			return false
		}
		// Cross-check against the cost-only solver.
		only, err := Exact(seq, m, ExactOptions{})
		if err != nil {
			return true
		}
		return only == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExactScheduleHandInstance(t *testing.T) {
	// Δ=1: serving both colors with m=2 costs 2 reconfigs, zero drops.
	seq := model.NewBuilder(1).Add(0, 0, 2, 2).Add(0, 1, 2, 2).MustBuild()
	opt, sched, err := ExactSchedule(seq, 2, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Errorf("OPT = %d, want 2", opt)
	}
	cost := model.MustAudit(seq, sched)
	if cost.Drop != 0 || cost.Reconfig != 2 {
		t.Errorf("optimal schedule cost = %v", cost)
	}
	if sched.NumExecs() != 4 {
		t.Errorf("execs = %d, want 4", sched.NumExecs())
	}
}

func TestExactScheduleRejections(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	if _, _, err := ExactSchedule(seq, 0, ExactOptions{}); err == nil {
		t.Error("m=0 accepted")
	}
	big := tinyRandom(1)
	if _, _, err := ExactSchedule(big, 2, ExactOptions{MaxStates: 1}); err == nil {
		t.Error("state budget ignored")
	}
}
