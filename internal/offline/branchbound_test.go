package offline

import (
	"errors"
	"testing"
	"testing/quick"

	"rrsched/internal/model"
	"rrsched/internal/workload"
)

// TestExactBBMatchesDPProperty: branch and bound agrees with the layered DP
// on every instance both can solve — the core cross-validation of the two
// exact solvers.
func TestExactBBMatchesDPProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seq := tinyRandom(int64(seedRaw))
		if seq.NumJobs() == 0 {
			return true
		}
		m := 1 + int(seedRaw)%2
		dp, err := Exact(seq, m, ExactOptions{})
		if err != nil {
			return true
		}
		bb, err := ExactBB(seq, m, BBOptions{})
		if err != nil {
			t.Logf("seed %d: bb error %v", seedRaw, err)
			return false
		}
		if dp != bb {
			t.Logf("seed %d m=%d: DP %d != BB %d", seedRaw, m, dp, bb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactBBHandConstructed(t *testing.T) {
	seq := model.NewBuilder(5).Add(0, 0, 2, 2).MustBuild()
	got, err := ExactBB(seq, 1, BBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("OPT = %d, want 2", got)
	}
}

func TestExactBBLargerThanDP(t *testing.T) {
	// An instance the layer DP exhausts its (small) budget on, but BB solves
	// thanks to pruning.
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 4, Delta: 2, Colors: 3, Rounds: 40,
		MinDelayExp: 1, MaxDelayExp: 2, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(seq, 1, ExactOptions{MaxStates: 500}); !errors.Is(err, ErrTooLarge) {
		t.Skip("DP solved the instance with a tiny budget; pruning comparison moot")
	}
	bb, err := ExactBB(seq, 1, BBOptions{})
	if err != nil {
		t.Fatalf("BB failed: %v", err)
	}
	lb := LowerBound(seq, 1)
	ub := BestGreedy(seq, 1).Cost.Total()
	if bb < lb || bb > ub {
		t.Errorf("BB result %d outside bracket [%d, %d]", bb, lb, ub)
	}
}

func TestExactBBErrTooLarge(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 1, Delta: 2, Colors: 6, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 1.0, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactBB(seq, 2, BBOptions{MaxNodes: 100}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExactBBRejectsBadM(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	if _, err := ExactBB(seq, 0, BBOptions{}); err == nil {
		t.Fatal("m=0 accepted")
	}
}

// TestExactBBNeverBelowLB: BB's result respects the certified lower bound.
func TestExactBBNeverBelowLB(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seq := tinyRandom(seed)
		if seq.NumJobs() == 0 {
			continue
		}
		bb, err := ExactBB(seq, 1, BBOptions{})
		if err != nil {
			continue
		}
		if lb := LowerBound(seq, 1); bb < lb {
			t.Fatalf("seed %d: BB %d < LB %d", seed, bb, lb)
		}
	}
}
