package offline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rrsched/internal/model"
	"rrsched/internal/workload"
)

func tinyRandom(seed int64) *model.Sequence {
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder(int64(rng.Intn(3)) + 1)
	colors := rng.Intn(3) + 1
	for i := 0; i < 10; i++ {
		c := model.Color(rng.Intn(colors))
		d := int64(1) << uint(int(c)%2+1) // 2 or 4
		b.Add(int64(rng.Intn(10)), c, d, rng.Intn(2))
	}
	return b.MustBuild()
}

func TestExactSimpleInstances(t *testing.T) {
	// One color, 2 jobs (D=2), Δ=5, m=1: serving costs 5, dropping costs 2.
	seq := model.NewBuilder(5).Add(0, 0, 2, 2).MustBuild()
	opt, err := Exact(seq, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Errorf("OPT = %d, want 2 (dropping beats a Δ=5 reconfiguration)", opt)
	}
	// Same but Δ=1: serving wins.
	seq2 := model.NewBuilder(1).Add(0, 0, 2, 2).MustBuild()
	opt2, err := Exact(seq2, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt2 != 1 {
		t.Errorf("OPT = %d, want 1 (one reconfiguration, both jobs run)", opt2)
	}
}

func TestExactTwoColorsOneResource(t *testing.T) {
	// Colors interleave; with one resource and Δ=1 OPT must decide between
	// switching (2 reconfigs) and dropping one side.
	seq := model.NewBuilder(1).
		Add(0, 0, 2, 2).
		Add(0, 1, 2, 2).
		MustBuild()
	opt, err := Exact(seq, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Serve color 0 in rounds 0-1 (Δ=1), drop color 1 (2 drops) => 3,
	// or serve one of each: 2 reconfigs + 1 drop of each remaining... best
	// is 1 reconfig + serve 2 jobs of one color + drop 2 = 3. With two
	// colors and 2 rounds the resource can execute only 2 of 4 jobs:
	// cost = reconfigs + drops >= 1 + 2 = 3.
	if opt != 3 {
		t.Errorf("OPT = %d, want 3", opt)
	}
	// With m=2 both colors can be served fully: 2 reconfigs.
	opt2, err := Exact(seq, 2, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt2 != 2 {
		t.Errorf("OPT(m=2) = %d, want 2", opt2)
	}
}

func TestExactIdlingCanWin(t *testing.T) {
	// Jobs of color 0 now, a big batch of color 1 later, one resource, Δ=4.
	// Serving color 0's single job (cost 4) is worse than dropping it
	// (cost 1) and saving the reconfiguration for color 1's 8 jobs.
	seq := model.NewBuilder(4).
		Add(0, 0, 2, 1).
		Add(2, 1, 8, 8).
		MustBuild()
	opt, err := Exact(seq, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 5 { // drop 1 + Δ for color 1, all 8 jobs run in rounds 2..9
		t.Errorf("OPT = %d, want 5", opt)
	}
}

func TestExactErrTooLarge(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 1, Delta: 2, Colors: 6, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 1.0, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Exact(seq, 2, ExactOptions{MaxStates: 50})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExactRejectsBadM(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	if _, err := Exact(seq, 0, ExactOptions{}); err == nil {
		t.Fatal("m=0 accepted")
	}
}

// TestSandwichProperty: LB <= OPT <= BestGreedy on tiny random instances —
// the core soundness property of the bracket.
func TestSandwichProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seq := tinyRandom(int64(seedRaw))
		if seq.NumJobs() == 0 {
			return true
		}
		m := 1 + int(seedRaw)%2
		opt, err := Exact(seq, m, ExactOptions{})
		if err != nil {
			return true // too large: skip
		}
		lb := LowerBound(seq, m)
		ub := BestGreedy(seq, m).Cost.Total()
		if !(lb <= opt && opt <= ub) {
			t.Logf("seed %d m=%d: LB=%d OPT=%d UB=%d", seedRaw, m, lb, opt, ub)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundComponents(t *testing.T) {
	// Per-color component: 2 colors, one with #jobs < Δ, one with more.
	seq := model.NewBuilder(4).
		Add(0, 0, 2, 2).  // min(4, 2) = 2
		Add(0, 1, 4, 10). // min(4, 10) = 4
		MustBuild()
	lb := LowerBound(seq, 8) // huge m: drop bound is 0
	if lb != 6 {
		t.Errorf("LB = %d, want 6 (per-color bound)", lb)
	}
	// Drop component dominates when capacity is scarce.
	seq2 := model.NewBuilder(1).Add(0, 0, 1, 10).MustBuild()
	lb2 := LowerBound(seq2, 1) // 9 drops inevitable; per-color bound is 1
	if lb2 != 9 {
		t.Errorf("LB = %d, want 9 (drop bound)", lb2)
	}
}

func TestWindowGreedyFeasibleAndAudited(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 3, Delta: 4, Colors: 6, Rounds: 128,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.8, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int64{1, 4, 16, 64} {
		r := WindowGreedy(seq, 2, w)
		if got := model.MustAudit(seq, r.Schedule); got != r.Cost {
			t.Fatalf("window %d: audit mismatch", w)
		}
	}
}

func TestWindowGreedyPanics(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	for _, f := range []func(){
		func() { WindowGreedy(seq, 0, 1) },
		func() { WindowGreedy(seq, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid WindowGreedy parameters accepted")
				}
			}()
			f()
		}()
	}
}

func TestBestGreedyPicksCheapest(t *testing.T) {
	seq, err := workload.PhaseShift(workload.PhaseShiftConfig{
		Seed: 1, Delta: 8, Colors: 8, PhaseLen: 64, Phases: 4,
		ActivePerPhase: 2, Delay: 4, Load: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := BestGreedy(seq, 2)
	for _, w := range candidateWindows(seq) {
		if r := WindowGreedy(seq, 2, w); r.Cost.Total() < best.Cost.Total() {
			t.Fatalf("BestGreedy (%d) missed cheaper window %d (%d)",
				best.Cost.Total(), w, r.Cost.Total())
		}
	}
}

func TestBracketOPTOrdering(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seq := tinyRandom(seed)
		if seq.NumJobs() == 0 {
			continue
		}
		br := BracketOPT(seq, 1)
		if br.LB > br.UB {
			t.Fatalf("seed %d: LB %d > UB %d", seed, br.LB, br.UB)
		}
	}
}

func TestCandidateWindowsSortedPositive(t *testing.T) {
	seq := model.NewBuilder(4).Add(0, 0, 8, 3).MustBuild()
	ws := candidateWindows(seq)
	for i, w := range ws {
		if w < 1 {
			t.Fatalf("window %d < 1", w)
		}
		if i > 0 && ws[i-1] >= w {
			t.Fatalf("windows not strictly ascending: %v", ws)
		}
	}
}
