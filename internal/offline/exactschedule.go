package offline

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
)

// ExactSchedule computes the optimal cost like Exact and additionally
// materializes an optimal schedule (auditable with model.Audit), by keeping
// parent pointers through the round-layer DP and replaying the optimal
// configuration timeline with greedy earliest-deadline executions.
func ExactSchedule(seq *model.Sequence, m int, opts ExactOptions) (int64, *model.Schedule, error) {
	if m <= 0 {
		return 0, nil, fmt.Errorf("offline: ExactSchedule needs at least one resource")
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 200000
	}
	delta := seq.Delta()
	horizon := seq.Horizon()

	type entry struct {
		state     dpState
		cost      int64
		parentKey string        // key in the previous layer
		config    []model.Color // configuration chosen this round
	}
	start := dpState{config: blackConfig(m), pending: pendingProfile{}}
	layer := map[string]entry{start.key(): {state: start, cost: 0}}
	var layers []map[string]entry

	for k := int64(0); k <= horizon; k++ {
		next := make(map[string]entry, len(layer))
		for parentKey, e := range layer {
			st := e.state.clone()
			dropCost := st.pending.dropDue(k)
			for _, j := range seq.Request(k) {
				st.pending.add(j.Color, j.Deadline())
			}
			for _, cfg := range usefulConfigs(st, m) {
				child := st.clone()
				rc := reconfigCost(child.config, cfg, delta)
				child.config = cfg
				child.pending.execute(cfg)
				key := child.key()
				cand := entry{state: child, cost: e.cost + dropCost + rc, parentKey: parentKey, config: cfg}
				if cur, ok := next[key]; !ok || cand.cost < cur.cost {
					next[key] = cand
				}
			}
			if len(next) > opts.MaxStates {
				return 0, nil, ErrTooLarge
			}
		}
		layers = append(layers, next)
		layer = next
	}

	// Find the best final entry and walk parents back to round 0.
	bestKey, bestCost := "", int64(-1)
	for key, e := range layer {
		if bestCost < 0 || e.cost < bestCost {
			bestKey, bestCost = key, e.cost
		}
	}
	if bestCost < 0 {
		return 0, nil, fmt.Errorf("offline: exact solver produced no states")
	}
	configs := make([][]model.Color, horizon+1)
	key := bestKey
	for k := horizon; k >= 0; k-- {
		e := layers[k][key]
		configs[k] = e.config
		key = e.parentKey
	}

	sched, err := realizeConfigs(seq, m, configs)
	if err != nil {
		return 0, nil, err
	}
	return bestCost, sched, nil
}

// realizeConfigs turns a per-round configuration multiset timeline into a
// concrete schedule: multisets are matched between rounds to minimize
// recolorings (sorted greedy matching, which is optimal for multisets), and
// executions run earliest-deadline-first within each color.
func realizeConfigs(seq *model.Sequence, m int, configs [][]model.Color) (*model.Schedule, error) {
	var recs []model.Reconfigure
	cur := make([]model.Color, m)
	for i := range cur {
		cur[i] = model.Black
	}
	for k, cfg := range configs {
		// Count how many locations of each color we need vs have.
		needOf := map[model.Color]int{}
		for _, c := range cfg {
			if c != model.Black {
				needOf[c]++
			}
		}
		haveOf := map[model.Color]int{}
		for _, c := range cur {
			if c != model.Black {
				haveOf[c]++
			}
		}
		// Keep min(need, have) locations per color; recolor surplus
		// locations to cover deficits.
		keep := map[model.Color]int{}
		for c, n := range needOf {
			if h := haveOf[c]; h < n {
				keep[c] = h
			} else {
				keep[c] = n
			}
		}
		var deficits []model.Color
		for c, n := range needOf {
			for i := keep[c]; i < n; i++ {
				deficits = append(deficits, c)
			}
		}
		sort.Slice(deficits, func(i, j int) bool { return deficits[i] < deficits[j] })
		kept := map[model.Color]int{}
		var freeLocs []int
		for loc, c := range cur {
			if c != model.Black && kept[c] < keep[c] {
				kept[c]++
				continue
			}
			freeLocs = append(freeLocs, loc)
		}
		if len(deficits) > len(freeLocs) {
			return nil, fmt.Errorf("offline: config realization needs %d recolorings with %d free locations", len(deficits), len(freeLocs))
		}
		for i, c := range deficits {
			loc := freeLocs[i]
			cur[loc] = c
			recs = append(recs, model.Reconfigure{Round: int64(k), Resource: loc, To: c})
		}
	}
	sched, err := replayExact(seq, m, recs)
	if err != nil {
		return nil, err
	}
	return sched, nil
}

// replayExact is sim.Replay without the import cycle: it re-derives
// executions for the scripted configuration timeline.
func replayExact(seq *model.Sequence, m int, recs []model.Reconfigure) (*model.Schedule, error) {
	sched := model.NewSchedule(m, 1)
	locColor := make([]model.Color, m)
	for i := range locColor {
		locColor[i] = model.Black
	}
	pending := pendingProfile{}
	next := 0
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Round < recs[j].Round })
	jobIDs := map[model.Color][]int64{} // deadline-ordered pending job ids per color
	for k := int64(0); k <= seq.Horizon(); k++ {
		pending.dropDue(k)
		for c := range jobIDs {
			// Trim job ids whose deadline passed: the profile already
			// dropped them; keep lists aligned.
			jobIDs[c] = jobIDs[c][len(jobIDs[c])-len(pending[c]):]
		}
		for _, j := range seq.Request(k) {
			pending.add(j.Color, j.Deadline())
			jobIDs[j.Color] = append(jobIDs[j.Color], j.ID)
		}
		for next < len(recs) && recs[next].Round == k {
			r := recs[next]
			next++
			if locColor[r.Resource] == r.To {
				continue
			}
			locColor[r.Resource] = r.To
			sched.AddReconfig(k, 0, r.Resource, r.To)
		}
		for loc := 0; loc < m; loc++ {
			c := locColor[loc]
			if c == model.Black || len(jobIDs[c]) == 0 {
				continue
			}
			id := jobIDs[c][0]
			jobIDs[c] = jobIDs[c][1:]
			pending[c] = pending[c][1:]
			if len(pending[c]) == 0 {
				delete(pending, c)
			}
			sched.AddExec(k, 0, loc, id)
		}
	}
	return sched, nil
}
