package offline

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rrsched/internal/model"
)

// ErrTooLarge is returned by Exact when the dynamic program exceeds its
// state budget; callers should fall back to BracketOPT.
var ErrTooLarge = fmt.Errorf("offline: instance too large for the exact solver")

// ExactOptions bounds the exact solver.
type ExactOptions struct {
	// MaxStates caps the number of distinct states per round layer
	// (default 200000).
	MaxStates int
}

// Exact computes the exact optimal total cost for seq with m uni-speed
// resources by dynamic programming over rounds. The state is the multiset of
// resource colors plus the pending-job profile (per color, a deadline
// histogram); transitions enumerate every useful configuration multiset
// (colors with pending jobs, colors of the current configuration, and
// black), charge Δ per recolored resource, and execute
// earliest-deadline-first within each color, which is optimal for a fixed
// configuration timeline by an exchange argument.
//
// The solver is exponential and intended for the small instances used to
// validate LowerBound <= OPT <= BestGreedy and to measure true competitive
// ratios in experiment E9.
func Exact(seq *model.Sequence, m int, opts ExactOptions) (int64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("offline: Exact needs at least one resource")
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 200000
	}
	delta := seq.Delta()
	horizon := seq.Horizon()

	start := dpState{config: blackConfig(m), pending: pendingProfile{}}
	layer := map[string]layerEntry{start.key(): {state: start, cost: 0}}

	for k := int64(0); k <= horizon; k++ {
		// Drop + arrival phases are deterministic per state.
		pre := make(map[string]layerEntry, len(layer))
		for _, e := range layer {
			st := e.state.clone()
			dropCost := st.pending.dropDue(k)
			for _, j := range seq.Request(k) {
				st.pending.add(j.Color, j.Deadline())
			}
			addEntry(pre, st, e.cost+dropCost)
		}
		// Reconfiguration + execution: enumerate configurations.
		next := make(map[string]layerEntry, len(pre))
		for _, e := range pre {
			for _, cfg := range usefulConfigs(e.state, m) {
				st := e.state.clone()
				rc := reconfigCost(st.config, cfg, delta)
				st.config = cfg
				st.pending.execute(cfg)
				addEntry(next, st, e.cost+rc)
			}
			if len(next) > opts.MaxStates {
				return 0, ErrTooLarge
			}
		}
		layer = next
	}

	best := int64(-1)
	for _, e := range layer {
		if best < 0 || e.cost < best {
			best = e.cost
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("offline: exact solver produced no states")
	}
	return best, nil
}

type layerEntry struct {
	state dpState
	cost  int64
}

func addEntry(layer map[string]layerEntry, st dpState, cost int64) {
	k := st.key()
	if cur, ok := layer[k]; !ok || cost < cur.cost {
		layer[k] = layerEntry{state: st, cost: cost}
	}
}

// dpState is (configuration multiset, pending profile).
type dpState struct {
	config  []model.Color // sorted multiset, Black allowed
	pending pendingProfile
}

func blackConfig(m int) []model.Color {
	cfg := make([]model.Color, m)
	for i := range cfg {
		cfg[i] = model.Black
	}
	return cfg
}

func (s dpState) clone() dpState {
	cfg := make([]model.Color, len(s.config))
	copy(cfg, s.config)
	return dpState{config: cfg, pending: s.pending.clone()}
}

func (s dpState) key() string {
	var b strings.Builder
	for _, c := range s.config {
		b.WriteString(strconv.Itoa(int(c)))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(s.pending.key())
	return b.String()
}

// pendingProfile maps colors to sorted deadline lists (one entry per job).
type pendingProfile map[model.Color][]int64

func (p pendingProfile) clone() pendingProfile {
	out := make(pendingProfile, len(p))
	for c, dl := range p {
		cp := make([]int64, len(dl))
		copy(cp, dl)
		out[c] = cp
	}
	return out
}

func (p pendingProfile) add(c model.Color, deadline int64) {
	dl := append(p[c], deadline)
	sort.Slice(dl, func(i, j int) bool { return dl[i] < dl[j] })
	p[c] = dl
}

// dropDue removes jobs with deadline <= k and returns their count (cost).
func (p pendingProfile) dropDue(k int64) int64 {
	var cost int64
	for c, dl := range p {
		i := 0
		for i < len(dl) && dl[i] <= k {
			i++
		}
		cost += int64(i)
		if i == len(dl) {
			delete(p, c)
		} else if i > 0 {
			p[c] = dl[i:]
		}
	}
	return cost
}

// execute removes, for each resource configured to color c, the
// earliest-deadline pending job of c.
func (p pendingProfile) execute(cfg []model.Color) {
	per := map[model.Color]int{}
	for _, c := range cfg {
		if c != model.Black {
			per[c]++
		}
	}
	for c, n := range per {
		dl := p[c]
		if len(dl) <= n {
			delete(p, c)
		} else {
			p[c] = dl[n:]
		}
	}
}

func (p pendingProfile) key() string {
	colors := make([]model.Color, 0, len(p))
	for c := range p {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })
	var b strings.Builder
	for _, c := range colors {
		b.WriteString(strconv.Itoa(int(c)))
		b.WriteByte(':')
		for _, d := range p[c] {
			b.WriteString(strconv.FormatInt(d, 10))
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// usefulConfigs enumerates the candidate configuration multisets after the
// arrival phase: every sorted multiset of size m over {black} ∪ {colors with
// pending jobs} ∪ {current configuration colors}. Configurations outside
// this set are dominated: configuring a color with no pending jobs can be
// postponed at no extra cost.
func usefulConfigs(st dpState, m int) [][]model.Color {
	cands := map[model.Color]bool{model.Black: true}
	for c := range st.pending {
		cands[c] = true
	}
	for _, c := range st.config {
		cands[c] = true
	}
	colors := make([]model.Color, 0, len(cands))
	for c := range cands {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })

	var out [][]model.Color
	cur := make([]model.Color, 0, m)
	var rec func(startIdx, left int)
	rec = func(startIdx, left int) {
		if left == 0 {
			cfg := make([]model.Color, m)
			copy(cfg, cur)
			out = append(out, cfg)
			return
		}
		for i := startIdx; i < len(colors); i++ {
			cur = append(cur, colors[i])
			rec(i, left-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, m)
	return out
}

// reconfigCost charges Δ per resource whose color changes, matching old and
// new configuration multisets to maximize overlap (both are sorted).
func reconfigCost(oldCfg, newCfg []model.Color, delta int64) int64 {
	i, j, overlap := 0, 0, 0
	for i < len(oldCfg) && j < len(newCfg) {
		switch {
		case oldCfg[i] == newCfg[j]:
			overlap++
			i++
			j++
		case oldCfg[i] < newCfg[j]:
			i++
		default:
			j++
		}
	}
	return delta * int64(len(newCfg)-overlap)
}
