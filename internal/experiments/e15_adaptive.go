package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Extension: ARC-style adaptive LRU/EDF split",
		Claim: "Tuning the ΔLRU-EDF slot split online (grow the LRU quota when reconfigurations dominate, shrink it when drops dominate) beats the fixed half/half split on benign workloads while avoiding the all-LRU collapse on the Appendix A adversary — without knowing the workload family in advance.",
		Run:   runE15,
	})
}

func runE15(cfg Config) []*stats.Table {
	n := 8
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		seeds = seeds[:1]
	}
	families := []struct {
		name string
		gen  func(seed int64) *model.Sequence
	}{
		{"zipf-batched", func(seed int64) *model.Sequence {
			seq, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 1024,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, ZipfS: 1.4, RateLimited: true,
			})
			if err != nil {
				panic(err)
			}
			return seq
		}},
		{"bursty-background", func(seed int64) *model.Sequence {
			seq, err := workload.BackgroundShortTerm(workload.BackgroundConfig{
				Seed: seed, Delta: 8, ShortColors: 4, ShortDelay: 8,
				BackgroundColors: 2, BackgroundDelay: 256,
				Rounds: 1024, BurstProb: 0.5, BackgroundJobs: 192,
			})
			if err != nil {
				panic(err)
			}
			return seq
		}},
		{"adversary-A", func(seed int64) *model.Sequence {
			seq, err := workload.DeltaLRUAdversary(n, 4, 6, 9)
			if err != nil {
				panic(err)
			}
			_ = seed
			return seq
		}},
	}
	t := stats.NewTable(
		fmt.Sprintf("E15: adaptive split vs fixed splits (n=%d; totals summed over %d seeds)", n, len(seeds)),
		"workload", "fixed half/half", "all-LRU", "all-EDF", "adaptive", "final quota")
	for _, fam := range families {
		var fixed, allLRU, allEDF, adaptive int64
		finalQuota := 0
		for _, seed := range seeds {
			seq := fam.gen(seed)
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
			fixed += sim.MustRun(env, core.NewDeltaLRUEDF()).Cost.Total()
			allLRU += sim.MustRun(env, core.NewDeltaLRUEDF(core.WithLRUSlots(env.Slots()))).Cost.Total()
			allEDF += sim.MustRun(env, core.NewEDF()).Cost.Total()
			ad := core.NewAdaptive()
			adaptive += sim.MustRun(env, ad).Cost.Total()
			finalQuota = ad.Quota()
		}
		t.AddRow(fam.name, fixed, allLRU, allEDF, adaptive, finalQuota)
	}
	return []*stats.Table{t}
}
