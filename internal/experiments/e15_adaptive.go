package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Extension: ARC-style adaptive LRU/EDF split",
		Claim: "Tuning the ΔLRU-EDF slot split online (grow the LRU quota when reconfigurations dominate, shrink it when drops dominate) beats the fixed half/half split on benign workloads while avoiding the all-LRU collapse on the Appendix A adversary — without knowing the workload family in advance.",
		Run:   runE15,
	})
}

func runE15(cfg Config) ([]*stats.Table, error) {
	n := 8
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		seeds = seeds[:1]
	}
	families := []struct {
		name string
		gen  func(seed int64) (*model.Sequence, error)
	}{
		{"zipf-batched", func(seed int64) (*model.Sequence, error) {
			return workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 1024,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, ZipfS: 1.4, RateLimited: true,
			})
		}},
		{"bursty-background", func(seed int64) (*model.Sequence, error) {
			return workload.BackgroundShortTerm(workload.BackgroundConfig{
				Seed: seed, Delta: 8, ShortColors: 4, ShortDelay: 8,
				BackgroundColors: 2, BackgroundDelay: 256,
				Rounds: 1024, BurstProb: 0.5, BackgroundJobs: 192,
			})
		}},
		{"adversary-A", func(seed int64) (*model.Sequence, error) {
			return workload.DeltaLRUAdversary(n, 4, 6, 9)
		}},
	}
	t := stats.NewTable(
		fmt.Sprintf("E15: adaptive split vs fixed splits (n=%d; totals summed over %d seeds)", n, len(seeds)),
		"workload", "fixed half/half", "all-LRU", "all-EDF", "adaptive", "final quota")
	for _, fam := range families {
		var fixed, allLRU, allEDF, adaptive int64
		finalQuota := 0
		for _, seed := range seeds {
			seq, err := fam.gen(seed)
			if err != nil {
				return nil, err
			}
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
			total := func(p sim.Policy) (int64, error) {
				r, err := sim.Run(env, p)
				if err != nil {
					return 0, err
				}
				return r.Cost.Total(), nil
			}
			v, err := total(core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			fixed += v
			if v, err = total(core.NewDeltaLRUEDF(core.WithLRUSlots(env.Slots()))); err != nil {
				return nil, err
			}
			allLRU += v
			if v, err = total(core.NewEDF()); err != nil {
				return nil, err
			}
			allEDF += v
			ad := core.NewAdaptive()
			if v, err = total(ad); err != nil {
				return nil, err
			}
			adaptive += v
			finalQuota = ad.Quota()
		}
		t.AddRow(fam.name, fixed, allLRU, allEDF, adaptive, finalQuota)
	}
	return []*stats.Table{t}, nil
}
