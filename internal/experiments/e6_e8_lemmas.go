package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/edf"
	"rrsched/internal/model"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Lemma 3.2 chain: eligible drops of ΔLRU-EDF vs the EDF-family bounds",
		Claim: "EligibleDrops(ΔLRU-EDF @ n=8m) <= Drops(DS-Seq-EDF @ m') <= Drops(Par-EDF @ m') for the paper's parameters, and Par-EDF @ m lower-bounds OPT's drops.",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Lemmas 3.3 & 3.4: epoch accounting of ΔLRU-EDF",
		Claim: "ReconfigCost <= 4·numEpochs·Δ and IneligibleDropCost <= numEpochs·Δ on every input; the slack columns must be >= 0.",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Introduction scenario: thrashing vs underutilization",
		Claim: "Pure recency (ΔLRU) underutilizes (heavy background drops) while the deadline-aware policies drop nothing. EDF's thrashing half of the dilemma is adversarial (see E2); on this randomized scenario its reconfiguration cost stays moderate, which the results report honestly.",
		Run:   runE8,
	})
}

func runE6(cfg Config) ([]*stats.Table, error) {
	m := 1
	n := 8 * m
	seeds := []int64{1, 2, 3, 4, 5}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	t := stats.NewTable(
		fmt.Sprintf("E6: drop-cost chain on rate-limited batched inputs (ΔLRU-EDF at n=%d; EDF family at 2m=%d resources; Par-EDF at m=%d lower-bounds OPT drops)", n, 2*m, m),
		"seed", "jobs", "eligibleDrops", "dsSeqEDF(2m)", "parEDF(2m)", "parEDF(m)", "total drops")
	for _, seed := range seeds {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: 4, Colors: 10, Rounds: 512,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.8, RateLimited: true,
		})
		if err != nil {
			return nil, err
		}
		p := core.NewDeltaLRUEDF()
		res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, p)
		if err != nil {
			return nil, err
		}
		ds, err := edf.DSSeqEDF(seq, 2*m)
		if err != nil {
			return nil, err
		}
		t.AddRow(seed, seq.NumJobs(),
			p.Tracker().EligibleDrops(), ds.Cost.Drop,
			edf.ParEDFDrops(seq, 2*m), edf.ParEDFDrops(seq, m), res.Cost.Drop)
	}
	return []*stats.Table{t}, nil
}

func runE7(cfg Config) ([]*stats.Table, error) {
	n := 8
	seeds := []int64{1, 2, 3, 4, 5}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	t := stats.NewTable(
		fmt.Sprintf("E7: epoch accounting of ΔLRU-EDF (n=%d); Lemma 3.3 bound is 4·epochs·Δ, Lemma 3.4 bound is epochs·Δ", n),
		"seed", "Δ", "epochs", "reconfig", "4·epochs·Δ", "slack 3.3", "ineligibleDrops", "epochs·Δ", "slack 3.4")
	for _, seed := range seeds {
		delta := int64(4 + 4*(seed%3))
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: delta, Colors: 10, Rounds: 512,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, RateLimited: true,
		})
		if err != nil {
			return nil, err
		}
		p := core.NewDeltaLRUEDF()
		res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, p)
		if err != nil {
			return nil, err
		}
		tr := p.Tracker()
		epochs := tr.NumEpochs()
		bound33 := 4 * epochs * delta
		bound34 := epochs * delta
		t.AddRow(seed, delta, epochs,
			res.Cost.Reconfig, bound33, bound33-res.Cost.Reconfig,
			tr.IneligibleDrops(), bound34, bound34-tr.IneligibleDrops())
	}
	return []*stats.Table{t}, nil
}

func runE8(cfg Config) ([]*stats.Table, error) {
	n := 8
	rounds := int64(1024)
	if cfg.Quick {
		rounds = 512
	}
	seq, err := workload.BackgroundShortTerm(workload.BackgroundConfig{
		Seed: 7, Delta: 8,
		ShortColors: 4, ShortDelay: 8,
		BackgroundColors: 2, BackgroundDelay: 256,
		Rounds: rounds, BurstProb: 0.5, BackgroundJobs: 192,
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("E8: background vs short-term scenario (n=%d, jobs=%d): cost decomposition per policy", n, seq.NumJobs()),
		"policy", "reconfig", "drop", "total")
	run := func(name string, f func() (model.Cost, error)) error {
		c, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.AddRow(name, c.Reconfig, c.Drop, c.Reconfig+c.Drop)
		return nil
	}
	env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
	steps := []struct {
		name string
		f    func() (model.Cost, error)
	}{
		{"dlru (recency only)", func() (model.Cost, error) {
			r, err := sim.Run(env, core.NewDeltaLRU())
			if err != nil {
				return model.Cost{}, err
			}
			return r.Cost, nil
		}},
		{"edf (deadline only)", func() (model.Cost, error) {
			r, err := sim.Run(env, core.NewEDF())
			if err != nil {
				return model.Cost{}, err
			}
			return r.Cost, nil
		}},
		{"dlru-edf (combination)", func() (model.Cost, error) {
			r, err := sim.Run(env, core.NewDeltaLRUEDF())
			if err != nil {
				return model.Cost{}, err
			}
			return r.Cost, nil
		}},
		{"distribute(dlru-edf)", func() (model.Cost, error) {
			r, err := reduce.RunDistribute(seq, n, core.NewDeltaLRUEDF())
			if err != nil {
				return model.Cost{}, err
			}
			return r.Cost, nil
		}},
	}
	for _, s := range steps {
		if err := run(s.name, s.f); err != nil {
			return nil, err
		}
	}
	return []*stats.Table{t}, nil
}
