package experiments

import (
	"fmt"

	"rrsched/internal/adversary"
	"rrsched/internal/core"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Automated adversary mining",
		Claim: "A mechanical hill-climbing search over batched instances drives the pure policies' measured ratio far above the combination's — rediscovering the Appendix A/B separations without hand-built constructions. The combined policy's mined ratio stays a small constant.",
		Run:   runE17,
	})
}

func runE17(cfg Config) ([]*stats.Table, error) {
	iters := 300
	seeds := []int64{1, 2}
	if cfg.Quick {
		iters = 100
		seeds = seeds[:1]
	}
	mk := func(seed int64) adversary.Config {
		return adversary.Config{
			Seed: seed, Delta: 4, Colors: 5,
			DelayExps: []uint{6, 6, 6, 6, 9},
			Rounds:    512, Iterations: iters,
			Resources: 8, LBResources: 1,
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("E17: hill-climbed worst cases (space: 4 short colors D=64 + 1 long D=512, %d iterations, n=8 vs LB at m=1)", iters),
		"policy", "seed", "start ratio", "mined ratio", "accepted moves", "mined jobs")
	policies := []struct {
		name    string
		factory func() sim.Policy
	}{
		{"dlru", func() sim.Policy { return core.NewDeltaLRU() }},
		{"edf", func() sim.Policy { return core.NewEDF() }},
		{"dlru-edf", func() sim.Policy { return core.NewDeltaLRUEDF() }},
		{"adaptive", func() sim.Policy { return core.NewAdaptive() }},
	}
	for _, p := range policies {
		for _, seed := range seeds {
			res, err := adversary.Mine(mk(seed), p.factory)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.name, seed, res.InitialRatio, res.Ratio, res.Accepted, res.Sequence.NumJobs())
		}
	}
	return []*stats.Table{t}, nil
}
