// Package experiments implements the evaluation harness: one experiment per
// paper claim (theorems, key lemmas, the two appendix lower-bound
// constructions, and the introduction's motivating scenario), each
// regenerating the tables recorded in EXPERIMENTS.md. The paper is
// theory-only, so these experiments stand in for its (absent) tables and
// figures; see DESIGN.md for the full index.
package experiments

import (
	"fmt"
	"sort"

	"rrsched/internal/stats"
)

// Config tunes experiment scale.
type Config struct {
	// Quick shrinks sweeps for benchmarks and CI; full scale otherwise.
	Quick bool
	// Workers bounds the sweep worker pool (0 means GOMAXPROCS). Pinning it
	// to 1 makes an experiment run strictly sequential, which benchmark and
	// profiling drivers use to measure work rather than parallel speedup;
	// results are identical either way (sweeps collect in input order).
	Workers int
}

// Experiment is a registered, runnable experiment. Run returns the
// experiment's tables or an error; experiments never panic on bad
// configurations or failed runs, so drivers (cmd/rrexp, benchmarks) can
// report failures and keep going.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) ([]*stats.Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E1 < E2 < ... < E10 numerically.
func idLess(a, b string) bool {
	na, nb := 0, 0
	_, _ = fmt.Sscanf(a, "E%d", &na) // best-effort: unparseable IDs sort as 0
	_, _ = fmt.Sscanf(b, "E%d", &nb) // best-effort: unparseable IDs sort as 0
	if na != nb {
		return na < nb
	}
	return a < b
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
