package experiments

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Constructive transformations: Aggregate (Lemma 4.1) and PunctualTransform (Lemma 5.3)",
		Claim: "Both offline schedule transformations realize their contracts on measured inputs: Aggregate keeps drop cost equal with 3x resources and O(1)x reconfiguration cost; PunctualTransform makes every execution punctual with 7x resources and O(1)x reconfiguration cost.",
		Run:   runE14,
	})
}

func runE14(cfg Config) ([]*stats.Table, error) {
	seeds := []int64{1, 2, 3, 4}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	m := 2

	agg := stats.NewTable(
		fmt.Sprintf("E14a: Aggregate on offline greedy schedules (m=%d -> 3m resources); reconfig ratio must stay O(1)", m),
		"seed", "jobs", "T execs", "T' execs", "T reconfig", "T' reconfig", "ratio")
	for _, seed := range seeds {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 5, Rounds: 256,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 1.6,
		})
		if err != nil {
			return nil, err
		}
		inner, smap, err := reduce.DistributeSequence(seq)
		if err != nil {
			return nil, err
		}
		src := offline.BestGreedy(seq, m)
		out, err := reduce.Aggregate(seq, inner, smap, src.Schedule)
		if err != nil {
			return nil, err
		}
		cost, err := model.Audit(inner, out)
		if err != nil {
			return nil, err
		}
		agg.AddRow(seed, seq.NumJobs(), src.Schedule.NumExecs(), out.NumExecs(),
			src.Cost.Reconfig, cost.Reconfig,
			stats.Ratio(cost.Reconfig, maxi(src.Cost.Reconfig, 1)))
	}

	punc := stats.NewTable(
		fmt.Sprintf("E14b: PunctualTransform on offline greedy schedules (m=%d -> 7m resources); all executions become punctual", m),
		"seed", "jobs", "S execs", "S' execs", "S reconfig", "S' reconfig", "ratio", "punctual?")
	for _, seed := range seeds {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 5, Rounds: 256,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.5,
		})
		if err != nil {
			return nil, err
		}
		src := offline.BestGreedy(seq, m)
		out, err := reduce.PunctualTransform(seq, src.Schedule)
		if err != nil {
			return nil, err
		}
		cost, err := model.Audit(seq, out)
		if err != nil {
			return nil, err
		}
		jobs := map[int64]model.Job{}
		for _, j := range seq.Jobs() {
			jobs[j.ID] = j
		}
		punctual := true
		for _, e := range out.Execs {
			if p, err := reduce.ClassifyExecution(jobs[e.JobID], e.Round); err != nil || p != reduce.Punctual {
				punctual = false
				break
			}
		}
		punc.AddRow(seed, seq.NumJobs(), src.Schedule.NumExecs(), out.NumExecs(),
			src.Cost.Reconfig, cost.Reconfig,
			stats.Ratio(cost.Reconfig, maxi(src.Cost.Reconfig, 1)),
			fmt.Sprintf("%v", punctual))
	}
	return []*stats.Table{agg, punc}, nil
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
