package experiments

import (
	"fmt"

	"rrsched/internal/baseline"
	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/sweep"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Theorem 1: ΔLRU-EDF is resource competitive on rate-limited batched inputs",
		Claim: "With n = 8m resources, cost(ΔLRU-EDF)/OPT stays bounded by a constant across workloads; the ratio column (vs the certified lower bound) must not grow with instance size or Δ.",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Theorem 2: Distribute is resource competitive on batched inputs",
		Claim: "Splitting over-rate batches into rate-limited subcolors preserves resource competitiveness; outer cost <= inner cost (Lemma 4.2) and the ratio vs the lower bound stays bounded.",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Theorem 3: VarBatch is resource competitive on arbitrary inputs",
		Claim: "The full stack VarBatch∘Distribute∘ΔLRU-EDF achieves bounded ratio on general (non-batched) inputs, beating or matching the greedy baselines that thrash or underutilize.",
		Run:   runE5,
	})
}

func runE3(cfg Config) ([]*stats.Table, error) {
	m := 1
	n := 8 * m
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	type variant struct {
		name string
		cfg  workload.RandomConfig
	}
	variants := []variant{
		{"uniform-low", workload.RandomConfig{Delta: 4, Colors: 8, Rounds: 512, MinDelayExp: 1, MaxDelayExp: 4, Load: 0.3, RateLimited: true}},
		{"uniform-high", workload.RandomConfig{Delta: 4, Colors: 8, Rounds: 512, MinDelayExp: 1, MaxDelayExp: 4, Load: 0.9, RateLimited: true}},
		{"zipf", workload.RandomConfig{Delta: 4, Colors: 12, Rounds: 512, MinDelayExp: 1, MaxDelayExp: 5, Load: 0.6, ZipfS: 1.5, RateLimited: true}},
		{"big-delta", workload.RandomConfig{Delta: 16, Colors: 8, Rounds: 1024, MinDelayExp: 2, MaxDelayExp: 6, Load: 0.6, RateLimited: true}},
	}
	t := stats.NewTable(
		fmt.Sprintf("E3: ΔLRU-EDF on rate-limited batched inputs, n=%d vs OPT bracket at m=%d (ratioLB upper-bounds the true competitive ratio)", n, m),
		"workload", "seed", "jobs", "cost", "reconfig", "drop", "LB(m)", "UB(m)", "ratioLB", "ratioUB")
	type cell struct {
		name string
		seed int64
		cfg  workload.RandomConfig
	}
	var cells []cell
	for _, v := range variants {
		for _, seed := range seeds {
			c := v.cfg
			c.Seed = seed
			cells = append(cells, cell{name: v.name, seed: seed, cfg: c})
		}
	}
	// The bracket computation dominates; fan the sweep out over the worker
	// pool and collect rows in input order so the table is deterministic.
	rows, err := sweep.Map(cfg.Workers, cells, func(c cell) ([]any, error) {
		seq, err := workload.RandomBatched(c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
		if err != nil {
			return nil, err
		}
		br := offline.BracketOPT(seq, m)
		return []any{c.name, c.seed, seq.NumJobs(), res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop,
			br.LB, br.UB, stats.Ratio(res.Cost.Total(), br.LB), stats.Ratio(res.Cost.Total(), br.UB)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}

func runE4(cfg Config) ([]*stats.Table, error) {
	m := 1
	n := 8 * m
	seeds := []int64{1, 2, 3, 4}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	t := stats.NewTable(
		fmt.Sprintf("E4: Distribute(ΔLRU-EDF) on batched inputs with over-rate bursts, n=%d vs OPT bracket at m=%d", n, m),
		"seed", "jobs", "rate-limited?", "inner cost", "outer cost", "LB(m)", "UB(m)", "ratioLB")
	for _, seed := range seeds {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: 4, Colors: 6, Rounds: 512,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 2.5, // over-rate: batches exceed D_ℓ
		})
		if err != nil {
			return nil, err
		}
		res, err := reduce.RunDistribute(seq, n, core.NewDeltaLRUEDF())
		if err != nil {
			return nil, err
		}
		br := offline.BracketOPT(seq, m)
		t.AddRow(seed, seq.NumJobs(), fmt.Sprintf("%v", seq.IsRateLimited()),
			res.Inner.Cost.Total(), res.Cost.Total(), br.LB, br.UB,
			stats.Ratio(res.Cost.Total(), br.LB))
	}
	return []*stats.Table{t}, nil
}

func runE5(cfg Config) ([]*stats.Table, error) {
	m := 1
	n := 8 * m
	seeds := []int64{1, 2, 3, 4}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	gens := []struct {
		name string
		gen  func(seed int64) (*model.Sequence, error)
	}{
		{"general-zipf", func(seed int64) (*model.Sequence, error) {
			return workload.RandomGeneral(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 5, Load: 0.5, ZipfS: 1.4,
			})
		}},
		{"phase-shift", func(seed int64) (*model.Sequence, error) {
			return workload.PhaseShift(workload.PhaseShiftConfig{
				Seed: seed, Delta: 4, Colors: 12, PhaseLen: 128, Phases: 4,
				ActivePerPhase: 4, Delay: 4, Load: 0.7,
			})
		}},
	}
	t := stats.NewTable(
		fmt.Sprintf("E5: VarBatch stack on general inputs, n=%d vs OPT bracket at m=%d and greedy baselines at n=%d", n, m, n),
		"workload", "seed", "jobs", "varbatch", "most-pending", "color-edf", "LB(m)", "UB(m)", "ratioLB")
	for _, g := range gens {
		for _, seed := range seeds {
			seq, err := g.gen(seed)
			if err != nil {
				return nil, err
			}
			vres, err := reduce.RunVarBatch(seq, n, core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
			mp, err := sim.Run(env, &baseline.MostPending{})
			if err != nil {
				return nil, err
			}
			ce, err := sim.Run(env, &baseline.ColorEDF{})
			if err != nil {
				return nil, err
			}
			br := offline.BracketOPT(seq, m)
			t.AddRow(g.name, seed, seq.NumJobs(), vres.Cost.Total(), mp.Cost.Total(), ce.Cost.Total(),
				br.LB, br.UB, stats.Ratio(vres.Cost.Total(), br.LB))
		}
	}
	return []*stats.Table{t}, nil
}
