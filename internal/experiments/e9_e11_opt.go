package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Exact OPT validation on small instances",
		Claim: "On instances small enough for the exact solver: LB <= OPT <= heuristic UB, and the measured ratio cost(VarBatch stack)/OPT is a bounded constant.",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Augmentation sweep",
		Claim: "The measured ratio of the ΔLRU-EDF stack against a fixed offline bracket shrinks as the resource-augmentation factor grows, flattening near the paper's 8x regime.",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Ablations of ΔLRU-EDF design choices",
		Claim: "Removing either half of the combination (pure-LRU or pure-EDF slot split) or the two-way replication degrades the worst of reconfiguration or drop cost, as the design discussion predicts.",
		Run:   runE11,
	})
}

func runE9(cfg Config) ([]*stats.Table, error) {
	m := 1
	n := 8 * m
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		seeds = seeds[:3]
	}
	t := stats.NewTable(
		fmt.Sprintf("E9: exact OPT (m=%d) vs bracket and the online stack (n=%d) on small instances", m, n),
		"seed", "jobs", "LB", "OPT", "UB", "stack cost", "ratio OPT", "bracket ok")
	for _, seed := range seeds {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed: seed, Delta: 2, Colors: 3, Rounds: 24,
			MinDelayExp: 1, MaxDelayExp: 2, Load: 0.5,
		})
		if err != nil {
			return nil, err
		}
		opt, err := offline.Exact(seq, m, offline.ExactOptions{})
		if err != nil {
			return nil, err
		}
		br := offline.BracketOPT(seq, m)
		res, err := reduce.RunVarBatch(seq, n, core.NewDeltaLRUEDF())
		if err != nil {
			return nil, err
		}
		ok := br.LB <= opt && opt <= br.UB
		t.AddRow(seed, seq.NumJobs(), br.LB, opt, br.UB, res.Cost.Total(),
			stats.Ratio(res.Cost.Total(), opt), fmt.Sprintf("%v", ok))
	}
	return []*stats.Table{t}, nil
}

func runE10(cfg Config) ([]*stats.Table, error) {
	m := 1
	ns := []int{4, 8, 16, 32}
	if cfg.Quick {
		ns = []int{4, 8}
	}
	seeds := []int64{1, 2, 3}
	t := stats.NewTable(
		fmt.Sprintf("E10: augmentation sweep — ΔLRU-EDF cost vs OPT bracket (m=%d) as n grows (paper regime n=8m)", m),
		"n", "augmentation", "mean cost", "mean LB", "mean ratioLB")
	for _, n := range ns {
		var sumCost, sumLB int64
		var sumRatio float64
		for _, seed := range seeds {
			seq, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.5, ZipfS: 1.3, RateLimited: true,
			})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			lb := offline.LowerBound(seq, m)
			sumCost += res.Cost.Total()
			sumLB += lb
			sumRatio += stats.Ratio(res.Cost.Total(), lb)
		}
		k := int64(len(seeds))
		t.AddRow(n, fmt.Sprintf("%dx", n/m), sumCost/k, sumLB/k, sumRatio/float64(len(seeds)))
	}
	return []*stats.Table{t}, nil
}

func runE11(cfg Config) ([]*stats.Table, error) {
	n := 8
	seeds := []int64{1, 2, 3, 4}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	type variantResult struct {
		reconfig, drop, total int64
	}
	runVariant := func(seq *model.Sequence, repl int, p sim.Policy) (variantResult, error) {
		r, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: repl, Speed: 1}, p)
		if err != nil {
			return variantResult{}, err
		}
		return variantResult{r.Cost.Reconfig, r.Cost.Drop, r.Cost.Total()}, nil
	}
	variants := []struct {
		name string
		run  func(seq *model.Sequence) (variantResult, error)
	}{
		{"default (half/half, repl=2)", func(seq *model.Sequence) (variantResult, error) {
			return runVariant(seq, 2, core.NewDeltaLRUEDF())
		}},
		{"all slots LRU (pure ΔLRU split)", func(seq *model.Sequence) (variantResult, error) {
			return runVariant(seq, 2, core.NewDeltaLRUEDF(core.WithLRUSlots(n/2)))
		}},
		{"no LRU slots (pure EDF split)", func(seq *model.Sequence) (variantResult, error) {
			return runVariant(seq, 2, core.NewEDF())
		}},
		{"no replication (repl=1)", func(seq *model.Sequence) (variantResult, error) {
			return runVariant(seq, 1, core.NewDeltaLRUEDF())
		}},
		{"quarter LRU slots", func(seq *model.Sequence) (variantResult, error) {
			return runVariant(seq, 2, core.NewDeltaLRUEDF(core.WithLRUSlots(1)))
		}},
	}
	t := stats.NewTable(
		fmt.Sprintf("E11: ablations of ΔLRU-EDF on rate-limited batched Zipf inputs (n=%d, mean over %d seeds)", n, len(seeds)),
		"variant", "mean reconfig", "mean drop", "mean total")
	for _, v := range variants {
		var agg variantResult
		for _, seed := range seeds {
			seq, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, ZipfS: 1.4, RateLimited: true,
			})
			if err != nil {
				return nil, err
			}
			r, err := v.run(seq)
			if err != nil {
				return nil, err
			}
			agg.reconfig += r.reconfig
			agg.drop += r.drop
			agg.total += r.total
		}
		k := int64(len(seeds))
		t.AddRow(v.name, agg.reconfig/k, agg.drop/k, agg.total/k)
	}
	return []*stats.Table{t}, nil
}
