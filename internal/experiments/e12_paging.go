package experiments

import (
	"rrsched/internal/paging"
	"rrsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Paging special case (Sleator–Tarjan)",
		Claim: "Paging is reconfigurable resource scheduling with unit delay bound, unit reconfiguration cost, and infinite drop cost. On the adversary trace every deterministic policy with cache k faults k times as often as OPT; with a 2x cache (resource augmentation) LRU is constant competitive.",
		Run:   runE12,
	})
}

func runE12(cfg Config) ([]*stats.Table, error) {
	length := 20000
	if cfg.Quick {
		length = 4000
	}
	ks := []int{4, 8, 16}
	adv := stats.NewTable(
		"E12a: Sleator–Tarjan adversary trace — LRU(k) pays ~k× OPT(k); LRU(2k) is ~2-competitive (augmentation); randomized Marker escapes the deterministic bound",
		"k", "requests", "LRU(k)", "FIFO(k)", "Marker(k)", "OPT(k)", "LRU(k)/OPT(k)", "LRU(2k)", "LRU(2k)/OPT(k)")
	for _, k := range ks {
		trace := paging.SleatorTarjanTrace(k, length)
		lru := paging.RunTrace(&paging.LRU{}, k, trace)
		fifo := paging.RunTrace(&paging.FIFO{}, k, trace)
		marker := paging.RunTrace(paging.NewMarker(42), k, trace)
		opt := paging.BeladyFaults(k, trace)
		lru2 := paging.RunTrace(&paging.LRU{}, 2*k, trace)
		adv.AddRow(k, length, lru, fifo, marker, opt,
			stats.Ratio(int64(lru), int64(opt)), lru2, stats.Ratio(int64(lru2), int64(opt)))
	}
	zipf := stats.NewTable(
		"E12b: Zipf page trace — LRU tracks OPT closely on skewed workloads",
		"k", "pages", "LRU(k)", "FIFO(k)", "OPT(k)", "LRU/OPT")
	for _, k := range ks {
		trace, err := paging.ZipfTrace(11, 256, length, 1.2)
		if err != nil {
			return nil, err
		}
		lru := paging.RunTrace(&paging.LRU{}, k, trace)
		fifo := paging.RunTrace(&paging.FIFO{}, k, trace)
		opt := paging.BeladyFaults(k, trace)
		zipf.AddRow(k, 256, lru, fifo, opt, stats.Ratio(int64(lru), int64(opt)))
	}
	return []*stats.Table{adv, zipf}, nil
}
