package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Section 3.4: super-epoch structure of ΔLRU-EDF runs",
		Claim: "With threshold 2m = n/4, no color overlaps a super-epoch with more than 3 epochs (Corollary 3.2), so the number of epochs is O(super-epochs · m) — the structural fact behind the OPT lower bound (Lemma 3.5).",
		Run:   runE13,
	})
}

func runE13(cfg Config) ([]*stats.Table, error) {
	n := 8
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	t := stats.NewTable(
		fmt.Sprintf("E13: super-epoch accounting of ΔLRU-EDF (n=%d, threshold=n/4=%d); Corollary 3.2 caps epoch overlap at 3", n, n/4),
		"seed", "jobs", "epochs", "super-epochs", "ts updates", "max overlap", "epochs <= 3·(SE+1)·colors?")
	for _, seed := range seeds {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: 4, Colors: 10, Rounds: 1024,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.8, RateLimited: true,
		})
		if err != nil {
			return nil, err
		}
		p := core.NewDeltaLRUEDF(core.WithSuperEpochs())
		if _, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, p); err != nil {
			return nil, err
		}
		tr := p.Tracker()
		se := tr.SuperEpochs()
		// Corollary 3.2 gives epochs(σ) <= 3 · (#super-epochs, incl. the
		// incomplete one) · #colors.
		bound := 3 * (se.Completed + 1) * int64(len(seq.Colors()))
		t.AddRow(seed, seq.NumJobs(), tr.NumEpochs(), se.Completed,
			se.TimestampUpdates, se.MaxEpochOverlap,
			fmt.Sprintf("%v", tr.NumEpochs() <= bound))
	}
	return []*stats.Table{t}, nil
}
