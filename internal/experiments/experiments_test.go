package experiments

import (
	"strconv"
	"strings"
	"testing"

	"rrsched/internal/stats"
)

// mustRun executes an experiment by ID and fails the test on error.
func mustRun(t *testing.T, id string, cfg Config) []*stats.Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	return tables
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered %d experiments, want 18", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s (numeric ordering)", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s is incompletely registered", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 exists")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the tables: non-empty, rows match headers.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := mustRun(t, e.ID, Config{Quick: true})
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("table %q is empty", tb.Caption)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Fatalf("table %q: row width %d != headers %d", tb.Caption, len(row), len(tb.Headers))
					}
				}
			}
		})
	}
}

// TestE1ShapeRatioGrows: the ΔLRU ratio must grow with j while the
// ΔLRU-EDF ratio stays flat — the paper's Appendix A shape.
func TestE1ShapeRatioGrows(t *testing.T) {
	tb := mustRun(t, "E1", Config{Quick: false})[0]
	first := parseF(t, tb.Rows[0][5])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][5])
	if last < 2*first {
		t.Errorf("ΔLRU ratio did not grow: %v -> %v", first, last)
	}
	comboFirst := parseF(t, tb.Rows[0][6])
	comboLast := parseF(t, tb.Rows[len(tb.Rows)-1][6])
	if comboLast > 3*comboFirst+1 {
		t.Errorf("ΔLRU-EDF ratio grew: %v -> %v", comboFirst, comboLast)
	}
}

// TestE2ShapeRatioGrows: the EDF ratio grows with k, ΔLRU-EDF stays flat —
// the Appendix B shape.
func TestE2ShapeRatioGrows(t *testing.T) {
	tb := mustRun(t, "E2", Config{Quick: false})[0]
	first := parseF(t, tb.Rows[0][5])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][5])
	if last < 2*first {
		t.Errorf("EDF ratio did not grow: %v -> %v", first, last)
	}
	comboFirst := parseF(t, tb.Rows[0][6])
	comboLast := parseF(t, tb.Rows[len(tb.Rows)-1][6])
	if comboLast > 3*comboFirst+1 {
		t.Errorf("ΔLRU-EDF ratio grew: %v -> %v", comboFirst, comboLast)
	}
}

// TestE3RatiosBounded: measured ratioLB stays under a generous constant on
// every row (Theorem 1's empirical signature).
func TestE3RatiosBounded(t *testing.T) {
	tb := mustRun(t, "E3", Config{Quick: true})[0]
	col := indexOf(t, tb.Headers, "ratioLB")
	for _, row := range tb.Rows {
		if r := parseF(t, row[col]); r > 8 {
			t.Errorf("ratioLB %v exceeds 8 on row %v", r, row)
		}
	}
}

// TestE7SlackNonNegative: the Lemma 3.3/3.4 slack columns must be >= 0.
func TestE7SlackNonNegative(t *testing.T) {
	tb := mustRun(t, "E7", Config{Quick: true})[0]
	i33 := indexOf(t, tb.Headers, "slack 3.3")
	i34 := indexOf(t, tb.Headers, "slack 3.4")
	for _, row := range tb.Rows {
		if parseF(t, row[i33]) < 0 || parseF(t, row[i34]) < 0 {
			t.Errorf("negative slack in row %v", row)
		}
	}
}

// TestE9BracketHolds: every row must report "bracket ok = true".
func TestE9BracketHolds(t *testing.T) {
	tb := mustRun(t, "E9", Config{Quick: true})[0]
	col := indexOf(t, tb.Headers, "bracket ok")
	for _, row := range tb.Rows {
		if row[col] != "true" {
			t.Errorf("bracket violated: %v", row)
		}
	}
}

// TestE12AdversaryRatio: LRU(k)/OPT(k) ≈ k on the Sleator–Tarjan trace.
func TestE12AdversaryRatio(t *testing.T) {
	tb := mustRun(t, "E12", Config{Quick: true})[0]
	kCol := indexOf(t, tb.Headers, "k")
	rCol := indexOf(t, tb.Headers, "LRU(k)/OPT(k)")
	for _, row := range tb.Rows {
		k := parseF(t, row[kCol])
		r := parseF(t, row[rCol])
		if r < 0.7*k || r > 1.3*k {
			t.Errorf("k=%v: ratio %v not ≈ k", k, r)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func indexOf(t *testing.T, headers []string, name string) int {
	t.Helper()
	for i, h := range headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("header %q not found in %v", name, headers)
	return -1
}

// TestE10MonotoneInAugmentation: mean ratioLB must not increase with n.
func TestE10MonotoneInAugmentation(t *testing.T) {
	tb := mustRun(t, "E10", Config{Quick: false})[0]
	col := indexOf(t, tb.Headers, "mean ratioLB")
	prev := 1e18
	for _, row := range tb.Rows {
		r := parseF(t, row[col])
		if r > prev+0.01 {
			t.Errorf("ratio increased with augmentation: %v after %v", r, prev)
		}
		prev = r
	}
}

// TestE13OverlapBound: Corollary 3.2's cap of 3 epochs per super-epoch.
func TestE13OverlapBound(t *testing.T) {
	tb := mustRun(t, "E13", Config{Quick: true})[0]
	col := indexOf(t, tb.Headers, "max overlap")
	for _, row := range tb.Rows {
		if v := parseF(t, row[col]); v > 3 {
			t.Errorf("max epoch overlap %v > 3 (Corollary 3.2)", v)
		}
	}
}

// TestE14ExecutionParity: the Aggregate and PunctualTransform tables must
// show identical execution counts before and after (Lemma 4.5 parity and the
// Lemma 5.3 contract).
func TestE14ExecutionParity(t *testing.T) {
	tables := mustRun(t, "E14", Config{Quick: true})
	agg := tables[0]
	i1 := indexOf(t, agg.Headers, "T execs")
	i2 := indexOf(t, agg.Headers, "T' execs")
	for _, row := range agg.Rows {
		if row[i1] != row[i2] {
			t.Errorf("aggregate parity broken: %v", row)
		}
	}
	punc := tables[1]
	j1 := indexOf(t, punc.Headers, "S execs")
	j2 := indexOf(t, punc.Headers, "S' execs")
	jp := indexOf(t, punc.Headers, "punctual?")
	for _, row := range punc.Rows {
		if row[j1] != row[j2] || row[jp] != "true" {
			t.Errorf("punctual contract broken: %v", row)
		}
	}
}

// TestE16TailBounded: the max ratio stays within 2x of the median on every
// family (no heavy tail).
func TestE16TailBounded(t *testing.T) {
	tb := mustRun(t, "E16", Config{Quick: true})[0]
	p50 := indexOf(t, tb.Headers, "p50")
	maxc := indexOf(t, tb.Headers, "max")
	for _, row := range tb.Rows {
		med := parseF(t, row[p50])
		mx := parseF(t, row[maxc])
		if mx > 2*med+0.5 {
			t.Errorf("heavy tail in %v: max %v vs p50 %v", row[0], mx, med)
		}
	}
}

// TestE15AdaptiveRobust: adaptive never exceeds 2x the fixed split on any
// family row.
func TestE15AdaptiveRobust(t *testing.T) {
	tb := mustRun(t, "E15", Config{Quick: true})[0]
	fixed := indexOf(t, tb.Headers, "fixed half/half")
	adaptive := indexOf(t, tb.Headers, "adaptive")
	for _, row := range tb.Rows {
		f := parseF(t, row[fixed])
		a := parseF(t, row[adaptive])
		if a > 2*f {
			t.Errorf("adaptive %v > 2x fixed %v on %v", a, f, row[0])
		}
	}
}

// TestWorkerCountDoesNotChangeResults pins the sweep pool to one worker and
// compares against a parallel run: sweeps collect results in input order, so
// the rendered tables must be byte-identical. This is the contract that lets
// benchmark drivers set Config.Workers = 1 to measure work instead of
// parallel speedup.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	render := func(tables []*stats.Table) string {
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	for _, id := range []string{"E3", "E16"} {
		seq := render(mustRun(t, id, Config{Quick: true, Workers: 1}))
		par := render(mustRun(t, id, Config{Quick: true, Workers: 4}))
		if seq != par {
			t.Errorf("%s: tables differ between Workers=1 and Workers=4:\n--- sequential ---\n%s\n--- parallel ---\n%s", id, seq, par)
		}
	}
}
