package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Appendix A: ΔLRU is not resource competitive",
		Claim: "On the Appendix A instance the competitive ratio of ΔLRU is Ω(2^(j+1)/(nΔ)) — it grows unboundedly with j — while ΔLRU-EDF stays bounded.",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Appendix B: EDF is not resource competitive",
		Claim: "On the Appendix B instance the competitive ratio of EDF is at least 2^(k-j-1)/(n/2+1) — it grows unboundedly with k-j — while ΔLRU-EDF stays bounded.",
		Run:   runE2,
	})
}

// offlineScript realizes a hand-built offline schedule (a reconfiguration
// script for m resources) and returns its audited cost; this is a feasible
// schedule, hence an upper bound on OPT.
func offlineScript(seq *model.Sequence, m int, recs []model.Reconfigure) (model.Cost, error) {
	sched, err := sim.Replay(seq, m, 1, recs)
	if err != nil {
		return model.Cost{}, fmt.Errorf("experiments: offline script replay: %w", err)
	}
	cost, err := model.Audit(seq, sched)
	if err != nil {
		return model.Cost{}, fmt.Errorf("experiments: offline script audit: %w", err)
	}
	return cost, nil
}

func runE1(cfg Config) ([]*stats.Table, error) {
	n := 8
	delta := int64(4)
	js := []uint{6, 7, 8, 9}
	if cfg.Quick {
		js = []uint{6, 7}
	}
	t := stats.NewTable(
		fmt.Sprintf("E1: Appendix A adversary vs ΔLRU (n=%d, Δ=%d, k=j+3); OFF caches the long-term color on one resource", n, delta),
		"j", "jobs", "dLRU cost", "dLRU-EDF cost", "OFF cost", "ratio dLRU", "ratio dLRU-EDF", "theory Ω(2^(j+1)/nΔ)")
	for _, j := range js {
		k := j + 3
		seq, err := workload.DeltaLRUAdversary(n, delta, j, k)
		if err != nil {
			return nil, err
		}
		env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
		lru, err := sim.Run(env, core.NewDeltaLRU())
		if err != nil {
			return nil, err
		}
		combo, err := sim.Run(env, core.NewDeltaLRUEDF())
		if err != nil {
			return nil, err
		}
		// The Appendix A offline schedule: one resource, configured to the
		// long-term color at round 0, forever.
		longColor := model.Color(n / 2)
		off, err := offlineScript(seq, 1, []model.Reconfigure{{Round: 0, Resource: 0, To: longColor}})
		if err != nil {
			return nil, err
		}
		t.AddRow(int(j), seq.NumJobs(),
			lru.Cost.Total(), combo.Cost.Total(), off.Total(),
			stats.Ratio(lru.Cost.Total(), off.Total()),
			stats.Ratio(combo.Cost.Total(), off.Total()),
			float64(int64(1)<<(j+1))/float64(int64(n)*delta))
	}
	return []*stats.Table{t}, nil
}

func runE2(cfg Config) ([]*stats.Table, error) {
	n := 4
	delta := int64(8)
	j := uint(4)
	ks := []uint{6, 7, 8, 9}
	if cfg.Quick {
		ks = []uint{6, 7}
	}
	t := stats.NewTable(
		fmt.Sprintf("E2: Appendix B adversary vs EDF (n=%d, Δ=%d, j=%d); OFF serves the short color then each long color in its own stretch", n, delta, j),
		"k", "jobs", "EDF cost", "dLRU-EDF cost", "OFF cost", "ratio EDF", "ratio dLRU-EDF", "theory 2^(k-j-1)/(n/2+1)")
	for _, k := range ks {
		seq, err := workload.EDFAdversary(n, delta, j, k)
		if err != nil {
			return nil, err
		}
		env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
		edfRes, err := sim.Run(env, core.NewEDF())
		if err != nil {
			return nil, err
		}
		combo, err := sim.Run(env, core.NewDeltaLRUEDF())
		if err != nil {
			return nil, err
		}
		// The Appendix B offline schedule with one resource: the short color
		// for rounds [0, 2^(k-1)), then long color p throughout
		// [2^(k+p-1), 2^(k+p)).
		recs := []model.Reconfigure{{Round: 0, Resource: 0, To: model.Color(0)}}
		for p := 0; p < n/2; p++ {
			recs = append(recs, model.Reconfigure{
				Round: int64(1) << (k + uint(p) - 1), Resource: 0, To: model.Color(1 + p),
			})
		}
		off, err := offlineScript(seq, 1, recs)
		if err != nil {
			return nil, err
		}
		t.AddRow(int(k), seq.NumJobs(),
			edfRes.Cost.Total(), combo.Cost.Total(), off.Total(),
			stats.Ratio(edfRes.Cost.Total(), off.Total()),
			stats.Ratio(combo.Cost.Total(), off.Total()),
			float64(int64(1)<<(k-j-1))/float64(n/2+1))
	}
	return []*stats.Table{t}, nil
}
