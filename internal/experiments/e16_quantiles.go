package experiments

import (
	"fmt"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/sweep"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Distributional robustness: measured-ratio quantiles over many seeds",
		Claim: "Theorem 1's constant is a worst-case statement; across large seed sweeps of several workload families (including bursty MMPP traffic) the p50/p95/max of the measured ratio vs the certified lower bound stay small and close together — the tail does not blow up.",
		Run:   runE16,
	})
}

func runE16(cfg Config) ([]*stats.Table, error) {
	m := 1
	n := 8 * m
	numSeeds := 60
	if cfg.Quick {
		numSeeds = 10
	}
	families := []struct {
		name string
		gen  func(seed int64) (*model.Sequence, error)
	}{
		{"uniform", func(seed int64) (*model.Sequence, error) {
			s, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 8, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.6, RateLimited: true,
			})
			return s, err
		}},
		{"zipf", func(seed int64) (*model.Sequence, error) {
			s, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 12, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 5, Load: 0.6, ZipfS: 1.5, RateLimited: true,
			})
			return s, err
		}},
		{"mmpp", func(seed int64) (*model.Sequence, error) {
			s, err := workload.MMPP(workload.MMPPConfig{
				Seed: seed, Delta: 4, Colors: 8, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 4,
				OnLoad: 1.2, OffLoad: 0.05, MeanOn: 32, MeanOff: 64,
			})
			return s, err
		}},
	}
	t := stats.NewTable(
		fmt.Sprintf("E16: ratioLB quantiles of ΔLRU-EDF over %d seeds per family (n=%d, m=%d)", numSeeds, n, m),
		"family", "seeds", "mean", "p50", "p90", "p95", "max")
	for _, fam := range families {
		gen := fam.gen
		ratios, err := sweep.Map(cfg.Workers, sweep.Seeds(numSeeds), func(seed int64) (float64, error) {
			seq, err := gen(seed + 1)
			if err != nil {
				return 0, err
			}
			if seq.NumJobs() == 0 {
				return 1, nil
			}
			res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
			if err != nil {
				return 0, err
			}
			lb := offline.LowerBound(seq, m)
			return stats.Ratio(res.Cost.Total(), lb), nil
		})
		if err != nil {
			return nil, fmt.Errorf("family %s: %w", fam.name, err)
		}
		qs := stats.Quantiles(ratios, 0.5, 0.9, 0.95, 1)
		t.AddRow(fam.name, numSeeds, stats.Mean(ratios), qs[0], qs[1], qs[2], qs[3])
	}
	return []*stats.Table{t}, nil
}
