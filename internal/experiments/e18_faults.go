package experiments

import (
	"fmt"

	"rrsched/internal/chaos"
	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
	"rrsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Robustness: ΔLRU-EDF under resource failures and input chaos",
		Claim: "Under seeded crash/repair fault plans every faulty ΔLRU-EDF schedule passes the model audit, total-cost inflation vs the fault-free same-seed run stays near 1 (lost capacity converts reconfiguration cost into drop cost), and the drop-rate increase scales with injected downtime; under input chaos (surges, duplicate batches) inflation stays a small constant.",
		Run:   runE18,
	})
}

// e18Scenario is one fault regime: how often resources fail and for how long.
type e18Scenario struct {
	name     string
	meanUp   float64
	meanDown float64
}

func runE18(cfg Config) ([]*stats.Table, error) {
	n := 8
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	scenarios := []e18Scenario{
		{"rare-fast (up~256, down~8)", 256, 8},
		{"frequent-fast (up~64, down~8)", 64, 8},
		{"rare-long (up~256, down~64)", 256, 64},
	}

	faults := stats.NewTable(
		fmt.Sprintf("E18a: ΔLRU-EDF under crash/repair fault plans (n=%d, repl=2); inflation = faulty/fault-free total cost of the same seed; every faulty schedule is audited", n),
		"scenario", "seed", "jobs", "downtime", "outages", "base cost", "faulty cost", "inflation", "drop rate Δ", "audit ok")
	for _, sc := range scenarios {
		for _, seed := range seeds {
			seq, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, RateLimited: true,
			})
			if err != nil {
				return nil, err
			}
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
			base, err := sim.Run(env, core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			plan, err := sim.RandomFaultPlan(sim.FaultConfig{
				Seed: seed, Resources: n, Horizon: seq.Horizon() + 1,
				MeanUp: sc.meanUp, MeanDown: sc.meanDown,
			})
			if err != nil {
				return nil, err
			}
			faultyEnv := env
			faultyEnv.Faults = plan
			faulty, err := sim.Run(faultyEnv, core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			// The faulty schedule must still be a legal schedule of the model:
			// the audit replays it (outages included) and recomputes the cost.
			audited, err := model.Audit(seq, faulty.Schedule)
			if err != nil {
				return nil, fmt.Errorf("E18: audit of faulty schedule (%s, seed %d): %w", sc.name, seed, err)
			}
			rep := chaos.Compare(base, faulty, plan)
			faults.AddRow(sc.name, seed, seq.NumJobs(),
				rep.DowntimeRounds, plan.NumOutages(),
				base.Cost.Total(), faulty.Cost.Total(),
				rep.CostInflation, rep.DropRateDelta,
				fmt.Sprintf("%v", audited.Total() == faulty.Cost.Total()))
		}
	}

	input := stats.NewTable(
		fmt.Sprintf("E18b: ΔLRU-EDF under input chaos (n=%d, fault-free resources); perturbed workloads vs the unperturbed run", n),
		"perturbation", "seed", "jobs", "perturbed jobs", "base cost", "perturbed cost", "inflation", "drop rate Δ")
	perturbations := []struct {
		name string
		mk   func(seed int64) chaos.Perturbation
	}{
		{"surge x3 @ [128,192)", func(seed int64) chaos.Perturbation {
			return chaos.Surge(128, 64, 3)
		}},
		{"duplicate batches p=0.25", func(seed int64) chaos.Perturbation {
			return chaos.DuplicateBatches(seed, 0.25)
		}},
		{"surge + duplicates", func(seed int64) chaos.Perturbation {
			return chaos.Chain(chaos.Surge(128, 64, 2), chaos.DuplicateBatches(seed, 0.25))
		}},
	}
	for _, p := range perturbations {
		for _, seed := range seeds {
			seq, err := workload.RandomBatched(workload.RandomConfig{
				Seed: seed, Delta: 4, Colors: 10, Rounds: 512,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7, RateLimited: true,
			})
			if err != nil {
				return nil, err
			}
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
			base, err := sim.Run(env, core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			perturbed, err := p.mk(seed)(seq)
			if err != nil {
				return nil, err
			}
			pres, err := sim.Run(sim.Env{Seq: perturbed, Resources: n, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
			if err != nil {
				return nil, err
			}
			rep := chaos.Compare(base, pres, nil)
			input.AddRow(p.name, seed, seq.NumJobs(), perturbed.NumJobs(),
				base.Cost.Total(), pres.Cost.Total(),
				rep.CostInflation, rep.DropRateDelta)
		}
	}
	return []*stats.Table{faults, input}, nil
}
