package obs

import "testing"

// TestWireMetricsRegistersVocabulary pins the wire metric set: all five
// instruments register under their fixed names, get-or-create is idempotent
// (second call returns the same handles, like NewSchedulerMetrics), and a
// registry that already claimed a name with a different shape surfaces the
// conflict instead of silently splitting the vocabulary.
func TestWireMetricsRegistersVocabulary(t *testing.T) {
	r := NewRegistry()
	wm, err := NewWireMetrics(r)
	if err != nil {
		t.Fatalf("NewWireMetrics: %v", err)
	}
	wm.BytesIn.Add(100)
	wm.BytesOut.Add(40)
	wm.FramesJSON.Inc()
	wm.FramesBinary.Add(3)
	wm.Coalesced.Observe(4)

	snap := r.Snapshot()
	for name, want := range map[string]int64{
		MetricWireBytesIn:      100,
		MetricWireBytesOut:     40,
		MetricWireFramesJSON:   1,
		MetricWireFramesBinary: 3,
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("%s = %d,%v want %d,true", name, got, ok, want)
		}
	}
	hs, ok := snap.Histogram(MetricWireCoalesced)
	if !ok || hs.Count != 1 || hs.Sum != 4 {
		t.Errorf("%s = %+v,%v want count=1 sum=4", MetricWireCoalesced, hs, ok)
	}

	wm2, err := NewWireMetrics(r)
	if err != nil {
		t.Fatalf("second NewWireMetrics: %v", err)
	}
	if wm2.BytesIn != wm.BytesIn || wm2.Coalesced != wm.Coalesced {
		t.Error("NewWireMetrics is not get-or-create: handles differ")
	}

	// A name collision with a different instrument shape must fail loudly.
	bad := NewRegistry()
	if _, err := bad.Histogram(MetricWireBytesIn, []int64{1, 2}); err != nil {
		t.Fatalf("seeding conflicting histogram: %v", err)
	}
	if _, err := NewWireMetrics(bad); err == nil {
		t.Error("NewWireMetrics accepted a registry with a conflicting instrument")
	}
}
