package obs

import (
	"fmt"
	"sort"
)

// MergeSnapshots combines snapshots from several registries into one
// service-level view: counters and gauges with the same name (and label) sum,
// and histograms merge bucket-wise. Histograms with the same name must share
// bucket bounds, and a name must carry the same kind everywhere — mismatches
// are errors, because silently coercing them would fabricate a metric nobody
// recorded. The merged snapshot is sorted by name then label, so merging
// equal inputs is byte-stable like Registry.Snapshot itself.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	type key struct {
		name  string
		label string
	}
	merged := map[key]*MetricSnapshot{}
	var order []key
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for i := range s.Metrics {
			m := s.Metrics[i]
			k := key{name: m.Name, label: m.Label}
			acc, ok := merged[k]
			if !ok {
				cp := m
				cp.Buckets = append([]BucketSnapshot(nil), m.Buckets...)
				merged[k] = &cp
				order = append(order, k)
				continue
			}
			if acc.Kind != m.Kind {
				return nil, fmt.Errorf("obs: merging %q: kind %s vs %s", m.Name, acc.Kind, m.Kind)
			}
			switch m.Kind {
			case "counter", "gauge":
				acc.Value += m.Value
			case "histogram":
				if err := mergeHistogram(acc, m); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("obs: merging %q: unknown kind %q", m.Name, m.Kind)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].label < order[j].label
	})
	out := &Snapshot{}
	for _, k := range order {
		out.Metrics = append(out.Metrics, *merged[k])
	}
	return out, nil
}

func mergeHistogram(acc *MetricSnapshot, m MetricSnapshot) error {
	if len(acc.Buckets) != len(m.Buckets) {
		return fmt.Errorf("obs: merging histogram %q: %d buckets vs %d", m.Name, len(acc.Buckets), len(m.Buckets))
	}
	for i := range m.Buckets {
		a, b := &acc.Buckets[i], m.Buckets[i]
		switch {
		case a.UpperBound == nil && b.UpperBound == nil:
			// Both overflow buckets.
		case a.UpperBound == nil || b.UpperBound == nil || *a.UpperBound != *b.UpperBound:
			return fmt.Errorf("obs: merging histogram %q: bucket %d bounds differ", m.Name, i)
		}
		a.Count += b.Count
	}
	acc.Count += m.Count
	acc.Sum += m.Sum
	return nil
}
