package obs

// Incremental-checkpoint metric names: the vocabulary of the delta checkpoint
// store and cold-tenant paging (internal/ckptstore wired into the serve tier).
// Fixed here, like the scheduler and wire vocabularies, so dashboards can rely
// on one name set regardless of which daemon emits it.
const (
	// MetricCkptDirtyTenants gauges how many resident tenants have state not
	// yet captured by a committed chunk — the work the next cut will pay for.
	MetricCkptDirtyTenants = "ckpt_dirty_tenants"
	// MetricCkptResidentTenants / MetricCkptEvictedTenants gauge the paging
	// split: tenants held in memory vs. paged out to the chunk store.
	MetricCkptResidentTenants = "ckpt_resident_tenants"
	MetricCkptEvictedTenants  = "ckpt_evicted_tenants"
	// MetricCkptChunksWritten counts chunks whose bytes actually landed;
	// MetricCkptChunksDeduped counts puts answered by an existing identical
	// chunk; MetricCkptChunksFolded counts delta chains folded back into full
	// chunks at the chain bound (the compaction events).
	MetricCkptChunksWritten = "ckpt_chunks_written_total"
	MetricCkptChunksDeduped = "ckpt_chunks_deduped_total"
	MetricCkptChunksFolded  = "ckpt_chunks_folded_total"
	// MetricCkptChunkBytes counts encoded bytes of written chunks.
	MetricCkptChunkBytes = "ckpt_chunk_bytes_total"
	// MetricCkptFaultIns counts cold tenants faulted back in on submission,
	// and MetricCkptFaultInNs is the latency of those fault-ins (resolve the
	// chunk chain, rebuild the tenant).
	MetricCkptFaultIns  = "ckpt_fault_ins_total"
	MetricCkptFaultInNs = "ckpt_fault_in_ns"
	// MetricCkptDecisionLogBytes gauges the decision log's on-disk size
	// (including the buffered tail) — the bytes that used to be resident
	// decision history.
	MetricCkptDecisionLogBytes = "ckpt_decision_log_bytes"
)

// CkptMetrics is the pre-wired handle set for one shard's incremental
// checkpoint instrumentation.
type CkptMetrics struct {
	DirtyTenants    *Gauge
	ResidentTenants *Gauge
	EvictedTenants  *Gauge
	ChunksWritten   *Counter
	ChunksDeduped   *Counter
	ChunksFolded    *Counter
	ChunkBytes      *Counter
	FaultIns        *Counter
	FaultInNs       *Histogram
	DecisionLogB    *Gauge
}

// NewCkptMetrics registers the incremental-checkpoint metric set on the
// registry and returns the handles (get-or-create semantics, like
// NewSchedulerMetrics).
func NewCkptMetrics(r *Registry) (*CkptMetrics, error) {
	cm := &CkptMetrics{}
	var err error
	if cm.DirtyTenants, err = r.Gauge(MetricCkptDirtyTenants); err != nil {
		return nil, err
	}
	if cm.ResidentTenants, err = r.Gauge(MetricCkptResidentTenants); err != nil {
		return nil, err
	}
	if cm.EvictedTenants, err = r.Gauge(MetricCkptEvictedTenants); err != nil {
		return nil, err
	}
	if cm.ChunksWritten, err = r.Counter(MetricCkptChunksWritten); err != nil {
		return nil, err
	}
	if cm.ChunksDeduped, err = r.Counter(MetricCkptChunksDeduped); err != nil {
		return nil, err
	}
	if cm.ChunksFolded, err = r.Counter(MetricCkptChunksFolded); err != nil {
		return nil, err
	}
	if cm.ChunkBytes, err = r.Counter(MetricCkptChunkBytes); err != nil {
		return nil, err
	}
	if cm.FaultIns, err = r.Counter(MetricCkptFaultIns); err != nil {
		return nil, err
	}
	// 1 µs to ~17 s in powers of four: a fault-in reads and applies a bounded
	// delta chain, then rebuilds one tenant.
	if cm.FaultInNs, err = r.Histogram(MetricCkptFaultInNs, ExpBuckets(1024, 4, 13)); err != nil {
		return nil, err
	}
	if cm.DecisionLogB, err = r.Gauge(MetricCkptDecisionLogBytes); err != nil {
		return nil, err
	}
	return cm, nil
}
