package obs

import "strconv"

// Phase indexes the four phases of a simulation round (paper, Section 2).
type Phase int

// The four round phases, in execution order. PhaseReconfig and PhaseExecute
// repeat once per mini-round under double speed.
const (
	PhaseDrop Phase = iota
	PhaseArrival
	PhaseReconfig
	PhaseExecute
	NumPhases
)

// String returns the phase's span and metric name.
func (p Phase) String() string {
	switch p {
	case PhaseDrop:
		return "drop"
	case PhaseArrival:
		return "arrival"
	case PhaseReconfig:
		return "reconfig"
	case PhaseExecute:
		return "execute"
	default:
		return "phase" + strconv.Itoa(int(p))
	}
}

// Canonical scheduler metric names. The set mirrors the paper's per-round
// cost accounting: reconfigurations at cost Δ each, drops at unit cost, and
// the queue/latency quantities the delay-factor literature tracks.
const (
	// MetricRounds counts simulated rounds.
	MetricRounds = "sched_rounds_total"
	// MetricReconfigs counts resource recolorings; MetricReconfigCost is the
	// accumulated reconfiguration cost (Δ per recoloring).
	MetricReconfigs    = "sched_reconfigs_total"
	MetricReconfigCost = "sched_reconfig_cost_total"
	// MetricDrops counts dropped jobs per color (label "color");
	// MetricDropped is the color-blind total and MetricDropCost the
	// accumulated drop cost (unit per drop, so it equals MetricDropped).
	MetricDrops    = "sched_drops_total"
	MetricDropped  = "sched_dropped_total"
	MetricDropCost = "sched_drop_cost_total"
	// MetricExecuted counts executed jobs.
	MetricExecuted = "sched_executed_total"
	// MetricQueueDepth gauges the total pending jobs across all colors.
	MetricQueueDepth = "sched_queue_depth"
	// MetricPendingAge is the histogram of job age at execution, in rounds
	// since arrival (the per-job latency the delay bound caps).
	MetricPendingAge = "sched_pending_age_rounds"
	// MetricPhaseNsPrefix prefixes the four per-phase round-latency
	// histograms: sched_phase_ns_drop, ..., sched_phase_ns_execute.
	MetricPhaseNsPrefix = "sched_phase_ns_"
	// MetricCrashes and MetricRepairs count fault-plan transitions.
	MetricCrashes = "sched_crashes_total"
	MetricRepairs = "sched_repairs_total"
)

// SchedulerMetrics is the pre-wired handle set the engine (and any other
// driver of the scheduling stack) instruments against. All handles live on
// one Registry; the struct exists so the hot path never does a name lookup.
type SchedulerMetrics struct {
	Rounds       *Counter
	Reconfigs    *Counter
	ReconfigCost *Counter
	Drops        *CounterVec // by color
	Dropped      *Counter
	DropCost     *Counter
	Executed     *Counter
	QueueDepth   *Gauge
	PendingAge   *Histogram
	PhaseNs      [NumPhases]*Histogram
	Crashes      *Counter
	Repairs      *Counter
}

// NewSchedulerMetrics registers the scheduler metric set on the registry and
// returns the handles. Registering twice on the same registry returns the
// same handles (get-or-create semantics throughout).
func NewSchedulerMetrics(r *Registry) (*SchedulerMetrics, error) {
	sm := &SchedulerMetrics{}
	var err error
	if sm.Rounds, err = r.Counter(MetricRounds); err != nil {
		return nil, err
	}
	if sm.Reconfigs, err = r.Counter(MetricReconfigs); err != nil {
		return nil, err
	}
	if sm.ReconfigCost, err = r.Counter(MetricReconfigCost); err != nil {
		return nil, err
	}
	if sm.Drops, err = r.CounterVec(MetricDrops, "color"); err != nil {
		return nil, err
	}
	if sm.Dropped, err = r.Counter(MetricDropped); err != nil {
		return nil, err
	}
	if sm.DropCost, err = r.Counter(MetricDropCost); err != nil {
		return nil, err
	}
	if sm.Executed, err = r.Counter(MetricExecuted); err != nil {
		return nil, err
	}
	if sm.QueueDepth, err = r.Gauge(MetricQueueDepth); err != nil {
		return nil, err
	}
	// Ages are bounded by the largest delay bound; powers of two to 2^16
	// rounds cover every workload in the repo with an overflow bucket above.
	if sm.PendingAge, err = r.Histogram(MetricPendingAge, ExpBuckets(1, 2, 17)); err != nil {
		return nil, err
	}
	// Phase latencies: 256 ns to ~8.6 s in powers of four.
	for p := PhaseDrop; p < NumPhases; p++ {
		if sm.PhaseNs[p], err = r.Histogram(MetricPhaseNsPrefix+p.String(), ExpBuckets(256, 4, 13)); err != nil {
			return nil, err
		}
	}
	if sm.Crashes, err = r.Counter(MetricCrashes); err != nil {
		return nil, err
	}
	if sm.Repairs, err = r.Counter(MetricRepairs); err != nil {
		return nil, err
	}
	return sm, nil
}
