package obs

// Wire-path metric names: ingest/egress volume and framing of a network
// service speaking the rrserve wire protocols, plus the shard-inbox
// coalescing histogram. They live in obs (not serve) for the same reason the
// scheduler vocabulary does: one fixed name set that dashboards and merged
// snapshots can rely on regardless of which daemon emits it.
const (
	// MetricWireBytesIn counts request-body bytes decoded (any codec).
	MetricWireBytesIn = "wire_bytes_in_total"
	// MetricWireBytesOut counts response-body bytes encoded on the data
	// endpoints (error responses are not counted — they are diagnostics).
	MetricWireBytesOut = "wire_bytes_out_total"
	// MetricWireFramesJSON / MetricWireFramesBinary count decoded request
	// payloads by codec, which is what makes a mixed-protocol fleet's format
	// split observable.
	MetricWireFramesJSON   = "wire_frames_json_total"
	MetricWireFramesBinary = "wire_frames_binary_total"
	// MetricWireCoalesced is a histogram of how many queued commands one
	// shard wakeup drained: 1 means every request paid its own wakeup, the
	// tail shows batch admission amortizing scheduling overhead.
	MetricWireCoalesced = "wire_coalesced_batch"
)

// WireMetrics is the pre-wired handle set for a wire endpoint, one per shard
// (or per service): byte and frame counters plus the coalescing histogram.
type WireMetrics struct {
	BytesIn      *Counter
	BytesOut     *Counter
	FramesJSON   *Counter
	FramesBinary *Counter
	Coalesced    *Histogram
}

// NewWireMetrics registers the wire metric set on the registry and returns
// the handles (get-or-create semantics, like NewSchedulerMetrics).
func NewWireMetrics(r *Registry) (*WireMetrics, error) {
	wm := &WireMetrics{}
	var err error
	if wm.BytesIn, err = r.Counter(MetricWireBytesIn); err != nil {
		return nil, err
	}
	if wm.BytesOut, err = r.Counter(MetricWireBytesOut); err != nil {
		return nil, err
	}
	if wm.FramesJSON, err = r.Counter(MetricWireFramesJSON); err != nil {
		return nil, err
	}
	if wm.FramesBinary, err = r.Counter(MetricWireFramesBinary); err != nil {
		return nil, err
	}
	// Coalesced batch sizes: 1..1024 in powers of two, overflow above (the
	// shard inbox is bounded, so the tail is the channel capacity).
	if wm.Coalesced, err = r.Histogram(MetricWireCoalesced, ExpBuckets(1, 2, 11)); err != nil {
		return nil, err
	}
	return wm, nil
}
