package obs

import "testing"

// TestCkptMetricsRegistersVocabulary pins the incremental-checkpoint metric
// set: every instrument registers under its fixed name, get-or-create is
// idempotent, and a shape conflict surfaces instead of splitting the
// vocabulary.
func TestCkptMetricsRegistersVocabulary(t *testing.T) {
	r := NewRegistry()
	cm, err := NewCkptMetrics(r)
	if err != nil {
		t.Fatalf("NewCkptMetrics: %v", err)
	}
	cm.DirtyTenants.Set(3)
	cm.ResidentTenants.Set(10)
	cm.EvictedTenants.Set(7)
	cm.ChunksWritten.Add(5)
	cm.ChunksDeduped.Add(2)
	cm.ChunksFolded.Inc()
	cm.ChunkBytes.Add(4096)
	cm.FaultIns.Add(4)
	cm.FaultInNs.Observe(2048)
	cm.DecisionLogB.Set(1 << 16)

	snap := r.Snapshot()
	for name, want := range map[string]int64{
		MetricCkptChunksWritten: 5,
		MetricCkptChunksDeduped: 2,
		MetricCkptChunksFolded:  1,
		MetricCkptChunkBytes:    4096,
		MetricCkptFaultIns:      4,
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("%s = %d,%v want %d,true", name, got, ok, want)
		}
	}
	for name, want := range map[string]int64{
		MetricCkptDirtyTenants:     3,
		MetricCkptResidentTenants:  10,
		MetricCkptEvictedTenants:   7,
		MetricCkptDecisionLogBytes: 1 << 16,
	} {
		// Snapshot.Counter reads gauges too (same scalar shape).
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("%s = %d,%v want %d,true", name, got, ok, want)
		}
	}
	hs, ok := snap.Histogram(MetricCkptFaultInNs)
	if !ok || hs.Count != 1 || hs.Sum != 2048 {
		t.Errorf("%s = %+v,%v want count=1 sum=2048", MetricCkptFaultInNs, hs, ok)
	}

	cm2, err := NewCkptMetrics(r)
	if err != nil {
		t.Fatalf("second NewCkptMetrics: %v", err)
	}
	if cm2.ChunksWritten != cm.ChunksWritten || cm2.FaultInNs != cm.FaultInNs {
		t.Error("NewCkptMetrics is not get-or-create: handles differ")
	}

	bad := NewRegistry()
	if _, err := bad.Counter(MetricCkptDirtyTenants); err != nil {
		t.Fatalf("seeding conflicting counter: %v", err)
	}
	if _, err := NewCkptMetrics(bad); err == nil {
		t.Error("NewCkptMetrics accepted a registry with a conflicting instrument")
	}
}
