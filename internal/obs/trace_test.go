package obs

import (
	"bytes"
	"strings"
	"testing"

	"rrsched/internal/model"
)

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.RecordSpan(Span{Name: "drop", Round: int64(i), Start: int64(i), Dur: 1})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Round != int64(6+i) {
			t.Errorf("span %d round = %d, want %d (oldest-first order)", i, s.Round, 6+i)
		}
	}
	if tr.Evicted() != 6 {
		t.Errorf("evicted = %d, want 6", tr.Evicted())
	}
}

func TestTracerRecordMeasuresDuration(t *testing.T) {
	tr := NewTracer(8)
	start := Now()
	tr.Record("execute", 3, 1, start)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Name != "execute" || s.Round != 3 || s.Mini != 1 || s.Start != start {
		t.Errorf("span fields wrong: %+v", s)
	}
	if s.Dur < 0 {
		t.Errorf("negative duration %d", s.Dur)
	}
}

func TestTracerJSONRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	tr.RecordSpan(Span{Name: "a", Round: 1, Dur: 5})
	tr.RecordSpan(Span{Name: "b", Round: 2, Dur: 7})
	tr.RecordSpan(Span{Name: "c", Round: 3, Dur: 9})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, evicted, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || evicted != 1 {
		t.Fatalf("round trip: %d spans, %d evicted; want 2, 1", len(spans), evicted)
	}
	if spans[0].Name != "b" || spans[1].Name != "c" {
		t.Errorf("wrong spans survived: %+v", spans)
	}
	if _, _, err := ReadTrace(strings.NewReader("][")); err == nil {
		t.Error("malformed trace accepted")
	}
	// An empty tracer must still dump valid JSON with an empty span list.
	buf.Reset()
	if err := NewTracer(1).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"spans": []`) {
		t.Errorf("empty dump lacks empty span list: %s", buf.String())
	}
}

func TestSinks(t *testing.T) {
	ev := func(i int64) Event {
		return Event{Kind: EventExec, Round: i, Color: model.Color(2), Resource: 1, N: i}
	}
	t.Run("collector", func(t *testing.T) {
		s := &CollectorSink{Cap: 3}
		for i := int64(0); i < 5; i++ {
			s.Emit(ev(i))
		}
		if got := s.Events(); len(got) != 3 || got[0].Round != 0 {
			t.Errorf("collector kept %d events (first %v), want first 3", len(got), got)
		}
		if s.Dropped() != 2 {
			t.Errorf("dropped = %d, want 2", s.Dropped())
		}
	})
	t.Run("counting", func(t *testing.T) {
		s := &CountingSink{}
		for i := int64(0); i < 7; i++ {
			s.Emit(ev(i))
		}
		if s.Count() != 7 {
			t.Errorf("count = %d, want 7", s.Count())
		}
	})
	t.Run("writer", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewWriterSink(&buf)
		s.Emit(ev(0))
		s.Emit(ev(1))
		if s.Err() != nil {
			t.Fatal(s.Err())
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 2 {
			t.Fatalf("wrote %d NDJSON lines, want 2", len(lines))
		}
		if !strings.Contains(lines[1], `"kind":"exec"`) {
			t.Errorf("unexpected line: %s", lines[1])
		}
	})
	t.Run("multi", func(t *testing.T) {
		a, b := &CountingSink{}, &CountingSink{}
		m := MultiSink{a, b}
		m.Emit(ev(0))
		if a.Count() != 1 || b.Count() != 1 {
			t.Error("multi sink did not fan out")
		}
	})
}

func TestObserverConstructor(t *testing.T) {
	o, err := NewObserver()
	if err != nil {
		t.Fatal(err)
	}
	if o.Metrics == nil || o.Sched == nil {
		t.Fatal("observer missing registry or scheduler metrics")
	}
	if o.Tracer != nil || o.Sink != nil {
		t.Error("observer has tracer/sink attached by default")
	}
	o.Sched.Rounds.Inc()
	if got, _ := o.Metrics.Snapshot().Counter(MetricRounds); got != 1 {
		t.Errorf("rounds = %d, want 1", got)
	}
}
