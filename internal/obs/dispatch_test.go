package obs

import "testing"

// TestNewDispatchMetrics pins the get-or-create contract and that every
// handle is wired to the registry under its canonical name.
func TestNewDispatchMetrics(t *testing.T) {
	r := NewRegistry()
	dm, err := NewDispatchMetrics(r)
	if err != nil {
		t.Fatalf("NewDispatchMetrics: %v", err)
	}
	dm2, err := NewDispatchMetrics(r)
	if err != nil {
		t.Fatalf("second NewDispatchMetrics: %v", err)
	}
	if dm.Failovers != dm2.Failovers || dm.Workers != dm2.Workers {
		t.Fatal("re-registration did not return the same handles")
	}

	dm.Heartbeats.Inc()
	dm.LeaseGrants.Add(3)
	dm.Failovers.Inc()
	dm.Workers.Set(2)
	dm.CheckpointBytes.Observe(1024)
	snap := r.Snapshot()
	for name, want := range map[string]int64{
		MetricHeartbeats:  1,
		MetricLeaseGrants: 3,
		MetricFailovers:   1,
		MetricWorkers:     2,
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("%s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
	if h, ok := snap.Histogram(MetricCheckpointBytes); !ok || h.Count != 1 {
		t.Errorf("%s count = %+v (ok=%v), want 1 observation", MetricCheckpointBytes, h, ok)
	}
}
