package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"rrsched/internal/model"
)

// EventKind names a structured decision event.
type EventKind string

// Engine events (emitted by internal/sim) and tracker events (emitted by the
// core policy state machine).
const (
	// EventDrop: N jobs of Color dropped at their deadline in Round.
	EventDrop EventKind = "drop"
	// EventArrival: N jobs arrived in Round.
	EventArrival EventKind = "arrival"
	// EventReconfig: Resource recolored to Color in Round/Mini at cost N (Δ).
	EventReconfig EventKind = "reconfig"
	// EventExec: Resource executed job N (a job ID) of Color in Round/Mini.
	EventExec EventKind = "exec"
	// EventCrash / EventRepair: Resource went down / came back in Round.
	EventCrash  EventKind = "crash"
	EventRepair EventKind = "repair"
	// EventEpochEnd: Color's epoch ended in Round (it turned ineligible
	// uncached at a delay-bound boundary; Section 3.2 accounting).
	EventEpochEnd EventKind = "epoch_end"
	// EventEligible: Color's counter wrapped in Round, making it eligible;
	// N is the wrap count consumed (Δ).
	EventEligible EventKind = "eligible"
)

// Event is one structured decision event. Resource is -1 when the event is
// not about a specific resource; Color is model.Black when colorless; N
// carries the event's magnitude (a count, a cost, or a job ID — see the kind
// constants).
type Event struct {
	Kind     EventKind   `json:"kind"`
	Round    int64       `json:"round"`
	Mini     int         `json:"mini"`
	Color    model.Color `json:"color"`
	Resource int         `json:"resource"`
	N        int64       `json:"n"`
}

// EventSink consumes decision events. Emit must be cheap and must not block
// the caller: the engine invokes it inside the round loop. Implementations
// needing I/O should buffer. A nil sink disables event streaming entirely.
type EventSink interface {
	Emit(Event)
}

// CollectorSink retains the first Cap events in memory (0 means unbounded)
// and counts the rest — the assertion-friendly sink for tests and tools.
type CollectorSink struct {
	// Cap bounds the retained events when > 0.
	Cap int

	mu      sync.Mutex
	events  []Event
	dropped int64
}

// Emit implements EventSink.
func (s *CollectorSink) Emit(e Event) {
	s.mu.Lock()
	if s.Cap > 0 && len(s.events) >= s.Cap {
		s.dropped++
	} else {
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
}

// Events returns a copy of the retained events in emission order.
func (s *CollectorSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Dropped returns how many events exceeded Cap.
func (s *CollectorSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// CountingSink counts events and discards them — the benchmark sink, so the
// instrumented-vs-bare comparison measures emission overhead, not storage.
type CountingSink struct{ n atomic.Int64 }

// Emit implements EventSink.
func (s *CountingSink) Emit(Event) { s.n.Add(1) }

// Count returns the number of events emitted.
func (s *CountingSink) Count() int64 { return s.n.Load() }

// WriterSink streams events as newline-delimited JSON to an io.Writer. The
// first encoding error is retained (Emit cannot fail) and exposed via Err;
// subsequent events are dropped after an error. Not safe for concurrent use
// with the same writer elsewhere; guard with the internal lock only.
type WriterSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewWriterSink returns a sink writing NDJSON events to w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{enc: json.NewEncoder(w)}
}

// Emit implements EventSink.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Err returns the first encoding error, if any.
func (s *WriterSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MultiSink fans events out to several sinks in order.
type MultiSink []EventSink

// Emit implements EventSink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
