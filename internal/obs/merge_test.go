package obs

import (
	"bytes"
	"testing"
)

func snapFrom(t *testing.T, build func(r *Registry)) *Snapshot {
	t.Helper()
	r := NewRegistry()
	build(r)
	return r.Snapshot()
}

func TestMergeSnapshotsSums(t *testing.T) {
	build := func(cAdd, gSet, hObs int64) func(r *Registry) {
		return func(r *Registry) {
			c, err := r.Counter("jobs_total")
			if err != nil {
				t.Fatalf("Counter: %v", err)
			}
			c.Add(cAdd)
			g, err := r.Gauge("backlog")
			if err != nil {
				t.Fatalf("Gauge: %v", err)
			}
			g.Set(gSet)
			h, err := r.Histogram("latency_ns", ExpBuckets(1, 2, 4))
			if err != nil {
				t.Fatalf("Histogram: %v", err)
			}
			h.Observe(hObs)
			v, err := r.CounterVec("drops_total", "color")
			if err != nil {
				t.Fatalf("CounterVec: %v", err)
			}
			v.With("red").Add(cAdd)
		}
	}
	a := snapFrom(t, build(3, 10, 2))
	b := snapFrom(t, build(4, 20, 6))
	merged, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	if got, ok := merged.Counter("jobs_total"); !ok || got != 7 {
		t.Fatalf("jobs_total = %d (ok=%v), want 7", got, ok)
	}
	if got, ok := merged.Counter("backlog"); !ok || got != 30 {
		t.Fatalf("backlog = %d (ok=%v), want 30", got, ok)
	}
	if got, ok := merged.CounterWith("drops_total", "red"); !ok || got != 7 {
		t.Fatalf("drops_total{red} = %d (ok=%v), want 7", got, ok)
	}
	var hist *MetricSnapshot
	for i := range merged.Metrics {
		if merged.Metrics[i].Name == "latency_ns" {
			hist = &merged.Metrics[i]
		}
	}
	if hist == nil {
		t.Fatal("merged snapshot lost the histogram")
	}
	if hist.Count != 2 || hist.Sum != 8 {
		t.Fatalf("histogram count=%d sum=%d, want 2/8", hist.Count, hist.Sum)
	}
	total := int64(0)
	for _, bk := range hist.Buckets {
		total += bk.Count
	}
	if total != 2 {
		t.Fatalf("bucket counts sum to %d, want 2", total)
	}
}

func TestMergeSnapshotsDeterministic(t *testing.T) {
	build := func(r *Registry) {
		c, err := r.Counter("z_metric")
		if err != nil {
			t.Fatalf("Counter: %v", err)
		}
		c.Inc()
		g, err := r.Gauge("a_metric")
		if err != nil {
			t.Fatalf("Gauge: %v", err)
		}
		g.Set(1)
	}
	a1, err := MergeSnapshots(snapFrom(t, build), snapFrom(t, build))
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	a2, err := MergeSnapshots(snapFrom(t, build), snapFrom(t, build))
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	var b1, b2 bytes.Buffer
	if err := a1.WriteJSON(&b1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := a2.WriteJSON(&b2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("merging equal inputs twice produced different bytes")
	}
	if len(a1.Metrics) != 2 || a1.Metrics[0].Name != "a_metric" {
		t.Fatalf("merged snapshot not sorted by name: %+v", a1.Metrics)
	}
}

func TestMergeSnapshotsRejectsMismatches(t *testing.T) {
	counter := snapFrom(t, func(r *Registry) {
		c, err := r.Counter("m")
		if err != nil {
			t.Fatalf("Counter: %v", err)
		}
		c.Inc()
	})
	gauge := snapFrom(t, func(r *Registry) {
		g, err := r.Gauge("m")
		if err != nil {
			t.Fatalf("Gauge: %v", err)
		}
		g.Set(1)
	})
	if _, err := MergeSnapshots(counter, gauge); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	h1 := snapFrom(t, func(r *Registry) {
		h, err := r.Histogram("h", ExpBuckets(1, 2, 4))
		if err != nil {
			t.Fatalf("Histogram: %v", err)
		}
		h.Observe(1)
	})
	h2 := snapFrom(t, func(r *Registry) {
		h, err := r.Histogram("h", ExpBuckets(1, 2, 5))
		if err != nil {
			t.Fatalf("Histogram: %v", err)
		}
		h.Observe(1)
	})
	if _, err := MergeSnapshots(h1, h2); err == nil {
		t.Fatal("bucket-bound mismatch accepted")
	}
}

func TestMergeSnapshotsNilAndEmpty(t *testing.T) {
	merged, err := MergeSnapshots(nil, &Snapshot{})
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	if len(merged.Metrics) != 0 {
		t.Fatalf("merged empty inputs have %d metrics", len(merged.Metrics))
	}
}
