package obs

import "testing"

// TestVocabularyConstructorsSurfaceConflicts drives every pre-wired metric
// constructor over a registry where exactly one of its names is already
// taken by an instrument of a different shape: each such seeding must fail
// the whole constructor (no silent vocabulary split), and each name
// exercises that constructor's corresponding error branch.
func TestVocabularyConstructorsSurfaceConflicts(t *testing.T) {
	ctors := map[string]func(*Registry) error{
		"ckpt":     func(r *Registry) error { _, err := NewCkptMetrics(r); return err },
		"dispatch": func(r *Registry) error { _, err := NewDispatchMetrics(r); return err },
		"sched":    func(r *Registry) error { _, err := NewSchedulerMetrics(r); return err },
		"wire":     func(r *Registry) error { _, err := NewWireMetrics(r); return err },
	}
	for ctor, mk := range ctors {
		t.Run(ctor, func(t *testing.T) {
			clean := NewRegistry()
			if err := mk(clean); err != nil {
				t.Fatalf("constructor on a clean registry: %v", err)
			}
			seen := map[string]bool{}
			for _, m := range clean.Snapshot().Metrics {
				if seen[m.Name] {
					continue // countervec rows repeat the name per label
				}
				seen[m.Name] = true
				bad := NewRegistry()
				var err error
				if m.Kind == "histogram" {
					_, err = bad.Counter(m.Name)
				} else {
					_, err = bad.Histogram(m.Name, []int64{1, 2})
				}
				if err != nil {
					t.Fatalf("seeding conflict under %q: %v", m.Name, err)
				}
				if err := mk(bad); err == nil {
					t.Errorf("constructor accepted a registry where %q has a conflicting shape", m.Name)
				}
			}
			if len(seen) == 0 {
				t.Fatal("constructor registered no snapshot-visible metrics")
			}
		})
	}
}
