package obs

import (
	"os"
	"testing"
)

// TestRSSBytes pins the degrade-to-zero contract: where /proc/self/status
// exists (linux), a live process must report a positive resident set; where
// it does not, the reading is 0, never an error.
func TestRSSBytes(t *testing.T) {
	got := RSSBytes()
	if _, err := os.Stat("/proc/self/status"); err != nil {
		if got != 0 {
			t.Fatalf("RSSBytes = %d without /proc/self/status, want 0", got)
		}
		return
	}
	if got <= 0 {
		t.Fatalf("RSSBytes = %d on a live process, want > 0", got)
	}
	// A test binary's resident set is megabytes, not terabytes; a unit slip
	// (kB vs bytes) would trip one of these bounds.
	if got < 1<<20 || got > 1<<40 {
		t.Fatalf("RSSBytes = %d, implausible for a test process", got)
	}
}
