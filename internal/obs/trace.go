package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Span is one timed phase of one round. Start is nanoseconds since the
// process-local epoch (see Now); Dur is the span's duration. Spans exist for
// latency attribution — which phase a slow round spent its time in — and are
// pure outputs: nothing reads them back into scheduling.
type Span struct {
	Name  string `json:"name"`
	Round int64  `json:"round"`
	Mini  int    `json:"mini"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
}

// Tracer records spans into a bounded ring buffer: the most recent Cap spans
// survive, older ones are evicted and counted. The zero capacity means
// DefaultTracerCap. Record is safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	head    int // index of the oldest span
	count   int
	evicted int64
}

// DefaultTracerCap bounds a Tracer constructed with capacity <= 0: enough
// for the last ~4k rounds of four-phase tracing without unbounded growth.
const DefaultTracerCap = 16384

// NewTracer returns a tracer retaining at most capacity spans (<= 0 means
// DefaultTracerCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{spans: make([]Span, capacity)}
}

// Record appends a finished span that started at startNs (a Now() value),
// computing its duration from the current clock.
func (t *Tracer) Record(name string, round int64, mini int, startNs int64) {
	t.RecordSpan(Span{Name: name, Round: round, Mini: mini, Start: startNs, Dur: Now() - startNs})
}

// RecordSpan appends a fully formed span.
func (t *Tracer) RecordSpan(s Span) {
	t.mu.Lock()
	if t.count == len(t.spans) {
		t.spans[t.head] = s
		t.head = (t.head + 1) % len(t.spans)
		t.evicted++
	} else {
		t.spans[(t.head+t.count)%len(t.spans)] = s
		t.count++
	}
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.spans[(t.head+i)%len(t.spans)])
	}
	return out
}

// Evicted returns how many spans were displaced by the ring bound.
func (t *Tracer) Evicted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// traceDump is the JSON image of a tracer.
type traceDump struct {
	Spans   []Span `json:"spans"`
	Evicted int64  `json:"evicted"`
}

// WriteJSON dumps the retained spans (oldest first) plus the eviction count
// as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	d := traceDump{Spans: t.Spans(), Evicted: t.Evicted()}
	if d.Spans == nil {
		d.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadTrace decodes a dump written with WriteJSON and returns the spans and
// eviction count.
func ReadTrace(r io.Reader) ([]Span, int64, error) {
	var d traceDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, 0, fmt.Errorf("obs: decoding trace: %w", err)
	}
	return d.Spans, d.Evicted, nil
}
