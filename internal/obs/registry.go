package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone int64 counter. All methods are safe for concurrent
// use; the hot path is a single atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug but are not policed on the
// hot path; Snapshot exposes whatever was accumulated).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 instrument (queue depth, cached colors).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations. Bounds are
// inclusive upper bounds in ascending order; an implicit overflow bucket
// catches everything above the last bound. Observe is a binary search plus
// three atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// ExpBuckets returns n ascending bucket bounds starting at start and growing
// by the integer factor (>= 2) — the standard shape for latencies and ages.
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, 0, n)
	b := start
	for i := 0; i < n; i++ {
		out = append(out, b)
		// Saturate instead of overflowing so deep bucket lists stay sorted.
		if b > (1<<62)/factor {
			break
		}
		b *= factor
	}
	return out
}

// metric is the registry's internal view of one instrument.
type metric struct {
	kind    string // "counter" | "gauge" | "histogram"
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	vec     *CounterVec
}

// Registry holds named metrics. Registration (get-or-create) takes a lock;
// the returned handles are lock-free, so instrumented code registers once at
// setup and touches only atomics per round.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the counter with the given name, creating it on first use.
// A name already registered as a different kind is an error.
func (r *Registry) Counter(name string) (*Counter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != "counter" {
			return nil, fmt.Errorf("obs: metric %q already registered as %s", name, m.kind)
		}
		return m.counter, nil
	}
	c := &Counter{}
	r.metrics[name] = &metric{kind: "counter", counter: c}
	return c, nil
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) (*Gauge, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != "gauge" {
			return nil, fmt.Errorf("obs: metric %q already registered as %s", name, m.kind)
		}
		return m.gauge, nil
	}
	g := &Gauge{}
	r.metrics[name] = &metric{kind: "gauge", gauge: g}
	return g, nil
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket bounds on first use. Bounds must be ascending and non-empty;
// re-registering with different bounds is an error.
func (r *Registry) Histogram(name string, bounds []int64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram %q needs at least one bucket bound", name)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram %q bounds not ascending at index %d", name, i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != "histogram" {
			return nil, fmt.Errorf("obs: metric %q already registered as %s", name, m.kind)
		}
		if !equalBounds(m.hist.bounds, bounds) {
			return nil, fmt.Errorf("obs: histogram %q re-registered with different bounds", name)
		}
		return m.hist, nil
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.metrics[name] = &metric{kind: "histogram", hist: h}
	return h, nil
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterVec is a family of counters distinguished by one label (for
// example sched_drops_total by color). With is get-or-create; callers on a
// hot path cache the returned handle per label value.
type CounterVec struct {
	name  string
	label string

	mu sync.Mutex
	by map[string]*Counter
}

// CounterVec returns the labeled counter family with the given name and
// label key, creating it on first use.
func (r *Registry) CounterVec(name, label string) (*CounterVec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != "countervec" {
			return nil, fmt.Errorf("obs: metric %q already registered as %s", name, m.kind)
		}
		if m.vec.label != label {
			return nil, fmt.Errorf("obs: counter family %q re-registered with label %q (was %q)", name, label, m.vec.label)
		}
		return m.vec, nil
	}
	v := &CounterVec{name: name, label: label, by: make(map[string]*Counter)}
	r.metrics[name] = &metric{kind: "countervec", vec: v}
	return v, nil
}

// With returns the counter for the given label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.by[value]
	if !ok {
		c = &Counter{}
		v.by[value] = c
	}
	return c
}

// --- snapshots ---

// BucketSnapshot is one histogram bucket: the count of observations at or
// below the inclusive upper bound (per bucket, not cumulative). The overflow
// bucket is encoded with "le" omitted.
type BucketSnapshot struct {
	UpperBound *int64 `json:"le,omitempty"`
	Count      int64  `json:"count"`
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"` // countervec: the label value
	Value int64  `json:"value,omitempty"` // counter/gauge

	Count   int64            `json:"count,omitempty"` // histogram observations
	Sum     int64            `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name (then label value) so snapshots of equal state are byte-identical.
// Individual reads are atomic; the snapshot as a whole is not a cross-metric
// transaction — fine for the simulator, which snapshots between rounds or at
// end of run.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot captures the current state of every metric.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	byName := make(map[string]*metric, len(r.metrics))
	for name, m := range r.metrics {
		byName[name] = m
	}
	r.mu.Unlock()
	sort.Strings(names)

	snap := &Snapshot{}
	for _, name := range names {
		m := byName[name]
		switch m.kind {
		case "counter":
			snap.Metrics = append(snap.Metrics, MetricSnapshot{Name: name, Kind: "counter", Value: m.counter.Value()})
		case "gauge":
			snap.Metrics = append(snap.Metrics, MetricSnapshot{Name: name, Kind: "gauge", Value: m.gauge.Value()})
		case "histogram":
			h := m.hist
			ms := MetricSnapshot{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
			for i := range h.counts {
				b := BucketSnapshot{Count: h.counts[i].Load()}
				if i < len(h.bounds) {
					ub := h.bounds[i]
					b.UpperBound = &ub
				}
				ms.Buckets = append(ms.Buckets, b)
			}
			snap.Metrics = append(snap.Metrics, ms)
		case "countervec":
			v := m.vec
			v.mu.Lock()
			values := make([]string, 0, len(v.by))
			for val := range v.by {
				values = append(values, val)
			}
			handles := make(map[string]*Counter, len(v.by))
			for val, c := range v.by {
				handles[val] = c
			}
			v.mu.Unlock()
			sort.Strings(values)
			for _, val := range values {
				snap.Metrics = append(snap.Metrics, MetricSnapshot{
					Name: name, Kind: "counter", Label: val, Value: handles[val].Value(),
				})
			}
		}
	}
	return snap
}

// Counter returns the value of the named counter or gauge in the snapshot
// (for labeled counters, the sum over all label values).
func (s *Snapshot) Counter(name string) (int64, bool) {
	total, found := int64(0), false
	for _, m := range s.Metrics {
		if m.Name == name && (m.Kind == "counter" || m.Kind == "gauge") {
			total += m.Value
			found = true
		}
	}
	return total, found
}

// CounterWith returns the value of one labeled counter.
func (s *Snapshot) CounterWith(name, label string) (int64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && m.Label == label {
			return m.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram's snapshot.
func (s *Snapshot) Histogram(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && m.Kind == "histogram" {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// WriteJSON encodes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return &s, nil
}
