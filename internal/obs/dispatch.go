package obs

// Canonical dispatcher/worker-tier metric names: the lease lifecycle,
// heartbeat liveness, and failover accounting of the distributed control
// plane. Like the scheduler vocabulary, the names are fixed here so the
// dispatcher, the workers, and the tests all read the same snapshot keys.
const (
	// MetricHeartbeats counts heartbeats processed by the dispatcher (or sent,
	// on a worker registry); MetricHeartbeatMisses counts detection-loop
	// passes that found a worker overdue.
	MetricHeartbeats      = "dispatch_heartbeats_total"
	MetricHeartbeatMisses = "dispatch_heartbeat_misses_total"
	// MetricLeaseGrants/Renewals/Revokes count lease state transitions.
	// A grant hands a shard to a worker, a renewal is a heartbeat that
	// confirmed the holding, a revoke takes the shard back (rebalance or
	// failure).
	MetricLeaseGrants   = "dispatch_lease_grants_total"
	MetricLeaseRenewals = "dispatch_lease_renewals_total"
	MetricLeaseRevokes  = "dispatch_lease_revokes_total"
	// MetricStaleEpochs counts fenced messages: checkpoints or heartbeats
	// carrying a lease epoch older than the current one (a zombie worker).
	MetricStaleEpochs = "dispatch_stale_epochs_total"
	// MetricFailovers counts dead-worker shard reassignments;
	// MetricWorkersDead counts workers declared dead, MetricWorkers gauges
	// the live worker count.
	MetricFailovers   = "dispatch_failovers_total"
	MetricWorkersDead = "dispatch_workers_dead_total"
	MetricWorkers     = "dispatch_workers"
	// MetricShardsAssigned gauges shards currently under a live lease.
	MetricShardsAssigned = "dispatch_shards_assigned"
	// MetricCheckpoints counts checkpoint uploads accepted into the store;
	// MetricCheckpointBytes is the size distribution of accepted uploads.
	MetricCheckpoints     = "dispatch_checkpoints_total"
	MetricCheckpointBytes = "dispatch_checkpoint_bytes"
	// MetricFailoverNs is the distribution of failover latency: from a worker
	// being declared dead to its last shard regranted.
	MetricFailoverNs = "dispatch_failover_ns"
	// MetricReshards counts fleet reshards: config-epoch bumps that resized
	// the shard count and migrated the stored checkpoint set.
	MetricReshards = "dispatch_reshards_total"
)

// DispatchMetrics is the pre-wired handle set of the dispatcher/worker tier.
type DispatchMetrics struct {
	Heartbeats      *Counter
	HeartbeatMisses *Counter
	LeaseGrants     *Counter
	LeaseRenewals   *Counter
	LeaseRevokes    *Counter
	StaleEpochs     *Counter
	Failovers       *Counter
	WorkersDead     *Counter
	Workers         *Gauge
	ShardsAssigned  *Gauge
	Checkpoints     *Counter
	CheckpointBytes *Histogram
	FailoverNs      *Histogram
	Reshards        *Counter
}

// NewDispatchMetrics registers the dispatch metric set on the registry and
// returns the handles (get-or-create semantics, like NewSchedulerMetrics).
func NewDispatchMetrics(r *Registry) (*DispatchMetrics, error) {
	dm := &DispatchMetrics{}
	var err error
	if dm.Heartbeats, err = r.Counter(MetricHeartbeats); err != nil {
		return nil, err
	}
	if dm.HeartbeatMisses, err = r.Counter(MetricHeartbeatMisses); err != nil {
		return nil, err
	}
	if dm.LeaseGrants, err = r.Counter(MetricLeaseGrants); err != nil {
		return nil, err
	}
	if dm.LeaseRenewals, err = r.Counter(MetricLeaseRenewals); err != nil {
		return nil, err
	}
	if dm.LeaseRevokes, err = r.Counter(MetricLeaseRevokes); err != nil {
		return nil, err
	}
	if dm.StaleEpochs, err = r.Counter(MetricStaleEpochs); err != nil {
		return nil, err
	}
	if dm.Failovers, err = r.Counter(MetricFailovers); err != nil {
		return nil, err
	}
	if dm.WorkersDead, err = r.Counter(MetricWorkersDead); err != nil {
		return nil, err
	}
	if dm.Workers, err = r.Gauge(MetricWorkers); err != nil {
		return nil, err
	}
	if dm.ShardsAssigned, err = r.Gauge(MetricShardsAssigned); err != nil {
		return nil, err
	}
	if dm.Checkpoints, err = r.Counter(MetricCheckpoints); err != nil {
		return nil, err
	}
	// Checkpoint sizes: 256 B to ~16 MB in powers of four.
	if dm.CheckpointBytes, err = r.Histogram(MetricCheckpointBytes, ExpBuckets(256, 4, 9)); err != nil {
		return nil, err
	}
	// Failover latency: 1 ms to ~4.4 min in powers of four — dominated by the
	// heartbeat interval times the miss budget.
	if dm.FailoverNs, err = r.Histogram(MetricFailoverNs, ExpBuckets(1<<20, 4, 10)); err != nil {
		return nil, err
	}
	if dm.Reshards, err = r.Counter(MetricReshards); err != nil {
		return nil, err
	}
	return dm, nil
}
