package obs

import (
	"bufio"
	"bytes"
	"os"
	"strconv"
)

// RSSBytes reports the process's resident set size in bytes, read from
// /proc/self/status (VmRSS). Returns 0 on platforms or sandboxes where the
// file is absent or unparseable — callers treat 0 as "unknown", so the
// metric degrades instead of failing.
func RSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer func() { _ = f.Close() }() // read-only file; nothing to recover on close failure
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if !bytes.HasPrefix(line, []byte("VmRSS:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmRSS:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
