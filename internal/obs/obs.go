// Package obs is the observability layer of the scheduling engine: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket histograms
// with an atomic hot path and snapshot-on-read JSON export), lightweight span
// tracing for the four round phases (drop / arrival / reconfiguration /
// execution) over a bounded ring buffer, and a pluggable sink for structured
// decision events. A nil *Observer on sim.Env is the default and costs
// nothing: the engine checks once per handle and skips every instrumentation
// site, which the rrbench instrumented-vs-bare scenario pair keeps honest.
//
// The pre-wired scheduler metrics mirror the paper's per-round cost
// accounting (reconfiguration cost Δ vs. unit drops), so every competitive-
// analysis experiment is directly auditable from a metrics snapshot;
// per-color drop counters and the pending-age histogram follow the
// delay-factor view of Chekuri–Moseley, and per-resource reconfiguration
// events follow the reconfigurable-resource accounting of Bergé et al.
//
// Instrumentation is strictly read-only: attaching an Observer never changes
// a scheduling decision, which the byte-identical decision-trace regression
// tests pin (the same seeded run with and without a sink serializes to the
// same bytes).
package obs

import "time"

// Now returns nanoseconds since an arbitrary process-local epoch. It is the
// single wall-clock read of the module outside the benchmark harness:
// latency figures are pure outputs (span durations, latency histograms) and
// never feed back into scheduling decisions, so determinism of the decision
// trace is preserved.
func Now() int64 {
	//lint:ignore determinism observability timing is an output (span durations, latency histograms), never an input to scheduling decisions
	return time.Since(epoch).Nanoseconds()
}

//lint:ignore determinism process-local epoch for relative timestamps; see Now
var epoch = time.Now()

// Observer bundles the three observability facilities an instrumented
// component may use. Any field may be nil: a nil Metrics disables counters
// and histograms, a nil Tracer disables spans, a nil Sink disables event
// streaming. A nil *Observer disables everything at a single branch.
type Observer struct {
	// Metrics is the metric registry; Sched holds the pre-wired scheduler
	// handles registered on it.
	Metrics *Registry
	Sched   *SchedulerMetrics
	// Tracer records phase spans into a bounded ring buffer.
	Tracer *Tracer
	// Sink receives structured decision events.
	Sink EventSink
}

// NewObserver returns an Observer with a fresh registry and the scheduler
// metrics pre-wired, no tracer, and no sink. Callers attach a Tracer or
// Sink by setting the fields before the run.
func NewObserver() (*Observer, error) {
	reg := NewRegistry()
	sm, err := NewSchedulerMetrics(reg)
	if err != nil {
		return nil, err
	}
	return &Observer{Metrics: reg, Sched: sm}, nil
}
