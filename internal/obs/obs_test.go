package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c, err := r.Counter("x_total")
	if err != nil {
		t.Fatal(err)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c2, err := r.Counter("x_total")
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Error("get-or-create returned a different counter handle")
	}
	g, err := r.Gauge("depth")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if _, err := r.Gauge("x_total"); err == nil {
		t.Error("kind clash (counter re-registered as gauge) not rejected")
	}
}

func TestHistogramBucketsAndValidation(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("lat", []int64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{1, 10, 11, 100, 5000, -3} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000-3 {
		t.Fatalf("sum = %d", h.Sum())
	}
	snap := r.Snapshot()
	hs, ok := snap.Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Buckets: <=10 gets {1,10,-3}=3, <=100 gets {11,100}=2, <=1000 gets 0,
	// overflow gets {5000}=1.
	wantCounts := []int64{3, 2, 0, 1}
	if len(hs.Buckets) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(hs.Buckets), len(wantCounts))
	}
	for i, w := range wantCounts {
		if hs.Buckets[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, hs.Buckets[i].Count, w)
		}
	}
	if hs.Buckets[3].UpperBound != nil {
		t.Error("overflow bucket carries an upper bound")
	}
	if _, err := r.Histogram("lat", []int64{1, 2}); err == nil {
		t.Error("bound mismatch on re-registration not rejected")
	}
	if _, err := r.Histogram("bad", nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := r.Histogram("bad", []int64{5, 5}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b[i], want[i])
		}
	}
	// Saturation: huge factors must not wrap around into negative bounds.
	big := ExpBuckets(1<<40, 1<<30, 10)
	for i := 1; i < len(big); i++ {
		if big[i] <= big[i-1] {
			t.Fatalf("saturated buckets not ascending: %v", big)
		}
	}
}

func TestCounterVecSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	v, err := r.CounterVec("drops_total", "color")
	if err != nil {
		t.Fatal(err)
	}
	v.With("9").Add(2)
	v.With("1").Add(3)
	v.With("5").Inc()
	if v.With("9") != v.With("9") {
		t.Error("With not stable")
	}
	if _, err := r.CounterVec("drops_total", "other"); err == nil {
		t.Error("label clash not rejected")
	}
	snap := r.Snapshot()
	var labels []string
	for _, m := range snap.Metrics {
		if m.Name == "drops_total" {
			labels = append(labels, m.Label)
		}
	}
	if strings.Join(labels, ",") != "1,5,9" {
		t.Errorf("labels not sorted: %v", labels)
	}
	if got, _ := snap.Counter("drops_total"); got != 6 {
		t.Errorf("summed labeled counter = %d, want 6", got)
	}
	if got, ok := snap.CounterWith("drops_total", "1"); !ok || got != 3 {
		t.Errorf("CounterWith = %d,%v want 3,true", got, ok)
	}
}

func TestSnapshotJSONRoundTripAndStability(t *testing.T) {
	r := NewRegistry()
	sm, err := NewSchedulerMetrics(r)
	if err != nil {
		t.Fatal(err)
	}
	sm.Rounds.Add(10)
	sm.Drops.With("3").Add(2)
	sm.PendingAge.Observe(5)
	var a, b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots of unchanged state differ byte-wise")
	}
	back, err := ReadSnapshot(&a)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back.Counter(MetricRounds); got != 10 {
		t.Errorf("round-tripped rounds = %d, want 10", got)
	}
	if _, err := ReadSnapshot(strings.NewReader("{nonsense")); err == nil {
		t.Error("malformed snapshot accepted")
	}
}

func TestSchedulerMetricsIdempotent(t *testing.T) {
	r := NewRegistry()
	a, err := NewSchedulerMetrics(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedulerMetrics(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.PhaseNs[PhaseDrop] != b.PhaseNs[PhaseDrop] {
		t.Error("re-wiring on the same registry returned different handles")
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c, err := r.Counter("c")
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Histogram("h", ExpBuckets(1, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.CounterVec("vec", "k")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h2 := v.With("a")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 64))
				h2.Inc()
				if i%100 == 0 {
					r.Snapshot() // snapshot-on-read must not race the hot path
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if v.With("a").Value() != workers*per {
		t.Errorf("vec counter = %d, want %d", v.With("a").Value(), workers*per)
	}
}
