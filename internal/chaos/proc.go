package chaos

import (
	"fmt"
	"math/rand"
	"sort"
)

// ProcFault is one process-level fault in a scheduled scenario: before driver
// round Round fires, the worker at index Victim is killed abruptly (the
// SIGKILL analogue of the simulator's machine crashes). When Respawn is set,
// a replacement worker joins the fleet immediately after the kill — the
// crash/repair pair, at process granularity.
type ProcFault struct {
	Round   int64
	Victim  int
	Respawn bool
}

// KillSchedule derives a deterministic process-fault scenario from a seed:
// faults fire strictly one per round, at distinct rounds drawn uniformly
// from [minRound, maxRound), against victims drawn uniformly from the fleet.
// Every other fault respawns a replacement, so schedules alternate between
// shrinking the fleet and churning it. The same seed always reproduces the
// same schedule, which is what lets a distributed failover test pin decision
// byte-identity against a fault-free reference run.
func KillSchedule(seed int64, workers, faults int, minRound, maxRound int64) ([]ProcFault, error) {
	if workers <= 1 {
		return nil, fmt.Errorf("chaos: kill schedule needs at least 2 workers, got %d", workers)
	}
	if faults < 0 {
		return nil, fmt.Errorf("chaos: negative fault count %d", faults)
	}
	span := maxRound - minRound
	if span < int64(faults) {
		return nil, fmt.Errorf("chaos: %d faults do not fit in rounds [%d,%d)", faults, minRound, maxRound)
	}
	rng := rand.New(rand.NewSource(seed))
	rounds := map[int64]bool{}
	for len(rounds) < faults {
		rounds[minRound+rng.Int63n(span)] = true
	}
	ordered := make([]int64, 0, faults)
	for r := range rounds {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	out := make([]ProcFault, faults)
	for i, r := range ordered {
		out[i] = ProcFault{Round: r, Victim: rng.Intn(workers), Respawn: i%2 == 1}
	}
	return out, nil
}
