package chaos

import (
	"fmt"
	"math"
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func baseSequence(t *testing.T) *model.Sequence {
	t.Helper()
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 11, Delta: 3, Colors: 6, Rounds: 96,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestSurgeAddsJobsOnlyInWindow(t *testing.T) {
	seq := baseSequence(t)
	surged, err := Surge(10, 20, 3)(seq)
	if err != nil {
		t.Fatal(err)
	}
	if surged.NumJobs() <= seq.NumJobs() {
		t.Fatalf("surge did not add jobs: %d -> %d", seq.NumJobs(), surged.NumJobs())
	}
	for r := int64(0); r < seq.NumRounds(); r++ {
		orig, got := len(seq.Request(r)), len(surged.Request(r))
		if r >= 10 && r < 30 {
			if got < orig {
				t.Fatalf("round %d lost jobs under surge: %d -> %d", r, orig, got)
			}
		} else if got != orig {
			t.Fatalf("round %d outside window changed: %d -> %d", r, orig, got)
		}
	}
	if _, err := Surge(0, 10, 0.5)(seq); err == nil {
		t.Error("accepted surge factor < 1")
	}
	if _, err := Surge(0, 0, 2)(seq); err == nil {
		t.Error("accepted non-positive surge length")
	}
}

func TestDuplicateBatchesIsSeededAndBounded(t *testing.T) {
	seq := baseSequence(t)
	a, err := DuplicateBatches(5, 0.5)(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DuplicateBatches(5, 0.5)(seq)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumJobs() != b.NumJobs() {
		t.Error("same seed produced different duplication")
	}
	if a.NumJobs() < seq.NumJobs() || a.NumJobs() > 2*seq.NumJobs() {
		t.Errorf("duplication out of bounds: %d from %d", a.NumJobs(), seq.NumJobs())
	}
	if _, err := DuplicateBatches(1, 1.5)(seq); err == nil {
		t.Error("accepted probability > 1")
	}
}

func TestChainComposes(t *testing.T) {
	seq := baseSequence(t)
	out, err := Chain(Identity(), Surge(0, 8, 2), DuplicateBatches(1, 0.3))(seq)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumJobs() <= seq.NumJobs() {
		t.Errorf("chain did not grow the workload: %d -> %d", seq.NumJobs(), out.NumJobs())
	}
}

func TestCorruptBytesIsSeededAndNonDestructive(t *testing.T) {
	data := []byte(`{"delta":3,"colors":[{"id":0,"delay":4}],"requests":[]}`)
	orig := append([]byte(nil), data...)
	a := CorruptBytes(7, data)
	b := CorruptBytes(7, data)
	if string(a) != string(b) {
		t.Error("same seed produced different corruptions")
	}
	if string(data) != string(orig) {
		t.Error("CorruptBytes modified its input")
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 32; seed++ {
		distinct[string(CorruptBytes(seed, data))] = true
	}
	if len(distinct) < 8 {
		t.Errorf("only %d distinct corruptions from 32 seeds", len(distinct))
	}
}

func TestHammerTraceReader(t *testing.T) {
	seq := baseSequence(t)
	if err := HammerTraceReader(1, seq, 300); err != nil {
		t.Fatal(err)
	}
}

func TestHammerScheduleReader(t *testing.T) {
	seq := baseSequence(t)
	plan, err := sim.RandomFaultPlan(sim.FaultConfig{
		Seed: 2, Resources: 8, Horizon: seq.Horizon() + 1, MeanUp: 32, MeanDown: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1, Faults: plan}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := HammerScheduleReader(3, res.Schedule, 300); err != nil {
		t.Fatal(err)
	}
}

func TestHammerStream(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		if err := HammerStream(seed, 128); err != nil {
			t.Fatal(err)
		}
	}
}

// greedy caches the most-loaded colors; a minimal dynamic policy for chaos
// tests (the experiment harness exercises the real ΔLRU-EDF stack).
type greedy struct{}

func (greedy) Name() string                            { return "greedy" }
func (greedy) Reset(sim.Env)                           {}
func (greedy) DropPhase(sim.View, map[model.Color]int) {}
func (greedy) ArrivalPhase(sim.View, []model.Job)      {}
func (greedy) Target(v sim.View) []model.Color {
	var out []model.Color
	for _, c := range v.Universe() {
		if len(out) == v.Slots() {
			break
		}
		if v.Pending(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

func TestCompareReportsInflationAndDrops(t *testing.T) {
	seq := baseSequence(t)
	env := sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}
	baseline, err := sim.Run(env, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sim.RandomFaultPlan(sim.FaultConfig{
		Seed: 4, Resources: 8, Horizon: seq.Horizon() + 1, MeanUp: 16, MeanDown: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	faultyEnv := env
	faultyEnv.Faults = plan
	faulty, err := sim.Run(faultyEnv, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(baseline, faulty, plan)
	if rep.CostInflation < 1 {
		t.Errorf("faults deflated cost: %v", rep)
	}
	if math.IsNaN(rep.CostInflation) || math.IsInf(rep.CostInflation, 0) {
		t.Errorf("non-finite inflation: %v", rep)
	}
	if rep.DowntimeRounds != plan.DowntimeRounds() {
		t.Errorf("downtime %d != plan %d", rep.DowntimeRounds, plan.DowntimeRounds())
	}
	if rep.DropRateDelta != rep.FaultyDropRate-rep.BaselineDropRate {
		t.Errorf("inconsistent drop delta: %v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// observedRun runs the policy with a fresh observer attached and returns the
// result together with the end-of-run metric snapshot.
func observedRun(t *testing.T, env sim.Env) (*sim.Result, *obs.Snapshot) {
	t.Helper()
	o, err := obs.NewObserver()
	if err != nil {
		t.Fatal(err)
	}
	env.Obs = o
	res, err := sim.Run(env, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	return res, o.Metrics.Snapshot()
}

func TestCompareSnapshotsMatchesResults(t *testing.T) {
	seq := baseSequence(t)
	env := sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}
	baseRes, baseSnap := observedRun(t, env)

	plan, err := sim.RandomFaultPlan(sim.FaultConfig{
		Seed: 4, Resources: 8, Horizon: seq.Horizon() + 1, MeanUp: 16, MeanDown: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	faultyEnv := env
	faultyEnv.Faults = plan
	faultyRes, faultySnap := observedRun(t, faultyEnv)

	// The snapshots must agree with the engine's own accounting exactly.
	for name, snap := range map[string]*obs.Snapshot{"baseline": baseSnap, "faulty": faultySnap} {
		res := baseRes
		if name == "faulty" {
			res = faultyRes
		}
		if got, _ := snap.Counter(obs.MetricDropped); got != int64(res.Dropped) {
			t.Errorf("%s: %s = %d, result says %d", name, obs.MetricDropped, got, res.Dropped)
		}
		if got, _ := snap.Counter(obs.MetricExecuted); got != int64(res.Executed) {
			t.Errorf("%s: %s = %d, result says %d", name, obs.MetricExecuted, got, res.Executed)
		}
		if got, _ := snap.Counter(obs.MetricRounds); got != seq.Horizon()+1 {
			t.Errorf("%s: %s = %d, want horizon+1 = %d", name, obs.MetricRounds, got, seq.Horizon()+1)
		}
		for c, n := range res.DropsByColor {
			label := fmt.Sprint(int64(c))
			if got, ok := snap.CounterWith(obs.MetricDrops, label); !ok || got != int64(n) {
				t.Errorf("%s: drops[color %v] = %d (ok=%v), result says %d", name, c, got, ok, n)
			}
		}
	}

	rep, err := CompareSnapshots(baseSnap, faultySnap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExtraDrops != int64(faultyRes.Dropped-baseRes.Dropped) {
		t.Errorf("ExtraDrops = %d, results say %d", rep.ExtraDrops, faultyRes.Dropped-baseRes.Dropped)
	}
	if rep.Crashes == 0 {
		t.Error("faulty run observed no crashes despite an active fault plan")
	}
	if rep.Repairs > rep.Crashes {
		t.Errorf("more repairs (%d) than crashes (%d)", rep.Repairs, rep.Crashes)
	}
	if base, _ := baseSnap.Counter(obs.MetricCrashes); base != 0 {
		t.Errorf("fault-free run observed %d crashes", base)
	}

	// Snapshots of different horizons must be rejected, as must snapshots
	// lacking the scheduler metrics entirely.
	short, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 11, Delta: 3, Colors: 6, Rounds: 12,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, shortSnap := observedRun(t, sim.Env{Seq: short, Resources: 8, Replication: 2, Speed: 1})
	if _, err := CompareSnapshots(baseSnap, shortSnap); err == nil {
		t.Error("accepted snapshots of different horizons")
	}
	if _, err := CompareSnapshots(&obs.Snapshot{}, faultySnap); err == nil {
		t.Error("accepted an empty baseline snapshot")
	}
}
