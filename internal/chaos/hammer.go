package chaos

import (
	"fmt"
	"math/rand"

	"rrsched/internal/model"
	"rrsched/internal/stream"
)

// HammerStream drives a streaming scheduler for the given number of rounds
// with a seeded mix of valid pushes and malformed ones — duplicate job IDs,
// replays of already-retired rounds, wrong arrival stamps, black colors,
// delay-bound mismatches. Every malformed push must be rejected with an error
// while leaving the scheduler fully usable: after each rejection the driver
// immediately pushes valid work and verifies it is accepted and that the
// job accounting stays consistent. Any panic or silent acceptance is
// reported as an error naming the seed.
func HammerStream(seed int64, rounds int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: stream panicked (seed %d): %v", seed, r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	s, err := stream.New(stream.Config{Delta: 2 + int64(rng.Intn(4)), Resources: 8})
	if err != nil {
		return fmt.Errorf("chaos: creating stream: %w", err)
	}

	delays := []int64{2, 4, 8}
	colorDelay := func(c model.Color) int64 { return delays[int(c)%len(delays)] }
	nextID := int64(0)
	// liveIDs tracks accepted jobs not yet seen executed or dropped in a
	// decision: only those IDs must be rejected as duplicates.
	var liveIDs []int64
	retired := map[int64]bool{}
	seenColor := map[model.Color]bool{}
	liveID := func() (int64, bool) {
		for len(liveIDs) > 0 && retired[liveIDs[len(liveIDs)-1]] {
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
		if len(liveIDs) == 0 {
			return 0, false
		}
		return liveIDs[len(liveIDs)-1], true
	}
	observe := func(dec stream.Decision) {
		for _, e := range dec.Executions {
			retired[e.JobID] = true
		}
		for _, id := range dec.Dropped {
			retired[id] = true
		}
	}

	for r := int64(0); r < rounds; r++ {
		// Occasionally attack before the round's valid push.
		switch rng.Intn(6) {
		case 0: // replay an already-retired round
			if r > 0 {
				late := rng.Int63n(r)
				if _, err := s.Push(late, nil); err == nil {
					return fmt.Errorf("chaos: stream accepted replayed round %d at round %d (seed %d)", late, r, seed)
				}
			}
		case 1: // duplicate an in-flight job ID
			if id, ok := liveID(); ok {
				c := model.Color(rng.Intn(4))
				dup := model.Job{ID: id, Color: c, Arrival: r, Delay: colorDelay(c)}
				if _, err := s.Push(r, []model.Job{dup}); err == nil {
					return fmt.Errorf("chaos: stream accepted duplicate job id %d (seed %d)", id, seed)
				}
			}
		case 2: // arrival stamp disagrees with the pushed round
			c := model.Color(rng.Intn(4))
			bad := model.Job{ID: nextID, Color: c, Arrival: r + 1, Delay: colorDelay(c)}
			if _, err := s.Push(r, []model.Job{bad}); err == nil {
				return fmt.Errorf("chaos: stream accepted mis-stamped arrival (seed %d)", seed)
			}
		case 3: // black color
			bad := model.Job{ID: nextID, Color: model.Black, Arrival: r, Delay: 4}
			if _, err := s.Push(r, []model.Job{bad}); err == nil {
				return fmt.Errorf("chaos: stream accepted a black job (seed %d)", seed)
			}
		case 4: // delay bound inconsistent with the color's earlier jobs
			if c := model.Color(rng.Intn(4)); seenColor[c] {
				bad := model.Job{ID: nextID, Color: c, Arrival: r, Delay: colorDelay(c) * 16}
				if _, err := s.Push(r, []model.Job{bad}); err == nil {
					return fmt.Errorf("chaos: stream accepted a delay-bound mismatch (seed %d)", seed)
				}
			}
		}

		// The valid push of the round must succeed after any rejection.
		var jobs []model.Job
		for i, n := 0, rng.Intn(4); i < n; i++ {
			c := model.Color(rng.Intn(4))
			jobs = append(jobs, model.Job{ID: nextID, Color: c, Arrival: r, Delay: colorDelay(c)})
			liveIDs = append(liveIDs, nextID)
			seenColor[c] = true
			nextID++
		}
		dec, err := s.Push(r, jobs)
		if err != nil {
			return fmt.Errorf("chaos: valid push rejected in round %d (seed %d): %w", r, seed, err)
		}
		observe(dec)
		if s.Executed()+s.Dropped() > int(nextID) {
			return fmt.Errorf("chaos: accounting overflow in round %d (seed %d): %d executed + %d dropped > %d pushed",
				r, seed, s.Executed(), s.Dropped(), nextID)
		}
	}
	if _, err := s.Drain(); err != nil {
		return fmt.Errorf("chaos: drain failed (seed %d): %w", seed, err)
	}
	if s.Executed()+s.Dropped() != int(nextID) {
		return fmt.Errorf("chaos: %d executed + %d dropped != %d accepted after drain (seed %d)",
			s.Executed(), s.Dropped(), nextID, seed)
	}
	return nil
}
