package chaos

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/sim"
)

// Report quantifies the robustness of a policy under faults by comparing a
// faulty run against the fault-free run of the same seed and workload.
type Report struct {
	Baseline model.Cost
	Faulty   model.Cost
	// CostInflation is faulty total cost / baseline total cost (1 = faults
	// cost nothing extra; baseline total 0 reports 1 if the faulty total is
	// also 0, else +Inf is avoided by reporting the faulty total itself).
	CostInflation float64
	// BaselineDropRate and FaultyDropRate are dropped / total jobs.
	BaselineDropRate float64
	FaultyDropRate   float64
	// DropRateDelta is FaultyDropRate - BaselineDropRate.
	DropRateDelta float64
	// DowntimeRounds is the total resource-rounds of injected downtime.
	DowntimeRounds int64
}

// Compare builds a Report from a fault-free and a faulty run of the same
// workload. The fault plan may be nil for input-chaos comparisons (surges,
// duplication) where no resources go down.
func Compare(baseline, faulty *sim.Result, plan *sim.FaultPlan) Report {
	rep := Report{
		Baseline: baseline.Cost,
		Faulty:   faulty.Cost,
	}
	switch {
	case baseline.Cost.Total() > 0:
		rep.CostInflation = float64(faulty.Cost.Total()) / float64(baseline.Cost.Total())
	case faulty.Cost.Total() == 0:
		rep.CostInflation = 1
	default:
		rep.CostInflation = float64(faulty.Cost.Total())
	}
	if n := baseline.Executed + baseline.Dropped; n > 0 {
		rep.BaselineDropRate = float64(baseline.Dropped) / float64(n)
	}
	if n := faulty.Executed + faulty.Dropped; n > 0 {
		rep.FaultyDropRate = float64(faulty.Dropped) / float64(n)
	}
	rep.DropRateDelta = rep.FaultyDropRate - rep.BaselineDropRate
	if plan != nil {
		rep.DowntimeRounds = plan.DowntimeRounds()
	}
	return rep
}

// String renders the report for diagnostics.
func (r Report) String() string {
	return fmt.Sprintf("chaos{inflation=%.3f drops=%.3f->%.3f (Δ%+.3f) downtime=%d}",
		r.CostInflation, r.BaselineDropRate, r.FaultyDropRate, r.DropRateDelta, r.DowntimeRounds)
}

// SnapshotReport compares the metric snapshots of a fault-free and a faulty
// instrumented run (both with their own obs.Observer over the same workload).
type SnapshotReport struct {
	// BaselineRounds and FaultyRounds are the sched_rounds_total counters;
	// they must agree — faults never shorten a run.
	BaselineRounds int64
	FaultyRounds   int64
	// ExtraDrops and ExtraReconfigs are faulty minus baseline counter totals.
	ExtraDrops     int64
	ExtraReconfigs int64
	// Crashes and Repairs are the fault transitions the faulty run observed.
	Crashes int64
	Repairs int64
}

// CompareSnapshots builds a SnapshotReport from the metric snapshots of a
// baseline and a faulty run. It errors if either snapshot is missing the
// scheduler metrics, or if the two runs disagree on round count — a faulty
// run covers the same horizon as its baseline, so a mismatch means the
// snapshots come from different workloads.
func CompareSnapshots(baseline, faulty *obs.Snapshot) (SnapshotReport, error) {
	var rep SnapshotReport
	var ok bool
	if rep.BaselineRounds, ok = baseline.Counter(obs.MetricRounds); !ok {
		return rep, fmt.Errorf("chaos: baseline snapshot has no %s", obs.MetricRounds)
	}
	if rep.FaultyRounds, ok = faulty.Counter(obs.MetricRounds); !ok {
		return rep, fmt.Errorf("chaos: faulty snapshot has no %s", obs.MetricRounds)
	}
	if rep.BaselineRounds != rep.FaultyRounds {
		return rep, fmt.Errorf("chaos: snapshots cover different horizons: %d vs %d rounds",
			rep.BaselineRounds, rep.FaultyRounds)
	}
	bd, _ := baseline.Counter(obs.MetricDropped)
	fd, _ := faulty.Counter(obs.MetricDropped)
	rep.ExtraDrops = fd - bd
	br, _ := baseline.Counter(obs.MetricReconfigs)
	fr, _ := faulty.Counter(obs.MetricReconfigs)
	rep.ExtraReconfigs = fr - br
	rep.Crashes, _ = faulty.Counter(obs.MetricCrashes)
	rep.Repairs, _ = faulty.Counter(obs.MetricRepairs)
	return rep, nil
}
