package chaos

import "testing"

func TestKillScheduleDeterministic(t *testing.T) {
	a, err := KillSchedule(9, 3, 4, 2, 20)
	if err != nil {
		t.Fatalf("KillSchedule: %v", err)
	}
	b, err := KillSchedule(9, 3, 4, 2, 20)
	if err != nil {
		t.Fatalf("KillSchedule: %v", err)
	}
	if len(a) != 4 {
		t.Fatalf("schedule length %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fault %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Round < 2 || a[i].Round >= 20 {
			t.Fatalf("fault %d round %d outside [2,20)", i, a[i].Round)
		}
		if a[i].Victim < 0 || a[i].Victim >= 3 {
			t.Fatalf("fault %d victim %d outside fleet", i, a[i].Victim)
		}
		if i > 0 && a[i].Round <= a[i-1].Round {
			t.Fatalf("faults not at distinct ascending rounds: %+v", a)
		}
	}
}

func TestKillScheduleRejections(t *testing.T) {
	if _, err := KillSchedule(1, 1, 1, 0, 10); err == nil {
		t.Fatal("single-worker fleet accepted")
	}
	if _, err := KillSchedule(1, 2, -1, 0, 10); err == nil {
		t.Fatal("negative fault count accepted")
	}
	if _, err := KillSchedule(1, 2, 11, 0, 10); err == nil {
		t.Fatal("overfull schedule accepted")
	}
}
