package chaos

import (
	"bytes"
	"fmt"
	"math/rand"

	"rrsched/internal/model"
	"rrsched/internal/workload"
)

// CorruptBytes returns a seeded corruption of data: a mix of bit flips, byte
// substitutions, truncation, and splicing (duplicating a random chunk). The
// input is never modified; equal (seed, data) produce equal corruptions.
func CorruptBytes(seed int64, data []byte) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	switch rng.Intn(4) {
	case 0: // bit flips
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			pos := rng.Intn(len(out))
			out[pos] ^= 1 << uint(rng.Intn(8))
		}
	case 1: // byte substitutions (biased toward JSON-hostile values)
		hostile := []byte{'{', '}', '[', ']', '"', ',', '-', '9', 0x00, 0xff}
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			out[rng.Intn(len(out))] = hostile[rng.Intn(len(hostile))]
		}
	case 2: // truncation
		out = out[:rng.Intn(len(out))]
	default: // splice: duplicate a random chunk somewhere else
		if len(out) > 2 {
			a, b := rng.Intn(len(out)), rng.Intn(len(out))
			if a > b {
				a, b = b, a
			}
			chunk := append([]byte(nil), out[a:b]...)
			at := rng.Intn(len(out))
			out = append(out[:at], append(chunk, out[at:]...)...)
		}
	}
	return out
}

// HammerTraceReader feeds iters seeded corruptions of a valid trace to the
// trace reader. The reader must either return an error or a sequence that
// validates; any panic is converted to a returned error naming the seed, so
// failures reproduce.
func HammerTraceReader(seed int64, seq *model.Sequence, iters int) (err error) {
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, seq); err != nil {
		return fmt.Errorf("chaos: serializing base trace: %w", err)
	}
	base := buf.Bytes()
	for i := 0; i < iters; i++ {
		caseSeed := seed + int64(i)
		if err := hammerOneTrace(caseSeed, CorruptBytes(caseSeed, base)); err != nil {
			return err
		}
	}
	return nil
}

func hammerOneTrace(seed int64, data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: trace reader panicked on corruption seed %d: %v", seed, r)
		}
	}()
	got, readErr := workload.ReadTrace(bytes.NewReader(data))
	if readErr != nil {
		return nil // graceful rejection is a pass
	}
	if validateErr := got.Validate(); validateErr != nil {
		return fmt.Errorf("chaos: trace reader accepted an invalid sequence (corruption seed %d): %w", seed, validateErr)
	}
	return nil
}

// HammerScheduleReader is HammerTraceReader for the schedule reader.
func HammerScheduleReader(seed int64, sched *model.Schedule, iters int) error {
	var buf bytes.Buffer
	if err := model.WriteSchedule(&buf, sched); err != nil {
		return fmt.Errorf("chaos: serializing base schedule: %w", err)
	}
	base := buf.Bytes()
	for i := 0; i < iters; i++ {
		caseSeed := seed + int64(i)
		if err := hammerOneSchedule(caseSeed, CorruptBytes(caseSeed, base)); err != nil {
			return err
		}
	}
	return nil
}

func hammerOneSchedule(seed int64, data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: schedule reader panicked on corruption seed %d: %v", seed, r)
		}
	}()
	_, _ = model.ReadSchedule(bytes.NewReader(data)) // outcome irrelevant: the harness only cares whether decoding panics
	return nil
}
