// Package chaos provides fault injection and robustness measurement for the
// scheduling stack. It has three layers:
//
//   - perturbations: seeded, composable transformations of request sequences
//     (arrival surges, duplicated batches) and of serialized trace/schedule
//     bytes (bit flips, truncation, splicing),
//   - hammers: adversarial drivers that feed malformed input to the
//     user-reachable readers and the streaming scheduler and demand graceful
//     errors — never a panic, never silent corruption,
//   - metrics: cost-inflation and drop-rate reports comparing a faulty run
//     against the fault-free run of the same seed (see Compare).
//
// Everything is deterministic given the seeds, so chaos findings reproduce.
package chaos

import (
	"fmt"
	"math/rand"

	"rrsched/internal/model"
)

// Perturbation is a seeded transformation of a request sequence. Perturbations
// compose with Chain.
type Perturbation func(seq *model.Sequence) (*model.Sequence, error)

// Chain composes perturbations left to right.
func Chain(ps ...Perturbation) Perturbation {
	return func(seq *model.Sequence) (*model.Sequence, error) {
		var err error
		for _, p := range ps {
			seq, err = p(seq)
			if err != nil {
				return nil, err
			}
		}
		return seq, nil
	}
}

// Identity returns the sequence unchanged (the fault-free baseline).
func Identity() Perturbation {
	return func(seq *model.Sequence) (*model.Sequence, error) { return seq, nil }
}

// Surge amplifies arrivals in the window [start, start+length): each batch in
// the window is scaled by factor (>= 1), modeling a flash crowd. The
// perturbed sequence keeps every original job and adds the surge copies.
func Surge(start, length int64, factor float64) Perturbation {
	return func(seq *model.Sequence) (*model.Sequence, error) {
		if factor < 1 {
			return nil, fmt.Errorf("chaos: surge factor %g < 1", factor)
		}
		if length <= 0 {
			return nil, fmt.Errorf("chaos: surge length %d <= 0", length)
		}
		b := model.NewBuilder(seq.Delta())
		for r := int64(0); r < seq.NumRounds(); r++ {
			counts := map[model.Color]int{}
			order := []model.Color{}
			for _, j := range seq.Request(r) {
				if counts[j.Color] == 0 {
					order = append(order, j.Color)
				}
				counts[j.Color]++
			}
			for _, c := range order {
				n := counts[c]
				if r >= start && r < start+length {
					n = int(float64(n) * factor)
				}
				d, _ := seq.DelayBound(c)
				b.Add(r, c, d, n)
			}
		}
		return b.Build()
	}
}

// DuplicateBatches re-adds each round's batches with probability p (seeded),
// modeling an at-least-once delivery layer replaying arrivals. The duplicates
// are fresh jobs (new IDs): the workload doubles, the deadline pressure does
// not move.
func DuplicateBatches(seed int64, p float64) Perturbation {
	return func(seq *model.Sequence) (*model.Sequence, error) {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("chaos: duplication probability %g outside [0,1]", p)
		}
		rng := rand.New(rand.NewSource(seed))
		b := model.NewBuilder(seq.Delta())
		for r := int64(0); r < seq.NumRounds(); r++ {
			counts := map[model.Color]int{}
			order := []model.Color{}
			for _, j := range seq.Request(r) {
				if counts[j.Color] == 0 {
					order = append(order, j.Color)
				}
				counts[j.Color]++
			}
			for _, c := range order {
				n := counts[c]
				if rng.Float64() < p {
					n *= 2
				}
				d, _ := seq.DelayBound(c)
				b.Add(r, c, d, n)
			}
		}
		return b.Build()
	}
}
