package edf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rrsched/internal/model"
	"rrsched/internal/workload"
)

func TestParEDFDropsSimple(t *testing.T) {
	// 3 jobs with D=1 in one round, m=2: one must drop.
	seq := model.NewBuilder(1).Add(0, 0, 1, 3).MustBuild()
	if got := ParEDFDrops(seq, 2); got != 1 {
		t.Errorf("drops = %d, want 1", got)
	}
	if got := ParEDFDrops(seq, 3); got != 0 {
		t.Errorf("drops = %d, want 0", got)
	}
}

func TestParEDFDropsPrefersEarlierDeadline(t *testing.T) {
	// Round 0: one job D=1 (deadline 1) and one job D=4 (deadline 4), m=1.
	// EDF runs the D=1 job first; the D=4 job runs later. No drops.
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).Add(0, 1, 4, 1).MustBuild()
	if got := ParEDFDrops(seq, 1); got != 0 {
		t.Errorf("drops = %d, want 0 (EDF order avoids all drops)", got)
	}
}

func TestParEDFDropsCapacity(t *testing.T) {
	// 10 jobs, D=2, m=2: capacity 2 jobs/round × 2 rounds = 4 executed.
	seq := model.NewBuilder(1).Add(0, 0, 2, 10).MustBuild()
	if got := ParEDFDrops(seq, 2); got != 6 {
		t.Errorf("drops = %d, want 6", got)
	}
}

func TestParEDFPanicsOnBadM(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("ParEDFDrops(seq, 0) did not panic")
		}
	}()
	ParEDFDrops(seq, 0)
}

// bruteForceMinDrops computes the minimum possible drops for a tiny instance
// with m parallel execution slots per round and no configuration constraint,
// by exhaustive search over execution choices.
func bruteForceMinDrops(seq *model.Sequence, m int) int {
	jobs := seq.Jobs()
	best := len(jobs)
	var rec func(round int64, executed map[int64]bool)
	rec = func(round int64, executed map[int64]bool) {
		if round > seq.Horizon() {
			drops := 0
			for _, j := range jobs {
				if !executed[j.ID] {
					drops++
				}
			}
			if drops < best {
				best = drops
			}
			return
		}
		// Candidates executable this round.
		var cands []int64
		for _, j := range jobs {
			if !executed[j.ID] && j.Arrival <= round && round < j.Deadline() {
				cands = append(cands, j.ID)
			}
		}
		// Choose up to m of them (order within a round is irrelevant):
		// enumerate subsets of size <= m, with a pragmatic cap.
		var choose func(i, left int, chosen []int64)
		choose = func(i, left int, chosen []int64) {
			if left == 0 || i == len(cands) {
				for _, id := range chosen {
					executed[id] = true
				}
				rec(round+1, executed)
				for _, id := range chosen {
					delete(executed, id)
				}
				return
			}
			choose(i+1, left-1, append(chosen, cands[i])) // take
			choose(i+1, left, chosen)                     // skip
		}
		choose(0, m, nil)
	}
	rec(0, map[int64]bool{})
	return best
}

// TestParEDFOptimalProperty: on tiny random instances, Par-EDF's drop count
// equals the true minimum computed by brute force (EDF optimality,
// Lemma 3.7's foundation).
func TestParEDFOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := model.NewBuilder(1)
		for i := 0; i < 6; i++ {
			c := model.Color(rng.Intn(2))
			d := int64(1 + rng.Intn(2)) // 1 or 2
			if c == 1 {
				d = 2
			} else {
				d = 1
			}
			b.Add(int64(rng.Intn(4)), c, d, rng.Intn(2))
		}
		seq, err := b.Build()
		if err != nil || seq.NumJobs() == 0 {
			return true
		}
		m := 1 + rng.Intn(2)
		got := ParEDFDrops(seq, m)
		want := bruteForceMinDrops(seq, m)
		if int(got) != want {
			t.Logf("seed %d: ParEDF drops %d, brute force %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParEDFMonotoneInM: more resources never increase drops.
func TestParEDFMonotoneInM(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 1, Delta: 4, Colors: 6, Rounds: 128,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 1.2, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := ParEDFDrops(seq, 1)
	for m := 2; m <= 8; m++ {
		cur := ParEDFDrops(seq, m)
		if cur > prev {
			t.Fatalf("drops increased from %d to %d at m=%d", prev, cur, m)
		}
		prev = cur
	}
}

// TestSubsequenceMonotonicity mirrors Lemma 3.9: removing jobs from the
// input never decreases the number of jobs Par-EDF executes from the rest.
// (The paper proves this for DS-Seq-EDF; the EDF core argument is the same.)
func TestSubsequenceMonotonicity(t *testing.T) {
	full, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 5, Delta: 2, Colors: 4, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 2, Load: 1.5, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drop every third job to build a subsequence.
	b := model.NewBuilder(full.Delta())
	kept := 0
	for _, j := range full.Jobs() {
		if j.ID%3 != 0 {
			b.Add(j.Arrival, j.Color, j.Delay, 1)
			kept++
		}
	}
	sub := b.MustBuild()
	m := 2
	execFull := int64(full.NumJobs()) - ParEDFDrops(full, m)
	execSub := int64(sub.NumJobs()) - ParEDFDrops(sub, m)
	if execFull < execSub {
		t.Fatalf("full input executed %d < subsequence %d", execFull, execSub)
	}
}

// TestCorollary31DSSeqLeParEDF: DropCost(DS-Seq-EDF, m) <=
// DropCost(Par-EDF, m)... the paper's Corollary 3.1 compares DS-Seq-EDF
// against Par-EDF at the same m. Verified on random rate-limited instances
// with power-of-two delay bounds.
func TestCorollary31DSSeqLeParEDF(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 5, Rounds: 128,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 0.8, RateLimited: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := 2
		ds, err := DSSeqEDF(seq, m)
		if err != nil {
			t.Fatal(err)
		}
		par := ParEDFDrops(seq, m)
		if ds.Cost.Drop > par {
			t.Errorf("seed %d: DS-Seq-EDF drops %d > Par-EDF drops %d (Corollary 3.1)",
				seed, ds.Cost.Drop, par)
		}
	}
}

func TestSeqEDFRunsAndAudits(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 2, Delta: 3, Colors: 5, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.5, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SeqEDF(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
		t.Errorf("audit %v != engine %v", got, res.Cost)
	}
	ds, err := DSSeqEDF(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schedule.Speed != 2 {
		t.Errorf("DS-Seq-EDF speed = %d", ds.Schedule.Speed)
	}
	if got := model.MustAudit(seq, ds.Schedule); got != ds.Cost {
		t.Errorf("DS audit %v != engine %v", got, ds.Cost)
	}
	// Double speed never drops more than uni-speed with the same policy.
	if ds.Cost.Drop > res.Cost.Drop {
		t.Errorf("double-speed drops %d > uni-speed drops %d", ds.Cost.Drop, res.Cost.Drop)
	}
}

func TestJobRankOrdering(t *testing.T) {
	a := jobRank{deadline: 1, delay: 1, color: 0, id: 0}
	b := jobRank{deadline: 2, delay: 1, color: 0, id: 1}
	if !less(a, b) || less(b, a) {
		t.Error("deadline ordering broken")
	}
	c := jobRank{deadline: 2, delay: 2, color: 0, id: 2}
	if !less(b, c) {
		t.Error("delay tie-break broken")
	}
	d := jobRank{deadline: 2, delay: 2, color: 1, id: 3}
	if !less(c, d) {
		t.Error("color tie-break broken")
	}
	e := jobRank{deadline: 2, delay: 2, color: 1, id: 4}
	if !less(d, e) {
		t.Error("id tie-break broken")
	}
}

// TestParEDFBucketMatchesHeapProperty: the calendar-queue implementation
// produces identical drop counts to the heap implementation.
func TestParEDFBucketMatchesHeapProperty(t *testing.T) {
	f := func(seedRaw uint8, mRaw uint8) bool {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: int64(seedRaw), Delta: 3, Colors: 5, Rounds: 128,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 1.4,
		})
		if err != nil || seq.NumJobs() == 0 {
			return true
		}
		m := int(mRaw)%4 + 1
		heap := ParEDFDrops(seq, m)
		bucket := ParEDFDropsBucket(seq, m)
		if heap != bucket {
			t.Logf("seed %d m=%d: heap %d != bucket %d", seedRaw, m, heap, bucket)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParEDFBucketPanicsOnBadM(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 accepted")
		}
	}()
	ParEDFDropsBucket(seq, 0)
}
