// Package edf implements the EDF-family analysis tools of Section 3.3:
// Par-EDF (m pending jobs with the best ranks execute each round, ignoring
// configuration — its drop cost lower-bounds every schedule's, Lemma 3.7),
// and the Seq-EDF / DS-Seq-EDF configured schedulers used by the chain
// EligibleDrops(ΔLRU-EDF) ≤ Drops(DS-Seq-EDF) ≤ Drops(Par-EDF) ≤ Drops(OFF).
package edf

import (
	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/queue"
	"rrsched/internal/sim"
)

// jobRank orders pending jobs by increasing deadline, breaking ties by
// increasing delay bound and then the consistent order of colors (Section
// 3.3's pending-job ranking), with the job ID as a final deterministic tie
// break.
type jobRank struct {
	deadline int64
	delay    int64
	color    model.Color
	id       int64
}

func less(a, b jobRank) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.delay != b.delay {
		return a.delay < b.delay
	}
	if a.color != b.color {
		return a.color < b.color
	}
	return a.id < b.id
}

// ParEDFDrops simulates Par-EDF with m resources: each round, the m pending
// jobs with the best ranks execute, with no configuration constraint (the m
// resources act as one super-resource). By the optimality of EDF (Lemma 3.7)
// the returned drop count lower-bounds the drop cost of every schedule with
// m uni-speed resources, including the optimal offline schedule.
func ParEDFDrops(seq *model.Sequence, m int) int64 {
	if m <= 0 {
		panic("edf: ParEDFDrops needs at least one resource")
	}
	h := queue.NewHeap[jobRank](less)
	var dropped int64
	for k := int64(0); k <= seq.Horizon(); k++ {
		// Drop phase: jobs whose deadline has arrived are dropped. Ranks
		// order by deadline first, so due jobs sit at the top of the heap.
		for h.Len() > 0 && h.Peek().deadline <= k {
			h.Pop()
			dropped++
		}
		// Arrival phase.
		for _, j := range seq.Request(k) {
			h.Push(jobRank{deadline: j.Deadline(), delay: j.Delay, color: j.Color, id: j.ID})
		}
		// Execution phase: the m best-ranked pending jobs execute.
		for i := 0; i < m && h.Len() > 0; i++ {
			h.Pop()
		}
	}
	return dropped
}

// ParEDFDropsBucket computes the same drop count as ParEDFDrops using a
// monotone bucket (calendar) queue keyed by deadline instead of a binary
// heap: amortized O(1) per operation. Jobs with equal deadlines are
// interchangeable for feasibility, so the drop count is identical even
// though tie-breaking differs; the two implementations cross-validate each
// other in the tests.
func ParEDFDropsBucket(seq *model.Sequence, m int) int64 {
	if m <= 0 {
		panic("edf: ParEDFDropsBucket needs at least one resource")
	}
	q := queue.NewBucketQueue[int64]()
	var dropped int64
	for k := int64(0); k <= seq.Horizon(); k++ {
		// Drop phase: deadlines <= k are due.
		dropped += int64(len(q.PopUpTo(k, int(^uint(0)>>1))))
		// Arrival phase.
		for _, j := range seq.Request(k) {
			q.Push(j.Deadline(), j.ID)
		}
		// Execution phase: the m earliest-deadline pending jobs execute.
		for i := 0; i < m && q.Len() > 0; i++ {
			q.PopMin()
		}
	}
	return dropped
}

// SeqEDF runs the Seq-EDF scheduler of Section 3.3: the EDF policy of
// Section 3.1.2 with m resources and no replication (all capacity caches
// distinct colors).
func SeqEDF(seq *model.Sequence, m int) (*sim.Result, error) {
	return sim.Run(sim.Env{Seq: seq, Resources: m, Replication: 1, Speed: 1}, core.NewEDF())
}

// DSSeqEDF runs double-speed Seq-EDF: the reconfiguration and execution
// phases repeat twice per round.
func DSSeqEDF(seq *model.Sequence, m int) (*sim.Result, error) {
	return sim.Run(sim.Env{Seq: seq, Resources: m, Replication: 1, Speed: 2}, core.NewEDF())
}
