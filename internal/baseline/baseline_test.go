package baseline

import (
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func randomGeneral(seed int64) *model.Sequence {
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: seed, Delta: 3, Colors: 6, Rounds: 128,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.6,
	})
	if err != nil {
		panic(err)
	}
	return seq
}

func TestNeverDropsEverything(t *testing.T) {
	seq := randomGeneral(1)
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1}, Never{})
	if res.Cost.Drop != int64(seq.NumJobs()) || res.Cost.Reconfig != 0 {
		t.Errorf("never cost = %v", res.Cost)
	}
}

func TestStaticConfiguresOnce(t *testing.T) {
	seq := randomGeneral(2)
	p := &Static{}
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1}, p)
	// At most Slots() colors × replication locations, configured once each.
	if res.Cost.Reconfig > int64(4)*seq.Delta() {
		t.Errorf("static reconfig = %d, want <= %d", res.Cost.Reconfig, int64(4)*seq.Delta())
	}
}

func TestStaticExplicitColors(t *testing.T) {
	seq := model.NewBuilder(2).Add(0, 0, 4, 4).Add(0, 1, 4, 4).MustBuild()
	p := &Static{Colors: []model.Color{1}}
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 2, Replication: 2, Speed: 1}, p)
	if res.DropsByColor[1] != 0 {
		t.Errorf("configured color dropped %d jobs", res.DropsByColor[1])
	}
	if res.DropsByColor[0] != 4 {
		t.Errorf("unconfigured color dropped %d, want all 4", res.DropsByColor[0])
	}
}

func TestMostPendingServesHeaviestColor(t *testing.T) {
	// Color 0 has 10 pending, color 1 has 1: with one slot, color 0 wins.
	seq := model.NewBuilder(1).Add(0, 0, 4, 10).Add(0, 1, 4, 1).MustBuild()
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 2, Replication: 2, Speed: 1}, &MostPending{})
	if res.DropsByColor[0] > res.DropsByColor[1]+4 {
		t.Errorf("most-pending starved the heavy color: %v", res.DropsByColor)
	}
}

func TestMostPendingHysteresisReducesChurn(t *testing.T) {
	seq := randomGeneral(3)
	env := sim.Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1}
	loose := sim.MustRun(env, &MostPending{})
	tight := sim.MustRun(env, &MostPending{Margin: 3})
	if tight.Cost.Reconfig > loose.Cost.Reconfig {
		t.Errorf("hysteresis increased reconfigs: %d > %d",
			tight.Cost.Reconfig, loose.Cost.Reconfig)
	}
}

func TestColorEDFTracksDeadlines(t *testing.T) {
	// Color 1's jobs are always more urgent; with one slot it must be served.
	seq := model.NewBuilder(1).
		Add(0, 0, 16, 4).
		Add(0, 1, 2, 2).Add(2, 1, 2, 2).Add(4, 1, 2, 2).
		MustBuild()
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 2, Replication: 2, Speed: 1}, &ColorEDF{})
	if res.DropsByColor[1] != 0 {
		t.Errorf("color-edf dropped %d urgent jobs", res.DropsByColor[1])
	}
}

func TestAllBaselinesAuditOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seq := randomGeneral(seed)
		for _, p := range []sim.Policy{
			&MostPending{}, &MostPending{Margin: 2}, &ColorEDF{}, &Static{}, Never{},
		} {
			res := sim.MustRun(sim.Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1}, p)
			if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
				t.Fatalf("%s seed %d: audit %v != engine %v", p.Name(), seed, got, res.Cost)
			}
		}
	}
}

func TestBaselineNames(t *testing.T) {
	names := map[string]sim.Policy{
		"most-pending": &MostPending{},
		"color-edf":    &ColorEDF{},
		"static":       &Static{},
		"never":        Never{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
}
