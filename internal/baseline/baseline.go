// Package baseline provides simple reference policies that work on arbitrary
// (non-batched) instances: a most-pending greedy, a pure color-EDF greedy
// without eligibility counters (maximally thrashy), a static partition, and
// a never-reconfigure anchor. They calibrate the experiment tables: the
// paper's stack should beat or match them across workloads, and the pure
// greedies should exhibit the thrashing / underutilization failure modes the
// introduction describes.
package baseline

import (
	"sort"

	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// MostPending caches the colors with the most pending jobs, with a
// hysteresis margin: a cached color is only displaced when a challenger has
// at least Margin more pending jobs. Margin 0 is maximally reactive.
type MostPending struct {
	Margin int
}

// Name implements sim.Policy.
func (p *MostPending) Name() string { return "most-pending" }

// Reset implements sim.Policy.
func (p *MostPending) Reset(sim.Env) {}

// DropPhase implements sim.Policy.
func (p *MostPending) DropPhase(sim.View, map[model.Color]int) {}

// ArrivalPhase implements sim.Policy.
func (p *MostPending) ArrivalPhase(sim.View, []model.Job) {}

// Target implements sim.Policy.
func (p *MostPending) Target(v sim.View) []model.Color {
	type entry struct {
		c model.Color
		n int
	}
	var nonidle []entry
	for _, c := range v.Universe() {
		if n := v.Pending(c); n > 0 {
			nonidle = append(nonidle, entry{c: c, n: n})
		}
	}
	sort.Slice(nonidle, func(i, j int) bool {
		if nonidle[i].n != nonidle[j].n {
			return nonidle[i].n > nonidle[j].n
		}
		return nonidle[i].c < nonidle[j].c
	})
	slots := v.Slots()
	target := make([]model.Color, 0, slots)
	used := make(map[model.Color]bool, slots)
	// Keep cached colors that are still competitive (hysteresis).
	rankOf := make(map[model.Color]int, len(nonidle))
	for i, e := range nonidle {
		rankOf[e.c] = i
	}
	for _, c := range v.CachedColors() {
		if n := v.Pending(c); n > 0 {
			if r, ok := rankOf[c]; ok && r < slots+p.Margin && len(target) < slots {
				target = append(target, c)
				used[c] = true
			}
		}
	}
	for _, e := range nonidle {
		if len(target) >= slots {
			break
		}
		if !used[e.c] {
			target = append(target, e.c)
			used[e.c] = true
		}
	}
	return target
}

// ColorEDF caches the colors whose earliest pending deadline is smallest,
// recomputed from scratch every round with no eligibility gate and no
// hysteresis. It is the "natural EDF approach" of the introduction and
// thrashes on alternating idleness.
type ColorEDF struct {
	deadlines map[model.Color]*deadlineQueue
}

type deadlineQueue struct {
	// earliest deadline among pending jobs; maintained from the view's
	// pending counts plus arrival bookkeeping.
	jobs []int64
}

// Name implements sim.Policy.
func (p *ColorEDF) Name() string { return "color-edf" }

// Reset implements sim.Policy.
func (p *ColorEDF) Reset(sim.Env) {
	p.deadlines = make(map[model.Color]*deadlineQueue)
}

// DropPhase implements sim.Policy.
func (p *ColorEDF) DropPhase(v sim.View, dropped map[model.Color]int) {
	k := v.Round()
	for _, q := range p.deadlines {
		i := 0
		for i < len(q.jobs) && q.jobs[i] <= k {
			i++
		}
		q.jobs = q.jobs[i:]
	}
	_ = dropped
}

// ArrivalPhase implements sim.Policy.
func (p *ColorEDF) ArrivalPhase(v sim.View, arrivals []model.Job) {
	for _, j := range arrivals {
		q := p.deadlines[j.Color]
		if q == nil {
			q = &deadlineQueue{}
			p.deadlines[j.Color] = q
		}
		q.jobs = append(q.jobs, j.Deadline())
	}
}

// Target implements sim.Policy.
func (p *ColorEDF) Target(v sim.View) []model.Color {
	// Trim executed jobs: the view's pending count is authoritative; keep
	// the latest Pending(c) deadlines (executions consume the earliest).
	type entry struct {
		c  model.Color
		dd int64
	}
	var nonidle []entry
	for c, q := range p.deadlines {
		n := v.Pending(c)
		if len(q.jobs) > n {
			q.jobs = q.jobs[len(q.jobs)-n:]
		}
		if n > 0 && len(q.jobs) > 0 {
			nonidle = append(nonidle, entry{c: c, dd: q.jobs[0]})
		}
	}
	sort.Slice(nonidle, func(i, j int) bool {
		if nonidle[i].dd != nonidle[j].dd {
			return nonidle[i].dd < nonidle[j].dd
		}
		return nonidle[i].c < nonidle[j].c
	})
	slots := v.Slots()
	if len(nonidle) > slots {
		nonidle = nonidle[:slots]
	}
	target := make([]model.Color, len(nonidle))
	for i, e := range nonidle {
		target[i] = e.c
	}
	return target
}

// Static caches a fixed color set forever (configured once): the
// underutilization anchor. If Colors is nil, Reset picks the first Slots()
// colors of the universe.
type Static struct {
	Colors []model.Color

	chosen []model.Color
}

// Name implements sim.Policy.
func (p *Static) Name() string { return "static" }

// Reset implements sim.Policy.
func (p *Static) Reset(env sim.Env) {
	if p.Colors != nil {
		p.chosen = p.Colors
		return
	}
	all := env.Seq.Colors()
	if len(all) > env.Slots() {
		all = all[:env.Slots()]
	}
	p.chosen = all
}

// DropPhase implements sim.Policy.
func (p *Static) DropPhase(sim.View, map[model.Color]int) {}

// ArrivalPhase implements sim.Policy.
func (p *Static) ArrivalPhase(sim.View, []model.Job) {}

// Target implements sim.Policy.
func (p *Static) Target(v sim.View) []model.Color {
	if len(p.chosen) > v.Slots() {
		return p.chosen[:v.Slots()]
	}
	return p.chosen
}

// Never caches nothing and drops everything: the trivial upper anchor. Its
// cost equals the number of jobs.
type Never struct{}

// Name implements sim.Policy.
func (Never) Name() string { return "never" }

// Reset implements sim.Policy.
func (Never) Reset(sim.Env) {}

// DropPhase implements sim.Policy.
func (Never) DropPhase(sim.View, map[model.Color]int) {}

// ArrivalPhase implements sim.Policy.
func (Never) ArrivalPhase(sim.View, []model.Job) {}

// Target implements sim.Policy.
func (Never) Target(sim.View) []model.Color { return nil }

var (
	_ sim.Policy = (*MostPending)(nil)
	_ sim.Policy = (*ColorEDF)(nil)
	_ sim.Policy = (*Static)(nil)
	_ sim.Policy = Never{}
)
