package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"rrsched/internal/serve"
)

// TestCheckpointPushBinaryRoundTrip holds the binary checkpoint codec to the
// JSON one: both round-trip the same push to the same value, and the binary
// decoder runs the same validation.
func TestCheckpointPushBinaryRoundTrip(t *testing.T) {
	cp := &CheckpointPush{Schema: WireSchema, Worker: "w1", Shard: 1, Epoch: 2, Round: 9,
		Final: true, Data: json.RawMessage(`{"round":9}`)}
	frame, err := EncodeCheckpointPushBinary(cp)
	if err != nil {
		t.Fatalf("EncodeCheckpointPushBinary: %v", err)
	}
	got, err := DecodeCheckpointPushBinary(frame)
	if err != nil {
		t.Fatalf("DecodeCheckpointPushBinary: %v", err)
	}
	if got.Worker != cp.Worker || got.Shard != cp.Shard || got.Epoch != cp.Epoch ||
		got.Round != cp.Round || !got.Final || !bytes.Equal(got.Data, cp.Data) {
		t.Fatalf("binary round trip: %+v != %+v", got, cp)
	}
	// The decoded Data must not alias the frame (the dispatcher retains it).
	frame[len(frame)-2] ^= 0xff
	if !bytes.Equal(got.Data, cp.Data) {
		t.Fatal("decoded checkpoint data aliases the input frame")
	}

	// Validation parity with the JSON decoder.
	bad := []*CheckpointPush{
		{Schema: WireSchema, Worker: "w", Shard: MaxShards, Epoch: 1, Round: 0, Data: json.RawMessage(`{}`)},
		{Schema: WireSchema, Worker: "w", Shard: 0, Epoch: -1, Round: 0, Data: json.RawMessage(`{}`)},
	}
	for _, cp := range bad {
		if _, err := EncodeCheckpointPushBinary(cp); err == nil {
			t.Errorf("binary encoder accepted invalid push %+v", cp)
		}
	}
	if _, err := DecodeCheckpointPushBinary([]byte("not a frame")); err == nil {
		t.Error("binary decoder accepted garbage")
	}
}

// registerAndLease registers a worker over HTTP and heartbeats until it holds
// every shard, returning the held leases.
func registerAndLease(t *testing.T, c *Client, worker string) []LeaseInfo {
	t.Helper()
	reg, err := c.Register(worker, "http://127.0.0.1:1")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var held []LeaseInfo
	for i := 0; i < 4; i++ {
		resp, err := c.Heartbeat(&HeartbeatRequest{Schema: WireSchema, Worker: worker, Held: held}, 0)
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		held = heldFromGrants(held, resp)
		if len(held) == reg.Config.Shards {
			return held
		}
	}
	t.Fatalf("worker %s never acquired all shards (held %d)", worker, len(held))
	return nil
}

// TestCheckpointPushBinaryHTTP pushes a checkpoint through the real HTTP
// stack with the default (auto) client: the push travels as a binary frame,
// lands, and a stale-epoch binary push is fenced with the same 409 the JSON
// path gets — without triggering the JSON fallback.
func TestCheckpointPushBinaryHTTP(t *testing.T) {
	d, _ := newTestDispatcher(t, testConfig())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)

	held := registerAndLease(t, c, "w1")
	lease := held[0]
	if err := c.PushCheckpoint(&CheckpointPush{
		Schema: WireSchema, Worker: "w1", Shard: lease.Shard, Epoch: lease.Epoch,
		Round: 1, Data: json.RawMessage(`{"round":1}`),
	}); err != nil {
		t.Fatalf("binary checkpoint push: %v", err)
	}
	if c.jsonLatched.Load() {
		t.Fatal("auto client latched to JSON against a binary-capable dispatcher")
	}
	if err := c.PushCheckpoint(&CheckpointPush{
		Schema: WireSchema, Worker: "w1", Shard: lease.Shard, Epoch: lease.Epoch - 1,
		Round: 2, Data: json.RawMessage(`{"round":2}`),
	}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale binary push err=%v, want ErrStale", err)
	}
	if c.jsonLatched.Load() {
		t.Fatal("a 409 fence latched the client to JSON (only decode rejects may)")
	}
	// The landed push is visible in the placement table's round.
	p, err := c.Placement()
	if err != nil {
		t.Fatalf("placement: %v", err)
	}
	if p.Shards[lease.Shard].Round != 1 {
		t.Fatalf("shard %d stored round %d, want 1", lease.Shard, p.Shards[lease.Shard].Round)
	}
}

// TestCheckpointPushFallsBackOnJSONOnlyDispatcher: against a dispatcher that
// predates the binary frame (emulated by re-labeling frames as JSON so they
// hit the JSON decoder, exactly as an old build would), the auto client
// latches and resends as JSON — the checkpoint lands exactly once.
func TestCheckpointPushFallsBackOnJSONOnlyDispatcher(t *testing.T) {
	d, _ := newTestDispatcher(t, testConfig())
	var binarySeen atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if serve.IsBinaryContent(r.Header.Get("Content-Type")) {
			binarySeen.Add(1)
			r.Header.Set("Content-Type", "application/json")
		}
		d.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)

	held := registerAndLease(t, c, "w1")
	lease := held[0]
	push := func(round int64) error {
		return c.PushCheckpoint(&CheckpointPush{
			Schema: WireSchema, Worker: "w1", Shard: lease.Shard, Epoch: lease.Epoch,
			Round: round, Data: json.RawMessage(`{"round":1}`),
		})
	}
	if err := push(1); err != nil {
		t.Fatalf("push through fallback: %v", err)
	}
	if !c.jsonLatched.Load() {
		t.Fatal("client did not latch to JSON")
	}
	if n := binarySeen.Load(); n != 1 {
		t.Fatalf("old dispatcher saw %d binary frames, want exactly 1", n)
	}
	if err := push(2); err != nil {
		t.Fatalf("post-latch push: %v", err)
	}
	if n := binarySeen.Load(); n != 1 {
		t.Fatalf("latched client sent another binary frame (%d total)", n)
	}
	p, err := c.Placement()
	if err != nil {
		t.Fatalf("placement: %v", err)
	}
	if p.Shards[lease.Shard].Round != 2 {
		t.Fatalf("shard %d stored round %d, want 2", lease.Shard, p.Shards[lease.Shard].Round)
	}
}
