package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a thin typed client for the dispatcher HTTP API, used by worker
// daemons, the placement-following driver, and the CI smoke job. Control
// traffic is single-shot by design: a worker's heartbeat loop is its own
// retry schedule, and stacking client retries under it would blur the miss
// budget the whole failure model is calibrated against.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the dispatcher at base (e.g.
// "http://127.0.0.1:9090").
func NewClient(base string) *Client {
	return &Client{
		base: base,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
	}
}

// Register announces a worker and returns the service config and heartbeat
// contract the dispatcher imposes.
func (c *Client) Register(worker, addr string) (*RegisterResponse, error) {
	body, err := EncodeRegister(&RegisterRequest{Schema: WireSchema, Worker: worker, Addr: addr})
	if err != nil {
		return nil, err
	}
	var resp RegisterResponse
	if err := c.post("/v1/register", body, &resp); err != nil {
		return nil, err
	}
	if resp.Schema != WireSchema {
		return nil, fmt.Errorf("dispatch: register response schema %q, want %q", resp.Schema, WireSchema)
	}
	return &resp, nil
}

// Heartbeat renews the worker's liveness and exchanges lease state. A 404
// surfaces as errUnknownWorker: the dispatcher does not know this worker
// (typically a dispatcher restart) and it must re-register.
//
// timeout, when positive, caps this one request below the client's default:
// the heartbeat loop must observe failures on the heartbeat cadence, not the
// 30s transport deadline, or a packet-blackhole partition would let a fenced
// dispatcher-side lease outlive the worker's own fence by many intervals.
func (c *Client) Heartbeat(req *HeartbeatRequest, timeout time.Duration) (*HeartbeatResponse, error) {
	body, err := EncodeHeartbeat(req)
	if err != nil {
		return nil, err
	}
	status, data, err := c.doTimeout(http.MethodPost, "/v1/heartbeat", body, timeout)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, errUnknownWorker
	}
	if status != http.StatusOK {
		return nil, bodyError("heartbeat", status, data)
	}
	var resp HeartbeatResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("dispatch: decoding heartbeat response: %w", err)
	}
	return &resp, nil
}

// ErrStale marks a checkpoint push fenced by a newer lease epoch: the pusher
// no longer owns the shard and must discard, not retry.
var ErrStale = fmt.Errorf("dispatch: checkpoint fenced by a newer lease epoch")

// PushCheckpoint uploads one shard checkpoint. ErrStale (from a 409) means
// the lease moved on and the push was rightly discarded.
func (c *Client) PushCheckpoint(req *CheckpointPush) error {
	body, err := EncodeCheckpointPush(req)
	if err != nil {
		return err
	}
	status, data, err := c.do(http.MethodPost, "/v1/checkpoint", body)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrStale
	default:
		return bodyError("checkpoint", status, data)
	}
}

// Placement fetches the shard→worker placement table.
func (c *Client) Placement() (*PlacementResponse, error) {
	var resp PlacementResponse
	if err := c.get("/v1/placement", &resp); err != nil {
		return nil, err
	}
	if resp.Schema != WireSchema {
		return nil, fmt.Errorf("dispatch: placement schema %q, want %q", resp.Schema, WireSchema)
	}
	return &resp, nil
}

// Stats fetches the dispatcher stats.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get("/v1/stats", &resp); err != nil {
		return nil, err
	}
	if resp.Schema != StatsSchema {
		return nil, fmt.Errorf("dispatch: stats schema %q, want %q", resp.Schema, StatsSchema)
	}
	return &resp, nil
}

// MetricsRaw fetches the dispatcher metric snapshot as raw bytes.
func (c *Client) MetricsRaw() ([]byte, error) {
	status, data, err := c.do(http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, bodyError("metrics", status, data)
	}
	return data, nil
}

func (c *Client) post(path string, body []byte, v any) error {
	status, data, err := c.do(http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return bodyError(path, status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("dispatch: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *Client) get(path string, v any) error {
	status, data, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return bodyError(path, status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("dispatch: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *Client) do(method, path string, body []byte) (int, []byte, error) {
	return c.doTimeout(method, path, body, 0)
}

// doTimeout is do with an optional per-request deadline (0 falls back to the
// client's transport timeout).
func (c *Client) doTimeout(method, path string, body []byte, timeout time.Duration) (int, []byte, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: building %s %s: %w", method, path, err)
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(req.Context(), timeout)
		defer cancel()
		req = req.WithContext(ctx)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) // best-effort connection reuse
		_ = resp.Body.Close()                                       // read side already consumed; close error carries no signal
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointBody))
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: reading %s %s response: %w", method, path, err)
	}
	return resp.StatusCode, data, nil
}

// bodyError turns a non-2xx response into an error carrying the server's
// error body when one is present.
func bodyError(op string, status int, data []byte) error {
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return fmt.Errorf("dispatch: %s: status %d (%s)", op, status, er.Error)
	}
	return fmt.Errorf("dispatch: %s: status %d", op, status)
}
