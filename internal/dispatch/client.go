package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"rrsched/internal/serve"
)

// Client is a thin typed client for the dispatcher HTTP API, used by worker
// daemons, the placement-following driver, and the CI smoke job. Control
// traffic is single-shot by design: a worker's heartbeat loop is its own
// retry schedule, and stacking client retries under it would blur the miss
// budget the whole failure model is calibrated against.
type Client struct {
	base string
	hc   *http.Client
	// wire selects the checkpoint-push codec. Registration, heartbeats, and
	// the read endpoints stay JSON: they are small and rare, while checkpoint
	// bodies carry full shard state every tick.
	wire serve.WireMode
	// jsonLatched flips once a binary push was rejected as not-understood;
	// after that every push goes straight to JSON (dispatcher predates v2).
	jsonLatched atomic.Bool
}

// NewClient returns a client for the dispatcher at base (e.g.
// "http://127.0.0.1:9090") negotiating the checkpoint wire format.
func NewClient(base string) *Client {
	return NewClientWire(base, serve.WireAuto)
}

// NewClientWire is NewClient with an explicit checkpoint wire mode:
// WireAuto tries binary and falls back, WireJSON/WireBinary pin the codec.
func NewClientWire(base string, wire serve.WireMode) *Client {
	return &Client{
		base: base,
		wire: wire,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
	}
}

// Register announces a worker and returns the service config and heartbeat
// contract the dispatcher imposes.
func (c *Client) Register(worker, addr string) (*RegisterResponse, error) {
	body, err := EncodeRegister(&RegisterRequest{Schema: WireSchema, Worker: worker, Addr: addr})
	if err != nil {
		return nil, err
	}
	var resp RegisterResponse
	if err := c.post("/v1/register", body, &resp); err != nil {
		return nil, err
	}
	if resp.Schema != WireSchema {
		return nil, fmt.Errorf("dispatch: register response schema %q, want %q", resp.Schema, WireSchema)
	}
	return &resp, nil
}

// Heartbeat renews the worker's liveness and exchanges lease state. A 404
// surfaces as errUnknownWorker: the dispatcher does not know this worker
// (typically a dispatcher restart) and it must re-register.
//
// timeout, when positive, caps this one request below the client's default:
// the heartbeat loop must observe failures on the heartbeat cadence, not the
// 30s transport deadline, or a packet-blackhole partition would let a fenced
// dispatcher-side lease outlive the worker's own fence by many intervals.
func (c *Client) Heartbeat(req *HeartbeatRequest, timeout time.Duration) (*HeartbeatResponse, error) {
	body, err := EncodeHeartbeat(req)
	if err != nil {
		return nil, err
	}
	status, data, err := c.doTimeout(http.MethodPost, "/v1/heartbeat", body, timeout)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, errUnknownWorker
	}
	if status != http.StatusOK {
		return nil, bodyError("heartbeat", status, data)
	}
	var resp HeartbeatResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("dispatch: decoding heartbeat response: %w", err)
	}
	return &resp, nil
}

// ErrStale marks a checkpoint push fenced by a newer lease epoch: the pusher
// no longer owns the shard and must discard, not retry.
var ErrStale = fmt.Errorf("dispatch: checkpoint fenced by a newer lease epoch")

// PushCheckpoint uploads one shard checkpoint. ErrStale (from a 409) means
// the lease moved on and the push was rightly discarded.
//
// In WireAuto/WireBinary mode the push is a binary checkpoint frame; a
// dispatcher that cannot parse it answers 415 or a decode-level 400, which in
// auto mode latches the client to JSON and resends the same checkpoint. Only
// decode-level rejections trigger the fallback — a 400 from validation or a
// 409 fence means the frame was understood and must not be resent.
func (c *Client) PushCheckpoint(req *CheckpointPush) error {
	if (c.wire == serve.WireAuto && !c.jsonLatched.Load()) || c.wire == serve.WireBinary {
		body, err := EncodeCheckpointPushBinary(req)
		if err != nil {
			return err
		}
		status, data, err := c.doCT(http.MethodPost, "/v1/checkpoint", body, serve.ContentTypeBinary)
		if err != nil {
			return err
		}
		if c.wire == serve.WireAuto && checkpointDecodeReject(status, data) {
			c.jsonLatched.Store(true)
		} else {
			return checkpointStatus(status, data)
		}
	}
	body, err := EncodeCheckpointPush(req)
	if err != nil {
		return err
	}
	status, data, err := c.do(http.MethodPost, "/v1/checkpoint", body)
	if err != nil {
		return err
	}
	return checkpointStatus(status, data)
}

func checkpointStatus(status int, data []byte) error {
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrStale
	default:
		return bodyError("checkpoint", status, data)
	}
}

// checkpointDecodeReject reports whether a binary push failed because the
// server could not parse the frame at all (unsupported media type, or a 400
// whose error body is the checkpoint decoder's) — the only responses that
// justify retrying the same checkpoint as JSON.
func checkpointDecodeReject(status int, data []byte) bool {
	if status == http.StatusUnsupportedMediaType {
		return true
	}
	if status != http.StatusBadRequest {
		return false
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &er); err != nil {
		return false
	}
	return strings.Contains(er.Error, "decoding checkpoint push")
}

// Placement fetches the shard→worker placement table.
func (c *Client) Placement() (*PlacementResponse, error) {
	var resp PlacementResponse
	if err := c.get("/v1/placement", &resp); err != nil {
		return nil, err
	}
	if resp.Schema != WireSchema {
		return nil, fmt.Errorf("dispatch: placement schema %q, want %q", resp.Schema, WireSchema)
	}
	return &resp, nil
}

// Reshard asks the dispatcher to resize the fleet to shards. The request and
// response reuse the serve layer's reshard wire format; a 409 (mid-round,
// incomplete checkpoint set, same count) surfaces as an error the caller can
// retry after the next completed round.
func (c *Client) Reshard(shards int) (*serve.ReshardResponse, error) {
	body, err := serve.EncodeReshard(&serve.ReshardRequest{Schema: serve.ReshardSchema, Shards: shards})
	if err != nil {
		return nil, err
	}
	var resp serve.ReshardResponse
	if err := c.post("/v1/reshard", body, &resp); err != nil {
		return nil, err
	}
	if resp.Schema != serve.ReshardSchema {
		return nil, fmt.Errorf("dispatch: reshard response schema %q, want %q", resp.Schema, serve.ReshardSchema)
	}
	return &resp, nil
}

// Stats fetches the dispatcher stats.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get("/v1/stats", &resp); err != nil {
		return nil, err
	}
	if resp.Schema != StatsSchema {
		return nil, fmt.Errorf("dispatch: stats schema %q, want %q", resp.Schema, StatsSchema)
	}
	return &resp, nil
}

// MetricsRaw fetches the dispatcher metric snapshot as raw bytes.
func (c *Client) MetricsRaw() ([]byte, error) {
	status, data, err := c.do(http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, bodyError("metrics", status, data)
	}
	return data, nil
}

func (c *Client) post(path string, body []byte, v any) error {
	status, data, err := c.do(http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return bodyError(path, status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("dispatch: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *Client) get(path string, v any) error {
	status, data, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return bodyError(path, status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("dispatch: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *Client) do(method, path string, body []byte) (int, []byte, error) {
	return c.request(method, path, body, "", 0)
}

// doCT is do with an explicit request Content-Type.
func (c *Client) doCT(method, path string, body []byte, contentType string) (int, []byte, error) {
	return c.request(method, path, body, contentType, 0)
}

// doTimeout is do with an optional per-request deadline (0 falls back to the
// client's transport timeout).
func (c *Client) doTimeout(method, path string, body []byte, timeout time.Duration) (int, []byte, error) {
	return c.request(method, path, body, "", timeout)
}

func (c *Client) request(method, path string, body []byte, contentType string, timeout time.Duration) (int, []byte, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: building %s %s: %w", method, path, err)
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(req.Context(), timeout)
		defer cancel()
		req = req.WithContext(ctx)
	}
	if body != nil {
		if contentType == "" {
			contentType = "application/json"
		}
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) // best-effort connection reuse
		_ = resp.Body.Close()                                       // read side already consumed; close error carries no signal
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointBody))
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: reading %s %s response: %w", method, path, err)
	}
	return resp.StatusCode, data, nil
}

// bodyError turns a non-2xx response into an error carrying the server's
// error body when one is present.
func bodyError(op string, status int, data []byte) error {
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return fmt.Errorf("dispatch: %s: status %d (%s)", op, status, er.Error)
	}
	return fmt.Errorf("dispatch: %s: status %d", op, status)
}
