package dispatch

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWireRoundTrips(t *testing.T) {
	reg := &RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://127.0.0.1:9000"}
	data, err := EncodeRegister(reg)
	if err != nil {
		t.Fatalf("EncodeRegister: %v", err)
	}
	reg2, err := DecodeRegister(data)
	if err != nil {
		t.Fatalf("DecodeRegister: %v", err)
	}
	if *reg2 != *reg {
		t.Fatalf("register round trip: %+v != %+v", reg2, reg)
	}

	hb := &HeartbeatRequest{Schema: WireSchema, Worker: "w1", Held: []LeaseInfo{
		{Shard: 0, Epoch: 3, Round: 17},
		{Shard: 2, Epoch: 1, Round: 4},
	}}
	data, err = EncodeHeartbeat(hb)
	if err != nil {
		t.Fatalf("EncodeHeartbeat: %v", err)
	}
	hb2, err := DecodeHeartbeat(data)
	if err != nil {
		t.Fatalf("DecodeHeartbeat: %v", err)
	}
	if hb2.Worker != hb.Worker || len(hb2.Held) != 2 || hb2.Held[1] != hb.Held[1] {
		t.Fatalf("heartbeat round trip: %+v != %+v", hb2, hb)
	}

	cp := &CheckpointPush{Schema: WireSchema, Worker: "w1", Shard: 1, Epoch: 2, Round: 9,
		Final: true, Data: json.RawMessage(`{"round":9}`)}
	data, err = EncodeCheckpointPush(cp)
	if err != nil {
		t.Fatalf("EncodeCheckpointPush: %v", err)
	}
	cp2, err := DecodeCheckpointPush(data)
	if err != nil {
		t.Fatalf("DecodeCheckpointPush: %v", err)
	}
	if cp2.Worker != cp.Worker || cp2.Shard != cp.Shard || cp2.Epoch != cp.Epoch ||
		cp2.Round != cp.Round || !cp2.Final || !bytes.Equal(cp2.Data, cp.Data) {
		t.Fatalf("checkpoint round trip: %+v != %+v", cp2, cp)
	}
}

func TestWireRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		dec  func([]byte) error
		want string
	}{
		{"register bad schema", `{"schema":"nope","worker":"w","addr":"a"}`,
			func(b []byte) error { _, err := DecodeRegister(b); return err }, "schema"},
		{"register empty worker", `{"schema":"rrdispatch/v1","worker":"","addr":"a"}`,
			func(b []byte) error { _, err := DecodeRegister(b); return err }, "empty worker"},
		{"register control-byte worker", "{\"schema\":\"rrdispatch/v1\",\"worker\":\"w\\u0001\",\"addr\":\"a\"}",
			func(b []byte) error { _, err := DecodeRegister(b); return err }, "control byte"},
		{"register no addr", `{"schema":"rrdispatch/v1","worker":"w","addr":""}`,
			func(b []byte) error { _, err := DecodeRegister(b); return err }, "no address"},
		{"heartbeat unsorted held", `{"schema":"rrdispatch/v1","worker":"w","held":[{"shard":2},{"shard":1}]}`,
			func(b []byte) error { _, err := DecodeHeartbeat(b); return err }, "strictly increasing"},
		{"heartbeat negative epoch", `{"schema":"rrdispatch/v1","worker":"w","held":[{"shard":0,"epoch":-1}]}`,
			func(b []byte) error { _, err := DecodeHeartbeat(b); return err }, "negative epoch"},
		{"heartbeat shard out of range", `{"schema":"rrdispatch/v1","worker":"w","held":[{"shard":5000}]}`,
			func(b []byte) error { _, err := DecodeHeartbeat(b); return err }, "out of range"},
		{"checkpoint no data", `{"schema":"rrdispatch/v1","worker":"w","shard":0,"epoch":0,"round":0}`,
			func(b []byte) error { _, err := DecodeCheckpointPush(b); return err }, "no data"},
		{"checkpoint negative round", `{"schema":"rrdispatch/v1","worker":"w","shard":0,"round":-1,"data":{}}`,
			func(b []byte) error { _, err := DecodeCheckpointPush(b); return err }, "negative round"},
		{"checkpoint not json", `{broken`,
			func(b []byte) error { _, err := DecodeCheckpointPush(b); return err }, "decoding"},
	}
	for _, tc := range cases {
		err := tc.dec([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestServiceConfigValidation(t *testing.T) {
	good := ServiceConfig{Shards: 2, Resources: 8, Delta: 4, Watermark: 64}
	if err := good.validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []ServiceConfig{
		{Shards: 0, Resources: 8, Delta: 4, Watermark: 64},
		{Shards: MaxShards + 1, Resources: 8, Delta: 4, Watermark: 64},
		{Shards: 2, Resources: 6, Delta: 4, Watermark: 64},
		{Shards: 2, Resources: 8, Delta: 0, Watermark: 64},
		{Shards: 2, Resources: 8, Delta: 4, Watermark: 0},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// FuzzDecodeDispatch pins that no dispatcher wire decoder panics on arbitrary
// bytes, and that anything a decoder accepts re-encodes to bytes the decoder
// accepts again (round-trip closure).
func FuzzDecodeDispatch(f *testing.F) {
	f.Add([]byte(`{"schema":"rrdispatch/v1","worker":"w1","addr":"http://h:1"}`))
	f.Add([]byte(`{"schema":"rrdispatch/v1","worker":"w1","held":[{"shard":0,"epoch":1,"round":2}]}`))
	f.Add([]byte(`{"schema":"rrdispatch/v1","worker":"w1","shard":0,"epoch":1,"round":2,"data":{"x":1}}`))
	f.Add([]byte(`{broken`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRegister(data); err == nil {
			enc, err := EncodeRegister(req)
			if err != nil {
				t.Fatalf("accepted register does not re-encode: %v", err)
			}
			if _, err := DecodeRegister(enc); err != nil {
				t.Fatalf("re-encoded register rejected: %v", err)
			}
		}
		if req, err := DecodeHeartbeat(data); err == nil {
			enc, err := EncodeHeartbeat(req)
			if err != nil {
				t.Fatalf("accepted heartbeat does not re-encode: %v", err)
			}
			if _, err := DecodeHeartbeat(enc); err != nil {
				t.Fatalf("re-encoded heartbeat rejected: %v", err)
			}
		}
		if req, err := DecodeCheckpointPush(data); err == nil {
			enc, err := EncodeCheckpointPush(req)
			if err != nil {
				t.Fatalf("accepted checkpoint does not re-encode: %v", err)
			}
			if _, err := DecodeCheckpointPush(enc); err != nil {
				t.Fatalf("re-encoded checkpoint rejected: %v", err)
			}
		}
	})
}
