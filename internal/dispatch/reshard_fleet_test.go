package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFleetReshardDeterminism is the dispatch-tier half of the reshard
// tentpole: a live fleet is split 4→8 and later merged 8→3 mid-run through
// the dispatcher — workers rebuild their hosted services from the bumped
// config epoch, the driver re-partitions batches under the new ring — and
// every tenant's final decision stream is still byte-identical to a bare
// stream.Scheduler fed the same arrivals on one node.
func TestFleetReshardDeterminism(t *testing.T) {
	d, _, _, driver, baseURL := startFleet(t)
	svc := d.cfg.Service
	tenants := failoverFixture(t, 42)
	rc := NewClient(baseURL)

	for r := int64(0); r < foTotalRounds; r++ {
		if r == 15 {
			rr, err := rc.Reshard(8)
			if err != nil {
				t.Fatalf("Reshard(8): %v", err)
			}
			if rr.From != 4 || rr.Shards != 8 || rr.Epoch != 1 || rr.Round != 15 {
				t.Fatalf("split response %+v, want 4→8 at epoch 1 round 15", rr)
			}
			if rr.Moved == 0 || rr.MigratedBytes == 0 {
				t.Fatalf("split reported no migration: %+v", rr)
			}
		}
		if r == 25 {
			rr, err := rc.Reshard(3)
			if err != nil {
				t.Fatalf("Reshard(3): %v", err)
			}
			if rr.From != 8 || rr.Shards != 3 || rr.Epoch != 2 || rr.Round != 25 {
				t.Fatalf("merge response %+v, want 8→3 at epoch 2 round 25", rr)
			}
		}
		if err := driver.Round(batchesAt(tenants, r)); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}
	if got := driver.Shards(); got != 3 {
		t.Fatalf("driver tracks %d shards, want 3", got)
	}

	verifyStreams(t, driver, tenants, svc)

	st, err := rc.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Shards != 3 || st.Epoch != 2 {
		t.Fatalf("fleet stats %+v, want 3 shards at config epoch 2", st)
	}
	snap := d.Metrics()
	if n, _ := snap.Counter("dispatch_reshards_total"); n != 2 {
		t.Fatalf("dispatch_reshards_total = %d, want 2", n)
	}
}

// TestFleetReshardFailoverMidMigration pins the worst interleavings of
// reshard and failover: one worker dies the instant the fleet is resized
// (before it ever rebuilds — its migrated shards must come back from the
// transformed checkpoint store alone), and another dies later holding
// migrated shards with freshly landed, never-checkpointed admissions. Both
// are absorbed without a byte of decision divergence.
func TestFleetReshardFailoverMidMigration(t *testing.T) {
	d, w1, w2, driver, baseURL := startFleet(t)
	svc := d.cfg.Service
	tenants := failoverFixture(t, 99)
	rc := NewClient(baseURL)

	for r := int64(0); r < foTotalRounds; r++ {
		batches := batchesAt(tenants, r)
		if r == 12 {
			rr, err := rc.Reshard(7)
			if err != nil {
				t.Fatalf("Reshard(7): %v", err)
			}
			if rr.From != 4 || rr.Shards != 7 || rr.Epoch != 1 {
				t.Fatalf("reshard response %+v, want 4→7 at epoch 1", rr)
			}
			// The failover lands mid-migration: w2 never hears about the new
			// config epoch, so its half of the old fleet is recovered purely
			// from the dispatcher's transformed checkpoints.
			w2.Kill()
			w3, err := StartWorker("w3", baseURL, "127.0.0.1:0", io.Discard)
			if err != nil {
				t.Fatalf("StartWorker w3: %v", err)
			}
			t.Cleanup(w3.Kill)
		}
		if r == 16 {
			// The classic worst case, now on migrated shards: land the round's
			// admissions, then kill the holder before it can tick/checkpoint.
			for _, b := range batches {
				if out, err := driver.Submit(b.Tenant, b.Jobs); err != nil || !out.Landed() {
					t.Fatalf("pre-kill submit %s: out=%+v err=%v", b.Tenant, out, err)
				}
			}
			w1.Kill()
			w4, err := StartWorker("w4", baseURL, "127.0.0.1:0", io.Discard)
			if err != nil {
				t.Fatalf("StartWorker w4: %v", err)
			}
			t.Cleanup(w4.Kill)
		}
		if err := driver.Round(batches); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}

	verifyStreams(t, driver, tenants, svc)

	waitAssigned(t, d, 7)
	snap := d.Metrics()
	if n, _ := snap.Counter("dispatch_workers_dead_total"); n < 2 {
		t.Fatalf("dispatch_workers_dead_total = %d after two kills, want >= 2", n)
	}
	if n, _ := snap.Counter("dispatch_reshards_total"); n != 1 {
		t.Fatalf("dispatch_reshards_total = %d, want 1", n)
	}
}

// TestDispatcherRestartAcrossShardCounts pins boot-time resizing: a fleet
// persisted at 4 shards is rebooted as a 6-shard dispatcher over the same
// state dir; the persisted checkpoint set is resharded before the first
// grant, a fresh driver adopts the fleet's round, and the resumed run ends
// with reference-identical decision streams.
func TestDispatcherRestartAcrossShardCounts(t *testing.T) {
	stateDir := t.TempDir()
	cfg := Config{
		Service:        ServiceConfig{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true},
		HeartbeatEvery: 50 * time.Millisecond,
		MissBudget:     2,
		StateDir:       stateDir,
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New dispatcher: %v", err)
	}
	srv := httptest.NewServer(d.Handler())
	w1, err := StartWorker("w1", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w1: %v", err)
	}
	waitAssigned(t, d, 4)
	driver, err := NewDriver(srv.URL, DriverConfig{Attempts: 400, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}

	tenants := failoverFixture(t, 11)
	const restartRound = 10
	for r := int64(0); r < restartRound; r++ {
		if err := driver.Round(batchesAt(tenants, r)); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}
	// Everything dies abruptly; only the state dir survives.
	w1.Kill()
	srv.Close()
	d.Close()

	cfg2 := cfg
	cfg2.Service.Shards = 6
	d2, err := New(cfg2)
	if err != nil {
		t.Fatalf("rebooting dispatcher at 6 shards: %v", err)
	}
	t.Cleanup(d2.Close)
	srv2 := httptest.NewServer(d2.Handler())
	t.Cleanup(srv2.Close)
	w2, err := StartWorker("w2", srv2.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w2: %v", err)
	}
	t.Cleanup(w2.Kill)
	waitAssigned(t, d2, 6)

	driver2, err := NewDriver(srv2.URL, DriverConfig{Attempts: 400, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver after restart: %v", err)
	}
	if got := driver2.CurrentRound(); got != restartRound {
		t.Fatalf("restarted driver adopted round %d, want %d", got, restartRound)
	}
	if got := driver2.Shards(); got != 6 {
		t.Fatalf("restarted driver tracks %d shards, want 6", got)
	}
	for r := int64(restartRound); r < foTotalRounds; r++ {
		if err := driver2.Round(batchesAt(tenants, r)); err != nil {
			t.Fatalf("resumed round %d: %v", r+1, err)
		}
	}
	verifyStreams(t, driver2, tenants, cfg2.Service)
}

// reshardStateFile writes one persisted shard file with an empty-tenant serve
// checkpoint, the raw material of the boot-resize refusal tests.
func reshardStateFile(t *testing.T, dir string, shard, shards int, epoch, round int64) {
	t.Helper()
	cp := fmt.Sprintf(`{"schema":"rrserve-state/v1","shard":%d,"shards":%d,"round":%d,"tenants":[]}`, shard, shards, round)
	st, err := json.Marshal(shardState{
		Schema: stateSchema, Shard: shard, Shards: shards, Epoch: epoch, Round: round, Data: json.RawMessage(cp),
	})
	if err != nil {
		t.Fatalf("encoding state file: %v", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("shard-%04d.json", shard))
	if err := os.WriteFile(path, st, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// TestDispatcherBootResizeRefusals pins the safety rails of boot-time
// resizing: a partial persisted set, diverging rounds, and disagreeing shard
// counts are all refused — and the valid case loads with every old epoch
// fenced.
func TestDispatcherBootResizeRefusals(t *testing.T) {
	cfg := testConfig()
	cfg.StateDir = t.TempDir()

	reshardStateFile(t, cfg.StateDir, 0, 2, 5, 3)
	clk := &fakeClock{}
	if _, err := newDispatcher(cfg, clk.now); err == nil || !strings.Contains(err.Error(), "full set") {
		t.Fatalf("partial persisted set: err=%v, want a full-set refusal", err)
	}

	reshardStateFile(t, cfg.StateDir, 1, 2, 2, 4)
	if _, err := newDispatcher(cfg, clk.now); err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("diverging rounds: err=%v, want a divergence refusal", err)
	}

	reshardStateFile(t, cfg.StateDir, 1, 3, 2, 3)
	if _, err := newDispatcher(cfg, clk.now); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("disagreeing shard counts: err=%v, want a disagreement refusal", err)
	}

	reshardStateFile(t, cfg.StateDir, 1, 2, 2, 3)
	d, err := newDispatcher(cfg, clk.now)
	if err != nil {
		t.Fatalf("valid 2→4 boot resize refused: %v", err)
	}
	defer d.Close()
	p := d.Placement()
	if len(p.Shards) != 4 {
		t.Fatalf("resized placement has %d shards, want 4", len(p.Shards))
	}
	for _, e := range p.Shards {
		if e.Epoch != 6 || e.Round != 3 {
			t.Fatalf("resized shard %d at epoch %d round %d, want epoch 6 (max 5 fenced) round 3", e.Shard, e.Epoch, e.Round)
		}
	}
	// The transformed set was re-persisted under the new count: a second boot
	// at the same count loads it without another transform.
	d2, err := newDispatcher(cfg, clk.now)
	if err != nil {
		t.Fatalf("reboot after resize: %v", err)
	}
	d2.Close()
}

// TestDispatcherReshardRefusals pins the live-reshard preconditions: bad
// counts, a fresh fleet resizing without a transform, partial checkpoint
// sets, and mid-round (diverging stored rounds) attempts.
func TestDispatcherReshardRefusals(t *testing.T) {
	d, _ := newTestDispatcher(t, testConfig()) // 4 shards

	if _, err := d.Reshard(4); err == nil || !strings.Contains(err.Error(), "already has") {
		t.Fatalf("same-count reshard: err=%v", err)
	}
	if _, err := d.Reshard(0); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("zero-shard reshard: err=%v", err)
	}
	if _, err := d.Reshard(MaxShards + 1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized reshard: err=%v", err)
	}

	// A fleet that never checkpointed resizes without a transform.
	rr, err := d.Reshard(2)
	if err != nil {
		t.Fatalf("fresh resize: %v", err)
	}
	if rr.From != 4 || rr.Shards != 2 || rr.Epoch != 1 || rr.Moved != 0 || rr.MigratedBytes != 0 {
		t.Fatalf("fresh resize response %+v, want a transform-free 4→2", rr)
	}

	// A heartbeat on the stale config epoch gets the new config and no
	// grants; echoing the current epoch gets the shards.
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://h1"})
	resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1"})
	if resp.Config == nil || resp.ConfigEpoch != 1 || len(resp.Grants) != 0 {
		t.Fatalf("stale-config heartbeat %+v, want config epoch 1 and no grants", resp)
	}
	if resp.Config.Shards != 2 {
		t.Fatalf("stale-config heartbeat carries %d shards, want 2", resp.Config.Shards)
	}
	resp = mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1", ConfigEpoch: 1})
	if resp.Config != nil || len(resp.Grants) != 2 {
		t.Fatalf("current-config heartbeat %+v, want 2 grants", resp)
	}

	// One stored checkpoint of two: the set is incomplete.
	held := heldFromGrants(nil, resp)
	cp := func(shard int, round int64) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"schema":"rrserve-state/v1","shard":%d,"shards":2,"round":%d,"tenants":[]}`, shard, round))
	}
	if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
		Shard: 0, Epoch: held[0].Epoch, Round: 1, Data: cp(0, 1)}); err != nil {
		t.Fatalf("storeCheckpoint shard 0: %v", err)
	}
	if _, err := d.Reshard(5); err == nil || !strings.Contains(err.Error(), "every shard") {
		t.Fatalf("partial checkpoint set: err=%v", err)
	}

	// Complete but mid-round: stored rounds diverge.
	if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
		Shard: 1, Epoch: held[1].Epoch, Round: 2, Data: cp(1, 2)}); err != nil {
		t.Fatalf("storeCheckpoint shard 1: %v", err)
	}
	if _, err := d.Reshard(5); err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("mid-round reshard: err=%v", err)
	}

	// Aligned rounds reshard cleanly and fence every outstanding lease.
	if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
		Shard: 0, Epoch: held[0].Epoch, Round: 2, Data: cp(0, 2)}); err != nil {
		t.Fatalf("re-storing shard 0: %v", err)
	}
	rr, err = d.Reshard(5)
	if err != nil {
		t.Fatalf("aligned reshard: %v", err)
	}
	if rr.From != 2 || rr.Shards != 5 || rr.Epoch != 2 || rr.Round != 2 {
		t.Fatalf("aligned reshard response %+v, want 2→5 at config epoch 2 round 2", rr)
	}
	// The old lease epochs are all fenced: a push under the pre-reshard epoch
	// bounces.
	if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
		Shard: 0, Epoch: held[0].Epoch, Round: 3, Data: cp(0, 3)}); err == nil {
		t.Fatal("pre-reshard epoch push was accepted after the reshard")
	}
}
