package dispatch

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock drives the dispatcher's failure detector deterministically.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64              { return c.ns }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func testConfig() Config {
	return Config{
		Service:        ServiceConfig{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 10},
		HeartbeatEvery: time.Hour, // monitor effectively idle; tests call sweep directly
		MissBudget:     3,
	}
}

func newTestDispatcher(t *testing.T, cfg Config) (*Dispatcher, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	d, err := newDispatcher(cfg, clk.now)
	if err != nil {
		t.Fatalf("newDispatcher: %v", err)
	}
	t.Cleanup(d.Close)
	return d, clk
}

func mustHeartbeat(t *testing.T, d *Dispatcher, req *HeartbeatRequest) *HeartbeatResponse {
	t.Helper()
	resp, err := d.heartbeat(req)
	if err != nil {
		t.Fatalf("heartbeat(%s): %v", req.Worker, err)
	}
	return resp
}

// heldFromGrants simulates a worker applying every grant: the next
// heartbeat's held list.
func heldFromGrants(prev []LeaseInfo, resp *HeartbeatResponse) []LeaseInfo {
	byShard := map[int]LeaseInfo{}
	for _, l := range prev {
		byShard[l.Shard] = l
	}
	for _, shard := range resp.Revokes {
		delete(byShard, shard)
	}
	for _, g := range resp.Grants {
		byShard[g.Shard] = LeaseInfo{Shard: g.Shard, Epoch: g.Epoch, Round: g.Round}
	}
	out := make([]LeaseInfo, 0, len(byShard))
	for shard := 0; shard < MaxShards; shard++ {
		if l, ok := byShard[shard]; ok {
			out = append(out, l)
		}
	}
	return out
}

// TestGrantsAndRebalance pins the lease lifecycle: a lone worker gets every
// shard; a second worker triggers a graceful rebalance — revokes on the
// overloaded side, grants (with the handed-off checkpoints) on the other —
// converging to the fair share.
func TestGrantsAndRebalance(t *testing.T) {
	d, _ := newTestDispatcher(t, testConfig())
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://h1"})

	resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1"})
	if len(resp.Grants) != 4 || len(resp.Revokes) != 0 {
		t.Fatalf("lone worker: %d grants %d revokes, want 4/0", len(resp.Grants), len(resp.Revokes))
	}
	for _, g := range resp.Grants {
		if len(g.Checkpoint) != 0 {
			t.Fatalf("fresh shard %d granted with a checkpoint", g.Shard)
		}
	}
	w1Held := heldFromGrants(nil, resp)

	// Second worker joins: w1's next heartbeat must revoke down to fair share
	// (2), and w2 gets nothing until the final checkpoints land.
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w2", Addr: "http://h2"})
	resp = mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1", Held: w1Held})
	if len(resp.Revokes) != 2 || len(resp.Grants) != 0 {
		t.Fatalf("rebalance: %d revokes %d grants, want 2/0 (resp %+v)", len(resp.Revokes), len(resp.Grants), resp)
	}
	respW2 := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w2"})
	if len(respW2.Grants) != 0 {
		t.Fatalf("w2 granted revoking shards before the handoff: %+v", respW2)
	}

	// w1 closes the revoked shards and pushes final checkpoints.
	for _, shard := range resp.Revokes {
		var epoch int64
		for _, l := range w1Held {
			if l.Shard == shard {
				epoch = l.Epoch
			}
		}
		if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
			Shard: shard, Epoch: epoch, Round: 0, Final: true,
			Data: json.RawMessage(`{"round":0}`)}); err != nil {
			t.Fatalf("final checkpoint for shard %d: %v", shard, err)
		}
	}
	w1Held = heldFromGrants(w1Held, resp)

	// Now w2 inherits the freed shards, checkpoints attached.
	respW2 = mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w2"})
	if len(respW2.Grants) != 2 {
		t.Fatalf("w2 grants after handoff: %+v", respW2)
	}
	for _, g := range respW2.Grants {
		if len(g.Checkpoint) == 0 {
			t.Fatalf("handed-off shard %d granted without its checkpoint", g.Shard)
		}
	}

	// Stable state: both workers renew, nothing moves.
	w2Held := heldFromGrants(nil, respW2)
	if resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1", Held: w1Held}); len(resp.Grants)+len(resp.Revokes) != 0 {
		t.Fatalf("stable w1 heartbeat moved leases: %+v", resp)
	}
	if resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w2", Held: w2Held}); len(resp.Grants)+len(resp.Revokes) != 0 {
		t.Fatalf("stable w2 heartbeat moved leases: %+v", resp)
	}
	st := d.Stats()
	if st.Assigned != 4 || len(st.Workers) != 2 || st.Workers[0].Held != 2 || st.Workers[1].Held != 2 {
		t.Fatalf("stats after rebalance: %+v", st)
	}
}

// TestDeadWorkerFailover pins the failure path: a worker that stops
// heartbeating past the miss budget loses its leases to the survivor, which
// is granted the stored checkpoints under bumped (fencing) epochs.
func TestDeadWorkerFailover(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatEvery = time.Second // budget arithmetic under test
	d, clk := newTestDispatcher(t, cfg)
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://h1"})
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w2", Addr: "http://h2"})

	r1 := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1"})
	w1Held := heldFromGrants(nil, r1)
	r2 := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w2"})
	w2Held := heldFromGrants(nil, r2)
	if len(w1Held) != 2 || len(w2Held) != 2 {
		t.Fatalf("initial split %d/%d, want 2/2", len(w1Held), len(w2Held))
	}

	// Both push checkpoints at round 7.
	for _, l := range append(append([]LeaseInfo{}, w1Held...), w2Held...) {
		worker := "w1"
		if l.Shard == w2Held[0].Shard || l.Shard == w2Held[1].Shard {
			worker = "w2"
		}
		if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: worker,
			Shard: l.Shard, Epoch: l.Epoch, Round: 7, Data: json.RawMessage(`{"round":7}`)}); err != nil {
			t.Fatalf("checkpoint shard %d: %v", l.Shard, err)
		}
	}

	// w1 goes silent. Within the budget nothing happens; past it, w1 is dead
	// and its shards are freed.
	clk.advance(3*time.Second + time.Millisecond)
	mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w2", Held: w2Held})
	d.sweep(clk.now())
	if st := d.Stats(); st.Workers[0].Alive || !st.Workers[1].Alive {
		t.Fatalf("liveness after partial silence: %+v", st.Workers)
	}

	// The survivor's next heartbeat picks the orphans up, with the stored
	// round-7 checkpoints and epochs bumped past the dead worker's.
	resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w2", Held: w2Held})
	if len(resp.Grants) != 2 {
		t.Fatalf("failover grants: %+v", resp)
	}
	oldEpochs := map[int]int64{}
	for _, l := range w1Held {
		oldEpochs[l.Shard] = l.Epoch
	}
	for _, g := range resp.Grants {
		if g.Round != 7 || len(g.Checkpoint) == 0 {
			t.Fatalf("failover grant lost the checkpoint: %+v", g)
		}
		if g.Epoch <= oldEpochs[g.Shard] {
			t.Fatalf("failover grant epoch %d does not fence old epoch %d", g.Epoch, oldEpochs[g.Shard])
		}
	}

	// The dead worker's late checkpoint push is fenced.
	err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
		Shard: w1Held[0].Shard, Epoch: w1Held[0].Epoch, Round: 9, Data: json.RawMessage(`{"round":9}`)})
	if !errors.Is(err, errStaleEpoch) {
		t.Fatalf("zombie checkpoint: err = %v, want stale epoch", err)
	}

	// And its late heartbeat gets its stale holdings revoked, not renewed.
	late := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1", Held: w1Held})
	if len(late.Revokes) != 2 {
		t.Fatalf("zombie heartbeat: %+v, want its 2 stale holdings revoked", late)
	}

	// Metrics tell the story: a dead worker, two failovers, fenced pushes.
	snap := d.Metrics()
	for name, min := range map[string]int64{
		"dispatch_workers_dead_total": 1,
		"dispatch_failovers_total":    2,
		"dispatch_stale_epochs_total": 1,
		"dispatch_lease_grants_total": 6,
	} {
		if got, ok := snap.Counter(name); !ok || got < min {
			t.Errorf("%s = %d (ok=%v), want >= %d", name, got, ok, min)
		}
	}
}

// TestLostLeaseReconciliation pins the restarted-worker path: a worker that
// re-registers and heartbeats empty-handed gets its old attributions fenced
// and fresh grants instead.
func TestLostLeaseReconciliation(t *testing.T) {
	d, _ := newTestDispatcher(t, testConfig())
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://h1"})
	first := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1"})
	firstEpochs := map[int]int64{}
	for _, g := range first.Grants {
		firstEpochs[g.Shard] = g.Epoch
	}

	// The process restarts: re-register, heartbeat with nothing held.
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://h1-reborn"})
	resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1"})
	if len(resp.Grants) != 4 {
		t.Fatalf("reborn worker grants: %+v", resp)
	}
	for _, g := range resp.Grants {
		if g.Epoch <= firstEpochs[g.Shard] {
			t.Fatalf("regrant epoch %d does not fence pre-restart epoch %d", g.Epoch, firstEpochs[g.Shard])
		}
	}
	if p := d.Placement(); p.Shards[0].Addr != "http://h1-reborn" {
		t.Fatalf("placement kept the stale address: %+v", p.Shards[0])
	}
}

// TestHeartbeatUnknownWorker pins that heartbeats require registration.
func TestHeartbeatUnknownWorker(t *testing.T) {
	d, _ := newTestDispatcher(t, testConfig())
	if _, err := d.heartbeat(&HeartbeatRequest{Schema: WireSchema, Worker: "ghost"}); !errors.Is(err, errUnknownWorker) {
		t.Fatalf("unknown worker heartbeat: err = %v", err)
	}
}

// TestStatePersistence pins the dispatcher's own durability: accepted
// checkpoints survive a dispatcher restart via the state dir and seed
// regrants, epochs intact.
func TestStatePersistence(t *testing.T) {
	cfg := testConfig()
	cfg.StateDir = t.TempDir()
	d, _ := newTestDispatcher(t, cfg)
	d.register(&RegisterRequest{Schema: WireSchema, Worker: "w1", Addr: "http://h1"})
	resp := mustHeartbeat(t, d, &HeartbeatRequest{Schema: WireSchema, Worker: "w1"})
	held := heldFromGrants(nil, resp)
	if err := d.storeCheckpoint(&CheckpointPush{Schema: WireSchema, Worker: "w1",
		Shard: held[1].Shard, Epoch: held[1].Epoch, Round: 12,
		Data: json.RawMessage(`{"round":12,"tenants":["alpha"]}`)}); err != nil {
		t.Fatalf("storeCheckpoint: %v", err)
	}
	d.Close()

	if _, err := os.Stat(filepath.Join(cfg.StateDir, "shard-0001.json")); err != nil {
		t.Fatalf("persisted state file: %v", err)
	}

	d2, _ := newTestDispatcher(t, cfg)
	d2.register(&RegisterRequest{Schema: WireSchema, Worker: "w2", Addr: "http://h2"})
	resp = mustHeartbeat(t, d2, &HeartbeatRequest{Schema: WireSchema, Worker: "w2"})
	if len(resp.Grants) != 4 {
		t.Fatalf("post-restart grants: %+v", resp)
	}
	for _, g := range resp.Grants {
		if g.Shard != held[1].Shard {
			continue
		}
		if g.Round != 12 || len(g.Checkpoint) == 0 {
			t.Fatalf("restart lost the checkpoint: %+v", g)
		}
		if g.Epoch <= held[1].Epoch {
			t.Fatalf("restart regressed the epoch: grant %d vs pre-restart %d", g.Epoch, held[1].Epoch)
		}
	}

	// Corrupt state must refuse to load.
	if err := os.WriteFile(filepath.Join(cfg.StateDir, "shard-0000.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatalf("corrupting state: %v", err)
	}
	if _, err := newDispatcher(cfg, (&fakeClock{}).now); err == nil {
		t.Fatal("dispatcher loaded a corrupt state file")
	}
}
