package dispatch

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"rrsched/internal/chaos"
	"rrsched/internal/model"
	"rrsched/internal/serve"
	"rrsched/internal/stream"
	"rrsched/internal/workload"
)

// failoverTenant is one tenant of the end-to-end fixture: a seeded arrival
// sequence replayed through the dispatched fleet and through a bare
// stream.Scheduler reference.
type failoverTenant struct {
	name string
	seq  *model.Sequence
}

const (
	foArrivalRounds = 20
	foTotalRounds   = 40 // arrivals plus a drain tail past the max delay bound (2^4)
)

func failoverFixture(t *testing.T, seed int64) []failoverTenant {
	t.Helper()
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	tenants := make([]failoverTenant, len(names))
	for i, name := range names {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed:        seed + int64(i),
			Delta:       4,
			Colors:      4 + i%3,
			Rounds:      foArrivalRounds,
			MinDelayExp: 2,
			MaxDelayExp: 4,
			Load:        0.7,
		})
		if err != nil {
			t.Fatalf("workload for %s: %v", name, err)
		}
		tenants[i] = failoverTenant{name: name, seq: seq.Canonical()}
	}
	return tenants
}

// batchesAt assembles the fixture's submissions for one driver round.
func batchesAt(tenants []failoverTenant, round int64) []Batch {
	var out []Batch
	for _, tn := range tenants {
		if round >= tn.seq.NumRounds() {
			continue
		}
		arrivals := tn.seq.Request(round)
		if len(arrivals) == 0 {
			continue
		}
		jobs := make([]serve.SubmitJob, len(arrivals))
		for i, j := range arrivals {
			jobs[i] = serve.SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
		}
		out = append(out, Batch{Tenant: tn.name, Jobs: jobs})
	}
	return out
}

// referenceRaw computes the expected /v1/decisions bytes for one tenant: the
// arrivals replayed through a bare stream.Scheduler at tenant-local rounds,
// wrapped in the same response envelope the shard produces.
func referenceRaw(t *testing.T, tn failoverTenant, shard int, svc ServiceConfig) []byte {
	t.Helper()
	// The tenant's epoch is the shard round of its first accepted submission;
	// with the driver landing round r's arrivals while shards sit at round r,
	// that is the first sequence round with arrivals.
	epoch := int64(0)
	for epoch < tn.seq.NumRounds() && len(tn.seq.Request(epoch)) == 0 {
		epoch++
	}
	sched, err := stream.New(stream.Config{Delta: svc.Delta, Resources: svc.Resources})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	var decs []stream.Decision
	for local := int64(0); local < foTotalRounds-epoch; local++ {
		var jobs []model.Job
		if seqRound := local + epoch; seqRound < tn.seq.NumRounds() {
			arrivals := tn.seq.Request(seqRound)
			jobs = make([]model.Job, len(arrivals))
			copy(jobs, arrivals)
		}
		for i := range jobs {
			jobs[i].Arrival = local
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		dec, err := sched.Push(local, jobs)
		if err != nil {
			t.Fatalf("reference push for %s at local %d: %v", tn.name, local, err)
		}
		decs = append(decs, dec)
	}
	raw, err := serve.MarshalResponse(&serve.DecisionsResponse{
		Schema:    serve.DecisionsSchema,
		Tenant:    tn.name,
		Shard:     shard,
		Epoch:     epoch,
		Round:     foTotalRounds,
		Decisions: decs,
	})
	if err != nil {
		t.Fatalf("MarshalResponse: %v", err)
	}
	return raw
}

// startFleet boots an in-process dispatcher plus two workers and waits for
// every shard to be assigned.
func startFleet(t *testing.T) (*Dispatcher, *Worker, *Worker, *Driver, string) {
	t.Helper()
	d, err := New(Config{
		Service:        ServiceConfig{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true},
		HeartbeatEvery: 50 * time.Millisecond,
		MissBudget:     2,
	})
	if err != nil {
		t.Fatalf("New dispatcher: %v", err)
	}
	t.Cleanup(d.Close)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	w1, err := StartWorker("w1", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w1: %v", err)
	}
	t.Cleanup(w1.Kill)
	w2, err := StartWorker("w2", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w2: %v", err)
	}
	t.Cleanup(w2.Kill)

	waitAssigned(t, d, 4)

	driver, err := NewDriver(srv.URL, DriverConfig{Attempts: 400, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	return d, w1, w2, driver, srv.URL
}

// waitAssigned polls until n shards are assigned (or fails after 10s).
func waitAssigned(t *testing.T, d *Dispatcher, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := d.Stats(); st.Assigned == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("placement never reached %d assigned shards: %+v", n, d.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verifyStreams compares every tenant's served decision stream against the
// bare-scheduler reference, byte for byte.
func verifyStreams(t *testing.T, driver *Driver, tenants []failoverTenant, svc ServiceConfig) {
	t.Helper()
	for _, tn := range tenants {
		got, err := driver.DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		want := referenceRaw(t, tn, driver.ShardOf(tn.name), svc)
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s: decision stream diverges from bare scheduler\nfleet:     %s\nreference: %s",
				tn.name, diffExcerpt(got, want), diffExcerpt(want, got))
		}
	}
}

// diffExcerpt shows the neighborhood of the first divergent byte.
func diffExcerpt(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-80, i+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("...%s... (diverges at byte %d of %d)", a[lo:hi], i, len(a))
}

// TestFailoverPreservesDecisionStreams is the tentpole property, in-process:
// a two-worker fleet drives a seeded multi-tenant workload; one worker is
// killed abruptly right after landing a round's admissions (the worst case —
// those admissions postdate its last checkpoint and die with it); the driver's
// repair loop waits out failure detection, resubmits, and re-ticks; and every
// tenant's final decision stream is byte-identical to a bare stream.Scheduler
// fed the same arrivals on a single node.
func TestFailoverPreservesDecisionStreams(t *testing.T) {
	d, w1, w2, driver, baseURL := startFleet(t)
	svc := d.cfg.Service
	tenants := failoverFixture(t, 42)

	// A seeded process-fault scenario: kills (and one respawn) at
	// deterministic rounds, so the run reproduces exactly.
	faults, err := chaos.KillSchedule(3, 2, 2, 5, foArrivalRounds)
	if err != nil {
		t.Fatalf("KillSchedule: %v", err)
	}
	live := []*Worker{w1, w2}
	nextName := 3
	fi := 0
	for r := int64(0); r < foTotalRounds; r++ {
		batches := batchesAt(tenants, r)
		if fi < len(faults) && faults[fi].Round == r {
			f := faults[fi]
			fi++
			// Land this round's batches, then kill the victim before the
			// tick: its shards now hold admissions newer than any checkpoint.
			for _, b := range batches {
				if out, err := driver.Submit(b.Tenant, b.Jobs); err != nil || !out.Landed() {
					t.Fatalf("pre-kill submit %s: out=%+v err=%v", b.Tenant, out, err)
				}
			}
			v := f.Victim % len(live)
			live[v].Kill()
			live = append(live[:v], live[v+1:]...)
			if f.Respawn || len(live) == 0 {
				w, err := StartWorker(fmt.Sprintf("w%d", nextName), baseURL, "127.0.0.1:0", io.Discard)
				if err != nil {
					t.Fatalf("respawning worker: %v", err)
				}
				nextName++
				t.Cleanup(w.Kill)
				live = append(live, w)
			}
		}
		if err := driver.Round(batches); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}

	verifyStreams(t, driver, tenants, svc)

	snap := d.Metrics()
	if n, _ := snap.Counter("dispatch_failovers_total"); n < 1 {
		t.Fatalf("dispatch_failovers_total = %d after %d kills, want >= 1", n, len(faults))
	}
	if st := d.Stats(); st.Assigned != 4 {
		t.Fatalf("fleet did not reconverge: %+v", st)
	}
}

// TestGracefulHandoffPreservesDecisionStreams drains a worker mid-run via
// Close: every held shard is handed back with a final checkpoint and regranted
// to the survivor, with no failure detection involved and no decision
// divergence.
func TestGracefulHandoffPreservesDecisionStreams(t *testing.T) {
	d, _, w2, driver, _ := startFleet(t)
	svc := d.cfg.Service
	tenants := failoverFixture(t, 7)

	const drainRound = 8
	for r := int64(0); r < foTotalRounds; r++ {
		if r == drainRound {
			w2.Close()
		}
		if err := driver.Round(batchesAt(tenants, r)); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}

	verifyStreams(t, driver, tenants, svc)

	// The survivor ends up holding the whole fleet.
	waitAssigned(t, d, 4)
	for _, w := range d.Stats().Workers {
		if w.Worker == "w1" && w.Held != 4 {
			t.Fatalf("survivor holds %d shards, want 4: %+v", w.Held, d.Stats().Workers)
		}
	}
}
