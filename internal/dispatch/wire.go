// Package dispatch is the fault-tolerant control plane over hosted rrserve
// workers: a dispatcher that owns the tenant→shard placement and hands shards
// to pull-based worker daemons via time-bounded leases, detects missed
// heartbeats, and fails shards over to surviving workers from the checkpoints
// the old holder pushed after every tick.
//
// The determinism contract of the serve layer survives the tier: checkpoints
// carry full per-shard scheduler state (and, when recording, the decision
// history), lease epochs fence stale writers, and clients resend idempotently
// across a failover — so a tenant's decision stream is byte-identical whether
// its shard lived on one worker throughout or was killed and restored
// mid-run.
package dispatch

import (
	"encoding/json"
	"fmt"

	"rrsched/internal/serve"
)

// WireSchema versions every dispatcher wire message; requests carrying any
// other schema string are rejected so format evolution stays explicit.
const WireSchema = "rrdispatch/v1"

// Wire-format bounds, sized to refuse hostile payloads before they pin
// memory, like the serve wire bounds.
const (
	// MaxWorkerLen caps the worker name length in bytes.
	MaxWorkerLen = 128
	// MaxAddrLen caps a worker's advertised address length.
	MaxAddrLen = 512
	// MaxShards caps the shard count a dispatcher will manage — and with it
	// the leases one heartbeat may claim.
	MaxShards = 4096
)

// ServiceConfig is the scheduling-service shape the dispatcher imposes on
// every worker. Workers do not choose their own: a checkpoint restores only
// under the same shard count and scheduler parameters, so the dispatcher is
// the single source of truth and hands the config out at registration.
type ServiceConfig struct {
	Shards    int   `json:"shards"`
	Resources int   `json:"resources"`
	Delta     int64 `json:"delta"`
	Watermark int   `json:"watermark"`
	// RecordDecisions turns on per-tenant decision recording on every worker,
	// with histories embedded in checkpoints so they survive failover
	// (serve.Config.CheckpointDecisions). Determinism tests depend on it.
	RecordDecisions bool `json:"record_decisions,omitempty"`
	// CheckpointBundles makes workers push incremental checkpoint bundles
	// (manifest + unacknowledged content-addressed chunks) instead of flat
	// checkpoint JSON. The dispatcher flattens on arrival, so stored state is
	// identical either way; the wire cost drops to what changed.
	CheckpointBundles bool `json:"checkpoint_bundles,omitempty"`
}

func (c ServiceConfig) validate() error {
	if c.Shards <= 0 || c.Shards > MaxShards {
		return fmt.Errorf("dispatch: shard count %d out of range (1..%d)", c.Shards, MaxShards)
	}
	if c.Resources <= 0 || c.Resources%4 != 0 {
		return fmt.Errorf("dispatch: resources must be a positive multiple of 4, got %d", c.Resources)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("dispatch: non-positive delta %d", c.Delta)
	}
	if c.Watermark <= 0 {
		return fmt.Errorf("dispatch: non-positive watermark %d", c.Watermark)
	}
	return nil
}

// RegisterRequest is the body of POST /v1/register: a worker announcing
// itself and the address its hosted serve API listens on.
type RegisterRequest struct {
	Schema string `json:"schema"`
	Worker string `json:"worker"`
	Addr   string `json:"addr"`
}

// RegisterResponse tells the worker how to build its hosted service and how
// to stay alive: heartbeat at least every HeartbeatEveryMs, and consider
// itself fenced once HeartbeatEveryMs × MissBudget of wall-clock time passes
// without a successful heartbeat (the dispatcher applies the same deadline to
// declare it dead).
type RegisterResponse struct {
	Schema           string        `json:"schema"`
	Config           ServiceConfig `json:"config"`
	HeartbeatEveryMs int64         `json:"heartbeat_every_ms"`
	MissBudget       int           `json:"miss_budget"`
	// ConfigEpoch versions Config. A fleet reshard bumps it; workers echo it
	// on every heartbeat so the dispatcher can tell who still runs the old
	// shard count.
	ConfigEpoch int64 `json:"config_epoch,omitempty"`
}

// LeaseInfo identifies one held lease in a heartbeat: the shard, the epoch
// under which it was granted, and the shard's current round.
type LeaseInfo struct {
	Shard int   `json:"shard"`
	Epoch int64 `json:"epoch"`
	Round int64 `json:"round"`
}

// HeartbeatRequest is the body of POST /v1/heartbeat: liveness plus the
// worker's view of its held leases, so the dispatcher can renew, revoke, or
// grant against ground truth rather than its own bookkeeping alone.
type HeartbeatRequest struct {
	Schema string      `json:"schema"`
	Worker string      `json:"worker"`
	Held   []LeaseInfo `json:"held,omitempty"`
	// ConfigEpoch is the config generation this worker's hosted service was
	// built from. When it trails the dispatcher's, the response carries the
	// fresh config and no grants: the worker must rebuild first.
	ConfigEpoch int64 `json:"config_epoch,omitempty"`
}

// LeaseGrant hands a shard to the heartbeating worker. Checkpoint carries the
// shard's last stored state (empty means open fresh at round 0); Round echoes
// the round that checkpoint was taken at.
type LeaseGrant struct {
	Shard      int             `json:"shard"`
	Epoch      int64           `json:"epoch"`
	Round      int64           `json:"round"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat: new leases granted to this
// worker and shards it must close. A revoked shard is closed gracefully — the
// worker pushes a final checkpoint — unless the worker's epoch is already
// stale, in which case its push is fenced and discarded.
type HeartbeatResponse struct {
	Schema  string       `json:"schema"`
	Grants  []LeaseGrant `json:"grants,omitempty"`
	Revokes []int        `json:"revokes,omitempty"`
	// ConfigEpoch and Config are set when the heartbeating worker's config
	// epoch is stale (a fleet reshard happened): the worker must tear down its
	// hosted service, rebuild it from Config, and only then claim leases. A
	// response carrying Config never carries grants.
	ConfigEpoch int64          `json:"config_epoch,omitempty"`
	Config      *ServiceConfig `json:"config,omitempty"`
}

// CheckpointPush is the body of POST /v1/checkpoint: one shard's state as of
// Round, pushed by the worker after every tick (and once more, with Final
// set, when closing a revoked shard). Epoch fences the push: the dispatcher
// rejects epochs older than the shard's current lease with 409.
type CheckpointPush struct {
	Schema string          `json:"schema"`
	Worker string          `json:"worker"`
	Shard  int             `json:"shard"`
	Epoch  int64           `json:"epoch"`
	Round  int64           `json:"round"`
	Final  bool            `json:"final,omitempty"`
	Data   json.RawMessage `json:"data"`
}

// PlacementEntry is one row of the placement table: which worker currently
// holds a shard and where its serve API listens. Worker is empty while the
// shard is unassigned (freshly booted, or mid-failover).
type PlacementEntry struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker,omitempty"`
	Addr   string `json:"addr,omitempty"`
	Epoch  int64  `json:"epoch"`
	Round  int64  `json:"round"`
}

// PlacementResponse is the body of GET /v1/placement: one entry per shard, in
// shard order. Drivers route each tenant to Addr of the tenant's shard and
// refresh on 421/transport errors.
type PlacementResponse struct {
	Schema string           `json:"schema"`
	Shards []PlacementEntry `json:"shards"`
	// ConfigEpoch is the placement generation: drivers that see it change
	// (or see the shard count change) must rebuild their hash ring before
	// routing another batch.
	ConfigEpoch int64 `json:"config_epoch,omitempty"`
}

// DecodeRegister parses and validates a register request.
func DecodeRegister(data []byte) (*RegisterRequest, error) {
	var req RegisterRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("dispatch: decoding register request: %w", err)
	}
	if err := validateRegister(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeRegister validates and serializes a register request.
func EncodeRegister(req *RegisterRequest) ([]byte, error) {
	if err := validateRegister(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

func validateRegister(req *RegisterRequest) error {
	if req.Schema != WireSchema {
		return fmt.Errorf("dispatch: register schema %q, want %q", req.Schema, WireSchema)
	}
	if err := ValidateWorker(req.Worker); err != nil {
		return err
	}
	if req.Addr == "" {
		return fmt.Errorf("dispatch: register for worker %q has no address", req.Worker)
	}
	if len(req.Addr) > MaxAddrLen {
		return fmt.Errorf("dispatch: worker address of %d bytes, max %d", len(req.Addr), MaxAddrLen)
	}
	for i := 0; i < len(req.Addr); i++ {
		if req.Addr[i] < 0x20 || req.Addr[i] == 0x7f {
			return fmt.Errorf("dispatch: worker address contains control byte 0x%02x", req.Addr[i])
		}
	}
	return nil
}

// DecodeHeartbeat parses and validates a heartbeat request.
func DecodeHeartbeat(data []byte) (*HeartbeatRequest, error) {
	var req HeartbeatRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("dispatch: decoding heartbeat request: %w", err)
	}
	if err := validateHeartbeat(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeHeartbeat validates and serializes a heartbeat request.
func EncodeHeartbeat(req *HeartbeatRequest) ([]byte, error) {
	if err := validateHeartbeat(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

func validateHeartbeat(req *HeartbeatRequest) error {
	if req.Schema != WireSchema {
		return fmt.Errorf("dispatch: heartbeat schema %q, want %q", req.Schema, WireSchema)
	}
	if err := ValidateWorker(req.Worker); err != nil {
		return err
	}
	if req.ConfigEpoch < 0 {
		return fmt.Errorf("dispatch: heartbeat carries negative config epoch %d", req.ConfigEpoch)
	}
	if len(req.Held) > MaxShards {
		return fmt.Errorf("dispatch: heartbeat claims %d leases, max %d", len(req.Held), MaxShards)
	}
	for i, l := range req.Held {
		if l.Shard < 0 || l.Shard >= MaxShards {
			return fmt.Errorf("dispatch: held lease %d names shard %d out of range (0..%d)", i, l.Shard, MaxShards-1)
		}
		if i > 0 && l.Shard <= req.Held[i-1].Shard {
			return fmt.Errorf("dispatch: held leases not strictly increasing by shard (%d after %d)", l.Shard, req.Held[i-1].Shard)
		}
		if l.Epoch < 0 {
			return fmt.Errorf("dispatch: held lease for shard %d has negative epoch %d", l.Shard, l.Epoch)
		}
		if l.Round < 0 {
			return fmt.Errorf("dispatch: held lease for shard %d has negative round %d", l.Shard, l.Round)
		}
	}
	return nil
}

// DecodeCheckpointPush parses and validates a checkpoint push.
func DecodeCheckpointPush(data []byte) (*CheckpointPush, error) {
	var req CheckpointPush
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("dispatch: decoding checkpoint push: %w", err)
	}
	if err := validateCheckpointPush(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeCheckpointPush validates and serializes a checkpoint push.
func EncodeCheckpointPush(req *CheckpointPush) ([]byte, error) {
	if err := validateCheckpointPush(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

// EncodeCheckpointPushBinary validates and serializes a checkpoint push as
// an rrserve/v2 checkpoint frame: the shard state travels as raw bytes in a
// length-prefixed field instead of being re-parsed as embedded JSON, which
// is where the JSON path spends most of its time on large shards.
func EncodeCheckpointPushBinary(req *CheckpointPush) ([]byte, error) {
	if err := validateCheckpointPush(req); err != nil {
		return nil, err
	}
	return serve.EncodeCheckpointFrame(&serve.CheckpointFrame{
		Worker: req.Worker,
		Shard:  req.Shard,
		Epoch:  req.Epoch,
		Round:  req.Round,
		Final:  req.Final,
		Data:   req.Data,
	})
}

// DecodeCheckpointPushBinary parses a binary checkpoint frame and runs the
// same validation as the JSON decoder, so the two codecs cannot drift.
func DecodeCheckpointPushBinary(data []byte) (*CheckpointPush, error) {
	f, err := serve.DecodeCheckpointFrame(data)
	if err != nil {
		return nil, fmt.Errorf("dispatch: decoding binary checkpoint frame: %w", err)
	}
	req := &CheckpointPush{
		Schema: WireSchema,
		Worker: f.Worker,
		Shard:  f.Shard,
		Epoch:  f.Epoch,
		Round:  f.Round,
		Final:  f.Final,
		// Copy: the frame's Data aliases the request body buffer.
		Data: json.RawMessage(append([]byte(nil), f.Data...)),
	}
	if err := validateCheckpointPush(req); err != nil {
		return nil, err
	}
	return req, nil
}

func validateCheckpointPush(req *CheckpointPush) error {
	if req.Schema != WireSchema {
		return fmt.Errorf("dispatch: checkpoint schema %q, want %q", req.Schema, WireSchema)
	}
	if err := ValidateWorker(req.Worker); err != nil {
		return err
	}
	if req.Shard < 0 || req.Shard >= MaxShards {
		return fmt.Errorf("dispatch: checkpoint names shard %d out of range (0..%d)", req.Shard, MaxShards-1)
	}
	if req.Epoch < 0 {
		return fmt.Errorf("dispatch: checkpoint for shard %d has negative epoch %d", req.Shard, req.Epoch)
	}
	if req.Round < 0 {
		return fmt.Errorf("dispatch: checkpoint for shard %d has negative round %d", req.Shard, req.Round)
	}
	if len(req.Data) == 0 {
		return fmt.Errorf("dispatch: checkpoint for shard %d has no data", req.Shard)
	}
	return nil
}

// ValidateWorker checks a worker name: non-empty, bounded, and free of
// control characters (worker names travel in URLs, logs, and state files).
// Mirrors serve.ValidateTenant.
func ValidateWorker(worker string) error {
	if worker == "" {
		return fmt.Errorf("dispatch: empty worker name")
	}
	if len(worker) > MaxWorkerLen {
		return fmt.Errorf("dispatch: worker name of %d bytes, max %d", len(worker), MaxWorkerLen)
	}
	for i := 0; i < len(worker); i++ {
		if worker[i] < 0x20 || worker[i] == 0x7f {
			return fmt.Errorf("dispatch: worker name contains control byte 0x%02x", worker[i])
		}
	}
	return nil
}

// serveConfig expands the wire config into the hosted serve.Config every
// worker runs, with decision histories embedded in checkpoints whenever
// recording is on — a migrated shard must not forget its past.
func (c ServiceConfig) serveConfig() serve.Config {
	return serve.Config{
		Shards:              c.Shards,
		Resources:           c.Resources,
		Delta:               c.Delta,
		Watermark:           c.Watermark,
		Hosted:              true,
		RecordDecisions:     c.RecordDecisions,
		CheckpointDecisions: c.RecordDecisions,
		CheckpointBundles:   c.CheckpointBundles,
	}
}
