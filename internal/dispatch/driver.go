package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rrsched/internal/serve"
)

// DriverConfig bounds the driver's repair loop: how many times one operation
// may be retried (each retry refreshing the placement table) and the wait
// between retries. The product is the driver's patience with a failover —
// it must exceed HeartbeatEvery × (MissBudget + 1) or a crash mid-operation
// surfaces as an error before the dispatcher has even declared the worker
// dead.
type DriverConfig struct {
	// Attempts per operation (>= 1). Default 100.
	Attempts int
	// RetryEvery is the wait between attempts. Default 100ms.
	RetryEvery time.Duration
	// Wire selects the wire format the driver's per-worker serve clients
	// speak. The zero value (WireAuto) tries binary and falls back to JSON
	// per worker, so mixed fleets mid-upgrade keep working.
	Wire serve.WireMode
}

func (cfg DriverConfig) validate() DriverConfig {
	if cfg.Attempts < 1 {
		cfg.Attempts = 100
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 100 * time.Millisecond
	}
	return cfg
}

// Batch is one tenant's submissions for one driver round.
type Batch struct {
	Tenant string
	Jobs   []serve.SubmitJob
}

// Driver submits work through the dispatcher's placement table: each tenant's
// batches go to the worker holding the tenant's shard, and every failure —
// transport error, 421 misdirect, 503 drain — triggers a placement refresh
// and a retry. Submissions survive failovers because admission is idempotent
// (a resent batch that already landed answers 409, which counts as landed),
// and Round couples resubmission with per-shard ticking so a shard restored
// from a pre-admission checkpoint is re-fed the exact arrivals it lost.
//
// One driver instance assumes it is the only round-driver of the fleet
// (virtual time has a single clock); concurrent submitters are fine, a second
// ticker is not.
type Driver struct {
	dc  *Client
	cfg DriverConfig

	mu        sync.Mutex
	ring      serve.Ring // rebuilt whenever the placement shard count changes
	shards    int
	placement map[int]PlacementEntry
	clients   map[string]*serve.Client
	round     int64

	// sleep is time.Sleep unless a test injects a recorder.
	sleep func(time.Duration)
}

// NewDriver builds a driver over the dispatcher at dispatcherURL, reading the
// shard count (and, after a restart, the fleet's current round) from the
// placement table.
func NewDriver(dispatcherURL string, cfg DriverConfig) (*Driver, error) {
	d := &Driver{
		dc:        NewClient(dispatcherURL),
		cfg:       cfg.validate(),
		placement: map[int]PlacementEntry{},
		clients:   map[string]*serve.Client{},
		sleep:     time.Sleep,
	}
	p, err := d.dc.Placement()
	if err != nil {
		return nil, err
	}
	d.shards = len(p.Shards)
	ring, err := serve.NewRing(d.shards)
	if err != nil {
		return nil, err
	}
	d.ring = ring
	d.applyPlacement(p)
	// Adopt the fleet's round so a driver started against a running (or
	// restored) fleet continues its clock instead of restarting at zero. On a
	// fresh fleet every stored round is 0 and this is a no-op.
	for _, e := range p.Shards {
		if e.Round > d.round {
			d.round = e.Round
		}
	}
	return d, nil
}

// Shards returns the fleet's shard count as of the last placement refresh.
func (d *Driver) Shards() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.shards
}

// CurrentRound returns the driver's round counter (the next round to tick).
func (d *Driver) CurrentRound() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.round
}

// ShardOf returns the shard owning a tenant under the current ring.
func (d *Driver) ShardOf(tenant string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ring.ShardOf(tenant)
}

func (d *Driver) applyPlacement(p *PlacementResponse) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(p.Shards) != d.shards {
		// The fleet resharded: rebuild the ring and drop the stale table —
		// old shard indices name different tenant sets now.
		ring, err := serve.NewRing(len(p.Shards))
		if err != nil {
			return // hostile placement size; keep routing on the old table
		}
		d.ring = ring
		d.shards = len(p.Shards)
		d.placement = map[int]PlacementEntry{}
	}
	for _, e := range p.Shards {
		d.placement[e.Shard] = e
	}
}

// refresh re-reads the placement table. Errors are swallowed: the next
// operation retry surfaces persistent dispatcher unavailability.
func (d *Driver) refresh() {
	if p, err := d.dc.Placement(); err == nil {
		d.applyPlacement(p)
	}
}

// clientFor returns a serve client for the worker holding shard, or an error
// while the shard is unassigned (mid-failover). Clients are single-shot: the
// driver's repair loop owns retries, because a retry here must re-check
// placement first.
func (d *Driver) clientFor(shard int) (*serve.Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.placement[shard]
	if !ok || e.Addr == "" {
		return nil, fmt.Errorf("dispatch: shard %d is unassigned", shard)
	}
	c, ok := d.clients[e.Addr]
	if !ok {
		c = serve.NewClientWire(e.Addr, serve.SingleShot(), d.cfg.Wire)
		d.clients[e.Addr] = c
	}
	return c, nil
}

// Submit lands one batch: it retries through placement refreshes until the
// batch is admitted (fresh or duplicate) or the attempt budget is spent.
// Backpressure (429) is returned to the caller, not absorbed.
func (d *Driver) Submit(tenant string, jobs []serve.SubmitJob) (serve.SubmitOutcome, error) {
	req := &serve.SubmitRequest{Schema: serve.WireSchema, Tenant: tenant, Jobs: jobs}
	var lastErr error
	for attempt := 0; attempt < d.cfg.Attempts; attempt++ {
		if attempt > 0 {
			d.sleep(d.cfg.RetryEvery)
			d.refresh()
		}
		// Resolved per attempt: a refresh may have rebuilt the ring after a
		// fleet reshard, moving the tenant to a different shard index.
		shard := d.ShardOf(tenant)
		client, err := d.clientFor(shard)
		if err != nil {
			lastErr = err
			continue
		}
		out, err := client.Submit(req)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case out.Landed(), out.Rejected:
			return out, nil
		case out.Misdirected, out.Refused:
			lastErr = fmt.Errorf("dispatch: shard %d moved (misdirected=%v refused=%v)", shard, out.Misdirected, out.Refused)
		default:
			lastErr = fmt.Errorf("dispatch: submit for tenant %q: unexpected outcome %+v", tenant, out)
		}
	}
	return serve.SubmitOutcome{}, fmt.Errorf("dispatch: submit for tenant %q failed after %d attempts: %w", tenant, d.cfg.Attempts, lastErr)
}

// shardRound reads a shard's current round from its owner's stats, verifying
// the owner actually has the shard open.
func (d *Driver) shardRound(shard int) (int64, error) {
	client, err := d.clientFor(shard)
	if err != nil {
		return 0, err
	}
	st, err := client.Stats()
	if err != nil {
		return 0, err
	}
	if shard >= len(st.PerShard) || !st.PerShard[shard].Open {
		return 0, fmt.Errorf("dispatch: shard %d is not open on its advertised owner", shard)
	}
	return st.PerShard[shard].Round, nil
}

// errPlacementChanged signals that the fleet's shard count moved under an
// in-flight round: the batch partition was computed against a ring that no
// longer exists and must be rebuilt before anything else is retried.
var errPlacementChanged = errors.New("dispatch: fleet shard count changed; re-partitioning")

// Round executes one scheduling round transactionally: every batch lands on
// its shard, then every shard ticks exactly once. If a worker dies anywhere
// in the protocol, the repair loop refreshes placement, resubmits the
// affected shard's batches (idempotent — landed batches answer 409), and
// re-ticks from the restored round. On return, every shard has advanced to
// the same next round with the round's arrivals admitted exactly once.
//
// A fleet reshard concurrent with the round is survived the same way: the
// dispatcher only accepts a reshard at the round boundary (equal stored
// rounds), so any admissions this round had landed on the old topology are
// rolled back by the checkpoint transform; the driver detects the shard-count
// change, re-partitions every batch under the new ring, and replays the whole
// round from resubmission.
func (d *Driver) Round(batches []Batch) error {
	d.mu.Lock()
	target := d.round + 1
	d.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < d.cfg.Attempts; attempt++ {
		if attempt > 0 {
			d.sleep(d.cfg.RetryEvery)
			d.refresh()
		}
		err := d.roundOnce(batches, target)
		if err == nil {
			d.mu.Lock()
			d.round = target
			d.mu.Unlock()
			return nil
		}
		if !errors.Is(err, errPlacementChanged) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("dispatch: round %d failed after %d re-partitions: %w", target, d.cfg.Attempts, lastErr)
}

// roundOnce partitions the round's batches under the current ring and drives
// every shard through the round. It fails with errPlacementChanged the moment
// the fleet's shard count moves, so the caller can re-partition.
func (d *Driver) roundOnce(batches []Batch, target int64) error {
	d.mu.Lock()
	fleet := d.shards
	ring := d.ring
	d.mu.Unlock()

	perShard := make(map[int][]Batch, fleet)
	for _, b := range batches {
		shard := ring.ShardOf(b.Tenant)
		perShard[shard] = append(perShard[shard], b)
	}
	for shard := 0; shard < fleet; shard++ {
		if err := d.roundShard(shard, fleet, perShard[shard], target); err != nil {
			return err
		}
	}
	return nil
}

// roundShard drives one shard through one round: land the shard's batches,
// tick to target, and confirm the dispatcher's checkpoint store has reached
// target before reporting success. Every iteration restarts from
// resubmission, because a failed tick may mean the shard was restored from a
// checkpoint that predates the admissions — and the store-confirmation step
// is what keeps restores tick-aligned to target-1 (admissions lost, resubmit
// fresh) or target (tick landed, only the response was lost). Without it, a
// tick whose checkpoint push failed would leave the live shard at target with
// the store at target-1; the driver would move on, and a crash before the
// next successful push would restore the shard two rounds behind the
// driver's counter, losing a round's arrivals for good.
func (d *Driver) roundShard(shard, fleet int, batches []Batch, target int64) error {
	var lastErr error
	for attempt := 0; attempt < d.cfg.Attempts; attempt++ {
		if attempt > 0 {
			d.sleep(d.cfg.RetryEvery)
			d.refresh()
		}
		if d.Shards() != fleet {
			return errPlacementChanged
		}
		if lastErr = d.landBatches(shard, batches); lastErr != nil {
			continue
		}
		cur, err := d.shardRound(shard)
		if err != nil {
			lastErr = err
			continue
		}
		if cur < target {
			client, err := d.clientFor(shard)
			if err != nil {
				lastErr = err
				continue
			}
			round, err := client.TickShard(shard, int(target-cur))
			if err != nil {
				lastErr = err
				continue
			}
			if round != target {
				lastErr = fmt.Errorf("dispatch: shard %d ticked to round %d, want %d", shard, round, target)
				continue
			}
		}
		if lastErr = d.confirmStored(shard, target); lastErr != nil {
			continue
		}
		return nil
	}
	return fmt.Errorf("dispatch: round %d on shard %d failed after %d attempts: %w", target, shard, d.cfg.Attempts, lastErr)
}

// confirmStored verifies the dispatcher's stored checkpoint for shard has
// reached target, asking the shard's owner to re-push (sync) when it lags —
// the repair for a tick that advanced the shard but whose checkpoint push was
// lost in flight.
func (d *Driver) confirmStored(shard int, target int64) error {
	stored, err := d.storedRound(shard)
	if err != nil {
		return err
	}
	if stored >= target {
		return nil
	}
	client, err := d.clientFor(shard)
	if err != nil {
		return err
	}
	if _, err := client.SyncShard(shard); err != nil {
		return fmt.Errorf("dispatch: syncing shard %d checkpoint: %w", shard, err)
	}
	stored, err = d.storedRound(shard)
	if err != nil {
		return err
	}
	if stored < target {
		return fmt.Errorf("dispatch: shard %d checkpoint store at round %d after sync, want %d", shard, stored, target)
	}
	return nil
}

// storedRound reads the round of the dispatcher's stored checkpoint for shard
// from a fresh placement table (refreshing the driver's copy as a side
// effect).
func (d *Driver) storedRound(shard int) (int64, error) {
	p, err := d.dc.Placement()
	if err != nil {
		return 0, err
	}
	d.applyPlacement(p)
	if shard >= len(p.Shards) {
		return 0, fmt.Errorf("dispatch: placement table has %d shards, no shard %d", len(p.Shards), shard)
	}
	return p.Shards[shard].Round, nil
}

// landBatches admits every batch on the shard's current owner, single-shot —
// the caller's repair loop owns retries and placement refreshes.
func (d *Driver) landBatches(shard int, batches []Batch) error {
	if len(batches) == 0 {
		return nil
	}
	client, err := d.clientFor(shard)
	if err != nil {
		return err
	}
	for _, b := range batches {
		out, err := client.Submit(&serve.SubmitRequest{Schema: serve.WireSchema, Tenant: b.Tenant, Jobs: b.Jobs})
		if err != nil {
			return err
		}
		if !out.Landed() {
			return fmt.Errorf("dispatch: batch for tenant %q not landed: %+v", b.Tenant, out)
		}
	}
	return nil
}

// DecisionsRaw fetches a tenant's recorded decision stream from the worker
// holding its shard, retrying through placement refreshes.
func (d *Driver) DecisionsRaw(tenant string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < d.cfg.Attempts; attempt++ {
		if attempt > 0 {
			d.sleep(d.cfg.RetryEvery)
			d.refresh()
		}
		// Per attempt: a reshard moves the tenant's shard index with the ring.
		shard := d.ShardOf(tenant)
		client, err := d.clientFor(shard)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := client.DecisionsRaw(tenant)
		if err != nil {
			lastErr = err
			continue
		}
		return raw, nil
	}
	return nil, fmt.Errorf("dispatch: decisions for tenant %q failed after %d attempts: %w", tenant, d.cfg.Attempts, lastErr)
}
