package dispatch

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"rrsched/internal/serve"
)

// maxControlBody caps register and heartbeat bodies. Control messages are
// tiny; anything near the cap is hostile.
const maxControlBody = 1 << 20

// maxCheckpointBody caps one checkpoint push. Checkpoints carry full shard
// state including recorded decision histories, so the bound is generous.
const maxCheckpointBody = 64 << 20

// Handler returns the dispatcher's HTTP API:
//
//	POST /v1/register    worker registration (RegisterRequest → RegisterResponse)
//	POST /v1/heartbeat   lease renewal + grant/revoke exchange
//	POST /v1/checkpoint  per-tick shard checkpoint push (409 on a stale epoch)
//	POST /v1/reshard     fleet resize at the round boundary (409 when refused)
//	GET  /v1/placement   shard→worker placement table for drivers
//	GET  /v1/stats       dispatcher stats (workers, lease counts)
//	GET  /metrics        dispatcher metric snapshot (obs JSON format)
//	GET  /healthz        liveness
//	GET  /readyz         readiness (always ready; the dispatcher has no drain)
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", d.handleRegister)
	mux.HandleFunc("/v1/heartbeat", d.handleHeartbeat)
	mux.HandleFunc("/v1/checkpoint", d.handleCheckpoint)
	mux.HandleFunc("/v1/reshard", d.handleReshard)
	mux.HandleFunc("/v1/placement", d.handlePlacement)
	mux.HandleFunc("/v1/stats", d.handleStats)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeBody(w, http.StatusOK, []byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeBody(w, http.StatusOK, []byte("ready\n"))
	})
	return mux
}

// readBody buffers a POST body up to limit, mapping oversize to 413.
func readBody(w http.ResponseWriter, r *http.Request, limit int) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(limit)+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return nil, false
	}
	if len(body) > limit {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", limit))
		return nil, false
	}
	return body, true
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxControlBody)
	if !ok {
		return
	}
	req, err := DecodeRegister(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, d.register(req))
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxControlBody)
	if !ok {
		return
	}
	req, err := DecodeHeartbeat(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := d.heartbeat(req)
	if errors.Is(err, errUnknownWorker) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Dispatcher) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxCheckpointBody)
	if !ok {
		return
	}
	var req *CheckpointPush
	var err error
	if ct := r.Header.Get("Content-Type"); ct != "" && serve.IsBinaryContent(ct) {
		req, err = DecodeCheckpointPushBinary(body)
	} else {
		req, err = DecodeCheckpointPush(body)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := d.storeCheckpoint(req); err != nil {
		if errors.Is(err, errStaleEpoch) {
			writeError(w, http.StatusConflict, err.Error())
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeBody(w, http.StatusOK, []byte("{}\n"))
}

// handleReshard resizes the fleet. The request body is the serve layer's
// reshard message — one resize vocabulary across both tiers — and refusals
// (mid-round, missing checkpoints, same count) answer 409: the caller should
// finish a round and retry, not fix the request.
func (d *Dispatcher) handleReshard(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxControlBody)
	if !ok {
		return
	}
	req, err := serve.DecodeReshard(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := d.Reshard(req.Shards)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Dispatcher) handlePlacement(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, d.Placement())
}

func (d *Dispatcher) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, d.Stats())
}

func (d *Dispatcher) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := d.Metrics().WriteJSON(w); err != nil {
		return // client went away mid-write; nothing to salvage
	}
}

// writeJSON and writeError reuse the serve layer's canonical response
// encoding, so every daemon in the repo answers in the same shape.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := serve.MarshalResponse(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data) // best-effort: a vanished client owns its connection
}

func writeError(w http.ResponseWriter, status int, msg string) {
	data, err := serve.MarshalResponse(serve.ErrorResponse{Error: msg})
	if err != nil {
		// Unreachable: ErrorResponse always marshals.
		data = []byte(`{"error":"encoding failure"}` + "\n")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data) // best-effort: a vanished client owns its connection
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.WriteHeader(status)
	_, _ = w.Write(body) // best-effort: a vanished client owns its connection
}
