package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rrsched/internal/atomicio"
	"rrsched/internal/ckptstore"
	"rrsched/internal/obs"
	"rrsched/internal/serve"
)

// Config parameterizes the dispatcher.
type Config struct {
	// Service is the scheduling-service shape handed to every worker at
	// registration. All workers run the same config; checkpoints are only
	// portable between identical services.
	Service ServiceConfig
	// HeartbeatEvery is the interval workers must heartbeat at. Default 1s.
	HeartbeatEvery time.Duration
	// MissBudget is how many heartbeat intervals may elapse without a
	// heartbeat before a worker is declared dead and its shards fail over.
	// Workers apply the same budget to fence themselves when they cannot
	// reach the dispatcher. Default 3.
	MissBudget int
	// StateDir, when set, persists every accepted checkpoint to one file per
	// shard (tmp+rename), so a restarted dispatcher regrants shards from the
	// last state it had rather than from scratch. Empty disables durability.
	StateDir string
}

func (cfg *Config) validate() error {
	if err := cfg.Service.validate(); err != nil {
		return err
	}
	if cfg.HeartbeatEvery < 0 {
		return fmt.Errorf("dispatch: negative heartbeat interval %v", cfg.HeartbeatEvery)
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.MissBudget < 0 {
		return fmt.Errorf("dispatch: negative miss budget %d", cfg.MissBudget)
	}
	if cfg.MissBudget == 0 {
		cfg.MissBudget = 3
	}
	return nil
}

// lease is the dispatcher's record of one shard: who holds it, under which
// epoch, and the latest checkpoint pushed for it.
type lease struct {
	worker   string // "" while unassigned
	epoch    int64  // bumped on every grant and on every fencing revoke
	round    int64  // round of the stored checkpoint
	revoking bool   // graceful revoke issued; awaiting the final checkpoint

	checkpoint []byte // latest accepted checkpoint (nil = open fresh)
	// pool absorbs the content-addressed chunks of incremental checkpoint
	// bundles pushed for this shard (workers running with checkpoint
	// bundling). Bundles are flattened to legacy checkpoint JSON on arrival,
	// so everything downstream — persistence, grants, reshards — sees flat
	// state; the pool only persists un-superseded chunks between pushes.
	pool *ckptstore.MemStore
	// deadSinceNs is non-zero while the shard awaits reassignment after its
	// holder died; cleared (and observed into the failover-latency histogram)
	// at the regrant.
	deadSinceNs int64
}

// workerInfo is the dispatcher's record of one registered worker.
type workerInfo struct {
	name       string
	addr       string
	alive      bool
	lastSeenNs int64
}

// Dispatcher owns the tenant→shard placement: it leases shards to registered
// workers, renews the leases on heartbeats, stores the checkpoints workers
// push after every tick, and — when a worker misses its heartbeat budget —
// revokes its leases and regrants the shards to survivors from those stored
// checkpoints.
type Dispatcher struct {
	cfg Config
	reg *obs.Registry
	met *obs.DispatchMetrics
	now func() int64 // obs.Now, injectable in tests

	mu      sync.Mutex
	workers map[string]*workerInfo
	leases  []lease
	// configEpoch versions cfg.Service. Reshard bumps it; workers echo it in
	// heartbeats, and a mismatch withholds grants until the worker rebuilds
	// its hosted service from the fresh config.
	configEpoch int64

	monitorStop chan struct{}
	monitorDone chan struct{}
	closeOnce   sync.Once
}

// New builds a dispatcher and starts its failure monitor. If cfg.StateDir
// holds checkpoints from a previous incarnation (same shard count), they seed
// the lease table so regrants resume from persisted state.
func New(cfg Config) (*Dispatcher, error) {
	return newDispatcher(cfg, obs.Now)
}

// newDispatcher is New with an injectable clock, so tests drive failure
// detection deterministically.
func newDispatcher(cfg Config, now func() int64) (*Dispatcher, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	met, err := obs.NewDispatchMetrics(reg)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{
		cfg:         cfg,
		reg:         reg,
		met:         met,
		now:         now,
		workers:     map[string]*workerInfo{},
		leases:      make([]lease, cfg.Service.Shards),
		monitorStop: make(chan struct{}),
		monitorDone: make(chan struct{}),
	}
	if cfg.StateDir != "" {
		if err := d.loadState(); err != nil {
			return nil, err
		}
	}
	go d.monitor()
	return d, nil
}

// Close stops the failure monitor. Workers discover the dispatcher is gone
// through failed heartbeats and fence themselves.
func (d *Dispatcher) Close() {
	d.closeOnce.Do(func() {
		close(d.monitorStop)
		<-d.monitorDone
	})
}

// monitor periodically sweeps for workers that have exceeded the heartbeat
// miss budget. It polls at half the heartbeat interval so detection lags the
// budget by at most half an interval.
func (d *Dispatcher) monitor() {
	defer close(d.monitorDone)
	every := d.cfg.HeartbeatEvery / 2
	if every <= 0 {
		every = d.cfg.HeartbeatEvery
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.sweep(d.now())
		case <-d.monitorStop:
			return
		}
	}
}

// sweep declares every worker dead whose last heartbeat is older than
// HeartbeatEvery × MissBudget, fences its leases (epoch bump), and marks its
// shards for reassignment at the next surviving heartbeat.
func (d *Dispatcher) sweep(nowNs int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	deadline := int64(d.cfg.HeartbeatEvery) * int64(d.cfg.MissBudget)
	for _, w := range d.workers {
		if !w.alive || nowNs-w.lastSeenNs <= deadline {
			continue
		}
		d.met.HeartbeatMisses.Inc()
		w.alive = false
		d.met.WorkersDead.Inc()
		d.met.Workers.Add(-1)
		for i := range d.leases {
			l := &d.leases[i]
			if l.worker != w.name {
				continue
			}
			// Fence: any checkpoint the dead worker still manages to push
			// carries the old epoch and is rejected. The stored checkpoint —
			// taken synchronously after the shard's last completed tick — is
			// what the survivor restores.
			l.epoch++
			l.worker = ""
			l.revoking = false
			l.deadSinceNs = nowNs
			d.met.LeaseRevokes.Inc()
			d.met.Failovers.Inc()
			d.met.ShardsAssigned.Add(-1)
		}
	}
}

// register admits (or re-admits) a worker. A re-registration under a live
// name resets the worker's record: a restarted process holds nothing, and
// lease reconciliation at its next heartbeat will fence whatever the table
// still attributes to it.
func (d *Dispatcher) register(req *RegisterRequest) *RegisterResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[req.Worker]
	if !ok {
		w = &workerInfo{name: req.Worker}
		d.workers[req.Worker] = w
	}
	if !w.alive {
		d.met.Workers.Add(1)
	}
	w.addr = req.Addr
	w.alive = true
	w.lastSeenNs = d.now()
	return &RegisterResponse{
		Schema:           WireSchema,
		Config:           d.cfg.Service,
		HeartbeatEveryMs: d.cfg.HeartbeatEvery.Milliseconds(),
		MissBudget:       d.cfg.MissBudget,
		ConfigEpoch:      d.configEpoch,
	}
}

// errUnknownWorker marks a heartbeat from a worker that never registered (or
// that the dispatcher restarted away); the worker must re-register.
var errUnknownWorker = fmt.Errorf("dispatch: unknown worker; register first")

// heartbeat renews a worker's liveness and reconciles leases: held leases are
// renewed or revoked, lost leases are fenced, over-fair-share holdings are
// revoked gracefully, and unassigned shards are granted up to the fair share.
func (d *Dispatcher) heartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[req.Worker]
	if !ok {
		return nil, errUnknownWorker
	}
	d.met.Heartbeats.Inc()
	if !w.alive {
		// The worker outlived a death sentence (a partition healed). Its
		// leases were fenced at the sweep; reconciliation below revokes
		// whatever it still claims to hold.
		w.alive = true
		d.met.Workers.Add(1)
	}
	w.lastSeenNs = d.now()

	resp := &HeartbeatResponse{Schema: WireSchema}
	if req.ConfigEpoch != d.configEpoch {
		// The worker's hosted service was built under an older (or, after a
		// dispatcher restart, newer) config generation. Hand back the current
		// config and withhold grants: a checkpoint taken under one shard count
		// must never be opened into a service built for another. Revocation of
		// whatever it still claims proceeds below as usual.
		resp.ConfigEpoch = d.configEpoch
		cfgCopy := d.cfg.Service
		resp.Config = &cfgCopy
	}
	held := map[int]LeaseInfo{}
	for _, l := range req.Held {
		if l.Shard < len(d.leases) {
			held[l.Shard] = l
		} else {
			resp.Revokes = append(resp.Revokes, l.Shard)
		}
	}

	// Leases the table attributes to this worker but the worker no longer
	// claims: a lost grant response or a restarted process. Fence and free.
	for i := range d.leases {
		l := &d.leases[i]
		if l.worker != req.Worker {
			continue
		}
		if _, ok := held[i]; !ok {
			l.epoch++
			l.worker = ""
			l.revoking = false
			d.met.LeaseRevokes.Inc()
			d.met.ShardsAssigned.Add(-1)
		}
	}

	// Held leases: renew matches, revoke everything else (zombie holdings
	// under a stale epoch, or shards reassigned while the worker was away).
	valid := 0
	for shard, info := range held {
		l := &d.leases[shard]
		if l.worker == req.Worker && l.epoch == info.Epoch {
			d.met.LeaseRenewals.Inc()
			if l.revoking {
				resp.Revokes = append(resp.Revokes, shard)
			} else {
				valid++
			}
		} else {
			d.met.StaleEpochs.Inc()
			resp.Revokes = append(resp.Revokes, shard)
		}
	}

	// Fair share: ceil(shards / live workers). Graceful rebalance revokes the
	// excess (highest shard index first, deterministically); the freed shards
	// reach an underloaded worker once the final checkpoint lands.
	live := 0
	for _, wi := range d.workers {
		if wi.alive {
			live++
		}
	}
	fair := (len(d.leases) + live - 1) / live
	if valid > fair {
		for i := len(d.leases) - 1; i >= 0 && valid > fair; i-- {
			l := &d.leases[i]
			if l.worker == req.Worker && !l.revoking {
				if _, ok := held[i]; ok {
					l.revoking = true
					resp.Revokes = append(resp.Revokes, i)
					d.met.LeaseRevokes.Inc()
					valid--
				}
			}
		}
	}

	// Grants: hand unassigned shards to this worker up to its fair share,
	// each with the latest stored checkpoint. A worker on a stale config gets
	// nothing until it rebuilds and heartbeats under the current epoch.
	for i := range d.leases {
		if valid >= fair || resp.Config != nil {
			break
		}
		l := &d.leases[i]
		if l.worker != "" {
			continue
		}
		l.worker = req.Worker
		l.epoch++
		grant := LeaseGrant{Shard: i, Epoch: l.epoch, Round: l.round}
		if len(l.checkpoint) > 0 {
			grant.Checkpoint = append(json.RawMessage(nil), l.checkpoint...)
		}
		resp.Grants = append(resp.Grants, grant)
		d.met.LeaseGrants.Inc()
		d.met.ShardsAssigned.Add(1)
		if l.deadSinceNs != 0 {
			d.met.FailoverNs.Observe(d.now() - l.deadSinceNs)
			l.deadSinceNs = 0
		}
		valid++
	}
	sort.Ints(resp.Revokes)
	return resp, nil
}

// errStaleEpoch marks a checkpoint push fenced by a newer lease epoch.
var errStaleEpoch = fmt.Errorf("dispatch: stale lease epoch")

// storeCheckpoint accepts a checkpoint push: the freshest state of one shard,
// fenced by lease epoch. A final push on a revoking lease completes the
// graceful handoff and frees the shard for regranting.
func (d *Dispatcher) storeCheckpoint(req *CheckpointPush) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if req.Shard >= len(d.leases) {
		return fmt.Errorf("dispatch: checkpoint names shard %d of %d", req.Shard, len(d.leases))
	}
	l := &d.leases[req.Shard]
	if l.worker != req.Worker || l.epoch != req.Epoch {
		d.met.StaleEpochs.Inc()
		return fmt.Errorf("%w: shard %d epoch %d from %q, lease is epoch %d held by %q",
			errStaleEpoch, req.Shard, req.Epoch, req.Worker, l.epoch, l.worker)
	}
	data := req.Data
	if ckptstore.IsBundle(data) {
		// An incremental bundle: absorb its chunks and flatten to legacy
		// checkpoint JSON. A failure (e.g. a reference to a chunk a restarted
		// dispatcher no longer holds) rejects the push — the worker resets its
		// acks and resends the full closure.
		if l.pool == nil {
			l.pool = ckptstore.NewMemStore(0)
		}
		flat, err := serve.FlattenBundle(data, l.pool)
		if err != nil {
			return fmt.Errorf("dispatch: shard %d bundle: %w", req.Shard, err)
		}
		data = flat
	}
	l.checkpoint = append([]byte(nil), data...)
	l.round = req.Round
	d.met.Checkpoints.Inc()
	d.met.CheckpointBytes.Observe(int64(len(req.Data)))
	if req.Final {
		l.worker = ""
		l.revoking = false
		d.met.ShardsAssigned.Add(-1)
	}
	if d.cfg.StateDir != "" {
		if err := d.persistLocked(req.Shard); err != nil {
			return err
		}
	}
	return nil
}

// Reshard resizes the fleet to newShards at the current round boundary: it
// transforms the stored checkpoint set through serve.ReshardCheckpoints
// (splitting or merging per the consistent-hash ring of the new count), fences
// every outstanding lease epoch, bumps the config epoch so workers rebuild
// their hosted services before claiming anything, and rebuilds the lease table
// so the next heartbeats grant the migrated shards.
//
// The precondition is the fleet-wide round barrier the driver already
// maintains: every shard must have a stored checkpoint, all at the same round.
// (A fleet that has never checkpointed resizes without a transform.) Between
// driver rounds that holds by construction — confirmStored leaves every store
// at the driver's round — and mid-round it cannot hold, so a reshard can only
// land where the serve-layer determinism proof needs it to.
func (d *Dispatcher) Reshard(newShards int) (*serve.ReshardResponse, error) {
	start := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	old := len(d.leases)
	if newShards < 1 || newShards > MaxShards {
		return nil, fmt.Errorf("dispatch: reshard to %d shards out of range (1..%d)", newShards, MaxShards)
	}
	if newShards == old {
		return nil, fmt.Errorf("dispatch: fleet already has %d shards", old)
	}
	have := 0
	for i := range d.leases {
		if len(d.leases[i].checkpoint) > 0 {
			have++
		}
	}
	if have != 0 && have != old {
		return nil, fmt.Errorf("dispatch: reshard needs a stored checkpoint for every shard (%d of %d present); drive a full round first", have, old)
	}
	var newData [][]byte
	var round, migrated int64
	moved := 0
	if have == old {
		round = d.leases[0].round
		olds := make([][]byte, old)
		for i := range d.leases {
			if d.leases[i].round != round {
				return nil, fmt.Errorf("dispatch: shard rounds diverge (shard 0 at %d, shard %d at %d); reshard lands only on a round boundary",
					round, i, d.leases[i].round)
			}
			olds[i] = d.leases[i].checkpoint
		}
		var err error
		newData, err = serve.ReshardCheckpoints(olds, newShards)
		if err != nil {
			return nil, err
		}
		if moved, err = movedTenants(olds, old, newShards); err != nil {
			return nil, err
		}
		for i := range newData {
			migrated += int64(len(newData[i]))
		}
	}
	// Fence everything the old placement issued: new leases start past the
	// highest epoch ever granted, so any straggler push or held claim from the
	// old topology is stale on arrival.
	maxEpoch := int64(0)
	for i := range d.leases {
		if d.leases[i].epoch > maxEpoch {
			maxEpoch = d.leases[i].epoch
		}
		if d.leases[i].worker != "" {
			d.met.LeaseRevokes.Inc()
			d.met.ShardsAssigned.Add(-1)
		}
	}
	leases := make([]lease, newShards)
	for i := range leases {
		leases[i] = lease{epoch: maxEpoch + 1, round: round}
		if newData != nil {
			leases[i].checkpoint = newData[i]
		}
	}
	d.leases = leases
	d.cfg.Service.Shards = newShards
	d.configEpoch++
	if d.cfg.StateDir != "" {
		for i := range d.leases {
			if len(d.leases[i].checkpoint) == 0 {
				continue
			}
			if err := d.persistLocked(i); err != nil {
				return nil, err
			}
		}
		for i := newShards; i < old; i++ {
			_ = os.Remove(d.statePath(i)) // best-effort: a leftover stale file is re-detected (and refused) at next boot
		}
	}
	d.met.Reshards.Inc()
	return &serve.ReshardResponse{
		Schema:        serve.ReshardSchema,
		From:          old,
		Shards:        newShards,
		Epoch:         d.configEpoch,
		Round:         round,
		Moved:         moved,
		MigratedBytes: migrated,
		DurationNs:    d.now() - start,
	}, nil
}

// movedTenants counts the tenants whose shard assignment changes between the
// old and new ring — the migration volume a reshard reports.
func movedTenants(olds [][]byte, oldShards, newShards int) (int, error) {
	oldRing, err := serve.NewRing(oldShards)
	if err != nil {
		return 0, err
	}
	newRing, err := serve.NewRing(newShards)
	if err != nil {
		return 0, err
	}
	moved := 0
	for i, data := range olds {
		var cp struct {
			Tenants []struct {
				Name string `json:"name"`
			} `json:"tenants"`
		}
		if err := json.Unmarshal(data, &cp); err != nil {
			return 0, fmt.Errorf("dispatch: decoding shard %d checkpoint for reshard accounting: %w", i, err)
		}
		for _, tn := range cp.Tenants {
			if oldRing.ShardOf(tn.Name) != newRing.ShardOf(tn.Name) {
				moved++
			}
		}
	}
	return moved, nil
}

// Placement returns the current placement table, one entry per shard.
func (d *Dispatcher) Placement() *PlacementResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := &PlacementResponse{Schema: WireSchema, Shards: make([]PlacementEntry, len(d.leases)), ConfigEpoch: d.configEpoch}
	for i := range d.leases {
		l := &d.leases[i]
		e := PlacementEntry{Shard: i, Epoch: l.epoch, Round: l.round}
		// A revoking lease is on its way out; advertising it would route new
		// traffic at a shard that is about to close.
		if l.worker != "" && !l.revoking {
			e.Worker = l.worker
			if w, ok := d.workers[l.worker]; ok {
				e.Addr = w.addr
			}
		}
		resp.Shards[i] = e
	}
	return resp
}

// StatsSchema versions the dispatcher /v1/stats response format.
const StatsSchema = "rrdispatch-stats/v1"

// WorkerStats is one worker row of the dispatcher stats.
type WorkerStats struct {
	Worker string `json:"worker"`
	Addr   string `json:"addr"`
	Alive  bool   `json:"alive"`
	Held   int    `json:"held"`
}

// StatsResponse is the body of the dispatcher's GET /v1/stats.
type StatsResponse struct {
	Schema   string        `json:"schema"`
	Shards   int           `json:"shards"`
	Assigned int           `json:"assigned"`
	Workers  []WorkerStats `json:"workers"`
	// Epoch is the config epoch: how many fleet reshards this dispatcher has
	// performed since boot.
	Epoch int64 `json:"epoch"`
}

// Stats assembles the dispatcher stats response. Workers are listed in name
// order.
func (d *Dispatcher) Stats() *StatsResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := &StatsResponse{Schema: StatsSchema, Shards: len(d.leases), Epoch: d.configEpoch}
	heldBy := map[string]int{}
	for i := range d.leases {
		if d.leases[i].worker != "" {
			heldBy[d.leases[i].worker]++
			resp.Assigned++
		}
	}
	names := make([]string, 0, len(d.workers))
	for name := range d.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := d.workers[name]
		resp.Workers = append(resp.Workers, WorkerStats{
			Worker: name, Addr: w.addr, Alive: w.alive, Held: heldBy[name],
		})
	}
	return resp
}

// Metrics returns a snapshot of the dispatcher's metric registry.
func (d *Dispatcher) Metrics() *obs.Snapshot { return d.reg.Snapshot() }

// stateSchema versions the persisted per-shard checkpoint wrapper.
const stateSchema = "rrdispatch-state/v1"

// shardState is the on-disk wrapper around one shard's checkpoint. Shards
// records the fleet size the checkpoint was taken under (0 in files written
// before resizing existed, which are read as "the configured count"); a boot
// that finds a different count reshards the persisted set before granting.
type shardState struct {
	Schema string          `json:"schema"`
	Shard  int             `json:"shard"`
	Shards int             `json:"shards,omitempty"`
	Epoch  int64           `json:"epoch"`
	Round  int64           `json:"round"`
	Data   json.RawMessage `json:"data"`
}

func (d *Dispatcher) statePath(shard int) string {
	return filepath.Join(d.cfg.StateDir, fmt.Sprintf("shard-%04d.json", shard))
}

// persistLocked writes one shard's stored checkpoint atomically (tmp+rename).
// Caller holds d.mu.
func (d *Dispatcher) persistLocked(shard int) error {
	if err := os.MkdirAll(d.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("dispatch: creating state dir: %w", err)
	}
	l := &d.leases[shard]
	data, err := json.Marshal(shardState{
		Schema: stateSchema, Shard: shard, Shards: len(d.leases),
		Epoch: l.epoch, Round: l.round, Data: l.checkpoint,
	})
	if err != nil {
		return fmt.Errorf("dispatch: encoding shard %d state: %w", shard, err)
	}
	if err := atomicio.WriteFile(d.statePath(shard), data, 0o644); err != nil {
		return fmt.Errorf("dispatch: writing shard %d state: %w", shard, err)
	}
	return nil
}

// loadState seeds the lease table from persisted checkpoints. When the
// persisted shard count matches the configured one, absent files are fine —
// shards that never checkpointed start fresh. When the counts differ (the
// dispatcher was rebooted into a new size), the complete persisted set is
// transformed through serve.ReshardCheckpoints at boot, exactly like a live
// reshard: the old epochs are fenced and the migrated set is persisted before
// any worker registers.
func (d *Dispatcher) loadState() error {
	idxs, err := d.scanStateDir()
	if err != nil {
		return err
	}
	if len(idxs) == 0 {
		return nil
	}
	states := map[int]*shardState{}
	diskShards := 0
	for _, i := range idxs {
		st, err := d.readShardState(i)
		if err != nil {
			return err
		}
		if st.Shards != 0 {
			if diskShards == 0 {
				diskShards = st.Shards
			} else if st.Shards != diskShards {
				return fmt.Errorf("dispatch: state files disagree on the shard count (%d vs %d)", diskShards, st.Shards)
			}
		}
		states[i] = st
	}
	if diskShards == 0 {
		// Files from before fleet resizing recorded no count; they were only
		// ever written under the configured one.
		diskShards = len(d.leases)
	}
	if last := idxs[len(idxs)-1]; last >= diskShards {
		return fmt.Errorf("dispatch: state file for shard %d exceeds the persisted shard count %d", last, diskShards)
	}
	if diskShards == len(d.leases) {
		for i, st := range states {
			d.leases[i] = lease{epoch: st.Epoch, round: st.Round, checkpoint: st.Data}
		}
		return nil
	}
	// Shard-count change across a restart: a partial set cannot be resharded
	// (a missing shard's tenants would silently vanish), so every old file
	// must be present, non-empty, and at one common round.
	old := make([][]byte, diskShards)
	var round, maxEpoch int64
	for i := 0; i < diskShards; i++ {
		st, ok := states[i]
		if !ok {
			return fmt.Errorf("dispatch: resizing %d persisted shards to %d needs the full set; shard %d state is missing", diskShards, len(d.leases), i)
		}
		if len(st.Data) == 0 {
			return fmt.Errorf("dispatch: resizing %d persisted shards to %d: shard %d has no checkpoint", diskShards, len(d.leases), i)
		}
		if i == 0 {
			round = st.Round
		} else if st.Round != round {
			return fmt.Errorf("dispatch: resizing persisted state: shard rounds diverge (shard 0 at %d, shard %d at %d)", round, i, st.Round)
		}
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
		old[i] = st.Data
	}
	newData, err := serve.ReshardCheckpoints(old, len(d.leases))
	if err != nil {
		return fmt.Errorf("dispatch: resizing %d persisted shards to %d: %w", diskShards, len(d.leases), err)
	}
	for i := range d.leases {
		d.leases[i] = lease{epoch: maxEpoch + 1, round: round, checkpoint: newData[i]}
		if err := d.persistLocked(i); err != nil {
			return err
		}
	}
	for i := len(d.leases); i < diskShards; i++ {
		_ = os.Remove(d.statePath(i)) // stale count; re-detected at next boot if left behind
	}
	return nil
}

// scanStateDir lists the shard indices persisted in the state directory, in
// increasing order (empty when the directory is absent or holds no state
// files).
func (d *Dispatcher) scanStateDir() ([]int, error) {
	entries, err := os.ReadDir(d.cfg.StateDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dispatch: scanning state dir: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		var i int
		if n, err := fmt.Sscanf(e.Name(), "shard-%d.json", &i); err != nil || n != 1 {
			continue
		}
		if e.Name() != fmt.Sprintf("shard-%04d.json", i) {
			continue // tmp files and other near-misses are not state
		}
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// readShardState reads and validates one persisted shard file. The error is
// os.IsNotExist-preserving so callers can distinguish absent from corrupt.
func (d *Dispatcher) readShardState(i int) (*shardState, error) {
	data, err := os.ReadFile(d.statePath(i))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("dispatch: reading shard %d state: %w", i, err)
	}
	var st shardState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("dispatch: decoding shard %d state: %w", i, err)
	}
	if st.Schema != stateSchema {
		return nil, fmt.Errorf("dispatch: shard %d state schema %q, want %q", i, st.Schema, stateSchema)
	}
	if st.Shard != i {
		return nil, fmt.Errorf("dispatch: state file for shard %d claims shard %d", i, st.Shard)
	}
	return &st, nil
}
