package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rrsched/internal/atomicio"
	"rrsched/internal/obs"
)

// Config parameterizes the dispatcher.
type Config struct {
	// Service is the scheduling-service shape handed to every worker at
	// registration. All workers run the same config; checkpoints are only
	// portable between identical services.
	Service ServiceConfig
	// HeartbeatEvery is the interval workers must heartbeat at. Default 1s.
	HeartbeatEvery time.Duration
	// MissBudget is how many heartbeat intervals may elapse without a
	// heartbeat before a worker is declared dead and its shards fail over.
	// Workers apply the same budget to fence themselves when they cannot
	// reach the dispatcher. Default 3.
	MissBudget int
	// StateDir, when set, persists every accepted checkpoint to one file per
	// shard (tmp+rename), so a restarted dispatcher regrants shards from the
	// last state it had rather than from scratch. Empty disables durability.
	StateDir string
}

func (cfg *Config) validate() error {
	if err := cfg.Service.validate(); err != nil {
		return err
	}
	if cfg.HeartbeatEvery < 0 {
		return fmt.Errorf("dispatch: negative heartbeat interval %v", cfg.HeartbeatEvery)
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.MissBudget < 0 {
		return fmt.Errorf("dispatch: negative miss budget %d", cfg.MissBudget)
	}
	if cfg.MissBudget == 0 {
		cfg.MissBudget = 3
	}
	return nil
}

// lease is the dispatcher's record of one shard: who holds it, under which
// epoch, and the latest checkpoint pushed for it.
type lease struct {
	worker   string // "" while unassigned
	epoch    int64  // bumped on every grant and on every fencing revoke
	round    int64  // round of the stored checkpoint
	revoking bool   // graceful revoke issued; awaiting the final checkpoint

	checkpoint []byte // latest accepted checkpoint (nil = open fresh)
	// deadSinceNs is non-zero while the shard awaits reassignment after its
	// holder died; cleared (and observed into the failover-latency histogram)
	// at the regrant.
	deadSinceNs int64
}

// workerInfo is the dispatcher's record of one registered worker.
type workerInfo struct {
	name       string
	addr       string
	alive      bool
	lastSeenNs int64
}

// Dispatcher owns the tenant→shard placement: it leases shards to registered
// workers, renews the leases on heartbeats, stores the checkpoints workers
// push after every tick, and — when a worker misses its heartbeat budget —
// revokes its leases and regrants the shards to survivors from those stored
// checkpoints.
type Dispatcher struct {
	cfg Config
	reg *obs.Registry
	met *obs.DispatchMetrics
	now func() int64 // obs.Now, injectable in tests

	mu      sync.Mutex
	workers map[string]*workerInfo
	leases  []lease

	monitorStop chan struct{}
	monitorDone chan struct{}
	closeOnce   sync.Once
}

// New builds a dispatcher and starts its failure monitor. If cfg.StateDir
// holds checkpoints from a previous incarnation (same shard count), they seed
// the lease table so regrants resume from persisted state.
func New(cfg Config) (*Dispatcher, error) {
	return newDispatcher(cfg, obs.Now)
}

// newDispatcher is New with an injectable clock, so tests drive failure
// detection deterministically.
func newDispatcher(cfg Config, now func() int64) (*Dispatcher, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	met, err := obs.NewDispatchMetrics(reg)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{
		cfg:         cfg,
		reg:         reg,
		met:         met,
		now:         now,
		workers:     map[string]*workerInfo{},
		leases:      make([]lease, cfg.Service.Shards),
		monitorStop: make(chan struct{}),
		monitorDone: make(chan struct{}),
	}
	if cfg.StateDir != "" {
		if err := d.loadState(); err != nil {
			return nil, err
		}
	}
	go d.monitor()
	return d, nil
}

// Close stops the failure monitor. Workers discover the dispatcher is gone
// through failed heartbeats and fence themselves.
func (d *Dispatcher) Close() {
	d.closeOnce.Do(func() {
		close(d.monitorStop)
		<-d.monitorDone
	})
}

// monitor periodically sweeps for workers that have exceeded the heartbeat
// miss budget. It polls at half the heartbeat interval so detection lags the
// budget by at most half an interval.
func (d *Dispatcher) monitor() {
	defer close(d.monitorDone)
	every := d.cfg.HeartbeatEvery / 2
	if every <= 0 {
		every = d.cfg.HeartbeatEvery
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.sweep(d.now())
		case <-d.monitorStop:
			return
		}
	}
}

// sweep declares every worker dead whose last heartbeat is older than
// HeartbeatEvery × MissBudget, fences its leases (epoch bump), and marks its
// shards for reassignment at the next surviving heartbeat.
func (d *Dispatcher) sweep(nowNs int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	deadline := int64(d.cfg.HeartbeatEvery) * int64(d.cfg.MissBudget)
	for _, w := range d.workers {
		if !w.alive || nowNs-w.lastSeenNs <= deadline {
			continue
		}
		d.met.HeartbeatMisses.Inc()
		w.alive = false
		d.met.WorkersDead.Inc()
		d.met.Workers.Add(-1)
		for i := range d.leases {
			l := &d.leases[i]
			if l.worker != w.name {
				continue
			}
			// Fence: any checkpoint the dead worker still manages to push
			// carries the old epoch and is rejected. The stored checkpoint —
			// taken synchronously after the shard's last completed tick — is
			// what the survivor restores.
			l.epoch++
			l.worker = ""
			l.revoking = false
			l.deadSinceNs = nowNs
			d.met.LeaseRevokes.Inc()
			d.met.Failovers.Inc()
			d.met.ShardsAssigned.Add(-1)
		}
	}
}

// register admits (or re-admits) a worker. A re-registration under a live
// name resets the worker's record: a restarted process holds nothing, and
// lease reconciliation at its next heartbeat will fence whatever the table
// still attributes to it.
func (d *Dispatcher) register(req *RegisterRequest) *RegisterResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[req.Worker]
	if !ok {
		w = &workerInfo{name: req.Worker}
		d.workers[req.Worker] = w
	}
	if !w.alive {
		d.met.Workers.Add(1)
	}
	w.addr = req.Addr
	w.alive = true
	w.lastSeenNs = d.now()
	return &RegisterResponse{
		Schema:           WireSchema,
		Config:           d.cfg.Service,
		HeartbeatEveryMs: d.cfg.HeartbeatEvery.Milliseconds(),
		MissBudget:       d.cfg.MissBudget,
	}
}

// errUnknownWorker marks a heartbeat from a worker that never registered (or
// that the dispatcher restarted away); the worker must re-register.
var errUnknownWorker = fmt.Errorf("dispatch: unknown worker; register first")

// heartbeat renews a worker's liveness and reconciles leases: held leases are
// renewed or revoked, lost leases are fenced, over-fair-share holdings are
// revoked gracefully, and unassigned shards are granted up to the fair share.
func (d *Dispatcher) heartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[req.Worker]
	if !ok {
		return nil, errUnknownWorker
	}
	d.met.Heartbeats.Inc()
	if !w.alive {
		// The worker outlived a death sentence (a partition healed). Its
		// leases were fenced at the sweep; reconciliation below revokes
		// whatever it still claims to hold.
		w.alive = true
		d.met.Workers.Add(1)
	}
	w.lastSeenNs = d.now()

	resp := &HeartbeatResponse{Schema: WireSchema}
	held := map[int]LeaseInfo{}
	for _, l := range req.Held {
		if l.Shard < len(d.leases) {
			held[l.Shard] = l
		} else {
			resp.Revokes = append(resp.Revokes, l.Shard)
		}
	}

	// Leases the table attributes to this worker but the worker no longer
	// claims: a lost grant response or a restarted process. Fence and free.
	for i := range d.leases {
		l := &d.leases[i]
		if l.worker != req.Worker {
			continue
		}
		if _, ok := held[i]; !ok {
			l.epoch++
			l.worker = ""
			l.revoking = false
			d.met.LeaseRevokes.Inc()
			d.met.ShardsAssigned.Add(-1)
		}
	}

	// Held leases: renew matches, revoke everything else (zombie holdings
	// under a stale epoch, or shards reassigned while the worker was away).
	valid := 0
	for shard, info := range held {
		l := &d.leases[shard]
		if l.worker == req.Worker && l.epoch == info.Epoch {
			d.met.LeaseRenewals.Inc()
			if l.revoking {
				resp.Revokes = append(resp.Revokes, shard)
			} else {
				valid++
			}
		} else {
			d.met.StaleEpochs.Inc()
			resp.Revokes = append(resp.Revokes, shard)
		}
	}

	// Fair share: ceil(shards / live workers). Graceful rebalance revokes the
	// excess (highest shard index first, deterministically); the freed shards
	// reach an underloaded worker once the final checkpoint lands.
	live := 0
	for _, wi := range d.workers {
		if wi.alive {
			live++
		}
	}
	fair := (len(d.leases) + live - 1) / live
	if valid > fair {
		for i := len(d.leases) - 1; i >= 0 && valid > fair; i-- {
			l := &d.leases[i]
			if l.worker == req.Worker && !l.revoking {
				if _, ok := held[i]; ok {
					l.revoking = true
					resp.Revokes = append(resp.Revokes, i)
					d.met.LeaseRevokes.Inc()
					valid--
				}
			}
		}
	}

	// Grants: hand unassigned shards to this worker up to its fair share,
	// each with the latest stored checkpoint.
	for i := range d.leases {
		if valid >= fair {
			break
		}
		l := &d.leases[i]
		if l.worker != "" {
			continue
		}
		l.worker = req.Worker
		l.epoch++
		grant := LeaseGrant{Shard: i, Epoch: l.epoch, Round: l.round}
		if len(l.checkpoint) > 0 {
			grant.Checkpoint = append(json.RawMessage(nil), l.checkpoint...)
		}
		resp.Grants = append(resp.Grants, grant)
		d.met.LeaseGrants.Inc()
		d.met.ShardsAssigned.Add(1)
		if l.deadSinceNs != 0 {
			d.met.FailoverNs.Observe(d.now() - l.deadSinceNs)
			l.deadSinceNs = 0
		}
		valid++
	}
	sort.Ints(resp.Revokes)
	return resp, nil
}

// errStaleEpoch marks a checkpoint push fenced by a newer lease epoch.
var errStaleEpoch = fmt.Errorf("dispatch: stale lease epoch")

// storeCheckpoint accepts a checkpoint push: the freshest state of one shard,
// fenced by lease epoch. A final push on a revoking lease completes the
// graceful handoff and frees the shard for regranting.
func (d *Dispatcher) storeCheckpoint(req *CheckpointPush) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if req.Shard >= len(d.leases) {
		return fmt.Errorf("dispatch: checkpoint names shard %d of %d", req.Shard, len(d.leases))
	}
	l := &d.leases[req.Shard]
	if l.worker != req.Worker || l.epoch != req.Epoch {
		d.met.StaleEpochs.Inc()
		return fmt.Errorf("%w: shard %d epoch %d from %q, lease is epoch %d held by %q",
			errStaleEpoch, req.Shard, req.Epoch, req.Worker, l.epoch, l.worker)
	}
	l.checkpoint = append([]byte(nil), req.Data...)
	l.round = req.Round
	d.met.Checkpoints.Inc()
	d.met.CheckpointBytes.Observe(int64(len(req.Data)))
	if req.Final {
		l.worker = ""
		l.revoking = false
		d.met.ShardsAssigned.Add(-1)
	}
	if d.cfg.StateDir != "" {
		if err := d.persistLocked(req.Shard); err != nil {
			return err
		}
	}
	return nil
}

// Placement returns the current placement table, one entry per shard.
func (d *Dispatcher) Placement() *PlacementResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := &PlacementResponse{Schema: WireSchema, Shards: make([]PlacementEntry, len(d.leases))}
	for i := range d.leases {
		l := &d.leases[i]
		e := PlacementEntry{Shard: i, Epoch: l.epoch, Round: l.round}
		// A revoking lease is on its way out; advertising it would route new
		// traffic at a shard that is about to close.
		if l.worker != "" && !l.revoking {
			e.Worker = l.worker
			if w, ok := d.workers[l.worker]; ok {
				e.Addr = w.addr
			}
		}
		resp.Shards[i] = e
	}
	return resp
}

// StatsSchema versions the dispatcher /v1/stats response format.
const StatsSchema = "rrdispatch-stats/v1"

// WorkerStats is one worker row of the dispatcher stats.
type WorkerStats struct {
	Worker string `json:"worker"`
	Addr   string `json:"addr"`
	Alive  bool   `json:"alive"`
	Held   int    `json:"held"`
}

// StatsResponse is the body of the dispatcher's GET /v1/stats.
type StatsResponse struct {
	Schema   string        `json:"schema"`
	Shards   int           `json:"shards"`
	Assigned int           `json:"assigned"`
	Workers  []WorkerStats `json:"workers"`
}

// Stats assembles the dispatcher stats response. Workers are listed in name
// order.
func (d *Dispatcher) Stats() *StatsResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := &StatsResponse{Schema: StatsSchema, Shards: len(d.leases)}
	heldBy := map[string]int{}
	for i := range d.leases {
		if d.leases[i].worker != "" {
			heldBy[d.leases[i].worker]++
			resp.Assigned++
		}
	}
	names := make([]string, 0, len(d.workers))
	for name := range d.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := d.workers[name]
		resp.Workers = append(resp.Workers, WorkerStats{
			Worker: name, Addr: w.addr, Alive: w.alive, Held: heldBy[name],
		})
	}
	return resp
}

// Metrics returns a snapshot of the dispatcher's metric registry.
func (d *Dispatcher) Metrics() *obs.Snapshot { return d.reg.Snapshot() }

// stateSchema versions the persisted per-shard checkpoint wrapper.
const stateSchema = "rrdispatch-state/v1"

// shardState is the on-disk wrapper around one shard's checkpoint.
type shardState struct {
	Schema string          `json:"schema"`
	Shard  int             `json:"shard"`
	Epoch  int64           `json:"epoch"`
	Round  int64           `json:"round"`
	Data   json.RawMessage `json:"data"`
}

func (d *Dispatcher) statePath(shard int) string {
	return filepath.Join(d.cfg.StateDir, fmt.Sprintf("shard-%04d.json", shard))
}

// persistLocked writes one shard's stored checkpoint atomically (tmp+rename).
// Caller holds d.mu.
func (d *Dispatcher) persistLocked(shard int) error {
	if err := os.MkdirAll(d.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("dispatch: creating state dir: %w", err)
	}
	l := &d.leases[shard]
	data, err := json.Marshal(shardState{
		Schema: stateSchema, Shard: shard, Epoch: l.epoch, Round: l.round, Data: l.checkpoint,
	})
	if err != nil {
		return fmt.Errorf("dispatch: encoding shard %d state: %w", shard, err)
	}
	if err := atomicio.WriteFile(d.statePath(shard), data, 0o644); err != nil {
		return fmt.Errorf("dispatch: writing shard %d state: %w", shard, err)
	}
	return nil
}

// loadState seeds the lease table from persisted checkpoints. Absent files
// are fine — shards that never checkpointed start fresh; present files must
// parse and match their shard slot.
func (d *Dispatcher) loadState() error {
	for i := range d.leases {
		data, err := os.ReadFile(d.statePath(i))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("dispatch: reading shard %d state: %w", i, err)
		}
		var st shardState
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("dispatch: decoding shard %d state: %w", i, err)
		}
		if st.Schema != stateSchema {
			return fmt.Errorf("dispatch: shard %d state schema %q, want %q", i, st.Schema, stateSchema)
		}
		if st.Shard != i {
			return fmt.Errorf("dispatch: state file for shard %d claims shard %d", i, st.Shard)
		}
		d.leases[i] = lease{epoch: st.Epoch, round: st.Round, checkpoint: st.Data}
	}
	return nil
}
