package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"rrsched/internal/obs"
	"rrsched/internal/serve"
)

// Worker is the daemon side of the lease protocol: a hosted serve.Service
// whose shards open and close as the dispatcher grants and revokes leases. It
// registers at startup, heartbeats on the dispatcher's interval, pushes a
// checkpoint of every shard after every tick (via serve's OnShardCheckpoint
// hook, synchronously — when a tick returns, the dispatcher holds the
// post-tick state), and fences itself — closes every shard — once the
// wall-clock time since its last successful heartbeat exceeds the heartbeat
// budget, so a partitioned worker can never serve a shard the dispatcher has
// already failed over (see heartbeatLoop for the timing argument).
type Worker struct {
	name  string
	dc    *Client
	srv   *http.Server
	hswap *handlerSwap
	ln    net.Listener
	addr  string
	logw  io.Writer

	heartbeatEvery time.Duration
	missBudget     int
	now            func() int64 // obs.Now, injectable in tests

	mu          sync.Mutex
	svc         *serve.Service // replaced wholesale on a config-epoch rebuild
	config      ServiceConfig
	configEpoch int64
	epochs      map[int]int64 // shard → lease epoch (held shards only)
	rounds      map[int]int64 // shard → round of its last checkpoint/open

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	endOnce  sync.Once
}

// handlerSwap is the indirection that lets a worker rebuild its hosted
// service under a new fleet config without restarting its HTTP listener: the
// server is bound to the swap once, and a reshard replaces the handler behind
// it between requests. The read lock is held for the whole request, so swap
// doubles as a drain barrier: once it returns, no in-flight request is still
// executing against the old handler and the old service can be closed.
type handlerSwap struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.h.ServeHTTP(w, r)
}

func (s *handlerSwap) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// service returns the current hosted service; it is replaced wholesale when
// the dispatcher's config epoch moves.
func (w *Worker) service() *serve.Service {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.svc
}

// cfgEpoch returns the config epoch the current hosted service was built at.
func (w *Worker) cfgEpoch() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.configEpoch
}

// currentConfig returns the service config the current hosted service was
// built from.
func (w *Worker) currentConfig() ServiceConfig {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.config
}

// halt stops the heartbeat loop exactly once, whether via Close or Kill.
func (w *Worker) halt() {
	w.stopOnce.Do(func() {
		close(w.stop)
		<-w.done
	})
}

// StartWorker registers with the dispatcher at dispatcherURL, builds the
// hosted service from the config the dispatcher returns, starts serving the
// rrserve API on listenAddr (port 0 picks a free port), and launches the
// heartbeat loop. logw receives one-line status messages (pass io.Discard to
// silence).
func StartWorker(name, dispatcherURL, listenAddr string, logw io.Writer) (*Worker, error) {
	if err := ValidateWorker(name); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		name:   name,
		dc:     NewClient(dispatcherURL),
		ln:     ln,
		addr:   "http://" + ln.Addr().String(),
		logw:   logw,
		now:    obs.Now,
		epochs: map[int]int64{},
		rounds: map[int]int64{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	reg, err := w.dc.Register(name, w.addr)
	if err != nil {
		_ = ln.Close() // constructor failed; listener has served no traffic
		return nil, fmt.Errorf("dispatch: registering worker %q: %w", name, err)
	}
	w.heartbeatEvery = time.Duration(reg.HeartbeatEveryMs) * time.Millisecond
	if w.heartbeatEvery <= 0 {
		_ = ln.Close() // constructor failed; listener has served no traffic
		return nil, fmt.Errorf("dispatch: dispatcher returned heartbeat interval %dms", reg.HeartbeatEveryMs)
	}
	w.missBudget = reg.MissBudget
	if w.missBudget <= 0 {
		w.missBudget = 3
	}
	cfg := reg.Config.serveConfig()
	cfg.OnShardCheckpoint = w.pushCheckpoint
	svc, _, err := serve.New(cfg)
	if err != nil {
		_ = ln.Close() // constructor failed; listener has served no traffic
		return nil, fmt.Errorf("dispatch: building hosted service: %w", err)
	}
	w.svc = svc
	w.config = reg.Config
	w.configEpoch = reg.ConfigEpoch
	w.hswap = &handlerSwap{h: svc.Handler()}
	w.srv = serve.HardenedServer(w.hswap)
	go func() { _ = w.srv.Serve(ln) }() // exits via Close/Kill; error carries no signal then
	go w.heartbeatLoop()
	w.logf("rrworker %s: serving on %s (shards=%d, heartbeat %v, miss budget %d)",
		name, w.addr, reg.Config.Shards, w.heartbeatEvery, w.missBudget)
	return w, nil
}

// Addr returns the worker's serve API base URL.
func (w *Worker) Addr() string { return w.addr }

// Name returns the worker's registered name.
func (w *Worker) Name() string { return w.name }

// Held returns the shards the worker currently holds, in shard order.
func (w *Worker) Held() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	held := make([]int, 0, len(w.epochs))
	for shard := range w.epochs {
		held = append(held, shard)
	}
	sort.Ints(held)
	return held
}

func (w *Worker) logf(format string, args ...any) {
	if w.logw != nil {
		_, _ = fmt.Fprintf(w.logw, format+"\n", args...) // best-effort status output
	}
}

// pushCheckpoint is the serve OnShardCheckpoint hook: upload the fresh
// post-tick state under the shard's lease epoch. A stale-epoch rejection is
// an error — the tick that triggered it must not report success for a shard
// the dispatcher has moved elsewhere.
func (w *Worker) pushCheckpoint(shard int, round int64, data []byte) error {
	w.mu.Lock()
	epoch, held := w.epochs[shard]
	if held {
		w.rounds[shard] = round
	}
	w.mu.Unlock()
	if !held {
		return fmt.Errorf("dispatch: shard %d ticked without a lease", shard)
	}
	return w.dc.PushCheckpoint(&CheckpointPush{
		Schema: WireSchema, Worker: w.name, Shard: shard,
		Epoch: epoch, Round: round, Data: data,
	})
}

// heartbeatLoop drives the lease protocol: heartbeat every interval, apply
// the grants and revokes in each response, and self-fence once the wall-clock
// time since the last successful heartbeat exceeds the miss budget.
//
// The fence clock is stamped at request *send* time, not response receipt:
// the dispatcher's liveness clock starts when a heartbeat arrives, which is
// never earlier than when this side sent it, so under synchronized clocks the
// worker's fence deadline always fires at or before the dispatcher's sweep
// deadline — and the dispatcher only regrants at a survivor's next heartbeat
// after the sweep, which is the margin between fence and regrant. Each
// request's timeout is capped at the heartbeat interval (and at the time left
// until the fence deadline), so a packet-blackhole partition — where attempts
// hang instead of failing fast — cannot hold the loop past the deadline on
// the transport's 30s default. Elapsed time is read through w.now (obs.Now's
// monotonic clock): fence timing is an availability mechanism, never an input
// to scheduling decisions, and stays off the determinism lint's wall-clock
// list by construction.
func (w *Worker) heartbeatLoop() {
	defer close(w.done)
	t := time.NewTicker(w.heartbeatEvery)
	defer t.Stop()
	fenceAfter := w.heartbeatEvery * time.Duration(w.missBudget)
	lastSuccess := w.now() // registration in StartWorker was the first contact
	fails := 0
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		timeout := w.heartbeatEvery
		if remain := fenceAfter - time.Duration(w.now()-lastSuccess); remain > 0 && remain < timeout {
			timeout = remain
		}
		sent := w.now()
		resp, err := w.dc.Heartbeat(w.heartbeatRequest(), timeout)
		if errors.Is(err, errUnknownWorker) {
			// The dispatcher restarted and lost the registry. Re-register;
			// whatever this worker still holds is reconciled (revoked or
			// re-fenced) on the next heartbeat. Registration renews liveness
			// on the dispatcher, so it resets the fence clock too.
			if reg, rerr := w.dc.Register(w.name, w.addr); rerr == nil {
				w.logf("rrworker %s: re-registered after dispatcher restart", w.name)
				lastSuccess = sent
				fails = 0
				// A restarted dispatcher may have come back with a different
				// fleet shape (or a reset config epoch); rebuild before the
				// next heartbeat claims anything under the wrong shard count.
				if reg.ConfigEpoch != w.cfgEpoch() || reg.Config != w.currentConfig() {
					if err := w.rebuild(reg.Config, reg.ConfigEpoch); err != nil {
						w.logf("rrworker %s: rebuilding after re-register failed: %v", w.name, err)
					}
				}
				continue
			}
			err = fmt.Errorf("dispatch: re-register: %w", err)
		}
		if err != nil {
			fails++
			stale := time.Duration(w.now() - lastSuccess)
			w.logf("rrworker %s: heartbeat failure %d (last success %v ago, fence at %v): %v",
				w.name, fails, stale.Round(time.Millisecond), fenceAfter, err)
			if stale > fenceAfter {
				// Past the deadline the dispatcher sweeps against: drop every
				// lease now. selfFence is a no-op when nothing is held, so
				// staying past the deadline (partition persists) is harmless.
				w.selfFence()
			}
			continue
		}
		lastSuccess = sent
		fails = 0
		w.apply(resp)
	}
}

// heartbeatRequest snapshots the held leases, sorted by shard as the wire
// format requires.
func (w *Worker) heartbeatRequest() *HeartbeatRequest {
	w.mu.Lock()
	defer w.mu.Unlock()
	req := &HeartbeatRequest{Schema: WireSchema, Worker: w.name, ConfigEpoch: w.configEpoch}
	shards := make([]int, 0, len(w.epochs))
	for shard := range w.epochs {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	for _, shard := range shards {
		req.Held = append(req.Held, LeaseInfo{Shard: shard, Epoch: w.epochs[shard], Round: w.rounds[shard]})
	}
	return req
}

// apply executes one heartbeat response: revokes first (close, push the final
// checkpoint), then grants (record the epoch, open from the checkpoint). A
// response carrying a fresh config instead means the fleet resharded: the
// hosted service is rebuilt from scratch and nothing else in the response
// applies — grants were withheld, and the revokes name shards the rebuild
// already dropped.
func (w *Worker) apply(resp *HeartbeatResponse) {
	if resp.Config != nil && resp.ConfigEpoch != w.cfgEpoch() {
		if err := w.rebuild(*resp.Config, resp.ConfigEpoch); err != nil {
			w.logf("rrworker %s: rebuilding for config epoch %d failed: %v", w.name, resp.ConfigEpoch, err)
		}
		return
	}
	for _, shard := range resp.Revokes {
		w.mu.Lock()
		epoch, held := w.epochs[shard]
		delete(w.epochs, shard)
		delete(w.rounds, shard)
		w.mu.Unlock()
		data, err := w.service().CloseShard(shard)
		if err != nil {
			// Already closed (a revoke for a lease this worker never applied);
			// nothing to hand off.
			continue
		}
		if !held {
			continue
		}
		final := &CheckpointPush{
			Schema: WireSchema, Worker: w.name, Shard: shard,
			Epoch: epoch, Round: w.closedRound(data), Final: true, Data: data,
		}
		if err := w.dc.PushCheckpoint(final); err != nil && !errors.Is(err, ErrStale) {
			w.logf("rrworker %s: final checkpoint for shard %d failed: %v", w.name, shard, err)
		}
		w.logf("rrworker %s: released shard %d", w.name, shard)
	}
	for _, g := range resp.Grants {
		w.mu.Lock()
		w.epochs[g.Shard] = g.Epoch
		w.rounds[g.Shard] = g.Round
		w.mu.Unlock()
		round, err := w.service().OpenShard(g.Shard, g.Checkpoint)
		if err != nil {
			w.mu.Lock()
			delete(w.epochs, g.Shard)
			delete(w.rounds, g.Shard)
			w.mu.Unlock()
			w.logf("rrworker %s: opening shard %d at epoch %d failed: %v", w.name, g.Shard, g.Epoch, err)
			continue
		}
		w.mu.Lock()
		w.rounds[g.Shard] = round
		w.mu.Unlock()
		w.logf("rrworker %s: holding shard %d at round %d (epoch %d)", w.name, g.Shard, round, g.Epoch)
	}
}

// rebuild tears the hosted service down and builds a fresh one from cfg —
// the worker-side half of a fleet reshard. Held state is dropped, not handed
// off: the dispatcher fenced every old lease when it bumped the config epoch
// and already holds the transformed checkpoint set, so a final push would
// only bounce off the fence. The HTTP listener survives; only the handler
// behind it is swapped.
func (w *Worker) rebuild(cfg ServiceConfig, epoch int64) error {
	w.mu.Lock()
	w.epochs = map[int]int64{}
	w.rounds = map[int]int64{}
	old := w.svc
	w.mu.Unlock()
	scfg := cfg.serveConfig()
	scfg.OnShardCheckpoint = w.pushCheckpoint
	svc, _, err := serve.New(scfg)
	if err != nil {
		return fmt.Errorf("dispatch: rebuilding hosted service: %w", err)
	}
	// Swap first: it drains every in-flight request off the old handler, so
	// closing the old service afterwards cannot race a request against it.
	w.hswap.swap(svc.Handler())
	old.Close()
	w.mu.Lock()
	w.svc = svc
	w.config = cfg
	w.configEpoch = epoch
	w.mu.Unlock()
	w.logf("rrworker %s: rebuilt for config epoch %d (shards=%d)", w.name, epoch, cfg.Shards)
	return nil
}

// closedRound extracts the round from a close checkpoint via the recorded
// rounds map — CloseShard returns state as of the shard's current round,
// which pushCheckpoint tracked at the last tick. Fresh shards close at their
// open round.
func (w *Worker) closedRound(data []byte) int64 {
	// The checkpoint payload itself carries the authoritative round; the
	// dispatcher reads it only for placement display, so the tracked value
	// suffices and saves a decode of an opaque (to this layer) payload.
	var cp struct {
		Round int64 `json:"round"`
	}
	if err := json.Unmarshal(data, &cp); err == nil {
		return cp.Round
	}
	return 0
}

// selfFence closes every held shard without handoff: the dispatcher is
// unreachable, its sweep has (or soon will have) fenced these leases, and a
// partitioned worker serving stale shards is exactly the split brain the
// epoch discipline exists to prevent. State is discarded — the dispatcher's
// stored checkpoints are the source of truth for the failover.
func (w *Worker) selfFence() {
	w.mu.Lock()
	shards := make([]int, 0, len(w.epochs))
	for shard := range w.epochs {
		shards = append(shards, shard)
	}
	w.epochs = map[int]int64{}
	w.rounds = map[int]int64{}
	w.mu.Unlock()
	sort.Ints(shards)
	for _, shard := range shards {
		_, _ = w.service().CloseShard(shard) // discard: the dispatcher's checkpoint is authoritative now
	}
	if len(shards) > 0 {
		w.logf("rrworker %s: heartbeat deadline exceeded; fenced shards %v", w.name, shards)
	}
}

// Close shuts the worker down gracefully: stop heartbeating, hand every held
// shard back with a final checkpoint, then stop the HTTP server and the
// service.
func (w *Worker) Close() {
	w.halt()
	w.endOnce.Do(func() {
		w.mu.Lock()
		held := map[int]int64{}
		for shard, epoch := range w.epochs {
			held[shard] = epoch
		}
		w.epochs = map[int]int64{}
		w.rounds = map[int]int64{}
		w.mu.Unlock()
		shards := make([]int, 0, len(held))
		for shard := range held {
			shards = append(shards, shard)
		}
		sort.Ints(shards)
		for _, shard := range shards {
			data, err := w.service().CloseShard(shard)
			if err != nil {
				continue
			}
			push := &CheckpointPush{
				Schema: WireSchema, Worker: w.name, Shard: shard,
				Epoch: held[shard], Round: w.closedRound(data), Final: true, Data: data,
			}
			if err := w.dc.PushCheckpoint(push); err != nil && !errors.Is(err, ErrStale) {
				w.logf("rrworker %s: handing back shard %d failed: %v", w.name, shard, err)
			}
		}
		_ = w.srv.Close() // abrupt: held shards are handed back already
		w.service().Close()
		w.logf("rrworker %s: stopped", w.name)
	})
}

// Kill stops the worker abruptly — no handoff, no final checkpoints — for
// in-process failover tests. The process-level equivalent is SIGKILL.
func (w *Worker) Kill() {
	w.halt()
	w.endOnce.Do(func() {
		_ = w.srv.Close() // abrupt by design
		w.service().Close()
	})
}
