package dispatch

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"rrsched/internal/ckptstore"
)

// startBundleFleet mirrors startFleet with incremental checkpoint bundles on:
// workers push ckptstore bundles per tick and the dispatcher flattens them
// into its lease table.
func startBundleFleet(t *testing.T) (*Dispatcher, *Worker, *Worker, *Driver, string) {
	t.Helper()
	d, err := New(Config{
		Service: ServiceConfig{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16,
			RecordDecisions: true, CheckpointBundles: true},
		HeartbeatEvery: 50 * time.Millisecond,
		MissBudget:     2,
	})
	if err != nil {
		t.Fatalf("New dispatcher: %v", err)
	}
	t.Cleanup(d.Close)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	w1, err := StartWorker("w1", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w1: %v", err)
	}
	t.Cleanup(w1.Kill)
	w2, err := StartWorker("w2", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w2: %v", err)
	}
	t.Cleanup(w2.Kill)

	waitAssigned(t, d, 4)

	driver, err := NewDriver(srv.URL, DriverConfig{Attempts: 400, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	return d, w1, w2, driver, srv.URL
}

// TestBundleFailoverPreservesDecisionStreams re-runs the fleet failover
// property with incremental checkpoint bundles enabled: a worker dies right
// after landing a round's admissions, its shards regrant from the flattened
// bundle state, and every tenant's final decision stream is still
// byte-identical to a bare scheduler. Afterwards the lease table must show
// the bundle path actually engaged — every shard's chunk pool absorbed
// pushes, and every stored checkpoint is flat legacy JSON, never a raw
// bundle.
func TestBundleFailoverPreservesDecisionStreams(t *testing.T) {
	d, w1, _, driver, baseURL := startBundleFleet(t)
	svc := d.cfg.Service
	tenants := failoverFixture(t, 77)

	const killRound = 6
	for r := int64(0); r < foTotalRounds; r++ {
		batches := batchesAt(tenants, r)
		if r == killRound {
			// Land this round's batches, then kill a holder before the tick:
			// its shards hold admissions newer than any pushed bundle.
			for _, b := range batches {
				if out, err := driver.Submit(b.Tenant, b.Jobs); err != nil || !out.Landed() {
					t.Fatalf("pre-kill submit %s: out=%+v err=%v", b.Tenant, out, err)
				}
			}
			w1.Kill()
			w3, err := StartWorker("w3", baseURL, "127.0.0.1:0", io.Discard)
			if err != nil {
				t.Fatalf("respawning worker: %v", err)
			}
			t.Cleanup(w3.Kill)
		}
		if err := driver.Round(batches); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}

	verifyStreams(t, driver, tenants, svc)

	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.leases {
		l := &d.leases[i]
		if l.pool == nil {
			t.Errorf("shard %d: lease never absorbed a checkpoint bundle", i)
			continue
		}
		if len(l.checkpoint) == 0 {
			t.Errorf("shard %d: no checkpoint stored", i)
			continue
		}
		if ckptstore.IsBundle(l.checkpoint) {
			t.Errorf("shard %d: stored checkpoint is a raw bundle, want flattened JSON", i)
		}
		if !json.Valid(l.checkpoint) {
			t.Errorf("shard %d: flattened checkpoint is not valid JSON: %.120s", i, l.checkpoint)
		}
	}
}

// TestBundlePushRejectionKeepsLastGood pins the loss model at the
// dispatcher boundary: a bundle whose references the lease pool cannot
// resolve is rejected wholesale (the push fails, the stored checkpoint and
// pool stay at the last good state), and a subsequent full-closure push
// heals the shard.
func TestBundlePushRejectionKeepsLastGood(t *testing.T) {
	d, err := New(Config{
		Service: ServiceConfig{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 16,
			RecordDecisions: true, CheckpointBundles: true},
		HeartbeatEvery: time.Hour, // no live workers; exercise pushCheckpoint directly
	})
	if err != nil {
		t.Fatalf("New dispatcher: %v", err)
	}
	defer d.Close()

	// Build two bundles over the same tenant frame: one carrying its full
	// chunk closure, one referencing the chunk without carrying it (what a
	// sender whose acks outlived a receiver restart would push).
	full := makeBundle(t, true)
	orphan := makeBundle(t, false)

	d.mu.Lock()
	d.leases[0].worker = "w1"
	d.mu.Unlock()

	// An orphan bundle against an empty pool must be rejected and leave no
	// trace: no checkpoint stored.
	push := func(round int64, data []byte) error {
		return d.storeCheckpoint(&CheckpointPush{
			Schema: WireSchema, Worker: "w1", Shard: 0, Epoch: 0, Round: round, Data: data,
		})
	}
	if err := push(3, orphan); err == nil {
		t.Fatal("orphan bundle accepted against an empty pool")
	}
	d.mu.Lock()
	if d.leases[0].checkpoint != nil {
		t.Fatalf("rejected push stored a checkpoint: %.120s", d.leases[0].checkpoint)
	}
	d.mu.Unlock()

	// The full closure heals the shard; the orphan reference then resolves
	// from the pool the first push populated.
	if err := push(3, full); err != nil {
		t.Fatalf("full-closure push rejected: %v", err)
	}
	d.mu.Lock()
	cp := append([]byte(nil), d.leases[0].checkpoint...)
	d.mu.Unlock()
	if len(cp) == 0 || ckptstore.IsBundle(cp) || !json.Valid(cp) {
		t.Fatalf("stored checkpoint after full push is not flat JSON: %.120s", cp)
	}
	if err := push(4, orphan); err != nil {
		t.Fatalf("orphan push after full closure rejected: %v", err)
	}
}

// makeBundle builds an encoded bundle holding one tenant frame the serve
// flattener accepts; withChunks controls whether the frame's chunk rides in
// the bundle or is only referenced by the manifest.
func makeBundle(t *testing.T, withChunks bool) []byte {
	t.Helper()
	pool := ckptstore.NewMemStore(0)
	payload, err := json.Marshal(map[string]any{
		"round":  3,
		"tenant": map[string]any{"name": "tn-0", "epoch": 3},
	})
	if err != nil {
		t.Fatalf("frame payload: %v", err)
	}
	res, err := pool.Put(payload, ckptstore.Ref{})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	m := &ckptstore.Manifest{
		Schema: ckptstore.ManifestSchema, Shard: 0, Shards: 1, Round: 3,
		Tenants: []ckptstore.TenantRef{{Name: "tn-0", Chunk: ckptstore.FormatChunkID(res.Ref.ID)}},
	}
	carry := map[uint64][]byte{}
	if withChunks {
		data, ok := pool.Get(res.Ref.ID)
		if !ok {
			t.Fatalf("chunk %016x missing from scratch pool", res.Ref.ID)
		}
		carry[res.Ref.ID] = data
	}
	manifest, err := ckptstore.EncodeManifest(m)
	if err != nil {
		t.Fatalf("EncodeManifest: %v", err)
	}
	bundle, err := ckptstore.EncodeBundle(manifest, carry)
	if err != nil {
		t.Fatalf("EncodeBundle: %v", err)
	}
	return bundle
}
