package dispatch

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

// TestSelfFenceBoundedByWallClock pins the fence-timing contract: a worker
// facing a packet-blackhole partition — heartbeats hang instead of failing
// fast — must fence itself within the wall-clock heartbeat budget. The old
// attempt-counting fence needed missBudget *completed* attempts, each hostage
// to the transport's 30s timeout, leaving a ~90s split-brain window after the
// dispatcher had already failed the shards over.
func TestSelfFenceBoundedByWallClock(t *testing.T) {
	const every = 40 * time.Millisecond
	var beats atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", func(w http.ResponseWriter, r *http.Request) {
		resp, err := json.Marshal(RegisterResponse{
			Schema:           WireSchema,
			Config:           ServiceConfig{Shards: 1, Resources: 8, Delta: 4, Watermark: 8},
			HeartbeatEveryMs: every.Milliseconds(),
			MissBudget:       3,
		})
		if err != nil {
			t.Errorf("encoding register response: %v", err)
		}
		_, _ = w.Write(resp)
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server can detect the client abandoning the
		// request (and cancel r.Context) once the worker's timeout fires.
		_, _ = io.Copy(io.Discard, r.Body)
		if beats.Add(1) == 1 {
			resp, err := json.Marshal(HeartbeatResponse{
				Schema: WireSchema,
				Grants: []LeaseGrant{{Shard: 0, Epoch: 1, Round: 0}},
			})
			if err != nil {
				t.Errorf("encoding heartbeat response: %v", err)
			}
			_, _ = w.Write(resp)
			return
		}
		<-r.Context().Done() // blackhole: hang until the client gives up
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w, err := StartWorker("w1", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	defer w.Kill()

	deadline := time.Now().Add(5 * time.Second)
	for len(w.Held()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grant never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every heartbeat from here on hangs. The fence must fire once the
	// wall-clock budget (3 × 40ms) since the last success elapses, plus
	// scheduling slack — nowhere near the 30s transport default.
	start := time.Now()
	for len(w.Held()) != 0 {
		if time.Since(start) > 2*time.Second {
			t.Fatal("worker did not fence within the wall-clock heartbeat budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRoundSurvivesLostCheckpointPush pins the driver's store-confirmation
// step: a round whose tick advanced the shard but whose checkpoint push was
// lost in flight must not count as done until the dispatcher's store has
// caught up (via sync), or a crash right after the round would restore the
// shard two rounds behind the driver and silently drop a round's arrivals.
func TestRoundSurvivesLostCheckpointPush(t *testing.T) {
	d, err := New(Config{
		Service:        ServiceConfig{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true},
		HeartbeatEvery: 50 * time.Millisecond,
		MissBudget:     2,
	})
	if err != nil {
		t.Fatalf("New dispatcher: %v", err)
	}
	t.Cleanup(d.Close)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	// A proxy in front of the dispatcher that can drop checkpoint pushes: the
	// worker registers and heartbeats through it, so only its push path is
	// faulted.
	target, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatalf("parsing dispatcher URL: %v", err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	var dropPushes atomic.Int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/checkpoint" && dropPushes.Load() > 0 {
			dropPushes.Add(-1)
			http.Error(w, `{"error":"injected checkpoint loss"}`, http.StatusBadGateway)
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)

	w1, err := StartWorker("w1", proxy.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker w1: %v", err)
	}
	t.Cleanup(w1.Kill)
	waitAssigned(t, d, 4)

	driver, err := NewDriver(srv.URL, DriverConfig{Attempts: 400, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	tenants := failoverFixture(t, 99)

	const faultRound = 6
	for r := int64(0); r < foTotalRounds; r++ {
		batches := batchesAt(tenants, r)
		if r == faultRound {
			// Drop the next two pushes: this round's first tick advances its
			// shard while the store stays behind, and the first repair (sync)
			// attempt is lost too. Round must not return until the store has
			// caught up anyway.
			dropPushes.Store(2)
		}
		if err := driver.Round(batches); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		if r == faultRound {
			if n := dropPushes.Load(); n != 0 {
				t.Fatalf("fault not exercised: %d injected push drops unconsumed", n)
			}
			// The worker dies before it pushes anything newer. The stored
			// checkpoints the driver just confirmed are all the failover has.
			w1.Kill()
			w2, err := StartWorker("w2", srv.URL, "127.0.0.1:0", io.Discard)
			if err != nil {
				t.Fatalf("StartWorker w2: %v", err)
			}
			t.Cleanup(w2.Kill)
		}
	}

	verifyStreams(t, driver, tenants, d.cfg.Service)
}
