package serve

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rrsched/internal/ckptstore"
)

// This battery mangles a valid incremental checkpoint set on disk and pins
// that every corruption is refused wholesale at restore: the manifest-set
// invariants (completeness, round/epoch agreement, one manifest per shard)
// and the per-tenant chunk invariants (reachable, addressed to the right
// tenant). A refused restore must never boot a service with partial state.

// readDiskManifest loads and decodes one on-disk shard manifest.
func readDiskManifest(t *testing.T, path string) *ckptstore.Manifest {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	m, err := ckptstore.DecodeManifest(data)
	if err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return m
}

// writeDiskManifest re-encodes a (possibly mangled) manifest in place.
func writeDiskManifest(t *testing.T, path string, m *ckptstore.Manifest) {
	t.Helper()
	data, err := ckptstore.EncodeManifest(m)
	if err != nil {
		t.Fatalf("encode %s: %v", path, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

// TestManifestRestoreRefusesPartialSet pins the all-or-nothing contract: a
// state dir missing one shard's manifest (lost file, torn copy) is refused
// instead of restoring a service with silently absent tenants.
func TestManifestRestoreRefusesPartialSet(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	if err := os.Remove(filepath.Join(dir, "manifest-0001.json")); err != nil {
		t.Fatalf("remove: %v", err)
	}
	_, _, err := New(cfg)
	if err == nil {
		t.Fatal("restore accepted a partial manifest set")
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Fatalf("refusal does not name the partial set: %v", err)
	}
}

// TestManifestRestoreRefusesRoundSkew pins set-internal agreement: shard
// manifests cut at different rounds (a torn multi-shard checkpoint) refuse.
func TestManifestRestoreRefusesRoundSkew(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	path := filepath.Join(dir, "manifest-0001.json")
	m := readDiskManifest(t, path)
	m.Round++
	writeDiskManifest(t, path, m)
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted shard manifests cut at diverging rounds")
	}
}

// TestManifestRestoreRefusesEpochSkew pins placement-epoch agreement across
// the set.
func TestManifestRestoreRefusesEpochSkew(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	path := filepath.Join(dir, "manifest-0001.json")
	m := readDiskManifest(t, path)
	m.PlacementEpoch++
	writeDiskManifest(t, path, m)
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted diverging placement epochs")
	}
}

// TestManifestRestoreRefusesDuplicateShard pins that two manifests claiming
// the same shard index refuse (a botched copy between state dirs).
func TestManifestRestoreRefusesDuplicateShard(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	path := filepath.Join(dir, "manifest-0001.json")
	m := readDiskManifest(t, path)
	m.Shard = 0
	writeDiskManifest(t, path, m)
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted a duplicated shard manifest")
	}
}

// TestManifestRestoreRefusesMissingChunks pins that a manifest referencing
// chunks absent from the store (pruned too eagerly, lost files) refuses.
func TestManifestRestoreRefusesMissingChunks(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	chunks, err := filepath.Glob(filepath.Join(dir, "chunks", "*"))
	if err != nil || len(chunks) == 0 {
		t.Fatalf("chunk glob: %v (%d files)", err, len(chunks))
	}
	for _, f := range chunks {
		if err := os.Remove(f); err != nil {
			t.Fatalf("remove %s: %v", f, err)
		}
	}
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted manifests whose chunks are gone")
	}
}

// TestManifestRestoreRefusesSwappedChunks pins the chunk-identity check: a
// manifest entry pointing at another tenant's chunk is caught by the name
// embedded in the chunk payload, not trusted from the manifest.
func TestManifestRestoreRefusesSwappedChunks(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	var path string
	var m *ckptstore.Manifest
	for i := 0; i < cfg.Shards; i++ {
		p := filepath.Join(dir, shardManifestName(i))
		if c := readDiskManifest(t, p); len(c.Tenants) >= 2 {
			path, m = p, c
			break
		}
	}
	if m == nil {
		t.Fatal("no shard holds two tenants; fixture too small")
	}
	m.Tenants[0].Chunk, m.Tenants[1].Chunk = m.Tenants[1].Chunk, m.Tenants[0].Chunk
	writeDiskManifest(t, path, m)
	_, _, err := New(cfg)
	if err == nil {
		t.Fatal("restore accepted swapped tenant chunks")
	}
	if !strings.Contains(err.Error(), "chunk holds tenant") {
		t.Fatalf("refusal does not name the identity mismatch: %v", err)
	}
}

// TestManifestRestoreRefusesRepeatedTenant pins the duplicate-tenant check:
// the manifest codec refuses in-file repeats via its ordering contract, so a
// duplicate can only reach a shard through a cross-manifest repeat folded
// together by a restore-time reshard merge — and that merge must refuse it.
func TestManifestRestoreRefusesRepeatedTenant(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	p0 := filepath.Join(dir, shardManifestName(0))
	p1 := filepath.Join(dir, shardManifestName(1))
	m0, m1 := readDiskManifest(t, p0), readDiskManifest(t, p1)
	if len(m0.Tenants) == 0 {
		t.Fatal("fixture shard 0 without tenants")
	}
	m1.Tenants = append(m1.Tenants, m0.Tenants[0])
	sort.Slice(m1.Tenants, func(i, j int) bool { return m1.Tenants[i].Name < m1.Tenants[j].Name })
	writeDiskManifest(t, p1, m1)
	// Restoring into one shard folds both manifests together, so the repeat
	// lands on a single shard and must refuse there.
	cfg.Shards = 1
	_, _, err := New(cfg)
	if err == nil {
		t.Fatal("restore accepted a tenant repeated across manifests")
	}
	if !strings.Contains(err.Error(), "repeats tenant") {
		t.Fatalf("refusal does not name the repeat: %v", err)
	}
}

// TestManifestRestoreRefusesMisroutedTenant pins the ring check: a tenant
// listed in a shard the hash ring does not route it to refuses, because a
// restored placement must agree with live routing.
func TestManifestRestoreRefusesMisroutedTenant(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	p0 := filepath.Join(dir, shardManifestName(0))
	p1 := filepath.Join(dir, shardManifestName(1))
	m0, m1 := readDiskManifest(t, p0), readDiskManifest(t, p1)
	if len(m0.Tenants) == 0 || len(m1.Tenants) == 0 {
		t.Fatal("fixture shard without tenants")
	}
	// Move one tenant's entry to the other shard's manifest: same chunk
	// store, wrong placement.
	moved := m1.Tenants[0]
	m1.Tenants = m1.Tenants[1:]
	m0.Tenants = append(m0.Tenants, moved)
	sort.Slice(m0.Tenants, func(i, j int) bool { return m0.Tenants[i].Name < m0.Tenants[j].Name })
	writeDiskManifest(t, p0, m0)
	writeDiskManifest(t, p1, m1)
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted a tenant on the wrong shard")
	}
}
