package serve

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeReshard pins the reshard request decoder on arbitrary bytes:
// never panics, and anything it accepts reaches the encode→decode fixed
// point, matching the contract of every other decoder on the wire.
func FuzzDecodeReshard(f *testing.F) {
	seed := [][]byte{
		[]byte(""),
		[]byte("{}"),
		[]byte("null"),
		[]byte(`{"schema":"rrserve-reshard/v1","shards":8}`),
		[]byte(`{"schema":"rrserve-reshard/v1","shards":0}`),
		[]byte(`{"schema":"rrserve-reshard/v1","shards":4097}`),
		[]byte(`{"schema":"rrserve-reshard/v2","shards":8}`),
		[]byte(`{"shards":8}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeReshard(data)
		if err != nil {
			return
		}
		enc, err := EncodeReshard(req)
		if err != nil {
			t.Fatalf("decoded reshard request fails to encode: %v\ninput: %q", err, data)
		}
		again, err := DecodeReshard(enc)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v\nencoded: %q", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed the request:\nfirst:  %+v\nsecond: %+v", req, again)
		}
		enc2, err := EncodeReshard(again)
		if err != nil {
			t.Fatalf("re-encoding canonical request: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical reshard bytes are not a fixed point")
		}
	})
}

// FuzzPlacementEpoch feeds arbitrary bytes through the checkpoint reshard
// transform: it must never panic, and whenever it accepts a single-shard
// checkpoint it must preserve the tenant set exactly, route every tenant
// where the target ring says, and bump the placement epoch by one — on any
// shard count the fuzzer picks.
func FuzzPlacementEpoch(f *testing.F) {
	f.Add([]byte(""), uint8(0))
	f.Add([]byte("{}"), uint8(3))
	f.Add([]byte(`{"schema":"rrserve-state/v1","shard":0,"shards":1,"round":2,"tenants":[{"name":"alpha","snapshot":null}]}`), uint8(4))
	f.Add([]byte(`{"schema":"rrserve-state/v1","shard":0,"shards":1,"round":0,"placement_epoch":5}`), uint8(7))
	f.Add([]byte(`{"schema":"rrserve-state/v1","shard":0,"shards":2,"round":0}`), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		newShards := 1 + int(n)%8
		out, err := ReshardCheckpoints([][]byte{data}, newShards)
		if err != nil {
			return
		}
		if len(out) != newShards {
			t.Fatalf("transform produced %d shards, want %d", len(out), newShards)
		}
		in, err := decodeShardCheckpoint(data)
		if err != nil {
			t.Fatalf("transform accepted a checkpoint its own decoder rejects: %v", err)
		}
		want := map[string]bool{}
		for _, tcp := range in.Tenants {
			want[tcp.Name] = true
		}
		ring := newHashRing(newShards)
		got := map[string]bool{}
		for i, shardData := range out {
			cp, err := decodeShardCheckpoint(shardData)
			if err != nil {
				t.Fatalf("transform output %d fails to decode: %v", i, err)
			}
			if cp.Shard != i || cp.Shards != newShards {
				t.Fatalf("output %d labeled shard %d of %d", i, cp.Shard, cp.Shards)
			}
			if cp.Round != in.Round || cp.PlacementEpoch != in.PlacementEpoch+1 {
				t.Fatalf("output %d: round %d epoch %d, want round %d epoch %d",
					i, cp.Round, cp.PlacementEpoch, in.Round, in.PlacementEpoch+1)
			}
			for _, tcp := range cp.Tenants {
				if got[tcp.Name] {
					t.Fatalf("tenant %q duplicated across outputs", tcp.Name)
				}
				got[tcp.Name] = true
				if ring.ShardOf(tcp.Name) != i {
					t.Fatalf("tenant %q on shard %d, ring says %d", tcp.Name, i, ring.ShardOf(tcp.Name))
				}
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("tenant set changed: in %v, out %v", want, got)
		}
	})
}
