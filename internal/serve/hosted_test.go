package serve

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func hostedConfig() Config {
	return Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 10,
		RecordDecisions: true, CheckpointDecisions: true, Hosted: true}
}

// TestHostedLifecycle pins the open/close state machine: a closed shard
// misdirects submissions and skips ticks, an open shard serves, and closing
// returns a checkpoint that reopens elsewhere with identical state.
func TestHostedLifecycle(t *testing.T) {
	svc, _, err := New(hostedConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClientPolicy(srv.URL, SingleShot())

	// Both shards closed: submissions misdirect, whichever shard the tenant
	// hashes to.
	out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err != nil || !out.Misdirected {
		t.Fatalf("submit to closed shard: out=%+v err=%v", out, err)
	}
	if got := svc.OpenShards(); len(got) != 0 {
		t.Fatalf("OpenShards on a fresh hosted service = %v", got)
	}

	// Open both shards fresh; the submission now lands.
	for i := 0; i < 2; i++ {
		round, err := svc.OpenShard(i, nil)
		if err != nil || round != 0 {
			t.Fatalf("OpenShard(%d): round=%d err=%v", i, round, err)
		}
	}
	if _, err := svc.OpenShard(0, nil); err == nil {
		t.Fatal("double open accepted")
	}
	out, err = client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err != nil || !out.Accepted {
		t.Fatalf("submit to open shard: out=%+v err=%v", out, err)
	}
	if _, err := client.Tick(3); err != nil {
		t.Fatalf("Tick: %v", err)
	}

	// Close the tenant's shard: the next submission misdirects again, a
	// per-shard tick reports ErrMisdirected, and the checkpoint carries the
	// tenant.
	shard := svc.ShardFor("alpha")
	data, err := svc.CloseShard(shard)
	if err != nil {
		t.Fatalf("CloseShard: %v", err)
	}
	if !strings.Contains(string(data), "alpha") {
		t.Fatalf("checkpoint does not mention the tenant: %.200s", data)
	}
	if out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 1, Color: 0, Delay: 4}}}); err != nil || !out.Misdirected {
		t.Fatalf("submit after close: out=%+v err=%v", out, err)
	}
	if _, err := client.TickShard(shard, 1); !errors.Is(err, ErrMisdirected) {
		t.Fatalf("TickShard on closed shard: err=%v", err)
	}
	if _, err := svc.CloseShard(shard); err == nil {
		t.Fatal("double close accepted")
	}

	// Reopen from the checkpoint: the shard resumes at its round with the
	// tenant installed and the recorded decisions intact.
	round, err := svc.OpenShard(shard, data)
	if err != nil || round != 3 {
		t.Fatalf("reopen: round=%d err=%v", round, err)
	}
	dr, err := client.Decisions("alpha")
	if err != nil {
		t.Fatalf("Decisions after reopen: %v", err)
	}
	if len(dr.Decisions) != 3 {
		t.Fatalf("restored %d recorded decisions, want 3", len(dr.Decisions))
	}
}

// TestHostedShardsTickIndependently pins the failover-critical property:
// shards on one host may sit at different rounds, and per-shard ticks realign
// them without touching the others.
func TestHostedShardsTickIndependently(t *testing.T) {
	svc, _, err := New(hostedConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	if _, err := svc.OpenShard(0, nil); err != nil {
		t.Fatalf("open 0: %v", err)
	}
	if r, err := svc.TickShard(0, 5); err != nil || r != 5 {
		t.Fatalf("TickShard(0,5): r=%d err=%v", r, err)
	}
	// Shard 1 opens later (as a migrated shard would) at round 0.
	if _, err := svc.OpenShard(1, nil); err != nil {
		t.Fatalf("open 1: %v", err)
	}
	st := svc.Stats()
	if st.PerShard[0].Round != 5 || st.PerShard[1].Round != 0 {
		t.Fatalf("rounds = %d/%d, want 5/0", st.PerShard[0].Round, st.PerShard[1].Round)
	}
	// A service-wide tick advances both from their own counters.
	if r, err := svc.Tick(2); err != nil || r != 7 {
		t.Fatalf("Tick(2): r=%d err=%v", r, err)
	}
	st = svc.Stats()
	if st.PerShard[0].Round != 7 || st.PerShard[1].Round != 2 {
		t.Fatalf("rounds after Tick = %d/%d, want 7/2", st.PerShard[0].Round, st.PerShard[1].Round)
	}
	// Realign shard 1.
	if r, err := svc.TickShard(1, 5); err != nil || r != 7 {
		t.Fatalf("TickShard(1,5): r=%d err=%v", r, err)
	}
}

// TestHostedCheckpointHook pins the synchronous checkpoint contract: by the
// time a tick call returns, the hook has observed the post-tick state of
// every open shard, and hook bytes restore decision-identically.
func TestHostedCheckpointHook(t *testing.T) {
	var mu sync.Mutex
	latest := map[int][]byte{}
	rounds := map[int]int64{}
	cfg := hostedConfig()
	cfg.OnShardCheckpoint = func(shard int, round int64, data []byte) error {
		mu.Lock()
		defer mu.Unlock()
		latest[shard] = append([]byte(nil), data...)
		rounds[shard] = round
		return nil
	}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	for i := 0; i < 2; i++ {
		if _, err := svc.OpenShard(i, nil); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	for r := int64(0); r < 6; r++ {
		out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
			Jobs: []SubmitJob{{ID: r, Color: int32(r % 3), Delay: 4}}})
		if err != nil || !out.Accepted {
			t.Fatalf("submit: out=%+v err=%v", out, err)
		}
		if _, err := client.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
		mu.Lock()
		for i := 0; i < 2; i++ {
			if rounds[i] != r+1 {
				mu.Unlock()
				t.Fatalf("after tick %d: hook saw shard %d at round %d", r, i, rounds[i])
			}
		}
		mu.Unlock()
	}

	// The hook's last bytes equal a direct snapshot, and restoring them into
	// a second hosted service reproduces the recorded decision stream.
	shard := svc.ShardFor("alpha")
	direct, err := svc.SnapshotShard(shard)
	if err != nil {
		t.Fatalf("SnapshotShard: %v", err)
	}
	mu.Lock()
	hookBytes := latest[shard]
	mu.Unlock()
	if !bytes.Equal(direct, hookBytes) {
		t.Fatal("hook checkpoint diverges from a direct snapshot")
	}
	want, err := client.DecisionsRaw("alpha")
	if err != nil {
		t.Fatalf("DecisionsRaw: %v", err)
	}

	svc2, _, err := New(hostedConfig())
	if err != nil {
		t.Fatalf("New second host: %v", err)
	}
	defer svc2.Close()
	if _, err := svc2.OpenShard(shard, hookBytes); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	got, err := NewClient(srv2.URL).DecisionsRaw("alpha")
	if err != nil {
		t.Fatalf("DecisionsRaw on new host: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("migrated decision stream diverges\ngot:  %.300s\nwant: %.300s", got, want)
	}
}

// TestHostedTickNoOpenShards pins that a service-wide tick with zero leases
// held is an error and leaves the round counter alone, rather than quietly
// resetting it to zero.
func TestHostedTickNoOpenShards(t *testing.T) {
	svc, _, err := New(hostedConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	if _, err := svc.Tick(1); err == nil {
		t.Fatal("Tick with no open shards succeeded")
	}
	if _, err := svc.OpenShard(0, nil); err != nil {
		t.Fatalf("open: %v", err)
	}
	if r, err := svc.Tick(3); err != nil || r != 3 {
		t.Fatalf("Tick(3): r=%d err=%v", r, err)
	}
	if _, err := svc.CloseShard(0); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := svc.Tick(1); err == nil {
		t.Fatal("Tick after closing the last shard succeeded")
	}
	if got := svc.Round(); got != 3 {
		t.Fatalf("round counter reset to %d by a no-op tick, want 3", got)
	}
}

// TestHostedSyncShard pins the checkpoint-repair path: when a tick's hook push
// fails, the shard has still advanced; SyncShard re-offers the current state
// to the hook without ticking, and the bytes match a direct snapshot.
func TestHostedSyncShard(t *testing.T) {
	var mu sync.Mutex
	fail := false
	var gotRound int64 = -1
	var gotBytes []byte
	calls := 0
	cfg := hostedConfig()
	cfg.OnShardCheckpoint = func(shard int, round int64, data []byte) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if fail {
			return errors.New("injected push failure")
		}
		gotRound = round
		gotBytes = append([]byte(nil), data...)
		return nil
	}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClientPolicy(srv.URL, SingleShot())

	// Sync against a closed shard misdirects (classic 421 semantics).
	if _, err := client.SyncShard(0); !errors.Is(err, ErrMisdirected) {
		t.Fatalf("sync on closed shard: err=%v", err)
	}
	if _, err := svc.OpenShard(0, nil); err != nil {
		t.Fatalf("open: %v", err)
	}

	// A tick whose hook push fails surfaces the error but keeps the round.
	mu.Lock()
	fail = true
	mu.Unlock()
	if _, err := svc.TickShard(0, 1); err == nil {
		t.Fatal("tick with failing hook succeeded")
	}
	if st := svc.Stats(); st.PerShard[0].Round != 1 {
		t.Fatalf("shard round after failed-push tick = %d, want 1", st.PerShard[0].Round)
	}
	mu.Lock()
	if gotRound != -1 {
		mu.Unlock()
		t.Fatalf("hook recorded round %d despite failing", gotRound)
	}
	fail = false
	mu.Unlock()

	// Sync closes the gap: the hook now holds round 1 without further ticking,
	// and its bytes equal a direct snapshot.
	if r, err := client.SyncShard(0); err != nil || r != 1 {
		t.Fatalf("SyncShard: r=%d err=%v", r, err)
	}
	mu.Lock()
	round, bytesGot := gotRound, gotBytes
	mu.Unlock()
	if round != 1 {
		t.Fatalf("hook saw round %d after sync, want 1", round)
	}
	direct, err := svc.SnapshotShard(0)
	if err != nil {
		t.Fatalf("SnapshotShard: %v", err)
	}
	if !bytes.Equal(direct, bytesGot) {
		t.Fatal("sync checkpoint diverges from a direct snapshot")
	}
	if st := svc.Stats(); st.PerShard[0].Round != 1 {
		t.Fatalf("sync ticked the shard: round = %d, want 1", st.PerShard[0].Round)
	}

	// SyncShard is hosted-only.
	classic, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 8})
	if err != nil {
		t.Fatalf("New classic: %v", err)
	}
	defer classic.Close()
	if _, err := classic.SyncShard(0); err == nil {
		t.Error("SyncShard accepted on a classic service")
	}
}

// TestHostedConfigValidation pins the config cross-checks.
func TestHostedConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8, Hosted: true, StateDir: "x"},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8, Hosted: true, RoundEvery: 1},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8, OnShardCheckpoint: func(int, int64, []byte) error { return nil }},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8, CheckpointDecisions: true},
	}
	for i, cfg := range bad {
		if _, _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Open/close/per-shard ticks are hosted-only.
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	if _, err := svc.OpenShard(0, nil); err == nil {
		t.Error("OpenShard accepted on a classic service")
	}
	if _, err := svc.CloseShard(0); err == nil {
		t.Error("CloseShard accepted on a classic service")
	}
	if _, err := svc.TickShard(0, 1); err == nil {
		t.Error("TickShard accepted on a classic service")
	}
	if _, err := svc.SnapshotShard(5); err == nil {
		t.Error("SnapshotShard accepted an out-of-range shard")
	}
}
