package serve

import (
	"strings"
	"testing"
)

func validRequest() *SubmitRequest {
	return &SubmitRequest{
		Schema: WireSchema,
		Tenant: "tenant-a",
		Jobs: []SubmitJob{
			{ID: 0, Color: 0, Delay: 4},
			{ID: 1, Color: 1, Delay: 8},
			{ID: 5, Color: 0, Delay: 4},
		},
	}
}

func TestDecodeSubmitRoundTrip(t *testing.T) {
	want := validRequest()
	data, err := EncodeSubmit(want)
	if err != nil {
		t.Fatalf("EncodeSubmit: %v", err)
	}
	got, err := DecodeSubmit(data)
	if err != nil {
		t.Fatalf("DecodeSubmit: %v", err)
	}
	if got.Schema != want.Schema || got.Tenant != want.Tenant || len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("job %d: got %+v want %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}
}

func TestDecodeSubmitRejects(t *testing.T) {
	mutate := func(f func(*SubmitRequest)) *SubmitRequest {
		req := validRequest()
		f(req)
		return req
	}
	cases := []struct {
		name string
		req  *SubmitRequest
		frag string // substring the error must carry
	}{
		{"wrong schema", mutate(func(r *SubmitRequest) { r.Schema = "rrserve/v0" }), "schema"},
		{"empty tenant", mutate(func(r *SubmitRequest) { r.Tenant = "" }), "tenant"},
		{"long tenant", mutate(func(r *SubmitRequest) { r.Tenant = strings.Repeat("x", MaxTenantLen+1) }), "max"},
		{"control byte tenant", mutate(func(r *SubmitRequest) { r.Tenant = "a\nb" }), "control"},
		{"no jobs", mutate(func(r *SubmitRequest) { r.Jobs = nil }), "no jobs"},
		{"negative id", mutate(func(r *SubmitRequest) { r.Jobs[0].ID = -1 }), "negative id"},
		{"nonincreasing ids", mutate(func(r *SubmitRequest) { r.Jobs[1].ID = 0 }), "strictly increasing"},
		{"negative color", mutate(func(r *SubmitRequest) { r.Jobs[2].Color = -3 }), "negative color"},
		{"zero delay", mutate(func(r *SubmitRequest) { r.Jobs[0].Delay = 0 }), "delay bound"},
		{"huge delay", mutate(func(r *SubmitRequest) { r.Jobs[0].Delay = MaxDelayBound + 1 }), "delay bound"},
		{"inconsistent delay", mutate(func(r *SubmitRequest) { r.Jobs[2].Delay = 16 }), "delay bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := EncodeSubmit(tc.req)
			if err == nil {
				// The encoder shares validateSubmit, so the decoder must
				// reject the same request.
				if _, derr := DecodeSubmit(data); derr == nil {
					t.Fatalf("both EncodeSubmit and DecodeSubmit accepted %+v", tc.req)
				}
				t.Fatalf("EncodeSubmit accepted %+v", tc.req)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestDecodeSubmitMalformedJSON(t *testing.T) {
	for _, data := range []string{"", "{", "[1,2,3]", `{"schema":42}`, "null"} {
		if _, err := DecodeSubmit([]byte(data)); err == nil {
			t.Fatalf("DecodeSubmit accepted %q", data)
		}
	}
}

func TestDecodeSubmitTooManyJobs(t *testing.T) {
	req := &SubmitRequest{Schema: WireSchema, Tenant: "t"}
	for i := 0; i <= MaxBatchJobs; i++ {
		req.Jobs = append(req.Jobs, SubmitJob{ID: int64(i), Color: 0, Delay: 4})
	}
	if _, err := EncodeSubmit(req); err == nil {
		t.Fatalf("EncodeSubmit accepted %d jobs", len(req.Jobs))
	}
}

func TestValidateTenantBoundary(t *testing.T) {
	if err := ValidateTenant(strings.Repeat("x", MaxTenantLen)); err != nil {
		t.Fatalf("max-length tenant rejected: %v", err)
	}
	if err := ValidateTenant("tenant with spaces and ünïcode"); err != nil {
		t.Fatalf("printable tenant rejected: %v", err)
	}
	if err := ValidateTenant("\x7f"); err == nil {
		t.Fatal("DEL byte accepted")
	}
}
