package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/stream"
	"rrsched/internal/workload"
)

// detTenant is one tenant of the end-to-end determinism fixture: a seeded
// workload plus the global round at which the tenant starts submitting
// (startRound > 0 exercises the epoch offset for late tenants).
type detTenant struct {
	name       string
	seq        *model.Sequence
	startRound int64
}

func detFixture(t *testing.T, seed int64) []detTenant {
	t.Helper()
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "late-tenant"}
	tenants := make([]detTenant, len(names))
	for i, name := range names {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed:        seed + int64(i),
			Delta:       4,
			Colors:      4 + i%3,
			Rounds:      20,
			MinDelayExp: 2,
			MaxDelayExp: 4,
			Load:        0.7,
		})
		if err != nil {
			t.Fatalf("workload for %s: %v", name, err)
		}
		tenants[i] = detTenant{name: name, seq: seq.Canonical()}
	}
	// The last tenant appears late: its first submission (local round 0)
	// happens at global round 5, so its epoch must offset every local round.
	tenants[len(tenants)-1].startRound = 5
	return tenants
}

// driveService replays the fixture against a service over real HTTP. Each
// global round, the tenants submit concurrently with each other and in
// varying batch splits — a tenant's own batches stay sequential, since IDs
// must increase across its batches — before one tick. The cross-tenant
// interleaving chaos is the point: decisions must not see it.
func driveService(t *testing.T, client *Client, tenants []detTenant, totalRounds int64) {
	t.Helper()
	driveServiceHook(t, client, tenants, totalRounds, nil)
}

// driveServiceHook is driveService with a per-round hook, called before the
// round's submissions; the reshard battery uses it to split or merge the
// pool mid-run.
func driveServiceHook(t *testing.T, client *Client, tenants []detTenant, totalRounds int64, hook func(r int64)) {
	t.Helper()
	for r := int64(0); r < totalRounds; r++ {
		if hook != nil {
			hook(r)
		}
		var wg sync.WaitGroup
		for i := range tenants {
			tn := &tenants[i]
			local := r - tn.startRound
			if local < 0 {
				continue
			}
			jobs := tn.seq.Request(local)
			if len(jobs) == 0 {
				continue
			}
			wg.Add(1)
			go func(name string, jobs []model.Job, split int) {
				defer wg.Done()
				for len(jobs) > 0 {
					n := split
					if n > len(jobs) {
						n = len(jobs)
					}
					wire := make([]SubmitJob, n)
					for k, j := range jobs[:n] {
						wire[k] = SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
					}
					jobs = jobs[n:]
					out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: name, Jobs: wire})
					if err != nil || !out.Accepted {
						t.Errorf("submit %s: out=%+v err=%v", name, out, err)
						return
					}
				}
			}(tn.name, tn.seq.Request(local), int(r%3)+1)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if _, err := client.Tick(1); err != nil {
			t.Fatalf("Tick at round %d: %v", r, err)
		}
	}
}

// epochOf returns the global round at which the service creates the tenant:
// its first accepted submission, i.e. the first local round with arrivals,
// offset by when the tenant starts submitting.
func epochOf(tn detTenant) int64 {
	for local := int64(0); local < tn.seq.NumRounds(); local++ {
		if len(tn.seq.Request(local)) > 0 {
			return tn.startRound + local
		}
	}
	return tn.startRound
}

// referenceDecisions replays one tenant's arrivals through a bare
// stream.Scheduler at tenant-local rounds, exactly as the service promises
// to: one Push per local round, jobs sorted by ID. Local round 0 is the
// tenant's epoch — its first accepted submission — so sequence rounds before
// the first arrival shift out of the local frame.
func referenceDecisions(t *testing.T, tn detTenant, totalRounds int64, cfg Config) []stream.Decision {
	t.Helper()
	sched, err := stream.New(stream.Config{Delta: cfg.Delta, Resources: cfg.Resources})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	epoch := epochOf(tn)
	shift := epoch - tn.startRound
	var out []stream.Decision
	for local := int64(0); local < totalRounds-epoch; local++ {
		arrivals := tn.seq.Request(local + shift)
		jobs := make([]model.Job, len(arrivals))
		copy(jobs, arrivals)
		for i := range jobs {
			jobs[i].Arrival = local
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		dec, err := sched.Push(local, jobs)
		if err != nil {
			t.Fatalf("reference push for %s at local %d: %v", tn.name, local, err)
		}
		out = append(out, dec)
	}
	return out
}

// TestServiceDecisionsMatchBareScheduler is the end-to-end determinism
// property of the service: a seeded multi-tenant workload pushed through a
// 4-shard rrserve under concurrent, oddly-framed HTTP submissions yields,
// for every tenant, a decision stream byte-identical to a bare
// stream.Scheduler fed the same arrivals sequentially.
func TestServiceDecisionsMatchBareScheduler(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 42)
	// Enough rounds past the last arrival for every delay bound (max 2^4) to
	// expire, so the streams include the drop tail.
	totalRounds := int64(20 + 5 + 20)
	driveService(t, client, tenants, totalRounds)

	ring := newHashRing(cfg.Shards)
	for _, tn := range tenants {
		got, err := client.DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		want, err := MarshalResponse(&DecisionsResponse{
			Schema:    DecisionsSchema,
			Tenant:    tn.name,
			Shard:     ring.ShardOf(tn.name),
			Epoch:     epochOf(tn),
			Round:     totalRounds,
			Decisions: referenceDecisions(t, tn, totalRounds, cfg),
		})
		if err != nil {
			t.Fatalf("MarshalResponse: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s: service decisions diverge from bare scheduler\nservice:   %s\nreference: %s",
				tn.name, excerpt(got, want), excerpt(want, got))
		}
	}
}

// TestServiceDecisionsStableAcrossRuns re-runs the same fixture against a
// fresh service and demands byte-identical /v1/decisions responses — the
// service-level restatement of "decisions are a function of the input".
func TestServiceDecisionsStableAcrossRuns(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	run := func() map[string][]byte {
		svc, _, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer svc.Close()
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		client := NewClient(srv.URL)
		tenants := detFixture(t, 42)
		driveService(t, client, tenants, 45)
		out := map[string][]byte{}
		for _, tn := range tenants {
			raw, err := client.DecisionsRaw(tn.name)
			if err != nil {
				t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
			}
			out[tn.name] = raw
		}
		return out
	}
	first, second := run(), run()
	for name, a := range first {
		if !bytes.Equal(a, second[name]) {
			t.Fatalf("tenant %s: two identical runs produced different decision bytes", name)
		}
	}
}

// excerpt returns the neighborhood of the first byte where a and b differ,
// so a failure points at the divergence instead of dumping both documents.
func excerpt(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hi := i + 80
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("...%s... (diverges at byte %d of %d)", a[lo:hi], i, len(a))
}
