package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// classFixtureOutcomes drives a fixed two-class submission schedule against
// a fresh service configured with the given weights and returns the ordered
// admission outcomes plus each tenant's final decision bytes. The schedule
// brushes the class-share boundary so weight changes are visible in it.
func classFixtureOutcomes(t *testing.T, watermark int, classes []TenantClass) ([]string, map[string][]byte) {
	t.Helper()
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: watermark,
		Classes: classes, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := []struct{ name, class string }{
		{"a-one", "a"}, {"a-two", "a"}, {"b-one", "b"}, {"b-two", "b"},
	}
	var outcomes []string
	next := map[string]int64{}
	for round := 0; round < 12; round++ {
		for _, tn := range tenants {
			// Batch sizes sweep 1..6 so cumulative class backlogs cross any
			// share boundary between 1 and the watermark.
			n := 1 + (round+len(tn.name))%6
			jobs := make([]SubmitJob, n)
			for k := range jobs {
				jobs[k] = SubmitJob{ID: next[tn.name] + int64(k), Color: int32(k % 3), Delay: 8}
			}
			out, err := client.Submit(&SubmitRequest{
				Schema: WireSchema, Tenant: tn.name, Class: tn.class, Jobs: jobs,
			})
			if err != nil {
				t.Fatalf("submit %s round %d: %v", tn.name, round, err)
			}
			if out.Accepted {
				next[tn.name] += int64(n)
			}
			outcomes = append(outcomes, fmt.Sprintf("%s:%d:accepted=%v:rejected=%v", tn.name, round, out.Accepted, out.Rejected))
		}
		if _, err := client.Tick(1); err != nil {
			t.Fatalf("Tick round %d: %v", round, err)
		}
	}
	decisions := map[string][]byte{}
	for _, tn := range tenants {
		raw, err := client.DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		decisions[tn.name] = raw
	}
	return outcomes, decisions
}

// TestClassWeightScaleInvariance is the metamorphic property of weighted
// admission: multiplying every class weight by a common factor changes no
// admission decision and no decision stream — shares are ratios, not
// magnitudes.
func TestClassWeightScaleInvariance(t *testing.T) {
	base := []TenantClass{{Name: "a", Weight: 1}, {Name: "b", Weight: 3}}
	for _, k := range []int64{2, 7, 1000} {
		scaled := []TenantClass{{Name: "a", Weight: 1 * k}, {Name: "b", Weight: 3 * k}}
		outA, decA := classFixtureOutcomes(t, 24, base)
		outB, decB := classFixtureOutcomes(t, 24, scaled)
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("k=%d: admission decision %d diverged:\nbase:   %s\nscaled: %s", k, i, outA[i], outB[i])
			}
		}
		for name, a := range decA {
			if !bytes.Equal(a, decB[name]) {
				t.Fatalf("k=%d: tenant %s decision stream changed under weight scaling", k, name)
			}
		}
	}
}

// TestClassWeightMonotonicity pins the direction of weighted admission:
// growing one class's relative weight never shrinks its accepted-batch
// count, and the boundary case is exact — a batch that fits the fair share
// under equal weights is rejected once the weights tilt away.
func TestClassWeightMonotonicity(t *testing.T) {
	accepts := func(classes []TenantClass) (a, b int) {
		outs, _ := classFixtureOutcomes(t, 24, classes)
		for _, o := range outs {
			if !strings.Contains(o, "accepted=true") {
				continue
			}
			if strings.HasPrefix(o, "a-") {
				a++
			} else {
				b++
			}
		}
		return a, b
	}
	prevA := -1
	var prevB int
	for _, wa := range []int64{1, 2, 4, 8} {
		a, b := accepts([]TenantClass{{Name: "a", Weight: wa}, {Name: "b", Weight: 4}})
		if prevA >= 0 && (a < prevA || b > prevB) {
			t.Fatalf("weight a=%d: accepts a=%d b=%d, want monotone vs previous a=%d b=%d", wa, a, b, prevA, prevB)
		}
		prevA, prevB = a, b
	}

	// Exact boundary: watermark 40 split 20/20 admits a 15-job batch for
	// both classes; tilted to 10/30 the class-a batch must bounce off its
	// share while class-b still clears.
	boundary := func(classes []TenantClass) (SubmitOutcome, SubmitOutcome) {
		cfg := Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 40, Classes: classes}
		svc, _, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer svc.Close()
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		client := NewClient(srv.URL)
		batch := func(tenant, class string) SubmitOutcome {
			jobs := make([]SubmitJob, 15)
			for k := range jobs {
				jobs[k] = SubmitJob{ID: int64(k), Color: 0, Delay: 8}
			}
			out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tenant, Class: class, Jobs: jobs})
			if err != nil {
				t.Fatalf("submit %s: %v", tenant, err)
			}
			return out
		}
		return batch("alpha", "a"), batch("beta", "b")
	}
	outA, outB := boundary([]TenantClass{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}})
	if !outA.Accepted || !outB.Accepted {
		t.Fatalf("equal weights: a=%+v b=%+v, want both accepted", outA, outB)
	}
	outA, outB = boundary([]TenantClass{{Name: "a", Weight: 1}, {Name: "b", Weight: 3}})
	if !outA.Rejected || !outB.Accepted {
		t.Fatalf("1:3 weights: a=%+v b=%+v, want a rejected and b accepted", outA, outB)
	}
}

// TestClassAdmissionPlumbing covers the class wire contract: unknown class
// names are 400s, a tenant cannot switch classes mid-life, defaulted traffic
// is untouched, and /v1/stats aggregates per-class rows.
func TestClassAdmissionPlumbing(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 40,
		Classes: []TenantClass{{Name: "gold", Weight: 3}, {Name: "bronze", Weight: 1}}}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	if _, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha", Class: "platinum",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	}); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("unknown class: err=%v, want 400 naming it", err)
	}

	out, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha", Class: "gold",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("gold submit: out=%+v err=%v", out, err)
	}
	if _, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha", Class: "bronze",
		Jobs: []SubmitJob{{ID: 1, Color: 0, Delay: 4}},
	}); err == nil || !strings.Contains(err.Error(), "bound to class") {
		t.Fatalf("class switch: err=%v, want 400 naming the binding", err)
	}
	// Omitting the class on later batches keeps the binding.
	out, err = client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 1, Color: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("bound follow-up: out=%+v err=%v", out, err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	byName := map[string]ClassStats{}
	for _, cs := range st.Classes {
		byName[cs.Name] = cs
	}
	gold, ok := byName["gold"]
	if !ok {
		t.Fatalf("stats missing class gold: %+v", st.Classes)
	}
	if gold.Accepted != 2 || gold.Backlog != 2 || gold.Weight != 3 {
		t.Fatalf("gold stats %+v, want accepted=2 backlog=2 weight=3", gold)
	}
	if _, ok := byName["bronze"]; !ok {
		t.Fatalf("stats missing class bronze: %+v", st.Classes)
	}

	// Per-class counters ride the merged metrics under the class label.
	snap, err := svc.MergedMetrics()
	if err != nil {
		t.Fatalf("MergedMetrics: %v", err)
	}
	var goldAccepted int64
	for _, m := range snap.Metrics {
		if m.Name == MetricClassAccepted && m.Label == "gold" {
			goldAccepted += m.Value
		}
	}
	if goldAccepted != 2 {
		t.Fatalf("%s{gold} = %d, want 2", MetricClassAccepted, goldAccepted)
	}
}

// TestClassConfigValidation pins Config.validate on class lists: duplicate
// names, bad weights, and invalid names are refused; an unconfigured service
// still reports the implicit default class in stats.
func TestClassConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8,
			Classes: []TenantClass{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}}},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8,
			Classes: []TenantClass{{Name: "a", Weight: 0}}},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8,
			Classes: []TenantClass{{Name: "a", Weight: MaxClassWeight + 1}}},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8,
			Classes: []TenantClass{{Name: "", Weight: 1}}},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 8,
			Classes: []TenantClass{{Name: strings.Repeat("x", MaxClassLen+1), Weight: 1}}},
	}
	for i, cfg := range bad {
		if _, _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg.Classes)
		}
	}

	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	if out := submitJobs(t, client, "alpha", SubmitJob{ID: 0, Color: 0, Delay: 4}); !out.Accepted {
		t.Fatalf("default-class submit: %+v", out)
	}
	st := svc.Stats()
	if len(st.Classes) != 1 || st.Classes[0].Name != DefaultClass || st.Classes[0].Share != 8 {
		t.Fatalf("implicit default class stats %+v, want one %q row with the full watermark", st.Classes, DefaultClass)
	}
}
