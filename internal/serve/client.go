package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rrsched/internal/obs"
)

// Client is a thin typed client for the rrserve HTTP API, used by rrload,
// the CI smoke job, and the end-to-end tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the service at base (e.g.
// "http://127.0.0.1:8080"). The underlying http.Client reuses connections,
// which is what gives the load generator its throughput.
func NewClient(base string) *Client {
	return &Client{
		base: base,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// SubmitOutcome is the result of one submit call.
type SubmitOutcome struct {
	// Accepted is true for a 200 (the whole batch was queued).
	Accepted bool
	// Rejected is true for a 429 (watermark backpressure); RetryAfter is the
	// parsed Retry-After duration.
	Rejected   bool
	RetryAfter time.Duration
	// Refused is true for a 503 (service draining).
	Refused bool
	// Round and Backlog echo the SubmitResponse on acceptance.
	Round   int64
	Backlog int
}

// Submit posts one batch. Admission outcomes (429, 503) are reported in the
// SubmitOutcome, not as errors; an error means the request itself failed
// (transport, 400, unexpected status).
func (c *Client) Submit(req *SubmitRequest) (SubmitOutcome, error) {
	body, err := EncodeSubmit(req)
	if err != nil {
		return SubmitOutcome{}, err
	}
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return SubmitOutcome{}, fmt.Errorf("serve: submit: %w", err)
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		var sr SubmitResponse
		if err := decodeBody(resp.Body, &sr); err != nil {
			return SubmitOutcome{}, err
		}
		return SubmitOutcome{Accepted: true, Round: sr.Round, Backlog: sr.Backlog}, nil
	case http.StatusTooManyRequests:
		retry := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return SubmitOutcome{Rejected: true, RetryAfter: retry}, nil
	case http.StatusServiceUnavailable:
		return SubmitOutcome{Refused: true}, nil
	default:
		return SubmitOutcome{}, statusError("submit", resp)
	}
}

// Tick advances n rounds (virtual-time mode) and returns the new next round.
func (c *Client) Tick(n int) (int64, error) {
	resp, err := c.hc.Post(c.base+"/v1/tick?rounds="+strconv.Itoa(n), "application/json", nil)
	if err != nil {
		return 0, fmt.Errorf("serve: tick: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, statusError("tick", resp)
	}
	var tr TickResponse
	if err := decodeBody(resp.Body, &tr); err != nil {
		return 0, err
	}
	return tr.Round, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats() (*StatsResponse, error) {
	var sr StatsResponse
	if err := c.getJSON("/v1/stats", &sr); err != nil {
		return nil, err
	}
	if sr.Schema != StatsSchema {
		return nil, fmt.Errorf("serve: stats schema %q, want %q", sr.Schema, StatsSchema)
	}
	return &sr, nil
}

// StatsRaw fetches /v1/stats as raw bytes (for artifact files).
func (c *Client) StatsRaw() ([]byte, error) {
	return c.getRaw("/v1/stats")
}

// Metrics fetches and decodes the merged /metrics snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	data, err := c.getRaw("/metrics")
	if err != nil {
		return nil, err
	}
	return obs.ReadSnapshot(bytes.NewReader(data))
}

// Decisions fetches a tenant's recorded decision stream.
func (c *Client) Decisions(tenant string) (*DecisionsResponse, error) {
	var dr DecisionsResponse
	if err := c.getJSON("/v1/decisions?tenant="+url.QueryEscape(tenant), &dr); err != nil {
		return nil, err
	}
	return &dr, nil
}

// DecisionsRaw fetches the decision stream as raw bytes, for byte-identity
// comparison against MarshalResponse of a reference run.
func (c *Client) DecisionsRaw(tenant string) ([]byte, error) {
	return c.getRaw("/v1/decisions?tenant=" + url.QueryEscape(tenant))
}

// Ready reports whether /readyz returns 200.
func (c *Client) Ready() bool {
	resp, err := c.hc.Get(c.base + "/readyz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Healthy reports whether /healthz returns 200.
func (c *Client) Healthy() bool {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Client) getRaw(path string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, fmt.Errorf("serve: get %s: %w", path, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(path, resp)
	}
	return io.ReadAll(resp.Body)
}

func (c *Client) getJSON(path string, v any) error {
	data, err := c.getRaw(path)
	if err != nil {
		return err
	}
	return decodeBody(bytes.NewReader(data), v)
}

func decodeBody(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: reading response: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("serve: decoding response: %w", err)
	}
	return nil
}

// statusError turns a non-2xx response into an error carrying the server's
// ErrorResponse body when one is present.
func statusError(op string, resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) // body is advisory; status alone is actionable
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return fmt.Errorf("serve: %s: %s (%s)", op, resp.Status, er.Error)
	}
	return fmt.Errorf("serve: %s: %s", op, resp.Status)
}

// drainClose discards any unread body and closes it, which lets the
// transport reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 4096)) // best-effort connection reuse
	_ = body.Close()                                       // read side already consumed; close error carries no signal
}
