package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rrsched/internal/obs"
)

// RetryPolicy controls the client's request retries: capped exponential
// backoff with jitter. Retries fire on transport failures (connection reset,
// refused, EOF mid-response) and on 500/502/504; a 429 is retried only under
// RetryBackpressure, waiting out the server's Retry-After when one is given.
// A 503 is never retried — it means the service is draining, and hammering a
// draining service only slows its exit.
//
// Retrying a submit is safe even when the first attempt's fate is unknown:
// batch admission is all-or-nothing and job IDs are strictly increasing, so a
// resend of a batch that did land is answered with 409 (duplicate), which the
// client reports as SubmitOutcome.Duplicate — admitted, just not by this
// attempt.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (>= 1). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it, capped at MaxDelay. The actual wait is jittered
	// uniformly over [delay/2, delay).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// RetryBackpressure also retries 429 responses, waiting max(backoff,
	// Retry-After). Off, a 429 surfaces immediately as a Rejected outcome —
	// the right default for load generators that account for backpressure.
	RetryBackpressure bool
	// Seed seeds the jitter PRNG, keeping retry schedules reproducible.
	Seed int64
}

// DefaultRetryPolicy is what NewClient uses: a handful of quick attempts
// that ride out a worker failover or a dropped connection without masking
// backpressure.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1}
}

// SingleShot disables retries entirely: every outcome, including transport
// failures, surfaces on the first attempt.
func SingleShot() RetryPolicy {
	return RetryPolicy{MaxAttempts: 1}
}

func (p RetryPolicy) validate() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// WireMode selects the codec a client speaks on the submit/tick/sync
// endpoints.
type WireMode int

const (
	// WireAuto (the zero value, and the default) speaks rrserve/v2 binary
	// and falls back to JSON — permanently, per client — the first time a
	// server proves it cannot decode a frame (415, or a 400 whose error is
	// the JSON decoder choking on frame bytes). The fallback triggers are
	// deliberately narrow: an admission 400 must surface to the caller, not
	// silently re-submit a batch the server already judged.
	WireAuto WireMode = iota
	// WireJSON speaks rrserve/v1 JSON only (the debugging oracle).
	WireJSON
	// WireBinary speaks rrserve/v2 binary only, no fallback — for tests and
	// benchmarks that must fail loudly on a codec mismatch.
	WireBinary
)

// String names the mode, matching rrload's -wire flag values.
func (m WireMode) String() string {
	switch m {
	case WireJSON:
		return "json"
	case WireBinary:
		return "binary"
	default:
		return "auto"
	}
}

// ParseWireMode parses an rrload-style -wire flag value.
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "auto", "":
		return WireAuto, nil
	case "json":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	default:
		return WireAuto, fmt.Errorf("serve: wire mode %q, want auto, json, or binary", s)
	}
}

// Client is a thin typed client for the rrserve HTTP API, used by rrload,
// the dispatcher/worker tier, the CI smoke jobs, and the end-to-end tests.
type Client struct {
	base   string
	hc     *http.Client
	policy RetryPolicy
	wire   WireMode
	// jsonLatched is set in WireAuto mode once a server proves JSON-only;
	// every later request skips the binary attempt.
	jsonLatched atomic.Bool
	// epoch is the last placement epoch the server reported; submits assert
	// it so a reshard the client has not seen yet surfaces as a typed 409
	// instead of landing on a stale shard's queue.
	epoch atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
	// sleep is time.Sleep unless a test injects a recorder.
	sleep func(time.Duration)
}

// NewClient returns a client for the service at base (e.g.
// "http://127.0.0.1:8080") with the default retry policy and auto wire
// negotiation. The underlying http.Client reuses connections, which is what
// gives the load generator its throughput.
func NewClient(base string) *Client {
	return NewClientPolicy(base, DefaultRetryPolicy())
}

// NewClientPolicy returns a client with an explicit retry policy (and auto
// wire negotiation).
func NewClientPolicy(base string, policy RetryPolicy) *Client {
	return NewClientWire(base, policy, WireAuto)
}

// NewClientWire returns a client with an explicit retry policy and wire mode.
func NewClientWire(base string, policy RetryPolicy, wire WireMode) *Client {
	policy = policy.validate()
	return &Client{
		base:   base,
		policy: policy,
		wire:   wire,
		rng:    rand.New(rand.NewSource(policy.Seed)),
		sleep:  time.Sleep,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// useBinary reports whether the next request should speak binary.
func (c *Client) useBinary() bool {
	switch c.wire {
	case WireBinary:
		return true
	case WireJSON:
		return false
	default:
		return !c.jsonLatched.Load()
	}
}

// backoff returns the jittered wait before attempt (2nd attempt = 1), at
// least floor (a server-provided Retry-After).
func (c *Client) backoff(attempt int, floor time.Duration) time.Duration {
	d := c.policy.BaseDelay << (attempt - 1)
	if d > c.policy.MaxDelay || d <= 0 {
		d = c.policy.MaxDelay
	}
	c.mu.Lock()
	// Jitter uniformly over [d/2, d) so synchronized clients desynchronize.
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	if d < floor {
		d = floor
	}
	return d
}

// retryableStatus reports whether a response status warrants another attempt
// under the policy.
func (c *Client) retryableStatus(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	case http.StatusTooManyRequests:
		return c.policy.RetryBackpressure
	default:
		return false
	}
}

// do issues one request with retries and returns the final response body and
// status. Any returned status is from a completed HTTP exchange; an error
// means every attempt failed at the transport layer. contentType and accept,
// when non-empty, override the default JSON negotiation headers.
func (c *Client) do(method, path string, body []byte, contentType, accept string) (status int, respBody []byte, header http.Header, err error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, rerr := http.NewRequest(method, c.base+path, reader)
		if rerr != nil {
			return 0, nil, nil, fmt.Errorf("serve: building %s %s: %w", method, path, rerr)
		}
		if body != nil {
			if contentType == "" {
				contentType = ContentTypeJSON
			}
			req.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, derr := c.hc.Do(req)
		retryAfter := time.Duration(0)
		if derr != nil {
			lastErr = fmt.Errorf("serve: %s %s: %w", method, path, derr)
		} else {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
			drainClose(resp.Body)
			if rerr == nil {
				if !c.retryableStatus(resp.StatusCode) {
					return resp.StatusCode, data, resp.Header, nil
				}
				lastErr = fmt.Errorf("serve: %s %s: %s", method, path, resp.Status)
				if v := resp.Header.Get("Retry-After"); v != "" {
					if secs, perr := strconv.Atoi(v); perr == nil && secs >= 0 {
						retryAfter = time.Duration(secs) * time.Second
					}
				}
			} else {
				lastErr = fmt.Errorf("serve: reading %s %s response: %w", method, path, rerr)
			}
		}
		if attempt >= c.policy.MaxAttempts {
			return 0, nil, nil, lastErr
		}
		c.sleep(c.backoff(attempt, retryAfter))
	}
}

// SubmitOutcome is the result of one submit call.
type SubmitOutcome struct {
	// Accepted is true for a 200 (the whole batch was queued).
	Accepted bool
	// Duplicate is true for a 409: every ID in the batch is at or below the
	// tenant's high-water mark, meaning the batch already landed (admission
	// is all-or-nothing) — the idempotent-resend answer. Callers treating
	// submits as at-least-once should count Accepted || Duplicate as success.
	//
	// The server verifies IDs, not payloads: Duplicate is only trustworthy
	// when the resend is the original batch, byte for byte. Resending with
	// different batch boundaries (re-chunking jobs across batches after a
	// failure) is outside the idempotency contract and can mark jobs admitted
	// that never were.
	Duplicate bool
	// Rejected is true for a 429 (watermark backpressure); RetryAfter is the
	// parsed Retry-After duration.
	Rejected   bool
	RetryAfter time.Duration
	// Refused is true for a 503 (service draining).
	Refused bool
	// Misdirected is true for a 421: a hosted worker that does not hold the
	// tenant's shard. The caller should refresh placement and resend.
	Misdirected bool
	// EpochSkew is true for a 409 carrying Code "epoch_skew": the request
	// asserted a placement epoch the service has moved past. Submit handles
	// it transparently unless the caller pinned SubmitRequest.Epoch itself.
	EpochSkew bool
	// Round and Backlog echo the SubmitResponse on acceptance.
	Round   int64
	Backlog int
	// Epoch is the placement epoch the server reported: the current one on
	// acceptance, or the retry hint on an EpochSkew 409 (zero when the
	// server predates placement epochs).
	Epoch int64
}

// Landed reports whether the batch is in the server's hands: accepted by this
// call or already admitted by an earlier one.
func (o SubmitOutcome) Landed() bool { return o.Accepted || o.Duplicate }

// Submit posts one batch. Admission outcomes (429, 503, 409, 421) are
// reported in the SubmitOutcome, not as errors; an error means the request
// itself failed (transport after retries, 400, unexpected status). The wire
// format follows the client's WireMode; in WireAuto a JSON-only server costs
// one extra round trip on the first submit and none after.
//
// Unless the caller pins SubmitRequest.Epoch, the client asserts its learned
// placement epoch and transparently adopts the server's retry hint on an
// epoch_skew 409 — a reshard costs unpinned callers one extra round trip,
// never an error. Pinned epochs surface the skew as SubmitOutcome.EpochSkew.
func (c *Client) Submit(req *SubmitRequest) (SubmitOutcome, error) {
	pinned := req.Epoch != 0
	for attempt := 0; ; attempt++ {
		if !pinned {
			req.Epoch = c.epoch.Load()
		}
		out, err := c.submitOnce(req)
		if !pinned {
			req.Epoch = 0 // the caller's request is not ours to mutate
		}
		if err != nil || !out.EpochSkew || pinned || attempt >= 3 {
			return out, err
		}
		// Adopt the hint and resend. A zero hint (pre-epoch server, or a
		// proxy that stripped it) clears the assertion entirely.
		c.epoch.Store(out.Epoch)
	}
}

// submitOnce posts one batch with whatever epoch assertion req carries.
func (c *Client) submitOnce(req *SubmitRequest) (SubmitOutcome, error) {
	if c.useBinary() {
		out, err, fellBack := c.submitBinary(req)
		if !fellBack {
			return out, err
		}
	}
	return c.submitJSON(req)
}

// submitBinary posts one batch as an rrserve/v2 frame. fellBack reports that
// the server proved JSON-only and the caller must resend as JSON; the
// request cannot have been admitted in that case (the server never parsed
// it), so the resend is safe.
func (c *Client) submitBinary(req *SubmitRequest) (out SubmitOutcome, err error, fellBack bool) {
	fb := acquireFrameBuf()
	defer releaseFrameBuf(fb)
	body, err := AppendSubmitBinary(fb.b[:0], req)
	if err != nil {
		return SubmitOutcome{}, err, false
	}
	fb.b = body
	status, data, header, err := c.do(http.MethodPost, "/v1/jobs", body, ContentTypeBinary, ContentTypeBinary)
	if err != nil {
		return SubmitOutcome{}, fmt.Errorf("serve: submit: %w", err), false
	}
	if c.wire == WireAuto {
		if status == http.StatusUnsupportedMediaType ||
			(status == http.StatusBadRequest && jsonDecodeReject(data)) {
			c.jsonLatched.Store(true)
			return SubmitOutcome{}, nil, true
		}
	}
	out, err = c.parseSubmitResponse(status, data, header)
	return out, err, false
}

// submitJSON posts one batch as rrserve/v1 JSON.
func (c *Client) submitJSON(req *SubmitRequest) (SubmitOutcome, error) {
	body, err := EncodeSubmit(req)
	if err != nil {
		return SubmitOutcome{}, err
	}
	status, data, header, err := c.do(http.MethodPost, "/v1/jobs", body, "", "")
	if err != nil {
		return SubmitOutcome{}, fmt.Errorf("serve: submit: %w", err)
	}
	return c.parseSubmitResponse(status, data, header)
}

// jsonDecodeReject reports whether a 400 body is a JSON-only server's
// decoder choking on bytes it cannot parse — the one 400 that proves the
// request never reached admission. Admission 400s (id regressions,
// delay-bound disagreements) carry different messages and must not trigger a
// fallback resend.
func jsonDecodeReject(data []byte) bool {
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return false
	}
	return strings.Contains(er.Error, "decoding submit request")
}

// parseSubmitResponse maps one completed submit exchange to an outcome. A
// 200 body is decoded by its Content-Type, so one client handles both a v2
// server's frames and a v1 server's JSON.
func (c *Client) parseSubmitResponse(status int, data []byte, header http.Header) (SubmitOutcome, error) {
	switch status {
	case http.StatusOK:
		var sr SubmitResponse
		if IsBinaryContent(header.Get("Content-Type")) {
			srp, err := DecodeSubmitResponseBinary(data)
			if err != nil {
				return SubmitOutcome{}, err
			}
			sr = *srp
		} else if err := decodeBody(bytes.NewReader(data), &sr); err != nil {
			return SubmitOutcome{}, err
		}
		if sr.Epoch != 0 {
			c.epoch.Store(sr.Epoch)
		}
		return SubmitOutcome{Accepted: true, Round: sr.Round, Backlog: sr.Backlog, Epoch: sr.Epoch}, nil
	case http.StatusConflict:
		// Two different 409s share the status: a duplicate batch (the
		// idempotent-resend answer) and a typed placement-epoch skew.
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err == nil && er.Code == ErrCodeEpochSkew {
			return SubmitOutcome{EpochSkew: true, Epoch: er.Epoch}, nil
		}
		return SubmitOutcome{Duplicate: true}, nil
	case http.StatusTooManyRequests:
		retry := time.Second
		if v := header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return SubmitOutcome{Rejected: true, RetryAfter: retry}, nil
	case http.StatusServiceUnavailable:
		return SubmitOutcome{Refused: true}, nil
	case http.StatusMisdirectedRequest:
		return SubmitOutcome{Misdirected: true}, nil
	default:
		return SubmitOutcome{}, bodyError("submit", status, data)
	}
}

// Tick advances n rounds (virtual-time mode) and returns the new next round.
func (c *Client) Tick(n int) (int64, error) {
	return c.tick("tick", "/v1/tick?rounds="+strconv.Itoa(n), EncodeTickBinary(n, -1))
}

// TickShard advances one hosted shard n rounds from its own round counter.
// ErrMisdirected is returned when the worker no longer holds the shard.
func (c *Client) TickShard(shard, n int) (int64, error) {
	return c.tick("tick", "/v1/tick?rounds="+strconv.Itoa(n)+"&shard="+strconv.Itoa(shard), EncodeTickBinary(n, shard))
}

// SyncShard asks the worker to re-push one hosted shard's checkpoint at its
// current round, without ticking, and returns that round. ErrMisdirected is
// returned when the worker no longer holds the shard.
func (c *Client) SyncShard(shard int) (int64, error) {
	return c.tick("sync", "/v1/sync?shard="+strconv.Itoa(shard), EncodeSyncBinary(shard))
}

// ErrMisdirected marks a per-shard request sent to a worker that does not
// hold the shard's lease; callers refresh placement and retry elsewhere.
var ErrMisdirected = fmt.Errorf("serve: shard is not hosted on this worker")

// tick posts a tick/sync. In a binary mode the request carries the frame AND
// the query parameters: an old server ignores the body and serves the query,
// a v2 server prefers the frame — so no fallback dance is needed here at
// all, and the response's Content-Type says which codec came back.
func (c *Client) tick(op, path string, frame []byte) (int64, error) {
	var (
		status int
		data   []byte
		header http.Header
		err    error
	)
	if c.useBinary() {
		status, data, header, err = c.do(http.MethodPost, path, frame, ContentTypeBinary, ContentTypeBinary)
	} else {
		status, data, header, err = c.do(http.MethodPost, path, []byte{}, "", "")
	}
	if err != nil {
		return 0, fmt.Errorf("serve: %s: %w", op, err)
	}
	if status == http.StatusMisdirectedRequest {
		return 0, ErrMisdirected
	}
	if status != http.StatusOK {
		return 0, bodyError(op, status, data)
	}
	if IsBinaryContent(header.Get("Content-Type")) {
		return DecodeTickResponseBinary(data)
	}
	var tr TickResponse
	if err := decodeBody(bytes.NewReader(data), &tr); err != nil {
		return 0, err
	}
	return tr.Round, nil
}

// Reshard resizes the pool to shards under live traffic and adopts the new
// placement epoch for subsequent submits.
func (c *Client) Reshard(shards int) (*ReshardResponse, error) {
	body, err := EncodeReshard(&ReshardRequest{Schema: ReshardSchema, Shards: shards})
	if err != nil {
		return nil, err
	}
	status, data, _, err := c.do(http.MethodPost, "/v1/reshard", body, "", "")
	if err != nil {
		return nil, fmt.Errorf("serve: reshard: %w", err)
	}
	if status != http.StatusOK {
		return nil, bodyError("reshard", status, data)
	}
	var rr ReshardResponse
	if err := decodeBody(bytes.NewReader(data), &rr); err != nil {
		return nil, err
	}
	if rr.Schema != ReshardSchema {
		return nil, fmt.Errorf("serve: reshard schema %q, want %q", rr.Schema, ReshardSchema)
	}
	c.epoch.Store(rr.Epoch)
	return &rr, nil
}

// PlacementEpoch returns the placement epoch the client last learned from
// the server (zero before any response carried one).
func (c *Client) PlacementEpoch() int64 { return c.epoch.Load() }

// Stats fetches /v1/stats.
func (c *Client) Stats() (*StatsResponse, error) {
	var sr StatsResponse
	if err := c.getJSON("/v1/stats", &sr); err != nil {
		return nil, err
	}
	if sr.Schema != StatsSchema {
		return nil, fmt.Errorf("serve: stats schema %q, want %q", sr.Schema, StatsSchema)
	}
	return &sr, nil
}

// StatsRaw fetches /v1/stats as raw bytes (for artifact files).
func (c *Client) StatsRaw() ([]byte, error) {
	return c.getRaw("/v1/stats")
}

// Metrics fetches and decodes the merged /metrics snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	data, err := c.getRaw("/metrics")
	if err != nil {
		return nil, err
	}
	return obs.ReadSnapshot(bytes.NewReader(data))
}

// Decisions fetches a tenant's recorded decision stream.
func (c *Client) Decisions(tenant string) (*DecisionsResponse, error) {
	var dr DecisionsResponse
	if err := c.getJSON("/v1/decisions?tenant="+url.QueryEscape(tenant), &dr); err != nil {
		return nil, err
	}
	return &dr, nil
}

// DecisionsRaw fetches the decision stream as raw bytes, for byte-identity
// comparison against MarshalResponse of a reference run.
func (c *Client) DecisionsRaw(tenant string) ([]byte, error) {
	return c.getRaw("/v1/decisions?tenant=" + url.QueryEscape(tenant))
}

// Ready reports whether /readyz returns 200. Single-shot: readiness polls
// supply their own cadence.
func (c *Client) Ready() bool {
	resp, err := c.hc.Get(c.base + "/readyz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Healthy reports whether /healthz returns 200. Single-shot, like Ready.
func (c *Client) Healthy() bool {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Client) getRaw(path string) ([]byte, error) {
	status, data, _, err := c.do(http.MethodGet, path, nil, "", "")
	if err != nil {
		return nil, fmt.Errorf("serve: get %s: %w", path, err)
	}
	if status != http.StatusOK {
		return nil, bodyError(path, status, data)
	}
	return data, nil
}

func (c *Client) getJSON(path string, v any) error {
	data, err := c.getRaw(path)
	if err != nil {
		return err
	}
	return decodeBody(bytes.NewReader(data), v)
}

func decodeBody(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: reading response: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("serve: decoding response: %w", err)
	}
	return nil
}

// bodyError turns a non-2xx response into an error carrying the server's
// ErrorResponse body when one is present.
func bodyError(op string, status int, data []byte) error {
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return fmt.Errorf("serve: %s: status %d (%s)", op, status, er.Error)
	}
	return fmt.Errorf("serve: %s: status %d", op, status)
}

// drainClose discards any unread body and closes it, which lets the
// transport reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 4096)) // best-effort connection reuse
	_ = body.Close()                                       // read side already consumed; close error carries no signal
}
