package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rrsched/internal/obs"
)

// httpStatus issues one request against the handler and returns the status.
func httpStatus(t *testing.T, srv *httptest.Server, method, path string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("building %s %s: %v", method, path, err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestHandlerMethodAndInputRefusals sweeps every endpoint's cheap refusal
// paths: wrong verb, malformed bodies, and out-of-range query parameters.
// These are the guards the daemons rely on to turn operator typos into 4xx
// instead of undefined behaviour.
func TestHandlerMethodAndInputRefusals(t *testing.T) {
	svc, _, err := New(Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		method, path string
		body         []byte
		want         int
	}{
		{http.MethodGet, "/v1/tick", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/stats", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/decisions?tenant=x", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/decisions?tenant=", nil, http.StatusBadRequest},
		{http.MethodGet, "/v1/reshard", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/reshard", []byte("{torn"), http.StatusBadRequest},
		{http.MethodPost, "/v1/reshard", []byte(`{"schema":"bogus","shards":2}`), http.StatusBadRequest},
		{http.MethodPost, "/metrics", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/sync", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/sync?shard=banana", nil, http.StatusBadRequest},
		{http.MethodPost, "/v1/sync?shard=7", nil, http.StatusBadRequest},
		{http.MethodPost, "/v1/sync", nil, http.StatusBadRequest}, // no shard named
	}
	for _, c := range cases {
		if got := httpStatus(t, srv, c.method, c.path, c.body); got != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, got, c.want)
		}
	}
}

// TestSyncEndpointRequiresHostedMode pins that a well-formed sync against a
// classic service surfaces the mode error rather than succeeding vacuously.
func TestSyncEndpointRequiresHostedMode(t *testing.T) {
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	if got := httpStatus(t, srv, http.MethodPost, "/v1/sync?shard=0", nil); got != http.StatusServiceUnavailable {
		t.Fatalf("sync on a classic service: status %d, want %d", got, http.StatusServiceUnavailable)
	}
}

// TestReshardEndpointRoundTrip drives POST /v1/reshard end to end: a valid
// request resizes the pool and the conflict guard refuses a no-op resize.
func TestReshardEndpointRoundTrip(t *testing.T) {
	svc, _, err := New(Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body, err := EncodeReshard(&ReshardRequest{Schema: ReshardSchema, Shards: 3})
	if err != nil {
		t.Fatalf("EncodeReshard: %v", err)
	}
	if got := httpStatus(t, srv, http.MethodPost, "/v1/reshard", body); got != http.StatusOK {
		t.Fatalf("reshard 2->3: status %d, want 200", got)
	}
	if got := svc.Stats().Shards; got != 3 {
		t.Fatalf("shards after reshard: %d, want 3", got)
	}
	// Resizing to the current count is a conflict, not a silent success.
	if got := httpStatus(t, srv, http.MethodPost, "/v1/reshard", body); got != http.StatusConflict {
		t.Fatalf("no-op reshard: status %d, want %d", got, http.StatusConflict)
	}
}

// TestRetryAfterSeconds pins the 429 pacing hint: virtual-time services tell
// clients to retry after the driver's next tick (1s), real-time services
// after one round duration rounded up.
func TestRetryAfterSeconds(t *testing.T) {
	virtual := &Service{cfg: Config{}}
	if got := virtual.retryAfterSeconds(); got != "1" {
		t.Fatalf("virtual retry-after = %q, want \"1\"", got)
	}
	real := &Service{cfg: Config{RoundEvery: 1500 * time.Millisecond}}
	if got := real.retryAfterSeconds(); got != "2" {
		t.Fatalf("real-time retry-after = %q, want \"2\"", got)
	}
}

// TestStartTicksRealTimeService pins the real-time ticker: Start advances
// rounds without a driver, is idempotent, and Close stops it cleanly.
func TestStartTicksRealTimeService(t *testing.T) {
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10,
		RoundEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if svc.Virtual() {
		t.Fatal("RoundEvery set but service reports virtual time")
	}
	svc.Start()
	svc.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for svc.Round() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never advanced the round")
		}
		time.Sleep(time.Millisecond)
	}
	svc.Close()
	// A virtual-time service treats Start as a no-op.
	vsvc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer vsvc.Close()
	vsvc.Start()
	if vsvc.Round() != 0 {
		t.Fatalf("virtual service round moved to %d after Start", vsvc.Round())
	}
}

// TestMetricsEndpointExposition pins the scrape surface: GET /metrics is a
// JSON snapshot document that decodes and carries the checkpoint vocabulary.
func TestMetricsEndpointExposition(t *testing.T) {
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics document does not decode: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("metrics document is empty")
	}
	if !strings.Contains(buf.String(), obs.MetricCkptChunksWritten) {
		t.Fatalf("exposition lacks the checkpoint vocabulary:\n%.300s", buf.String())
	}
}
