package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRingMatchesServicePlacement pins the exported Ring against the
// service's own routing: same shard for the same tenant, and a shard-count
// validation error for a degenerate ring.
func TestRingMatchesServicePlacement(t *testing.T) {
	svc, _, err := New(Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	ring, err := NewRing(4)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for _, tn := range []string{"alpha", "beta", "gamma", "tenant-0042"} {
		if got, want := ring.ShardOf(tn), svc.ShardFor(tn); got != want {
			t.Errorf("ShardOf(%q) = %d, service routes to %d", tn, got, want)
		}
	}
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) accepted")
	}
}

// TestWireModeFlagRoundTrip pins the -wire flag surface: every mode parses
// back from its String form, and junk is rejected.
func TestWireModeFlagRoundTrip(t *testing.T) {
	for _, m := range []WireMode{WireAuto, WireJSON, WireBinary} {
		got, err := ParseWireMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseWireMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if got, err := ParseWireMode(""); err != nil || got != WireAuto {
		t.Errorf("ParseWireMode(\"\") = %v, %v; want auto", got, err)
	}
	if _, err := ParseWireMode("carrier-pigeon"); err == nil {
		t.Error("ParseWireMode accepted junk")
	}
}

// TestStatsRawCarriesSchema pins the raw stats fetch used for artifact
// files: the bytes are the schema-versioned JSON document, verbatim.
func TestStatsRawCarriesSchema(t *testing.T) {
	svc, _, err := New(Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	raw, err := NewClient(srv.URL).StatsRaw()
	if err != nil {
		t.Fatalf("StatsRaw: %v", err)
	}
	if !strings.Contains(string(raw), StatsSchema) {
		t.Fatalf("raw stats lack the schema marker:\n%.200s", raw)
	}
	var sr StatsResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("raw stats do not decode: %v", err)
	}
	if sr.Schema != StatsSchema || sr.Shards != 2 {
		t.Fatalf("decoded stats: schema=%q shards=%d", sr.Schema, sr.Shards)
	}
}

// TestDrainingFlag pins the Draining accessor across BeginDrain.
func TestDrainingFlag(t *testing.T) {
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	if svc.Draining() {
		t.Fatal("fresh service reports draining")
	}
	svc.BeginDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
}

// TestHardenedServerBoundsTimeouts pins the slowloris defence: every daemon
// serves through HardenedServer, so its deadlines must all be set.
func TestHardenedServerBoundsTimeouts(t *testing.T) {
	hs := HardenedServer(nil)
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("HardenedServer leaves a timeout unbounded: %+v", hs)
	}
}
