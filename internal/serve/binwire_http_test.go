package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rrsched/internal/model"
	"rrsched/internal/obs"
)

// TestMixedProtocolDecisionDeterminism is the headline e2e property of the
// v2 wire: half the tenants speak binary, half JSON, all submitting
// concurrently against a 4-shard service — and every tenant's recorded
// decision stream is byte-identical to a bare stream.Scheduler fed the same
// arrivals. The wire format must be invisible to scheduling.
func TestMixedProtocolDecisionDeterminism(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	tenants := detFixture(t, 42)
	clients := make([]*Client, len(tenants))
	for i := range tenants {
		mode := WireBinary
		if i%2 == 1 {
			mode = WireJSON
		}
		clients[i] = NewClientWire(srv.URL, DefaultRetryPolicy(), mode)
	}
	ticker := NewClientWire(srv.URL, DefaultRetryPolicy(), WireBinary)

	totalRounds := int64(45)
	for r := int64(0); r < totalRounds; r++ {
		var wg sync.WaitGroup
		for i := range tenants {
			tn := &tenants[i]
			local := r - tn.startRound
			if local < 0 {
				continue
			}
			jobs := tn.seq.Request(local)
			if len(jobs) == 0 {
				continue
			}
			wg.Add(1)
			go func(client *Client, name string, jobs []model.Job, split int) {
				defer wg.Done()
				for len(jobs) > 0 {
					n := split
					if n > len(jobs) {
						n = len(jobs)
					}
					wire := make([]SubmitJob, n)
					for k, j := range jobs[:n] {
						wire[k] = SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
					}
					jobs = jobs[n:]
					out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: name, Jobs: wire})
					if err != nil || !out.Accepted {
						t.Errorf("submit %s: out=%+v err=%v", name, out, err)
						return
					}
				}
			}(clients[i], tn.name, jobs, int(r%3)+1)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if _, err := ticker.Tick(1); err != nil {
			t.Fatalf("Tick at round %d: %v", r, err)
		}
	}

	ring := newHashRing(cfg.Shards)
	for i, tn := range tenants {
		got, err := clients[i].DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		want, err := MarshalResponse(&DecisionsResponse{
			Schema:    DecisionsSchema,
			Tenant:    tn.name,
			Shard:     ring.ShardOf(tn.name),
			Epoch:     epochOf(tn),
			Round:     totalRounds,
			Decisions: referenceDecisions(t, tn, totalRounds, cfg),
		})
		if err != nil {
			t.Fatalf("MarshalResponse: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s (wire %s): decisions diverge from bare scheduler\nservice:   %s\nreference: %s",
				tn.name, clients[i].wire, excerpt(got, want), excerpt(want, got))
		}
	}
}

// jsonOnlyMiddleware emulates a pre-v2 server in front of handler: it has no
// idea binary content exists, so the request reaches the JSON decoder as-is
// and fails with the JSON decoder's 400 — exactly what an old rrserve would
// answer. binarySeen counts frames that reached the "old" server.
func jsonOnlyMiddleware(handler http.Handler, binarySeen *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if IsBinaryContent(r.Header.Get("Content-Type")) {
			binarySeen.Add(1)
			r.Header.Set("Content-Type", ContentTypeJSON)
		}
		r.Header.Del("Accept")
		handler.ServeHTTP(w, r)
	})
}

// TestWireAutoFallsBackOnJSONOnlyServer: a WireAuto client against a server
// that predates the binary wire retries the batch as JSON, latches, and never
// sends another frame — and the batch lands exactly once.
func TestWireAutoFallsBackOnJSONOnlyServer(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	var binarySeen atomic.Int64
	srv := httptest.NewServer(jsonOnlyMiddleware(svc.Handler(), &binarySeen))
	defer srv.Close()

	client := NewClient(srv.URL) // WireAuto
	out, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "legacy", Jobs: []SubmitJob{{ID: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("submit through fallback: out=%+v err=%v", out, err)
	}
	if !client.jsonLatched.Load() {
		t.Fatal("client did not latch to JSON after the fallback")
	}
	if n := binarySeen.Load(); n != 1 {
		t.Fatalf("old server saw %d binary frames, want exactly 1", n)
	}
	// Latched: the next submit goes straight to JSON.
	out, err = client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "legacy", Jobs: []SubmitJob{{ID: 1, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("post-latch submit: out=%+v err=%v", out, err)
	}
	if n := binarySeen.Load(); n != 1 {
		t.Fatalf("latched client sent another binary frame (%d total)", n)
	}
	// Ticks survive the old server too: the binary tick carries its
	// parameters in the query string as well, so no fallback is needed.
	if _, err := client.Tick(1); err != nil {
		t.Fatalf("tick against JSON-only server: %v", err)
	}
	// The tenant's state reflects exactly one admission of job 0 and 1.
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Totals.Accepted != 2 {
		t.Fatalf("accepted=%d after fallback, want 2 (no double submit)", st.Totals.Accepted)
	}
}

// TestWireBinaryModeDoesNotFallBack: a client pinned to WireBinary surfaces
// the old server's rejection instead of silently downgrading.
func TestWireBinaryModeDoesNotFallBack(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	var binarySeen atomic.Int64
	srv := httptest.NewServer(jsonOnlyMiddleware(svc.Handler(), &binarySeen))
	defer srv.Close()

	client := NewClientWire(srv.URL, SingleShot(), WireBinary)
	_, err = client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "pinned", Jobs: []SubmitJob{{ID: 0, Delay: 4}},
	})
	if err == nil {
		t.Fatal("pinned binary client succeeded against a JSON-only server")
	}
}

// waitPoolBalance polls until both pools report Gets == Puts (handlers
// release their pooled buffers in defers that may run after the response is
// flushed) or the deadline passes.
func waitPoolBalance(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fb, sr := FrameBufferPoolStats(), SubmitRequestPoolStats()
		if fb.Gets == fb.Puts && sr.Gets == sr.Puts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool leak: frameBuf gets=%d puts=%d, submitReq gets=%d puts=%d",
				fb.Gets, fb.Puts, sr.Gets, sr.Puts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBinaryFrameErrorsAreTyped400s: every malformed-frame class POSTed at
// /v1/jobs yields a 400 with a JSON error body, and once the dust settles the
// buffer pools balance — no request leaks a pooled buffer.
func TestBinaryFrameErrorsAreTyped400s(t *testing.T) {
	_, client := newTestService(t, Config{})
	valid, err := EncodeSubmitBinary(&SubmitRequest{
		Schema: WireSchema, Tenant: "edge", Jobs: []SubmitJob{{ID: 1, Delay: 4}},
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	oversized := append([]byte(nil), valid...)
	oversized[4], oversized[5], oversized[6], oversized[7] = 0xff, 0xff, 0xff, 0x0f

	cases := []struct {
		name string
		body []byte
	}{
		{"empty body", nil},
		{"truncated header", valid[:5]},
		{"truncated payload", valid[:len(valid)-3]},
		{"oversized length prefix", oversized},
		{"trailing bytes", append(append([]byte(nil), valid...), 1, 2, 3)},
		{"bad magic", append([]byte("XX"), valid[2:]...)},
	}
	for _, tc := range cases {
		resp, err := http.Post(client.base+"/v1/jobs", ContentTypeBinary, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: post: %v", tc.name, err)
		}
		var er ErrorResponse
		if err := decodeBody(resp.Body, &er); err != nil {
			t.Fatalf("%s: error body is not JSON: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if er.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
		// Frame-level errors must not wear the JSON decoder's prefix, or a
		// WireAuto client would misread them as "server speaks no binary".
		if strings.Contains(er.Error, "decoding submit request") {
			t.Errorf("%s: frame error %q carries the JSON fallback sentinel", tc.name, er.Error)
		}
	}
	waitPoolBalance(t)
}

// TestMidFrameConnectionDrop: a client that advertises a large body and
// hangs up mid-frame must not leak a goroutine or a pooled buffer; the
// service just abandons the request.
func TestMidFrameConnectionDrop(t *testing.T) {
	_, client := newTestService(t, Config{})
	addr := strings.TrimPrefix(client.base, "http://")

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		// Declare 4096 body bytes, send a valid header + a sliver, vanish.
		fmt.Fprintf(conn, "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Type: %s\r\nContent-Length: 4096\r\n\r\n", ContentTypeBinary)
		_, _ = conn.Write([]byte{frameMagic0, frameMagic1, frameVersion, byte(FrameSubmit), 0, 16})
		conn.Close()
	}
	waitPoolBalance(t)
	// Goroutine count returns to the neighborhood of the baseline once the
	// aborted handlers unwind (http keep-alive goroutines come and go, so
	// allow slack — a leak of 8 would exceed it).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, baseline %d: handler leak after connection drops", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The service is still fully functional.
	out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "still-alive", Jobs: []SubmitJob{{ID: 0, Delay: 4}}})
	if err != nil || !out.Accepted {
		t.Fatalf("submit after drops: out=%+v err=%v", out, err)
	}
}

// TestCrossFormatDuplicateVerification: the duplicate-batch verdict is a
// property of the admitted state, not the codec — a batch admitted in one
// wire format answers identically when resent in the other, including the
// 400 when the resend's delay bounds disagree with admitted state.
func TestCrossFormatDuplicateVerification(t *testing.T) {
	_, c := newTestService(t, Config{})
	jsonClient := NewClientWire(c.base, DefaultRetryPolicy(), WireJSON)
	binClient := NewClientWire(c.base, DefaultRetryPolicy(), WireBinary)

	jobs := []SubmitJob{{ID: 0, Color: 0, Delay: 4}, {ID: 1, Color: 1, Delay: 8}}
	doctored := []SubmitJob{{ID: 0, Color: 0, Delay: 16}, {ID: 1, Color: 1, Delay: 8}}

	directions := []struct {
		name          string
		tenant        string
		first, resend *Client
	}{
		{"json then binary", "cross-a", jsonClient, binClient},
		{"binary then json", "cross-b", binClient, jsonClient},
	}
	for _, d := range directions {
		out, err := d.first.Submit(&SubmitRequest{Schema: WireSchema, Tenant: d.tenant, Jobs: jobs})
		if err != nil || !out.Accepted {
			t.Fatalf("%s: first submit: out=%+v err=%v", d.name, out, err)
		}
		out, err = d.resend.Submit(&SubmitRequest{Schema: WireSchema, Tenant: d.tenant, Jobs: jobs})
		if err != nil {
			t.Fatalf("%s: cross-format resend: %v", d.name, err)
		}
		if !out.Duplicate {
			t.Fatalf("%s: cross-format resend outcome %+v, want Duplicate", d.name, out)
		}
		_, err = d.resend.Submit(&SubmitRequest{Schema: WireSchema, Tenant: d.tenant, Jobs: doctored})
		if err == nil || !strings.Contains(err.Error(), "disagrees with admitted state") {
			t.Fatalf("%s: doctored resend err=%v, want delay-disagreement 400", d.name, err)
		}
	}
}

// TestWireMetricsObserved: the wire metric bundle moves — frame counters by
// codec, byte counters, and the coalescing histogram all show traffic after a
// mixed run.
func TestWireMetricsObserved(t *testing.T) {
	_, c := newTestService(t, Config{})
	jsonClient := NewClientWire(c.base, DefaultRetryPolicy(), WireJSON)
	binClient := NewClientWire(c.base, DefaultRetryPolicy(), WireBinary)
	for i := int64(0); i < 4; i++ {
		if _, err := jsonClient.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "mj", Jobs: []SubmitJob{{ID: i, Delay: 4}}}); err != nil {
			t.Fatalf("json submit: %v", err)
		}
		if _, err := binClient.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "mb", Jobs: []SubmitJob{{ID: i, Delay: 4}}}); err != nil {
			t.Fatalf("binary submit: %v", err)
		}
	}
	snap, err := binClient.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, name := range []string{obs.MetricWireFramesJSON, obs.MetricWireFramesBinary, obs.MetricWireBytesIn, obs.MetricWireBytesOut} {
		if v, ok := snap.Counter(name); !ok || v < 4 {
			t.Errorf("%s = %d (ok=%v), want >= 4", name, v, ok)
		}
	}
	if h, ok := snap.Histogram(obs.MetricWireCoalesced); !ok || h.Count < 8 {
		t.Errorf("%s count = %d (ok=%v), want >= 8 shard wakeups", obs.MetricWireCoalesced, h.Count, ok)
	}
}

// TestShardCoalescing: many concurrent submits against one shard drain in
// fewer wakeups than commands — the histogram's observation count (wakeups)
// stays below its sum (commands) once the inbox actually queues.
func TestShardCoalescing(t *testing.T) {
	_, c := newTestService(t, Config{Shards: 1})
	binClient := NewClientWire(c.base, DefaultRetryPolicy(), WireBinary)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("coalesce-%d", w)
			for i := int64(0); i < 16; i++ {
				if _, err := binClient.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tenant, Jobs: []SubmitJob{{ID: i, Delay: 4}}}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap, err := binClient.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	h, ok := snap.Histogram(obs.MetricWireCoalesced)
	if !ok {
		t.Fatal("coalescing histogram missing")
	}
	if h.Sum < 128 {
		t.Fatalf("coalesced sum %d, want >= 128 commands observed", h.Sum)
	}
	if h.Count > h.Sum {
		t.Fatalf("wakeups %d exceed commands %d", h.Count, h.Sum)
	}
}
