package serve

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rrsched/internal/stream"
)

// checkDecisionsMatchReference byte-compares every tenant's /v1/decisions
// stream against a bare stream.Scheduler fed the same arrivals, with the
// expected response carrying the given final shard ring and placement epoch.
func checkDecisionsMatchReference(t *testing.T, client *Client, tenants []detTenant, totalRounds int64, cfg Config, finalShards int, finalEpoch int64) {
	t.Helper()
	ring := newHashRing(finalShards)
	for _, tn := range tenants {
		got, err := client.DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		want, err := MarshalResponse(&DecisionsResponse{
			Schema:         DecisionsSchema,
			Tenant:         tn.name,
			Shard:          ring.ShardOf(tn.name),
			Epoch:          epochOf(tn),
			Round:          totalRounds,
			PlacementEpoch: finalEpoch,
			Decisions:      referenceDecisions(t, tn, totalRounds, cfg),
		})
		if err != nil {
			t.Fatalf("MarshalResponse: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s: decisions diverge from bare scheduler after reshard\nservice:   %s\nreference: %s",
				tn.name, excerpt(got, want), excerpt(want, got))
		}
	}
}

// TestReshardSplitDeterminism is the headline property of online resharding:
// a 4→8 split landing in the middle of a seeded multi-tenant run must leave
// every tenant's decision stream byte-identical to a bare scheduler that
// never saw a reshard. The split migrates tenants shard-to-shard through the
// checkpoint→transfer→restore path while the fixture keeps submitting.
func TestReshardSplitDeterminism(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 42)
	totalRounds := int64(45)
	driveServiceHook(t, client, tenants, totalRounds, func(r int64) {
		if r != 15 {
			return
		}
		rr, err := client.Reshard(8)
		if err != nil {
			t.Fatalf("Reshard(8): %v", err)
		}
		if rr.From != 4 || rr.Shards != 8 || rr.Epoch != 1 || rr.Round != 15 {
			t.Fatalf("unexpected reshard response %+v", rr)
		}
		if rr.Moved == 0 || rr.MigratedBytes == 0 {
			t.Fatalf("split moved nothing: %+v", rr)
		}
	})
	checkDecisionsMatchReference(t, client, tenants, totalRounds, cfg, 8, 1)

	st := svc.Stats()
	if st.Epoch != 1 || st.Reshards != 1 || st.Shards != 8 {
		t.Fatalf("stats after split: epoch=%d reshards=%d shards=%d", st.Epoch, st.Reshards, st.Shards)
	}
}

// TestReshardMergeDeterminism is the shrink direction: an 8→3 merge mid-run,
// with the merged-away shards' tenants migrating onto the survivors, must be
// invisible in every decision stream.
func TestReshardMergeDeterminism(t *testing.T) {
	cfg := Config{Shards: 8, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 43)
	totalRounds := int64(45)
	driveServiceHook(t, client, tenants, totalRounds, func(r int64) {
		if r != 20 {
			return
		}
		rr, err := client.Reshard(3)
		if err != nil {
			t.Fatalf("Reshard(3): %v", err)
		}
		if rr.From != 8 || rr.Shards != 3 || rr.Epoch != 1 {
			t.Fatalf("unexpected reshard response %+v", rr)
		}
	})
	checkDecisionsMatchReference(t, client, tenants, totalRounds, cfg, 3, 1)
}

// TestReshardRepeatedDeterminism stacks a split and a merge in one run: the
// pool goes 4→8 at round 10 and 8→2 at round 25, and the streams still match
// the bare scheduler. Epochs must step 0→1→2.
func TestReshardRepeatedDeterminism(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 44)
	totalRounds := int64(45)
	driveServiceHook(t, client, tenants, totalRounds, func(r int64) {
		switch r {
		case 10:
			if rr, err := client.Reshard(8); err != nil || rr.Epoch != 1 {
				t.Fatalf("Reshard(8): rr=%+v err=%v", rr, err)
			}
		case 25:
			if rr, err := client.Reshard(2); err != nil || rr.Epoch != 2 {
				t.Fatalf("Reshard(2): rr=%+v err=%v", rr, err)
			}
		}
	})
	checkDecisionsMatchReference(t, client, tenants, totalRounds, cfg, 2, 2)

	if got := svc.Stats().Reshards; got != 2 {
		t.Fatalf("stats counted %d reshards, want 2", got)
	}
}

// TestReshardRacesSubmissions drives the fixture while the reshard fires
// from a separate goroutine, unsynchronized with the submit waves: parked
// and bounced submissions must replay under the new epoch without a single
// error surfacing, and the streams must still match the bare scheduler.
// Run under -race, this is also the memory-model check on the placement
// swap, the park gate, and the epoch fences.
func TestReshardRacesSubmissions(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 45)
	totalRounds := int64(45)
	var wg sync.WaitGroup
	driveServiceHook(t, client, tenants, totalRounds, func(r int64) {
		if r != 15 {
			return
		}
		// Fire the reshard concurrently with round 15's submissions. It
		// serializes with ticks on tickMu, so determinism holds; what races
		// is admission, which must park and replay.
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Reshard(7); err != nil {
				t.Errorf("Reshard(7): %v", err)
			}
		}()
	})
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	checkDecisionsMatchReference(t, client, tenants, totalRounds, cfg, 7, 1)
}

// TestReshardThenDrainRestore pins that a resharded pool drains and restores
// like any other: checkpoint files carry the bumped placement epoch, a new
// service at the post-split count resumes from them, and the combined run's
// decision streams match the bare scheduler end to end.
func TestReshardThenDrainRestore(t *testing.T) {
	stateDir := t.TempDir()
	cfg := Config{
		Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16,
		RecordDecisions: true, CheckpointDecisions: true, StateDir: stateDir,
	}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	client := NewClient(srv.URL)

	tenants := detFixture(t, 46)
	driveServiceHook(t, client, tenants, 20, func(r int64) {
		if r == 10 {
			if _, err := client.Reshard(6); err != nil {
				t.Fatalf("Reshard(6): %v", err)
			}
		}
	})
	svc.BeginDrain()
	srv.Close()
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	svc.Close()

	resumed := cfg
	resumed.Shards = 6
	svc2, _, err := New(resumed)
	if err != nil {
		t.Fatalf("restore at post-split count: %v", err)
	}
	defer svc2.Close()
	if got := svc2.Epoch(); got != 1 {
		t.Fatalf("restored epoch %d, want 1", got)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	client2 := NewClient(srv2.URL)

	// Resume the fixture where the first service stopped.
	totalRounds := int64(45)
	for r := int64(20); r < totalRounds; r++ {
		driveRound(t, client2, tenants, r)
		if _, err := client2.Tick(1); err != nil {
			t.Fatalf("Tick at round %d: %v", r, err)
		}
	}
	checkDecisionsMatchReference(t, client2, tenants, totalRounds, cfg, 6, 1)
}

// TestBootRestoreAcrossShardCounts is the satellite restore property: a
// checkpoint set cut at 4 shards boots an 8-shard pool (and a 3-shard one),
// with every tenant re-routed through the new ring and the full-run decision
// streams still byte-identical to the bare scheduler.
func TestBootRestoreAcrossShardCounts(t *testing.T) {
	for _, newShards := range []int{8, 3} {
		stateDir := t.TempDir()
		cfg := Config{
			Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16,
			RecordDecisions: true, CheckpointDecisions: true, StateDir: stateDir,
		}
		svc, _, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		srv := httptest.NewServer(svc.Handler())
		client := NewClient(srv.URL)
		tenants := detFixture(t, 47)
		driveService(t, client, tenants, 20)
		svc.BeginDrain()
		srv.Close()
		if err := svc.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		svc.Close()

		grown := cfg
		grown.Shards = newShards
		svc2, _, err := New(grown)
		if err != nil {
			t.Fatalf("restore 4-shard checkpoints into %d shards: %v", newShards, err)
		}
		if got := svc2.Epoch(); got != 1 {
			t.Fatalf("boot reshard to %d shards: epoch %d, want 1", newShards, got)
		}
		srv2 := httptest.NewServer(svc2.Handler())
		client2 := NewClient(srv2.URL)

		totalRounds := int64(45)
		for r := int64(20); r < totalRounds; r++ {
			driveRound(t, client2, tenants, r)
			if _, err := client2.Tick(1); err != nil {
				t.Fatalf("Tick at round %d: %v", r, err)
			}
		}
		checkDecisionsMatchReference(t, client2, tenants, totalRounds, cfg, newShards, 1)
		srv2.Close()
		svc2.Close()
	}
}

// driveRound replays one global round of the fixture (submissions, no tick).
func driveRound(t *testing.T, client *Client, tenants []detTenant, r int64) {
	t.Helper()
	var wg sync.WaitGroup
	for i := range tenants {
		tn := &tenants[i]
		local := r - tn.startRound
		if local < 0 {
			continue
		}
		jobs := tn.seq.Request(local)
		if len(jobs) == 0 {
			continue
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			wire := make([]SubmitJob, len(jobs))
			for k, j := range jobs {
				wire[k] = SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
			}
			out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: name, Jobs: wire})
			if err != nil || !out.Accepted {
				t.Errorf("submit %s: out=%+v err=%v", name, out, err)
			}
		}(tn.name)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
}

// TestReshardBudgetAbort pins the rollback path: a reshard whose migration
// plan exceeds a class's budget slice must fail with ErrReshardBudget and
// leave the pool exactly as it was — same epoch, same shard count, still
// serving, decision streams unharmed.
func TestReshardBudgetAbort(t *testing.T) {
	cfg := Config{
		Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16,
		RecordDecisions: true, ReshardBudget: 1, // one byte: any migration blows it
	}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 48)
	totalRounds := int64(45)
	driveServiceHook(t, client, tenants, totalRounds, func(r int64) {
		if r != 15 {
			return
		}
		_, err := svc.Reshard(8)
		if !errors.Is(err, ErrReshardBudget) {
			t.Fatalf("Reshard under 1-byte budget: err=%v, want ErrReshardBudget", err)
		}
		if got := svc.Epoch(); got != 0 {
			t.Fatalf("aborted reshard left epoch %d, want 0", got)
		}
		if got := svc.Stats().Shards; got != 4 {
			t.Fatalf("aborted reshard left %d shards, want 4", got)
		}
	})
	checkDecisionsMatchReference(t, client, tenants, totalRounds, cfg, 4, 0)

	if got := svc.Stats().Reshards; got != 0 {
		t.Fatalf("aborted reshard counted as %d reshards, want 0", got)
	}
}

// TestReshardRefusals pins the guard rails: no-op counts, out-of-range
// counts, draining services, and hosted pools all refuse to reshard.
func TestReshardRefusals(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := svc.Reshard(2); err == nil {
		t.Fatal("resharding to the current count succeeded")
	}
	if _, err := svc.Reshard(0); err == nil {
		t.Fatal("resharding to 0 shards succeeded")
	}
	if _, err := svc.Reshard(MaxShards + 1); err == nil {
		t.Fatal("resharding past MaxShards succeeded")
	}
	svc.BeginDrain()
	if _, err := svc.Reshard(4); err == nil {
		t.Fatal("resharding a draining service succeeded")
	}
	svc.Close()

	hosted := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64, Hosted: true}
	hsvc, _, err := New(hosted)
	if err != nil {
		t.Fatalf("New(hosted): %v", err)
	}
	defer hsvc.Close()
	if _, err := hsvc.Reshard(4); err == nil || !strings.Contains(err.Error(), "dispatcher") {
		t.Fatalf("hosted reshard: err=%v, want dispatcher refusal", err)
	}
}

// TestReshardMetrics pins the new observability: one split must count one
// reshard, its moved tenants and bytes, at least one duration sample, and
// non-zero parked submissions are reflected when the gate catches traffic.
func TestReshardMetrics(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := detFixture(t, 49)
	driveServiceHook(t, client, tenants, 20, func(r int64) {
		if r == 10 {
			if _, err := client.Reshard(8); err != nil {
				t.Fatalf("Reshard(8): %v", err)
			}
		}
	})

	snap, err := svc.MergedMetrics()
	if err != nil {
		t.Fatalf("MergedMetrics: %v", err)
	}
	counters := map[string]int64{}
	histCount := map[string]int64{}
	for _, m := range snap.Metrics {
		counters[m.Name] += m.Value
		histCount[m.Name] += m.Count
	}
	if counters[MetricReshards] != 1 {
		t.Fatalf("%s = %d, want 1", MetricReshards, counters[MetricReshards])
	}
	if counters[MetricReshardTenants] == 0 {
		t.Fatalf("%s = 0, want > 0", MetricReshardTenants)
	}
	if counters[MetricReshardBytes] == 0 {
		t.Fatalf("%s = 0, want > 0", MetricReshardBytes)
	}
	if histCount[MetricReshardNs] != 1 {
		t.Fatalf("%s histogram has %d samples, want 1", MetricReshardNs, histCount[MetricReshardNs])
	}
}

// TestReshardCheckpointsTransform unit-tests the pure checkpoint transform:
// tenant sets are preserved and re-routed, rounds and epochs agree, and
// malformed sets (diverging rounds, repeated tenants, wrong counts) are
// refused.
func TestReshardCheckpointsTransform(t *testing.T) {
	mk := func(shard, shards int, round, epoch int64, names ...string) []byte {
		cp := shardCheckpoint{Schema: StateSchema, Shard: shard, Shards: shards, Round: round, PlacementEpoch: epoch}
		for _, n := range names {
			cp.Tenants = append(cp.Tenants, tenantCheckpoint{Name: n, Snapshot: mustSnapshot(t)})
		}
		data, err := MarshalResponse(cp)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	ring2 := newHashRing(2)
	var on0, on1 []string
	for _, n := range []string{"alpha", "beta", "gamma", "delta"} {
		if ring2.ShardOf(n) == 0 {
			on0 = append(on0, n)
		} else {
			on1 = append(on1, n)
		}
	}
	old := [][]byte{mk(0, 2, 7, 3, on0...), mk(1, 2, 7, 3, on1...)}

	out, err := ReshardCheckpoints(old, 5)
	if err != nil {
		t.Fatalf("ReshardCheckpoints: %v", err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d outputs, want 5", len(out))
	}
	ring5 := newHashRing(5)
	seen := map[string]bool{}
	for i, data := range out {
		cp, err := decodeShardCheckpoint(data)
		if err != nil {
			t.Fatalf("output %d: %v", i, err)
		}
		if cp.Shard != i || cp.Shards != 5 || cp.Round != 7 || cp.PlacementEpoch != 4 {
			t.Fatalf("output %d header: %+v", i, cp)
		}
		for _, tcp := range cp.Tenants {
			if got := ring5.ShardOf(tcp.Name); got != i {
				t.Fatalf("tenant %q on shard %d, ring says %d", tcp.Name, i, got)
			}
			seen[tcp.Name] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("transform preserved %d tenants, want 4", len(seen))
	}

	if _, err := ReshardCheckpoints([][]byte{mk(0, 2, 7, 3), mk(1, 2, 8, 3)}, 4); err == nil {
		t.Fatal("diverging rounds accepted")
	}
	if _, err := ReshardCheckpoints([][]byte{mk(0, 2, 7, 3), mk(1, 2, 7, 4)}, 4); err == nil {
		t.Fatal("diverging placement epochs accepted")
	}
	if _, err := ReshardCheckpoints([][]byte{mk(0, 1, 7, 3, "alpha", "alpha")}, 4); err == nil {
		t.Fatal("repeated tenant accepted")
	}
	if _, err := ReshardCheckpoints([][]byte{mk(0, 3, 7, 3)}, 4); err == nil {
		t.Fatal("incomplete set accepted")
	}
	if _, err := ReshardCheckpoints(nil, 4); err == nil {
		t.Fatal("empty set accepted")
	}
}

// mustSnapshot returns a valid empty scheduler snapshot for checkpoint
// fixtures.
func mustSnapshot(t *testing.T) []byte {
	t.Helper()
	sched, err := stream.New(stream.Config{Delta: 4, Resources: 8})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	snap, err := sched.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return snap
}
