package serve

import (
	"encoding/json"
	"fmt"

	"rrsched/internal/ckptstore"
	"rrsched/internal/stream"
)

// Hosted-tier incremental checkpoints. With Config.CheckpointBundles on, the
// per-tick OnShardCheckpoint payload is a ckptstore bundle — the shard's
// manifest plus only the chunks the receiver has not acknowledged — instead
// of the full flattened checkpoint JSON. The shard keeps its chunks in an
// in-memory pool (no disk in hosted mode) and tracks acknowledgements: a
// successful hook call acks the manifest's closure, a failed one resets the
// acks so the next push resends everything the receiver might have dropped.
// The dispatcher sniffs push bodies (ckptstore.IsBundle) and flattens bundles
// back to legacy checkpoint JSON, so everything downstream of its checkpoint
// store — persistence, failover grants, reshards — is untouched.

// offerCheckpoint builds the shard's checkpoint payload (bundle or flat JSON)
// and offers it to Config.OnShardCheckpoint. No-op without a hook.
func (sh *shard) offerCheckpoint() error {
	if sh.cfg.OnShardCheckpoint == nil {
		return nil
	}
	var data []byte
	var err error
	if sh.cfg.CheckpointBundles {
		data, err = sh.buildBundle()
	} else {
		data, err = sh.checkpoint()
	}
	if err != nil {
		return err
	}
	if err := sh.cfg.OnShardCheckpoint(sh.idx, sh.round, data); err != nil {
		if sh.cfg.CheckpointBundles {
			// The push may have been lost: forget every ack so the next bundle
			// carries the full closure again.
			sh.acked = map[uint64]bool{}
			sh.lastClosure = nil
		}
		return fmt.Errorf("serve: shard %d checkpoint hook: %w", sh.idx, err)
	}
	if sh.cfg.CheckpointBundles {
		sh.commitBundleAck()
	}
	return nil
}

// buildBundle cuts the shard into its in-memory chunk pool (dirty tenants
// only; clean ones reuse their chunk) and encodes the manifest plus the
// unacknowledged slice of its closure.
func (sh *shard) buildBundle() ([]byte, error) {
	if sh.pool == nil {
		sh.pool = ckptstore.NewMemStore(sh.cfg.MaxChunkChain)
		sh.acked = map[uint64]bool{}
	}
	m := &ckptstore.Manifest{
		Schema: ckptstore.ManifestSchema,
		Shard:  sh.idx,
		Shards: sh.nshards,
		Round:  sh.round,
	}
	for _, name := range sh.order {
		tn := sh.tenants[name]
		if tn.dirty || tn.chunk.ID == 0 {
			if err := sh.putTenantChunk(tn); err != nil {
				return nil, err
			}
		}
		m.Tenants = append(m.Tenants, ckptstore.TenantRef{
			Name:  name,
			Chunk: ckptstore.FormatChunkID(tn.chunk.ID),
			Chain: tn.chunk.Chain,
		})
	}
	manifest, err := ckptstore.EncodeManifest(m)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d manifest: %w", sh.idx, err)
	}
	roots, err := m.Roots()
	if err != nil {
		return nil, err
	}
	closure, err := sh.pool.Closure(roots)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d bundle closure: %w", sh.idx, err)
	}
	chunks := make(map[uint64][]byte)
	for id := range closure {
		if sh.acked[id] {
			continue
		}
		data, ok := sh.pool.Get(id)
		if !ok {
			return nil, fmt.Errorf("serve: shard %d chunk %016x missing from pool", sh.idx, id)
		}
		chunks[id] = data
	}
	bundle, err := ckptstore.EncodeBundle(manifest, chunks)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d bundle: %w", sh.idx, err)
	}
	sh.lastClosure = closure
	return bundle, nil
}

// commitBundleAck records that the receiver holds the last bundle's closure,
// then prunes the pool and the ack set down to it — chunks superseded by
// newer cuts are no longer anyone's responsibility.
func (sh *shard) commitBundleAck() {
	if sh.lastClosure == nil {
		return
	}
	for id := range sh.lastClosure {
		sh.acked[id] = true
	}
	for id := range sh.acked {
		if !sh.lastClosure[id] {
			delete(sh.acked, id)
		}
	}
	sh.pool.Prune(sh.lastClosure)
	sh.lastClosure = nil
}

// FlattenBundle converts an incremental checkpoint bundle into flat legacy
// checkpoint JSON, absorbing the bundle's chunks into pool (which persists
// unacked state across pushes — the sender only resends what a failure makes
// doubtful). A reference the pool cannot resolve is an error: the caller
// should fail the push so the sender resets its acks and resends the full
// closure. Embedded decision streams are padded from their chunk's round to
// the manifest round with trivial decisions, which is exactly what the live
// scheduler appended on those rounds for a clean tenant.
func FlattenBundle(data []byte, pool *ckptstore.MemStore) ([]byte, error) {
	b, err := ckptstore.DecodeBundle(data)
	if err != nil {
		return nil, err
	}
	m, err := ckptstore.DecodeManifest(b.Manifest)
	if err != nil {
		return nil, err
	}
	for id, chunk := range b.Chunks {
		if err := pool.Add(id, chunk); err != nil {
			return nil, err
		}
	}
	cp := shardCheckpoint{
		Schema:         StateSchema,
		Shard:          m.Shard,
		Shards:         m.Shards,
		Round:          m.Round,
		PlacementEpoch: m.PlacementEpoch,
	}
	for i := range m.Tenants {
		ref := &m.Tenants[i]
		if ref.Evicted {
			return nil, fmt.Errorf("serve: bundle manifest pages out tenant %q (hosted shards cannot evict)", ref.Name)
		}
		r, err := ref.Ref()
		if err != nil {
			return nil, err
		}
		payload, _, err := pool.Resolve(r.ID)
		if err != nil {
			return nil, fmt.Errorf("serve: flattening tenant %q: %w", ref.Name, err)
		}
		var tcp tenantChunkPayload
		if err := json.Unmarshal(payload, &tcp); err != nil {
			return nil, fmt.Errorf("serve: flattening tenant %q: %w", ref.Name, err)
		}
		if tcp.Tenant.Name != ref.Name {
			return nil, fmt.Errorf("serve: tenant %q chunk holds tenant %q", ref.Name, tcp.Tenant.Name)
		}
		if tcp.Round < 0 || tcp.Round > m.Round {
			return nil, fmt.Errorf("serve: tenant %q chunk round %d outside [0, %d]", ref.Name, tcp.Round, m.Round)
		}
		if n := len(tcp.Tenant.Decisions); n > 0 {
			if int64(n) != tcp.Round-tcp.Tenant.Epoch {
				return nil, fmt.Errorf("serve: tenant %q chunk has %d decisions, want %d", ref.Name, n, tcp.Round-tcp.Tenant.Epoch)
			}
			for r := tcp.Round; r < m.Round; r++ {
				tcp.Tenant.Decisions = append(tcp.Tenant.Decisions, stream.Decision{Round: r - tcp.Tenant.Epoch})
			}
		}
		cp.Tenants = append(cp.Tenants, tcp.Tenant)
	}
	out, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: flattening shard %d: %w", m.Shard, err)
	}
	roots, err := m.Roots()
	if err != nil {
		return nil, err
	}
	closure, err := pool.Closure(roots)
	if err != nil {
		return nil, err
	}
	pool.Prune(closure)
	return out, nil
}
