package serve

import (
	"fmt"
	"testing"
)

func TestHashRingDeterministic(t *testing.T) {
	a := newHashRing(8)
	b := newHashRing(8)
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if a.ShardOf(tenant) != b.ShardOf(tenant) {
			t.Fatalf("ring placement of %q differs between identical rings", tenant)
		}
	}
}

func TestHashRingRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16} {
		ring := newHashRing(shards)
		for i := 0; i < 500; i++ {
			s := ring.ShardOf(fmt.Sprintf("t%d", i))
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: ShardOf returned %d", shards, s)
			}
		}
	}
}

func TestHashRingSpreads(t *testing.T) {
	const shards, tenants = 8, 4096
	ring := newHashRing(shards)
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		counts[ring.ShardOf(fmt.Sprintf("tenant-%04d", i))]++
	}
	// With 64 vnodes per shard the load imbalance stays mild; the bound here
	// is loose on purpose — the test pins "spreads at all", not a tight
	// distribution property.
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no tenants", s)
		}
		if c > tenants/shards*3 {
			t.Fatalf("shard %d received %d of %d tenants (mean %d)", s, c, tenants, tenants/shards)
		}
	}
}

func TestHashRingSingleShard(t *testing.T) {
	ring := newHashRing(1)
	for i := 0; i < 64; i++ {
		if s := ring.ShardOf(fmt.Sprintf("x%d", i)); s != 0 {
			t.Fatalf("single-shard ring returned shard %d", s)
		}
	}
}
