package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomSubmitRequest builds one valid submit batch from rng: random tenant
// (from a small pool so interning is exercised), dense-ish increasing IDs,
// a bounded color palette with one consistent delay bound per color.
func randomSubmitRequest(rng *rand.Rand) *SubmitRequest {
	tenant := fmt.Sprintf("tenant-%02d", rng.Intn(8))
	colors := 1 + rng.Intn(12)
	delays := make([]int64, colors)
	for c := range delays {
		delays[c] = int64(1) << (2 + rng.Intn(8))
	}
	n := 1 + rng.Intn(64)
	jobs := make([]SubmitJob, n)
	id := int64(rng.Intn(1000))
	for i := range jobs {
		id += 1 + int64(rng.Intn(3))
		c := rng.Intn(colors)
		jobs[i] = SubmitJob{ID: id, Color: int32(c), Delay: delays[c]}
	}
	return &SubmitRequest{Schema: WireSchema, Tenant: tenant, Jobs: jobs}
}

// TestBinaryCodecMatchesJSONOracle is the differential battery: for a seeded
// population of valid batches, the binary round trip must land on exactly the
// canonical JSON bytes the JSON round trip lands on. JSON is the oracle —
// the binary codec is only correct insofar as it is indistinguishable from
// it, field for field.
func TestBinaryCodecMatchesJSONOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		req := randomSubmitRequest(rng)

		jsonBytes, err := EncodeSubmit(req)
		if err != nil {
			t.Fatalf("case %d: EncodeSubmit: %v", i, err)
		}
		viaJSON, err := DecodeSubmit(jsonBytes)
		if err != nil {
			t.Fatalf("case %d: DecodeSubmit: %v", i, err)
		}
		canonical, err := EncodeSubmit(viaJSON)
		if err != nil {
			t.Fatalf("case %d: re-encoding JSON round trip: %v", i, err)
		}

		frame, err := EncodeSubmitBinary(req)
		if err != nil {
			t.Fatalf("case %d: EncodeSubmitBinary: %v", i, err)
		}
		viaBinary, err := DecodeSubmitBinary(frame)
		if err != nil {
			t.Fatalf("case %d: DecodeSubmitBinary: %v", i, err)
		}
		if viaBinary.Schema != WireSchemaV2 {
			t.Fatalf("case %d: binary decode schema %q, want %q", i, viaBinary.Schema, WireSchemaV2)
		}
		// Normalize the schema to the codec-independent value and ask the
		// oracle: the JSON encoding of the binary round trip must be
		// byte-identical to the canonical JSON bytes.
		viaBinary.Schema = WireSchema
		fromBinary, err := EncodeSubmit(viaBinary)
		if err != nil {
			t.Fatalf("case %d: encoding binary round trip as JSON: %v", i, err)
		}
		if !bytes.Equal(fromBinary, canonical) {
			t.Fatalf("case %d: binary round trip diverges from JSON oracle\nbinary: %s\njson:   %s",
				i, fromBinary, canonical)
		}
	}
}

// TestBinaryRoundTripFixedPoint pins the binary codec's own fixed point:
// encode → decode → encode reproduces the identical frame bytes.
func TestBinaryRoundTripFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		req := randomSubmitRequest(rng)
		frame, err := EncodeSubmitBinary(req)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		dec, err := DecodeSubmitBinary(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		again, err := EncodeSubmitBinary(dec)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("case %d: binary encoding is not a fixed point", i)
		}
	}
}

func validSubmitFrame(t *testing.T) []byte {
	t.Helper()
	frame, err := EncodeSubmitBinary(&SubmitRequest{
		Schema: WireSchema,
		Tenant: "edge-tenant",
		Jobs:   []SubmitJob{{ID: 1, Color: 0, Delay: 4}, {ID: 2, Color: 1, Delay: 8}},
	})
	if err != nil {
		t.Fatalf("encoding fixture frame: %v", err)
	}
	return frame
}

// TestSplitFrameEdgeCases drives every malformed-frame class through the
// parser and asserts the typed error taxonomy: truncation, oversize, and
// structural garbage are distinguishable with errors.Is.
func TestSplitFrameEdgeCases(t *testing.T) {
	valid := validSubmitFrame(t)

	oversized := append([]byte(nil), valid...)
	oversized[4], oversized[5], oversized[6], oversized[7] = 0xff, 0xff, 0xff, 0xff

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'

	badVersion := append([]byte(nil), valid...)
	badVersion[2] = 9

	badType := append([]byte(nil), valid...)
	badType[3] = 99

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrameTruncated},
		{"short header", valid[:FrameHeaderLen-1], ErrFrameTruncated},
		{"truncated payload", valid[:len(valid)-5], ErrFrameTruncated},
		{"header only", valid[:FrameHeaderLen], ErrFrameTruncated},
		{"oversized declared length", oversized, ErrFrameOversized},
		{"bad magic", badMagic, ErrFrameHeader},
		{"bad version", badVersion, ErrFrameHeader},
		{"unknown frame type", badType, ErrFrameHeader},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAA), ErrFrameHeader},
	}
	for _, tc := range cases {
		if _, _, err := SplitFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: SplitFrame error %v, want %v", tc.name, err, tc.want)
		}
		if _, err := DecodeSubmitBinary(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeSubmitBinary error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeSubmitBinaryPayloadRejects covers payload-level corruption inside
// a structurally valid frame: lying length fields and admission-invariant
// violations must all surface as errors, never panics, and none may carry the
// JSON decoder's error prefix (which would falsely trigger client fallback).
func TestDecodeSubmitBinaryPayloadRejects(t *testing.T) {
	corrupt := func(mutate func(f []byte) []byte) []byte {
		f := validSubmitFrame(t)
		f = mutate(f)
		// Re-patch the header length so the frame parser passes and the
		// payload parser sees the corruption.
		return patchFrameLen(f, 0)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"payload cut inside tenant", corrupt(func(f []byte) []byte { return f[:FrameHeaderLen+3] })},
		{"payload cut before job count", corrupt(func(f []byte) []byte { return f[:FrameHeaderLen+2+len("edge-tenant")] })},
		{"payload cut inside jobs", corrupt(func(f []byte) []byte { return f[:len(f)-1] })},
		{"job count lies high", corrupt(func(f []byte) []byte {
			f[FrameHeaderLen+2+len("edge-tenant")] = 200
			return f
		})},
		{"zero jobs", corrupt(func(f []byte) []byte {
			off := FrameHeaderLen + 2 + len("edge-tenant")
			f[off], f[off+1], f[off+2], f[off+3] = 0, 0, 0, 0
			return f[:off+4]
		})},
	}
	for _, tc := range cases {
		_, err := DecodeSubmitBinary(tc.data)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt frame", tc.name)
			continue
		}
		if bytes.Contains([]byte(err.Error()), []byte("decoding submit request")) {
			t.Errorf("%s: binary decode error %q carries the JSON fallback sentinel", tc.name, err)
		}
	}
}

// TestBinaryDecodeRejectsInvariantViolations re-encodes invariant-breaking
// batches by hand (the encoder refuses them) and asserts the decoder enforces
// the same admission invariants as the JSON path.
func TestBinaryDecodeRejectsInvariantViolations(t *testing.T) {
	encodeRaw := func(tenant string, jobs []SubmitJob) []byte {
		dst := appendFrameHeader(nil, FrameSubmit)
		dst = append(dst, byte(len(tenant)), byte(len(tenant)>>8))
		dst = append(dst, tenant...)
		dst = append(dst, byte(len(jobs)), byte(len(jobs)>>8), 0, 0)
		for _, j := range jobs {
			var tmp [binJobLen]byte
			for k := 0; k < 8; k++ {
				tmp[k] = byte(uint64(j.ID) >> (8 * k))
			}
			for k := 0; k < 4; k++ {
				tmp[8+k] = byte(uint32(j.Color) >> (8 * k))
			}
			for k := 0; k < 8; k++ {
				tmp[12+k] = byte(uint64(j.Delay) >> (8 * k))
			}
			dst = append(dst, tmp[:]...)
		}
		return patchFrameLen(dst, 0)
	}
	cases := []struct {
		name   string
		tenant string
		jobs   []SubmitJob
	}{
		{"empty tenant", "", []SubmitJob{{ID: 1, Delay: 4}}},
		{"ids not increasing", "t", []SubmitJob{{ID: 2, Delay: 4}, {ID: 1, Delay: 4}}},
		{"negative id", "t", []SubmitJob{{ID: -1, Delay: 4}}},
		{"negative color", "t", []SubmitJob{{ID: 1, Color: -2, Delay: 4}}},
		{"zero delay", "t", []SubmitJob{{ID: 1, Delay: 0}}},
		{"inconsistent delay per color", "t", []SubmitJob{{ID: 1, Color: 3, Delay: 4}, {ID: 2, Color: 3, Delay: 8}}},
	}
	for _, tc := range cases {
		if _, err := DecodeSubmitBinary(encodeRaw(tc.tenant, tc.jobs)); err == nil {
			t.Errorf("%s: binary decode accepted an invariant-breaking batch", tc.name)
		}
	}
}

// TestControlFrameRoundTrips covers the small fixed-size frames.
func TestControlFrameRoundTrips(t *testing.T) {
	if r, s, err := DecodeTickBinary(EncodeTickBinary(7, -1)); err != nil || r != 7 || s != -1 {
		t.Fatalf("tick round trip: rounds=%d shard=%d err=%v", r, s, err)
	}
	if r, s, err := DecodeTickBinary(EncodeTickBinary(1, 3)); err != nil || r != 1 || s != 3 {
		t.Fatalf("tick round trip: rounds=%d shard=%d err=%v", r, s, err)
	}
	if round, err := DecodeTickResponseBinary(EncodeTickResponseBinary(1 << 40)); err != nil || round != 1<<40 {
		t.Fatalf("tick response round trip: round=%d err=%v", round, err)
	}
	if shard, err := DecodeSyncBinary(EncodeSyncBinary(5)); err != nil || shard != 5 {
		t.Fatalf("sync round trip: shard=%d err=%v", shard, err)
	}
	resp := &SubmitResponse{Schema: WireSchemaV2, Accepted: 42, Round: 99, Backlog: 7}
	got, err := DecodeSubmitResponseBinary(AppendSubmitResponseBinary(nil, resp))
	if err != nil || !reflect.DeepEqual(got, resp) {
		t.Fatalf("submit response round trip: got %+v err=%v", got, err)
	}
}

// TestCheckpointFrameRoundTrip covers the checkpoint frame codec, including
// its validation rejects.
func TestCheckpointFrameRoundTrip(t *testing.T) {
	f := &CheckpointFrame{Worker: "w-1", Shard: 3, Epoch: 2, Round: 17, Final: true, Data: []byte(`{"state":1}`)}
	enc, err := EncodeCheckpointFrame(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCheckpointFrame(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip changed the frame:\n got %+v\nwant %+v", got, f)
	}

	if _, err := EncodeCheckpointFrame(&CheckpointFrame{Worker: "", Data: []byte("x")}); err == nil {
		t.Fatal("empty worker accepted")
	}
	if _, err := EncodeCheckpointFrame(&CheckpointFrame{Worker: "w", Data: nil}); err == nil {
		t.Fatal("empty data accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[FrameHeaderLen+2+3+20] = 2 // final flag byte
	if _, err := DecodeCheckpointFrame(bad); !errors.Is(err, ErrFrameHeader) {
		t.Fatalf("bad final flag: err=%v, want ErrFrameHeader", err)
	}
	if _, err := DecodeCheckpointFrame(enc[:len(enc)-2]); !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("truncated checkpoint: err=%v, want ErrFrameTruncated", err)
	}
}

// TestBinaryDecodeZeroAllocs is the zero-alloc contract: once the tenant is
// interned and the pooled request's job slice has its capacity, decoding a
// binary submit frame performs zero heap allocations — measured, not assumed.
func TestBinaryDecodeZeroAllocs(t *testing.T) {
	frame, err := EncodeSubmitBinary(&SubmitRequest{
		Schema: WireSchema,
		Tenant: "alloc-tenant",
		Jobs: []SubmitJob{
			{ID: 1, Color: 0, Delay: 4}, {ID: 2, Color: 1, Delay: 8},
			{ID: 3, Color: 2, Delay: 16}, {ID: 4, Color: 0, Delay: 4},
		},
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	req := AcquireSubmitRequest()
	defer ReleaseSubmitRequest(req)
	if err := DecodeSubmitBinaryInto(req, frame); err != nil {
		t.Fatalf("warm decode: %v", err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeSubmitBinaryInto(req, frame); err != nil {
			t.Errorf("decode: %v", err)
		}
	}); n != 0 {
		t.Fatalf("steady-state binary decode allocates %.1f times per frame, want 0", n)
	}
}

// TestBinaryEncodeZeroAllocs pins the encode side: appending into a buffer
// with sufficient capacity allocates nothing.
func TestBinaryEncodeZeroAllocs(t *testing.T) {
	req := &SubmitRequest{
		Schema: WireSchema,
		Tenant: "alloc-tenant",
		Jobs:   []SubmitJob{{ID: 1, Color: 0, Delay: 4}, {ID: 2, Color: 1, Delay: 8}},
	}
	buf, err := EncodeSubmitBinary(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendSubmitBinary(buf[:0], req)
		if err != nil {
			t.Errorf("append: %v", err)
		}
	}); n != 0 {
		t.Fatalf("steady-state binary encode allocates %.1f times per frame, want 0", n)
	}
}

// TestTenantInterning pins the interner's contract: repeated decodes of the
// same tenant return the identical string header, and the table's bound makes
// a hostile stream of unique names degrade to plain allocation, not growth.
func TestTenantInterning(t *testing.T) {
	ti := internTable{m: map[string]string{}}
	a := ti.get([]byte("tenant-a"))
	b := ti.get([]byte("tenant-a"))
	if a != b {
		t.Fatal("interner returned different strings for the same bytes")
	}
	for i := 0; i < maxInternedTenants+10; i++ {
		ti.get([]byte(fmt.Sprintf("flood-%d", i)))
	}
	if len(ti.m) > maxInternedTenants {
		t.Fatalf("intern table grew to %d entries, bound is %d", len(ti.m), maxInternedTenants)
	}
}

// TestAppendSubmitBinarySchemas: the binary encoder accepts both schema
// strings (the frame version byte is the on-wire schema), rejects others.
func TestAppendSubmitBinarySchemas(t *testing.T) {
	jobs := []SubmitJob{{ID: 1, Delay: 4}}
	for _, schema := range []string{WireSchema, WireSchemaV2} {
		if _, err := EncodeSubmitBinary(&SubmitRequest{Schema: schema, Tenant: "t", Jobs: jobs}); err != nil {
			t.Errorf("schema %q rejected: %v", schema, err)
		}
	}
	if _, err := EncodeSubmitBinary(&SubmitRequest{Schema: "rrserve/v9", Tenant: "t", Jobs: jobs}); err == nil {
		t.Error("unknown schema accepted")
	}
}
