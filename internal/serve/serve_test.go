package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestService builds a virtual-time service and its HTTP server, wired for
// cleanup.
func newTestService(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Resources == 0 {
		cfg.Resources = 8
	}
	if cfg.Delta == 0 {
		cfg.Delta = 4
	}
	if cfg.Watermark == 0 {
		cfg.Watermark = 1 << 16
	}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, NewClient(srv.URL)
}

func submitJobs(t *testing.T, c *Client, tenant string, jobs ...SubmitJob) SubmitOutcome {
	t.Helper()
	out, err := c.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tenant, Jobs: jobs})
	if err != nil {
		t.Fatalf("Submit(%s): %v", tenant, err)
	}
	return out
}

func TestSubmitTickExecute(t *testing.T) {
	svc, client := newTestService(t, Config{})
	out := submitJobs(t, client, "alpha",
		SubmitJob{ID: 0, Color: 0, Delay: 4},
		SubmitJob{ID: 1, Color: 1, Delay: 4},
	)
	if !out.Accepted || out.Round != 0 || out.Backlog != 2 {
		t.Fatalf("unexpected outcome %+v", out)
	}
	// Tick past the delay bound: both jobs must resolve. Whether each is
	// executed or dropped is the scheduler's call (dropping a sparse color
	// can be cheaper than reconfiguring for it); the service contract is
	// that nothing stays pending.
	round, err := client.Tick(8)
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if round != 8 || svc.Round() != 8 {
		t.Fatalf("round = %d / %d, want 8", round, svc.Round())
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Totals.Accepted != 2 || stats.Totals.Executed+stats.Totals.Dropped != 2 ||
		stats.Totals.Backlog != 0 || stats.Totals.Inflight != 0 {
		t.Fatalf("totals %+v", stats.Totals)
	}
	if stats.Totals.Tenants != 1 || stats.Schema != StatsSchema {
		t.Fatalf("stats %+v", stats)
	}
}

func TestWatermarkBackpressure(t *testing.T) {
	_, client := newTestService(t, Config{Shards: 1, Watermark: 10})
	jobs := func(from, n int) []SubmitJob {
		out := make([]SubmitJob, n)
		for i := range out {
			out[i] = SubmitJob{ID: int64(from + i), Color: 0, Delay: 8}
		}
		return out
	}
	if out := submitJobs(t, client, "alpha", jobs(0, 8)...); !out.Accepted {
		t.Fatalf("first batch rejected: %+v", out)
	}
	// 8 queued + 8 more would cross the watermark of 10.
	out := submitJobs(t, client, "alpha", jobs(8, 8)...)
	if !out.Rejected {
		t.Fatalf("want 429, got %+v", out)
	}
	if out.RetryAfter != time.Second {
		t.Fatalf("virtual-time Retry-After = %v, want 1s", out.RetryAfter)
	}
	// A tick drains the backlog into the scheduler; the same batch then fits.
	if _, err := client.Tick(1); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if out := submitJobs(t, client, "alpha", jobs(8, 8)...); !out.Accepted {
		t.Fatalf("post-tick batch rejected: %+v", out)
	}
	// The rejected batch must not have been half-queued: stats sees exactly
	// the two accepted batches.
	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Totals.Accepted != 16 || stats.Totals.Rejected != 8 {
		t.Fatalf("accepted=%d rejected=%d, want 16/8", stats.Totals.Accepted, stats.Totals.Rejected)
	}
}

func TestSubmitRejectsDuplicateAndInconsistent(t *testing.T) {
	_, client := newTestService(t, Config{})
	submitJobs(t, client, "alpha", SubmitJob{ID: 5, Color: 0, Delay: 4})
	// A full replay (every ID at or below the high-water mark) is answered
	// with the idempotent-duplicate outcome: the batch already landed, so a
	// retrying client may treat it as admitted.
	if out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 5, Color: 0, Delay: 4}}}); err != nil || !out.Duplicate || !out.Landed() || out.Accepted {
		t.Fatalf("duplicate batch: out=%+v err=%v", out, err)
	}
	// A partial overlap (one stale ID, one fresh) is not a clean resend of an
	// admitted batch; it must be refused outright, not half-applied.
	if _, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 5, Color: 0, Delay: 4}, {ID: 6, Color: 0, Delay: 4}}}); err == nil || !strings.Contains(err.Error(), "high-water") {
		t.Fatalf("partial-overlap batch: err = %v", err)
	}
	// Same color, different delay bound than registered.
	if _, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 6, Color: 0, Delay: 8}}}); err == nil || !strings.Contains(err.Error(), "delay bound") {
		t.Fatalf("delay mismatch: err = %v", err)
	}
	// A "resend" below the high-water mark whose content contradicts admitted
	// state (wrong delay bound) must not be waved through as a duplicate: the
	// 409 contract covers byte-identical resends only.
	if out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 5, Color: 0, Delay: 8}}}); err == nil || out.Duplicate || !strings.Contains(err.Error(), "duplicate batch disagrees") {
		t.Fatalf("inconsistent duplicate: out=%+v err=%v", out, err)
	}
	// Both refusals are all-or-nothing; the tenant still accepts valid work.
	if out := submitJobs(t, client, "alpha", SubmitJob{ID: 6, Color: 0, Delay: 4}); !out.Accepted {
		t.Fatalf("valid follow-up rejected: %+v", out)
	}
}

func TestDrainRefusesWork(t *testing.T) {
	svc, client := newTestService(t, Config{})
	submitJobs(t, client, "alpha", SubmitJob{ID: 0, Color: 0, Delay: 4})
	if !client.Ready() {
		t.Fatal("not ready before drain")
	}
	svc.BeginDrain()
	out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 1, Color: 0, Delay: 4}}})
	if err != nil || !out.Refused {
		t.Fatalf("draining submit: out=%+v err=%v", out, err)
	}
	if _, err := client.Tick(1); err == nil {
		t.Fatal("tick succeeded while draining")
	}
	if client.Ready() {
		t.Fatal("ready while draining")
	}
	if !client.Healthy() {
		t.Fatal("liveness must survive draining")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !stats.Draining {
		t.Fatal("stats does not report draining")
	}
}

func TestTickRejectedInRealTimeMode(t *testing.T) {
	// A long round keeps the ticker from firing during the test; Start is not
	// called, so rounds cannot move at all.
	_, client := newTestService(t, Config{RoundEvery: time.Hour})
	if _, err := client.Tick(1); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("tick in real-time mode: err = %v", err)
	}
}

func TestTickValidation(t *testing.T) {
	_, client := newTestService(t, Config{})
	srvURL := client.base
	for _, q := range []string{"rounds=0", "rounds=-1", "rounds=x", "rounds=1048577"} {
		resp, err := http.Post(srvURL+"/v1/tick?"+q, "application/json", nil)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tick?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHTTPValidation(t *testing.T) {
	_, client := newTestService(t, Config{})
	base := client.base
	get := func(path string) *http.Response {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/v1/jobs"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
	post := func(path, body string) *http.Response {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("/v1/jobs", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit = %d, want 400", resp.StatusCode)
	}
	if resp := get("/v1/decisions?tenant="); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tenant = %d, want 400", resp.StatusCode)
	}
	if resp := get("/v1/decisions?tenant=ghost"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("decisions with recording disabled = %d, want 404", resp.StatusCode)
	}
}

func TestSubmitBodyLimit(t *testing.T) {
	_, client := newTestService(t, Config{})
	body := bytes.Repeat([]byte("x"), maxSubmitBody+1)
	resp, err := http.Post(client.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

func TestMergedMetricsEndpoint(t *testing.T) {
	// Spread tenants across shards so /metrics genuinely merges registries.
	_, client := newTestService(t, Config{Shards: 4})
	tenants := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, tn := range tenants {
		submitJobs(t, client, tn,
			SubmitJob{ID: 0, Color: 0, Delay: 4},
			SubmitJob{ID: 1, Color: 1, Delay: 4},
		)
	}
	if _, err := client.Tick(6); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	snap, err := client.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if got, ok := snap.Counter(MetricAccepted); !ok || got != int64(2*len(tenants)) {
		t.Fatalf("%s = %d (ok=%v), want %d", MetricAccepted, got, ok, 2*len(tenants))
	}
	// Every shard ticked 6 rounds regardless of tenant count.
	if got, ok := snap.Counter("sched_rounds_total"); !ok || got != 4*6 {
		t.Fatalf("sched_rounds_total = %d (ok=%v), want 24", got, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: 0, Resources: 8, Delta: 4, Watermark: 1},
		{Shards: 1, Resources: 6, Delta: 4, Watermark: 1},
		{Shards: 1, Resources: 8, Delta: 0, Watermark: 1},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 0},
		{Shards: 1, Resources: 8, Delta: 4, Watermark: 1, RoundEvery: -time.Second},
	}
	for i, cfg := range bad {
		if _, _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
