package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/stream"
)

// sparseTenant is one tenant of the paging fixture: two short bursts
// separated by an idle gap long enough for the tenant to quiesce and page out
// under the battery's EvictAfter, so the second burst exercises fault-in.
type sparseTenant struct {
	name  string
	epoch int64 // global round of the first burst (= the tenant's epoch)
}

const (
	sparseGap   = 16 // idle rounds between a tenant's two bursts
	sparseDelay = 4  // delay bound of every job in the fixture
	sparseTotal = 44 // driven rounds: past the last burst plus its drop tail
	sparseEvict = 4  // EvictAfter used by the battery
)

func sparseFixture() []sparseTenant {
	return []sparseTenant{
		{name: "pg-a", epoch: 0},
		{name: "pg-b", epoch: 1},
		{name: "pg-c", epoch: 2},
		{name: "pg-d", epoch: 3},
		{name: "pg-e", epoch: 5},
		{name: "pg-f", epoch: 9},
	}
}

// sparseArrivals returns the jobs the tenant submits at global round r: three
// jobs per burst round, two rounds per burst, IDs strictly increasing across
// the tenant's life as the wire contract demands.
func sparseArrivals(tn sparseTenant, r int64) []SubmitJob {
	var wave int64
	switch {
	case r == tn.epoch || r == tn.epoch+1:
		wave = r - tn.epoch
	case r == tn.epoch+sparseGap || r == tn.epoch+sparseGap+1:
		wave = 2 + (r - tn.epoch - sparseGap)
	default:
		return nil
	}
	jobs := make([]SubmitJob, 3)
	for k := range jobs {
		jobs[k] = SubmitJob{ID: wave*3 + int64(k), Color: int32(k), Delay: sparseDelay}
	}
	return jobs
}

// sparseReference replays one tenant's arrivals through a bare
// stream.Scheduler at tenant-local rounds — the same contract
// referenceDecisions pins for the generated fixture.
func sparseReference(t *testing.T, tn sparseTenant, totalRounds int64, cfg Config) []stream.Decision {
	t.Helper()
	sched, err := stream.New(stream.Config{Delta: cfg.Delta, Resources: cfg.Resources})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	var out []stream.Decision
	for local := int64(0); local < totalRounds-tn.epoch; local++ {
		wire := sparseArrivals(tn, tn.epoch+local)
		jobs := make([]model.Job, len(wire))
		for i, w := range wire {
			jobs[i] = model.Job{ID: w.ID, Color: model.Color(w.Color), Arrival: local, Delay: w.Delay}
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		dec, err := sched.Push(local, jobs)
		if err != nil {
			t.Fatalf("reference push for %s at local %d: %v", tn.name, local, err)
		}
		out = append(out, dec)
	}
	return out
}

// driveSparseFixture submits each round's due bursts and ticks once, calling
// hook (when set) before the round's submissions.
func driveSparseFixture(t *testing.T, client *Client, tenants []sparseTenant, totalRounds int64, hook func(r int64)) {
	t.Helper()
	for r := int64(0); r < totalRounds; r++ {
		if hook != nil {
			hook(r)
		}
		for _, tn := range tenants {
			jobs := sparseArrivals(tn, r)
			if len(jobs) == 0 {
				continue
			}
			out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tn.name, Jobs: jobs})
			if err != nil || !out.Accepted {
				t.Fatalf("submit %s at round %d: out=%+v err=%v", tn.name, r, out, err)
			}
		}
		if _, err := client.Tick(1); err != nil {
			t.Fatalf("tick at round %d: %v", r, err)
		}
	}
}

// checkSparseDecisions byte-compares every fixture tenant's /v1/decisions
// against the bare-scheduler reference.
func checkSparseDecisions(t *testing.T, client *Client, tenants []sparseTenant, totalRounds int64, cfg Config, finalShards int, finalEpoch int64) {
	t.Helper()
	ring := newHashRing(finalShards)
	for _, tn := range tenants {
		got, err := client.DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		want, err := MarshalResponse(&DecisionsResponse{
			Schema:         DecisionsSchema,
			Tenant:         tn.name,
			Shard:          ring.ShardOf(tn.name),
			Epoch:          tn.epoch,
			Round:          totalRounds,
			PlacementEpoch: finalEpoch,
			Decisions:      sparseReference(t, tn, totalRounds, cfg),
		})
		if err != nil {
			t.Fatalf("MarshalResponse: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s: decisions diverge from bare scheduler across evict/fault-in\nservice:   %s\nreference: %s",
				tn.name, excerpt(got, want), excerpt(want, got))
		}
	}
}

// TestEvictFaultInDecisionsMatchBareScheduler is the paging half of the
// determinism contract: with aggressive cold-tenant eviction on, every
// fixture tenant quiesces, pages out to the chunk store mid-run, and is
// faulted back in by its second burst — and its decision stream must still be
// byte-identical to a bare scheduler that never saw any of it.
func TestEvictFaultInDecisionsMatchBareScheduler(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16,
		RecordDecisions: true, StateDir: t.TempDir(), EvictAfter: sparseEvict}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := sparseFixture()
	sawEvicted := false
	driveSparseFixture(t, client, tenants, sparseTotal, func(r int64) {
		// Every first burst has resolved and aged out by round 14; the paging
		// machinery must actually have engaged, or the battery proves nothing.
		if r == 14 {
			if ev := svc.Stats().Totals.Evicted; ev == 0 {
				t.Fatalf("no tenant evicted by round %d; paging never engaged", r)
			}
			sawEvicted = true
		}
	})
	if !sawEvicted {
		t.Fatal("eviction checkpoint round never ran")
	}
	checkSparseDecisions(t, client, tenants, sparseTotal, cfg, cfg.Shards, 0)

	// The drop tail has passed and every tenant has aged out again: the whole
	// universe must be paged out, with zero residents.
	if st := svc.Stats(); st.Totals.Evicted != len(tenants) || st.Totals.Tenants != 0 {
		t.Fatalf("end state: resident=%d evicted=%d, want 0/%d", st.Totals.Tenants, st.Totals.Evicted, len(tenants))
	}
}

// TestReshardRidesDeltaMigration pins the reshard path over the chunk store:
// a mid-run 2→4 split lands while the fixture holds all three tenant shapes —
// evicted stubs, clean chunk-backed residents (from a checkpoint cut two
// rounds earlier), and dirty residents — so stubs and clean tenants migrate
// as chunk references while only dirty state moves as full frames. Decision
// streams must not see any of it, including the post-split fault-ins.
func TestReshardRidesDeltaMigration(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16,
		RecordDecisions: true, StateDir: t.TempDir(), EvictAfter: sparseEvict}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	tenants := sparseFixture()
	driveSparseFixture(t, client, tenants, sparseTotal, func(r int64) {
		switch r {
		case 12:
			// A live cut: residents become clean and chunk-backed, so the
			// split below has references to ride.
			if err := svc.Checkpoint(); err != nil {
				t.Fatalf("mid-run Checkpoint: %v", err)
			}
		case 14:
			if ev := svc.Stats().Totals.Evicted; ev == 0 {
				t.Fatalf("no tenant evicted before the split; fixture drifted")
			}
			rr, err := client.Reshard(4)
			if err != nil {
				t.Fatalf("Reshard(4): %v", err)
			}
			if rr.From != 2 || rr.Shards != 4 || rr.Epoch != 1 {
				t.Fatalf("unexpected reshard response %+v", rr)
			}
		}
	})
	checkSparseDecisions(t, client, tenants, sparseTotal, cfg, 4, 1)

	// The migrated universe must still cut and page: a final checkpoint on
	// the new ring succeeds and covers every tenant.
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("post-split Checkpoint: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(cfg.StateDir, shardManifestName(i))); err != nil {
			t.Fatalf("post-split manifest %d: %v", i, err)
		}
	}
}

// shardManifestName mirrors Service.shardManifestPath for tests that assert
// on the state-dir layout.
func shardManifestName(i int) string {
	return fmt.Sprintf("manifest-%04d.json", i)
}

// TestLegacyFullStateFallback pins the upgrade path: a state dir holding only
// the old per-shard full-state files (shard-*.json, as previous releases and
// the hosted tier write them) must restore byte-for-byte — same round, same
// tenants, same decision history — and the next checkpoint must replace the
// legacy files with manifests.
func TestLegacyFullStateFallback(t *testing.T) {
	const cutRound, totalRounds = 17, 45
	tenants := detFixture(t, 42)

	// Uninterrupted baseline for the final stream comparison.
	baseCfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	baseSvc, _, err := New(baseCfg)
	if err != nil {
		t.Fatalf("baseline New: %v", err)
	}
	defer baseSvc.Close()
	baseSrv := httptest.NewServer(baseSvc.Handler())
	defer baseSrv.Close()
	baseClient := NewClient(baseSrv.URL)
	driveService(t, baseClient, tenants, totalRounds)

	// Incarnation 1 is hosted with embedded decision history — its CloseShard
	// bytes ARE the legacy full-state format, so the fixture set is produced
	// by the real writer, not handcrafted JSON.
	hostedCfg := baseCfg
	hostedCfg.Hosted = true
	hostedCfg.CheckpointDecisions = true
	svc1, _, err := New(hostedCfg)
	if err != nil {
		t.Fatalf("hosted New: %v", err)
	}
	for i := 0; i < hostedCfg.Shards; i++ {
		if _, err := svc1.OpenShard(i, nil); err != nil {
			t.Fatalf("OpenShard(%d): %v", i, err)
		}
	}
	srv1 := httptest.NewServer(svc1.Handler())
	client1 := NewClient(srv1.URL)
	driveService(t, client1, tenants, cutRound)
	stateDir := t.TempDir()
	for i := 0; i < hostedCfg.Shards; i++ {
		data, err := svc1.CloseShard(i)
		if err != nil {
			t.Fatalf("CloseShard(%d): %v", i, err)
		}
		if err := os.WriteFile(filepath.Join(stateDir, shardStateName(i)), data, 0o644); err != nil {
			t.Fatalf("write legacy file: %v", err)
		}
	}
	srv1.Close()
	svc1.Close()

	// Incarnation 2: a classic durable service restores through the legacy
	// path and finishes the run.
	cfg2 := baseCfg
	cfg2.StateDir = stateDir
	svc2, restored, err := New(cfg2)
	if err != nil {
		t.Fatalf("legacy restore New: %v", err)
	}
	defer svc2.Close()
	if restored != len(tenants) {
		t.Fatalf("restored %d tenants from legacy set, want %d", restored, len(tenants))
	}
	if svc2.Round() != cutRound {
		t.Fatalf("legacy restore at round %d, want %d", svc2.Round(), cutRound)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	client2 := NewClient(srv2.URL)
	driveTail(t, client2, tenants, cutRound, totalRounds)

	// Full history: the embedded legacy decisions seeded the decision log, so
	// every stream matches the uninterrupted baseline byte for byte.
	for _, tn := range tenants {
		got, err := client2.Decisions(tn.name)
		if err != nil {
			t.Fatalf("restored Decisions(%s): %v", tn.name, err)
		}
		want, err := baseClient.Decisions(tn.name)
		if err != nil {
			t.Fatalf("baseline Decisions(%s): %v", tn.name, err)
		}
		a, err := MarshalResponse(got.Decisions)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		b, err := MarshalResponse(want.Decisions)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("tenant %s: legacy restore diverges from baseline\ngot:  %s\nwant: %s",
				tn.name, excerpt(a, b), excerpt(b, a))
		}
	}

	// The next cut upgrades the layout: manifests in, legacy files out.
	if err := svc2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after legacy restore: %v", err)
	}
	if m, _ := filepath.Glob(filepath.Join(stateDir, "shard-*.json")); len(m) != 0 {
		t.Fatalf("legacy files survived the first incremental cut: %v", m)
	}
	for i := 0; i < cfg2.Shards; i++ {
		if _, err := os.Stat(filepath.Join(stateDir, shardManifestName(i))); err != nil {
			t.Fatalf("missing manifest %d after upgrade cut: %v", i, err)
		}
	}
}

// TestOrphanChunksIgnoredAndCollected simulates the two torn-cut crash
// windows — between a chunk write and the manifest rename, and mid-compaction
// after a folded chunk lands but before the manifest commits. Both leave
// chunk files no manifest references. Restore must come up from the last
// committed manifests without ever reading the orphans (their content is
// garbage, so a read would fail loudly), and the next cut's GC must delete
// them.
func TestOrphanChunksIgnoredAndCollected(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16,
		RecordDecisions: true, StateDir: t.TempDir()}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	client := NewClient(srv.URL)
	tenants := sparseFixture()
	// Two cuts with dirtying activity between them, so surviving tenants hold
	// delta chains — the state a mid-compaction crash would be folding.
	driveSparseFixture(t, client, tenants, 12, nil)
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("first Checkpoint: %v", err)
	}
	for r := int64(12); r < 24; r++ {
		driveTailSparse(t, client, tenants, r)
	}
	svc.BeginDrain()
	srv.Close()
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	svc.Close()

	chunkDir := filepath.Join(cfg.StateDir, "chunks")
	committed := chunkSet(t, chunkDir)
	if len(committed) == 0 {
		t.Fatal("no chunks written by two cuts")
	}
	orphans := []string{"00000000deadbeef.chunk", "feedfacefeedface.chunk"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(chunkDir, name), []byte("torn garbage, never valid"), 0o644); err != nil {
			t.Fatalf("inject orphan: %v", err)
		}
	}

	// Restore ignores the orphans entirely; the tenants come back.
	svc2, restored, err := New(cfg)
	if err != nil {
		t.Fatalf("restore with orphans present: %v", err)
	}
	defer svc2.Close()
	if restored != len(tenants) {
		t.Fatalf("restored %d tenants, want %d", restored, len(tenants))
	}

	// The next cut collects them and keeps every referenced chunk.
	if err := svc2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after restore: %v", err)
	}
	after := chunkSet(t, chunkDir)
	for _, name := range orphans {
		if after[name] {
			t.Fatalf("orphan %s survived GC", name)
		}
	}
	for name := range committed {
		if !after[name] {
			t.Fatalf("GC deleted referenced chunk %s", name)
		}
	}
}

// driveTailSparse submits one round of the sparse fixture and ticks once.
func driveTailSparse(t *testing.T, client *Client, tenants []sparseTenant, r int64) {
	t.Helper()
	for _, tn := range tenants {
		jobs := sparseArrivals(tn, r)
		if len(jobs) == 0 {
			continue
		}
		out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tn.name, Jobs: jobs})
		if err != nil || !out.Accepted {
			t.Fatalf("submit %s at round %d: out=%+v err=%v", tn.name, r, out, err)
		}
	}
	if _, err := client.Tick(1); err != nil {
		t.Fatalf("tick at round %d: %v", r, err)
	}
}

func chunkSet(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read chunk dir: %v", err)
	}
	out := map[string]bool{}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".chunk") {
			out[e.Name()] = true
		}
	}
	return out
}

// TestCutScalesWithDirtyNotResident is the drain-time bound behind the
// SIGTERM guarantee: once a universe is chunk-backed, a cut's write work is
// proportional to the dirty set, not the resident count. The proxy measured
// is chunk files written — wall-clock would be flaky in CI, file counts are
// exact — at two universe sizes with the same absolute dirty set.
func TestCutScalesWithDirtyNotResident(t *testing.T) {
	const dirty = 8
	written := map[int]int{}
	for _, n := range []int{200, 800} {
		cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 20, StateDir: t.TempDir()}
		svc, _, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		srv := httptest.NewServer(svc.Handler())
		client := NewClient(srv.URL)
		for i := 0; i < n; i++ {
			submitJobs(t, client, tenantName(i), SubmitJob{ID: 0, Color: 0, Delay: 4})
		}
		// Let every job resolve before the first cut, so nothing re-dirties
		// the universe afterwards.
		if _, err := client.Tick(8); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		if err := svc.Checkpoint(); err != nil {
			t.Fatalf("full cut: %v", err)
		}
		before := chunkSet(t, filepath.Join(cfg.StateDir, "chunks"))
		if len(before) < n {
			t.Fatalf("full cut wrote %d chunks for %d tenants", len(before), n)
		}
		for i := 0; i < dirty; i++ {
			submitJobs(t, client, tenantName(i), SubmitJob{ID: 1, Color: 0, Delay: 4})
		}
		if _, err := client.Tick(8); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		svc.BeginDrain()
		srv.Close()
		if err := svc.Checkpoint(); err != nil {
			t.Fatalf("delta cut: %v", err)
		}
		svc.Close()
		after := chunkSet(t, filepath.Join(cfg.StateDir, "chunks"))
		added := 0
		for name := range after {
			if !before[name] {
				added++
			}
		}
		written[n] = added
		// Each dirty tenant contributes at most a short delta chain; a cut
		// that re-serialized residents would add hundreds here.
		if added > 3*dirty {
			t.Fatalf("delta cut over %d tenants wrote %d new chunks for %d dirty", n, added, dirty)
		}
	}
	// The write work must not grow with the resident count.
	if written[800] > written[200]+dirty {
		t.Fatalf("cut work grew with universe size: %d new chunks at n=200, %d at n=800", written[200], written[800])
	}
}

func tenantName(i int) string {
	return "bulk-" + string(rune('a'+i/676%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i%26))
}

// shardStateName is a legacy full-state checkpoint's file name.
func shardStateName(i int) string {
	return fmt.Sprintf("shard-%04d.json", i)
}
