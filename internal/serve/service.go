package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rrsched/internal/atomicio"
	"rrsched/internal/obs"
)

// Config parameterizes the service.
type Config struct {
	// Shards is the number of scheduler shards (>= 1). Tenants map to shards
	// by consistent hashing; a checkpoint can only be restored under the same
	// shard count.
	Shards int
	// Resources is the per-tenant resource count n (positive multiple of 4),
	// and Delta the reconfiguration cost — the stream.Config of every
	// tenant's scheduler.
	Resources int
	Delta     int64
	// Watermark is the per-shard bound on queued (accepted but not yet
	// scheduled) jobs. A batch that would push the backlog past it is
	// rejected with 429 + Retry-After; the watermark is also the hard memory
	// bound of the ingest queue.
	Watermark int
	// RoundEvery is the real-time duration of one scheduling round. Zero
	// selects virtual-time mode: rounds advance only via POST /v1/tick (or
	// Service.Tick), which is what tests and the CI smoke job use.
	RoundEvery time.Duration
	// RecordDecisions keeps every tenant's full decision stream in memory
	// and serves it at /v1/decisions. Meant for determinism testing and
	// debugging, not production traffic (memory grows with the run).
	RecordDecisions bool
	// StateDir is where Checkpoint writes per-shard state files and where
	// New looks for a previous incarnation's files to restore. Empty
	// disables durability.
	StateDir string
	// Hosted switches the service into hosted-shard mode, the worker side of
	// the dispatcher/worker tier: shards start closed and are opened and
	// closed per lease (OpenShard/CloseShard), submissions to closed shards
	// get 421, and rounds advance per shard rather than in lockstep — a shard
	// restored from a checkpoint resumes at its own round regardless of what
	// its new host's other shards are doing. StateDir must be empty: hosted
	// checkpoints travel through OnShardCheckpoint, not local files.
	Hosted bool
	// OnShardCheckpoint, if set (hosted mode only), is invoked from the shard
	// goroutine after every self-tick with a fresh checkpoint of the shard.
	// The worker daemon uses it to push state to the dispatcher's checkpoint
	// store synchronously: when a tick call returns, the dispatcher already
	// holds the post-tick state, so a later crash loses at most the
	// admissions since that tick — which clients resend idempotently.
	OnShardCheckpoint func(shard int, round int64, data []byte) error
	// CheckpointDecisions embeds each tenant's recorded decision stream in
	// checkpoints (requires RecordDecisions), so the full history survives a
	// shard migration. Off by default: the classic drain/restore protocol
	// keeps history in memory only.
	CheckpointDecisions bool
}

func (cfg Config) validate() error {
	if cfg.Shards <= 0 {
		return fmt.Errorf("serve: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Resources <= 0 || cfg.Resources%4 != 0 {
		return fmt.Errorf("serve: resources must be a positive multiple of 4, got %d", cfg.Resources)
	}
	if cfg.Delta <= 0 {
		return fmt.Errorf("serve: non-positive delta %d", cfg.Delta)
	}
	if cfg.Watermark <= 0 {
		return fmt.Errorf("serve: non-positive watermark %d", cfg.Watermark)
	}
	if cfg.RoundEvery < 0 {
		return fmt.Errorf("serve: negative round duration %v", cfg.RoundEvery)
	}
	if cfg.Hosted && cfg.StateDir != "" {
		return fmt.Errorf("serve: hosted mode is incompatible with a state dir (checkpoints travel via OnShardCheckpoint)")
	}
	if cfg.Hosted && cfg.RoundEvery != 0 {
		return fmt.Errorf("serve: hosted mode requires virtual time (rounds advance per shard via /v1/tick)")
	}
	if cfg.OnShardCheckpoint != nil && !cfg.Hosted {
		return fmt.Errorf("serve: OnShardCheckpoint requires hosted mode")
	}
	if cfg.CheckpointDecisions && !cfg.RecordDecisions {
		return fmt.Errorf("serve: CheckpointDecisions requires RecordDecisions")
	}
	return nil
}

// Service is the sharded scheduling service. Construct with New, expose
// Handler over HTTP, Start the ticker (real-time mode), and shut down in
// order: BeginDrain, then HTTP server shutdown, then Checkpoint, then Close.
type Service struct {
	cfg    Config
	ring   hashRing
	shards []*shard

	// round is the next global round; shards advance in lockstep under
	// tickMu. Atomic so handlers can read it without joining the tick path.
	round    atomic.Int64
	tickMu   sync.Mutex
	draining atomic.Bool

	tickerStop chan struct{}
	tickerDone chan struct{}
	startOnce  sync.Once
	stopOnce   sync.Once
	closeOnce  sync.Once

	bootNs int64 // obs.Now at construction, for uptime reporting
}

// New builds a service. If cfg.StateDir contains checkpoint files from a
// previous incarnation (same shard count), the full per-tenant state is
// restored before the service accepts traffic; the returned restored count
// is the number of tenants recovered.
func New(cfg Config) (svc *Service, restored int, err error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	s := &Service{
		cfg:    cfg,
		ring:   newHashRing(cfg.Shards),
		bootNs: obs.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, cfg)
		if err != nil {
			return nil, 0, err
		}
		s.shards = append(s.shards, sh)
	}
	if cfg.StateDir != "" {
		restored, err = s.restore()
		if err != nil {
			return nil, 0, err
		}
	}
	for _, sh := range s.shards {
		sh.start()
	}
	return s, restored, nil
}

// restore loads per-shard checkpoint files from cfg.StateDir, if present.
// Either every shard file exists or none: a partial state dir means a failed
// or foreign checkpoint, and resuming from it would silently lose tenants.
func (s *Service) restore() (int, error) {
	present := 0
	for i := range s.shards {
		if _, err := os.Stat(s.shardStatePath(i)); err == nil {
			present++
		} else if !os.IsNotExist(err) {
			return 0, fmt.Errorf("serve: probing state dir: %w", err)
		}
	}
	if present == 0 {
		return 0, nil
	}
	if present != len(s.shards) {
		return 0, fmt.Errorf("serve: state dir %s has %d of %d shard files; refusing a partial restore",
			s.cfg.StateDir, present, len(s.shards))
	}
	restored := 0
	var round int64
	for i, sh := range s.shards {
		data, err := os.ReadFile(s.shardStatePath(i))
		if err != nil {
			return 0, fmt.Errorf("serve: reading shard %d state: %w", i, err)
		}
		if err := sh.restoreShard(data, s.ring); err != nil {
			return 0, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if i == 0 {
			round = sh.round
		} else if sh.round != round {
			return 0, fmt.Errorf("serve: shard rounds diverge in checkpoint (%d vs %d); shards tick in lockstep", sh.round, round)
		}
		restored += len(sh.tenants)
	}
	s.round.Store(round)
	return restored, nil
}

func (s *Service) shardStatePath(i int) string {
	return filepath.Join(s.cfg.StateDir, fmt.Sprintf("shard-%04d.json", i))
}

// Round returns the next global round.
func (s *Service) Round() int64 { return s.round.Load() }

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Virtual reports whether the service runs in virtual-time mode.
func (s *Service) Virtual() bool { return s.cfg.RoundEvery == 0 }

// Start launches the real-time round ticker. A no-op in virtual-time mode.
func (s *Service) Start() {
	if s.Virtual() {
		return
	}
	s.startOnce.Do(func() {
		s.tickerStop = make(chan struct{})
		s.tickerDone = make(chan struct{})
		go func() {
			defer close(s.tickerDone)
			t := time.NewTicker(s.cfg.RoundEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// A tick error only means the service began draining
					// between the channel receive and the tick; the loop
					// exits on the next select either way.
					_, _ = s.Tick(1) // drain race only; see comment
				case <-s.tickerStop:
					return
				}
			}
		}()
	})
}

// Tick advances all shards by n rounds and returns the new next round. In a
// classic service shards tick in lockstep (a barrier separates rounds, so
// every shard's round counter stays aligned); in hosted mode every open shard
// advances n rounds from its own counter and the returned round is the
// maximum across open shards.
func (s *Service) Tick(n int) (int64, error) {
	if n <= 0 {
		return s.round.Load(), fmt.Errorf("serve: tick count must be positive, got %d", n)
	}
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	if s.draining.Load() {
		return s.round.Load(), fmt.Errorf("serve: service is draining")
	}
	if s.cfg.Hosted {
		return s.tickHosted(n)
	}
	for i := 0; i < n; i++ {
		r := s.round.Load()
		var wg sync.WaitGroup
		wg.Add(len(s.shards))
		cmd := &tickCmd{round: r, done: &wg}
		for _, sh := range s.shards {
			sh.ch <- shardCmd{tick: cmd} //lint:ignore lockcheck tickMu is the round barrier, and shard goroutines drain their channels unconditionally until Close
		}
		wg.Wait()
		s.round.Store(r + 1)
	}
	return s.round.Load(), nil
}

// tickHosted fans a self-tick to every shard concurrently; closed shards
// report themselves and are skipped. Caller holds tickMu.
func (s *Service) tickHosted(n int) (int64, error) {
	replies := make([]chan selfTickResult, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan selfTickResult, 1)
		sh.ch <- shardCmd{selfTick: &selfTickCmd{n: n, reply: replies[i]}}
	}
	maxRound := int64(0)
	ticked := 0
	var firstErr error
	for _, reply := range replies {
		res := <-reply
		switch {
		case res.err == nil:
			ticked++
			if res.round > maxRound {
				maxRound = res.round
			}
		case errors.Is(res.err, errShardClosed):
			// Not hosted here; its owner ticks it.
		case firstErr == nil:
			firstErr = res.err
		}
	}
	if firstErr != nil {
		return maxRound, firstErr
	}
	if ticked == 0 {
		// No leases held: nothing advanced, and storing the zero maxRound
		// would reset the service-wide counter. Tell the caller instead.
		return s.round.Load(), fmt.Errorf("serve: no open shards to tick")
	}
	s.round.Store(maxRound)
	return maxRound, nil
}

// TickShard advances one hosted shard by n rounds from its own round counter.
// It exists so a placement-following driver can realign shards that diverged
// during a failover (the dead worker's shards resume at their checkpoint
// rounds, behind the survivors).
func (s *Service) TickShard(shard, n int) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("serve: tick count must be positive, got %d", n)
	}
	if !s.cfg.Hosted {
		return 0, fmt.Errorf("serve: per-shard ticks require hosted mode")
	}
	if shard < 0 || shard >= len(s.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	if s.draining.Load() {
		return 0, fmt.Errorf("serve: service is draining")
	}
	reply := make(chan selfTickResult, 1)
	s.shards[shard].ch <- shardCmd{selfTick: &selfTickCmd{n: n, reply: reply}} //lint:ignore lockcheck tickMu is the round barrier, and shard goroutines drain their channels unconditionally until Close
	res := <-reply //lint:ignore lockcheck the shard goroutine always answers a selfTick on the buffered reply channel
	if res.err != nil {
		return res.round, res.err
	}
	if res.round > s.round.Load() {
		s.round.Store(res.round)
	}
	return res.round, nil
}

// SyncShard re-offers a hosted shard's current state to OnShardCheckpoint at
// its current round, without ticking, and returns that round. Drivers call it
// when the dispatcher's checkpoint store lags the shard (a tick whose hook
// push failed): it restores the invariant that a restored shard is never more
// than one round behind the live one.
func (s *Service) SyncShard(shard int) (int64, error) {
	if !s.cfg.Hosted {
		return 0, fmt.Errorf("serve: SyncShard requires hosted mode")
	}
	if shard < 0 || shard >= len(s.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	reply := make(chan selfTickResult, 1)
	s.shards[shard].ch <- shardCmd{sync: &syncCmd{reply: reply}}
	res := <-reply
	return res.round, res.err
}

// OpenShard opens a hosted shard, restoring it from checkpoint bytes when
// data is non-empty (an empty checkpoint opens the shard fresh at round 0).
// Returns the shard's next round. The worker daemon calls this when the
// dispatcher grants it a lease.
func (s *Service) OpenShard(shard int, data []byte) (int64, error) {
	if !s.cfg.Hosted {
		return 0, fmt.Errorf("serve: OpenShard requires hosted mode")
	}
	if shard < 0 || shard >= len(s.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	reply := make(chan openResult, 1)
	s.shards[shard].ch <- shardCmd{openShard: &openCmd{data: data, reply: reply}}
	res := <-reply
	return res.round, res.err
}

// CloseShard snapshots a hosted shard, drops its state, and marks it closed.
// The returned bytes are the final checkpoint — the handoff artifact uploaded
// to the dispatcher when a lease is revoked gracefully.
func (s *Service) CloseShard(shard int) ([]byte, error) {
	if !s.cfg.Hosted {
		return nil, fmt.Errorf("serve: CloseShard requires hosted mode")
	}
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	reply := make(chan snapshotResult, 1)
	s.shards[shard].ch <- shardCmd{close: &closeCmd{reply: reply}}
	res := <-reply
	return res.data, res.err
}

// SnapshotShard returns a checkpoint of one shard without disturbing it.
func (s *Service) SnapshotShard(shard int) ([]byte, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(s.shards))
	}
	reply := make(chan snapshotResult, 1)
	s.shards[shard].ch <- shardCmd{snapshot: &snapshotCmd{reply: reply}}
	res := <-reply
	return res.data, res.err
}

// OpenShards reports which shards are currently open, in index order.
func (s *Service) OpenShards() []int {
	st := s.Stats()
	var open []int
	for _, row := range st.PerShard {
		if row.Open {
			open = append(open, row.Shard)
		}
	}
	return open
}

// BeginDrain stops admissions and the round ticker. Idempotent. After it
// returns, no new jobs are accepted (submits get 503), no further rounds
// tick, and any in-flight tick has completed — the service state is frozen
// at a round boundary, ready for Checkpoint.
func (s *Service) BeginDrain() {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		if s.tickerStop != nil {
			close(s.tickerStop)
			<-s.tickerDone
		}
	})
	// Barrier: an in-flight Tick holds tickMu until its round completes, so
	// acquiring and releasing it guarantees the state rests at a round
	// boundary when BeginDrain returns.
	s.tickMu.Lock()
	s.tickMu.Unlock()
}

// Checkpoint writes every shard's state to cfg.StateDir (one file per shard,
// written atomically via rename). Call after BeginDrain and after the HTTP
// server has stopped delivering submissions.
func (s *Service) Checkpoint() error {
	if s.cfg.StateDir == "" {
		return fmt.Errorf("serve: no state dir configured")
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("serve: creating state dir: %w", err)
	}
	for i, sh := range s.shards {
		reply := make(chan snapshotResult, 1)
		sh.ch <- shardCmd{snapshot: &snapshotCmd{reply: reply}}
		res := <-reply
		if res.err != nil {
			return res.err
		}
		if err := atomicio.WriteFile(s.shardStatePath(i), res.data, 0o644); err != nil {
			return fmt.Errorf("serve: writing shard %d state: %w", i, err)
		}
	}
	return nil
}

// Close stops the shard goroutines. The caller must guarantee no concurrent
// Handler traffic or Tick calls: Close is the last step of the shutdown
// order (BeginDrain, HTTP shutdown, Checkpoint, Close).
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.stopOnce.Do(func() {
			if s.tickerStop != nil {
				close(s.tickerStop)
				<-s.tickerDone
			}
		})
		for _, sh := range s.shards {
			sh.stop()
		}
	})
}

// Stats assembles the service-level stats response.
func (s *Service) Stats() *StatsResponse {
	resp := &StatsResponse{
		Schema:   StatsSchema,
		Round:    s.round.Load(),
		Shards:   len(s.shards),
		Virtual:  s.Virtual(),
		Draining: s.draining.Load(),
		UptimeNs: obs.Now() - s.bootNs,
	}
	for _, sh := range s.shards {
		reply := make(chan ShardStats, 1)
		sh.ch <- shardCmd{stats: &statsCmd{reply: reply}}
		st := <-reply
		resp.PerShard = append(resp.PerShard, st)
		resp.Totals.add(st)
	}
	resp.Totals.Shard = -1
	resp.Totals.Round = resp.Round
	return resp
}

// MergedMetrics returns the service-level metric snapshot: the per-shard
// registries merged (counters summed, histograms bucket-wise summed).
func (s *Service) MergedMetrics() (*obs.Snapshot, error) {
	snaps := make([]*obs.Snapshot, len(s.shards))
	for i, sh := range s.shards {
		snaps[i] = sh.met.reg.Snapshot()
	}
	return obs.MergeSnapshots(snaps...)
}

// StatsSchema versions the /v1/stats response format.
const StatsSchema = "rrserve-stats/v1"

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Schema   string `json:"schema"`
	Round    int64  `json:"round"`
	Shards   int    `json:"shards"`
	Virtual  bool   `json:"virtual"`
	Draining bool   `json:"draining"`
	UptimeNs int64  `json:"uptime_ns"`

	Totals   ShardStats   `json:"totals"`
	PerShard []ShardStats `json:"per_shard"`
}
