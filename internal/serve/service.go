package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rrsched/internal/atomicio"
	"rrsched/internal/ckptstore"
	"rrsched/internal/obs"
)

// Config parameterizes the service.
type Config struct {
	// Shards is the number of scheduler shards at boot (>= 1). Tenants map to
	// shards by consistent hashing. The count is not fixed for life: Reshard
	// splits or merges the pool under live traffic, and New restores
	// checkpoint sets taken under any prior shard count by re-routing tenants
	// through the current ring.
	Shards int
	// Resources is the per-tenant resource count n (positive multiple of 4),
	// and Delta the reconfiguration cost — the stream.Config of every
	// tenant's scheduler.
	Resources int
	Delta     int64
	// Watermark is the per-shard bound on queued (accepted but not yet
	// scheduled) jobs. A batch that would push the backlog past it is
	// rejected with 429 + Retry-After; the watermark is also the hard memory
	// bound of the ingest queue.
	Watermark int
	// RoundEvery is the real-time duration of one scheduling round. Zero
	// selects virtual-time mode: rounds advance only via POST /v1/tick (or
	// Service.Tick), which is what tests and the CI smoke job use.
	RoundEvery time.Duration
	// RecordDecisions keeps every tenant's full decision stream in memory
	// and serves it at /v1/decisions. Meant for determinism testing and
	// debugging, not production traffic (memory grows with the run).
	RecordDecisions bool
	// StateDir is where Checkpoint writes per-shard state and where New looks
	// for a previous incarnation's files to restore. Empty disables
	// durability. Checkpoints are incremental: tenant state lives in a
	// content-addressed chunk store (StateDir/chunks) referenced from small
	// per-shard manifests, so a cut pays bytes only for tenants that changed
	// since the last one. Legacy full-state checkpoint sets (shard-*.json)
	// restore unchanged.
	StateDir string
	// EvictAfter pages quiescent tenants out of memory: a tenant with no
	// queued or inflight work whose last activity is at least EvictAfter
	// rounds old is serialized into the chunk store and dropped from the
	// shard, then transparently faulted back in on its next submission.
	// Requires StateDir (the chunk store is the backing store); zero
	// disables eviction.
	EvictAfter int64
	// MaxChunkChain bounds checkpoint delta chains: the chain-length at which
	// a tenant's next delta cut is folded back into a full chunk. Zero
	// selects ckptstore.DefaultMaxChain.
	MaxChunkChain int
	// CheckpointBundles switches OnShardCheckpoint payloads from flat
	// checkpoint JSON to incremental checkpoint bundles (manifest plus the
	// chunks the receiver has not acknowledged), so steady-state pushes carry
	// only dirty tenants' deltas. Hosted mode only; the dispatcher sniffs the
	// payload and flattens bundles back to checkpoint JSON.
	CheckpointBundles bool
	// Hosted switches the service into hosted-shard mode, the worker side of
	// the dispatcher/worker tier: shards start closed and are opened and
	// closed per lease (OpenShard/CloseShard), submissions to closed shards
	// get 421, and rounds advance per shard rather than in lockstep — a shard
	// restored from a checkpoint resumes at its own round regardless of what
	// its new host's other shards are doing. StateDir must be empty: hosted
	// checkpoints travel through OnShardCheckpoint, not local files.
	Hosted bool
	// OnShardCheckpoint, if set (hosted mode only), is invoked from the shard
	// goroutine after every self-tick with a fresh checkpoint of the shard.
	// The worker daemon uses it to push state to the dispatcher's checkpoint
	// store synchronously: when a tick call returns, the dispatcher already
	// holds the post-tick state, so a later crash loses at most the
	// admissions since that tick — which clients resend idempotently.
	OnShardCheckpoint func(shard int, round int64, data []byte) error
	// CheckpointDecisions embeds each tenant's recorded decision stream in
	// checkpoints (requires RecordDecisions), so the full history survives a
	// shard migration. Off by default: the classic drain/restore protocol
	// keeps history in memory only.
	CheckpointDecisions bool
	// Classes are the weighted tenant QoS classes. Each class receives a
	// slice of every shard's admission watermark proportional to its weight
	// (share = max(1, Watermark*w/ΣW)), and the same split applies to
	// ReshardBudget. Empty configures the single implicit class "default"
	// with weight 1, whose share is the whole watermark — exactly the
	// pre-class behavior. When classes are configured explicitly, a batch
	// naming no class binds new tenants to the class named "default", which
	// must then be one of the configured classes.
	Classes []TenantClass
	// ReshardBudget caps the total bytes of tenant state one Reshard may
	// migrate, split across classes by weight; a reshard whose migration plan
	// exceeds any class's slice aborts without moving anything. Zero means
	// unlimited.
	ReshardBudget int64
}

// TenantClass is one weighted QoS class.
type TenantClass struct {
	Name   string `json:"name"`
	Weight int64  `json:"weight"`
}

// DefaultClass is the class tenants bind to when a submit names no class.
const DefaultClass = "default"

// normalizeClasses resolves the configured class list: empty means the
// single implicit default class with weight 1.
func normalizeClasses(classes []TenantClass) []TenantClass {
	if len(classes) == 0 {
		return []TenantClass{{Name: DefaultClass, Weight: 1}}
	}
	out := make([]TenantClass, len(classes))
	copy(out, classes)
	return out
}

// classShares splits a watermark (or any integer budget) across classes by
// weight: share = max(1, total*w/ΣW). Integer division makes the split
// exactly invariant under scaling every weight by a common factor —
// floor(k·a/(k·b)) == floor(a/b) — the property the metamorphic class tests
// pin.
func classShares(classes []TenantClass, total int) []int {
	var sum int64
	for _, c := range classes {
		sum += c.Weight
	}
	shares := make([]int, len(classes))
	for i, c := range classes {
		sh := int(int64(total) * c.Weight / sum)
		if sh < 1 {
			sh = 1
		}
		shares[i] = sh
	}
	return shares
}

// MaxClassWeight bounds a class weight so share arithmetic cannot overflow.
const MaxClassWeight = 1 << 20

func (cfg Config) validate() error {
	if cfg.Shards <= 0 {
		return fmt.Errorf("serve: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Shards > MaxShards {
		return fmt.Errorf("serve: %d shards exceeds the maximum %d", cfg.Shards, MaxShards)
	}
	if cfg.Resources <= 0 || cfg.Resources%4 != 0 {
		return fmt.Errorf("serve: resources must be a positive multiple of 4, got %d", cfg.Resources)
	}
	if cfg.Delta <= 0 {
		return fmt.Errorf("serve: non-positive delta %d", cfg.Delta)
	}
	if cfg.Watermark <= 0 {
		return fmt.Errorf("serve: non-positive watermark %d", cfg.Watermark)
	}
	if cfg.RoundEvery < 0 {
		return fmt.Errorf("serve: negative round duration %v", cfg.RoundEvery)
	}
	if cfg.Hosted && cfg.StateDir != "" {
		return fmt.Errorf("serve: hosted mode is incompatible with a state dir (checkpoints travel via OnShardCheckpoint)")
	}
	if cfg.Hosted && cfg.RoundEvery != 0 {
		return fmt.Errorf("serve: hosted mode requires virtual time (rounds advance per shard via /v1/tick)")
	}
	if cfg.OnShardCheckpoint != nil && !cfg.Hosted {
		return fmt.Errorf("serve: OnShardCheckpoint requires hosted mode")
	}
	if cfg.CheckpointDecisions && !cfg.RecordDecisions {
		return fmt.Errorf("serve: CheckpointDecisions requires RecordDecisions")
	}
	if cfg.EvictAfter < 0 {
		return fmt.Errorf("serve: negative evict-after %d", cfg.EvictAfter)
	}
	if cfg.EvictAfter > 0 && cfg.StateDir == "" {
		return fmt.Errorf("serve: EvictAfter requires a state dir (evicted tenants page out to the chunk store)")
	}
	if cfg.MaxChunkChain < 0 {
		return fmt.Errorf("serve: negative max chunk chain %d", cfg.MaxChunkChain)
	}
	if cfg.CheckpointBundles && !cfg.Hosted {
		return fmt.Errorf("serve: CheckpointBundles requires hosted mode")
	}
	if cfg.ReshardBudget < 0 {
		return fmt.Errorf("serve: negative reshard budget %d", cfg.ReshardBudget)
	}
	seen := map[string]bool{}
	for _, c := range cfg.Classes {
		if err := ValidateClass(c.Name); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("serve: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 || c.Weight > MaxClassWeight {
			return fmt.Errorf("serve: class %q weight %d out of range (1..%d)", c.Name, c.Weight, MaxClassWeight)
		}
	}
	return nil
}

// Service is the sharded scheduling service. Construct with New, expose
// Handler over HTTP, Start the ticker (real-time mode), and shut down in
// order: BeginDrain, then HTTP server shutdown, then Checkpoint, then Close.
type Service struct {
	cfg Config

	// pl is the current placement: epoch, ring, and shard set. Handlers load
	// it atomically per request; Reshard swaps it in one store, which is what
	// makes the routing flip atomic.
	pl atomic.Pointer[placement]
	// gate, when non-nil, parks submissions: a reshard is migrating tenants
	// and new batches wait on the channel until routing has flipped, then
	// replay under the new epoch.
	gate atomic.Pointer[chan struct{}]
	// reshardMu serializes Reshard calls (the park/migrate/flip sequence is
	// not reentrant).
	reshardMu sync.Mutex

	// round is the next global round; shards advance in lockstep under
	// tickMu. Atomic so handlers can read it without joining the tick path.
	round    atomic.Int64
	tickMu   sync.Mutex
	draining atomic.Bool

	tickerStop chan struct{}
	tickerDone chan struct{}
	startOnce  sync.Once
	stopOnce   sync.Once
	closeOnce  sync.Once

	met    *serviceMetrics
	bootNs int64 // obs.Now at construction, for uptime reporting

	// store is the content-addressed chunk store backing incremental
	// checkpoints and cold-tenant paging (nil when StateDir is empty). One
	// store serves every shard: chunks are immutable, so sharing the
	// directory is what makes reshard migration reference-only.
	store *ckptstore.Store
}

// placement is one immutable epoch of the shard↔tenant mapping. A reshard
// builds a new placement and swaps the service's pointer; readers that
// loaded the old one are fenced off by the per-shard epoch check.
type placement struct {
	epoch  int64
	ring   hashRing
	shards []*shard
	// retired holds shards removed by a merge. Their goroutines keep running
	// (an HTTP handler that routed just before the flip may still send them
	// a command, which bounces off the epoch fence) but they hold no tenants
	// and are not ticked; Close stops them with the live shards.
	retired []*shard
}

// Service-level metric names (reshard lifecycle and submission parking).
const (
	MetricReshards       = "serve_reshards_total"
	MetricReshardTenants = "serve_reshard_moved_tenants_total"
	MetricReshardBytes   = "serve_reshard_migration_bytes_total"
	MetricReshardNs      = "serve_reshard_ns"
	MetricParkedBatches  = "serve_parked_batches_total"
)

// serviceMetrics are the instruments that describe the service as a whole
// rather than any one shard; merged into /metrics with the shard registries.
type serviceMetrics struct {
	reg            *obs.Registry
	reshards       *obs.Counter
	reshardTenants *obs.Counter
	reshardBytes   *obs.Counter
	reshardNs      *obs.Histogram
	parked         *obs.Counter
}

func newServiceMetrics() (*serviceMetrics, error) {
	m := &serviceMetrics{reg: obs.NewRegistry()}
	var err error
	if m.reshards, err = m.reg.Counter(MetricReshards); err != nil {
		return nil, err
	}
	if m.reshardTenants, err = m.reg.Counter(MetricReshardTenants); err != nil {
		return nil, err
	}
	if m.reshardBytes, err = m.reg.Counter(MetricReshardBytes); err != nil {
		return nil, err
	}
	// 4 µs to ~70 s in powers of four: a reshard checkpoints and re-routes
	// whole tenant sets.
	if m.reshardNs, err = m.reg.Histogram(MetricReshardNs, obs.ExpBuckets(4096, 4, 13)); err != nil {
		return nil, err
	}
	if m.parked, err = m.reg.Counter(MetricParkedBatches); err != nil {
		return nil, err
	}
	return m, nil
}

// New builds a service. If cfg.StateDir contains checkpoint files from a
// previous incarnation, the full per-tenant state is restored before the
// service accepts traffic; the returned restored count is the number of
// tenants recovered. A checkpoint set taken under a different shard count is
// re-routed through the current ring (the placement epoch is bumped past the
// checkpointed one) rather than refused.
func New(cfg Config) (svc *Service, restored int, err error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	met, err := newServiceMetrics()
	if err != nil {
		return nil, 0, err
	}
	s := &Service{
		cfg:    cfg,
		met:    met,
		bootNs: obs.Now(),
	}
	pl := &placement{ring: newHashRing(cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, cfg)
		if err != nil {
			return nil, 0, err
		}
		pl.shards = append(pl.shards, sh)
	}
	s.pl.Store(pl)
	if cfg.StateDir != "" {
		s.store, err = ckptstore.Open(filepath.Join(cfg.StateDir, "chunks"), cfg.MaxChunkChain)
		if err != nil {
			return nil, 0, err
		}
		for _, sh := range pl.shards {
			sh.store = s.store
		}
		restored, err = s.restore(pl)
		if err != nil {
			return nil, 0, err
		}
	}
	for _, sh := range pl.shards {
		sh.start()
	}
	return s, restored, nil
}

// logMode reports whether decision history streams to per-shard decision
// logs instead of resident memory: durable classic services with recording
// on. Hosted services keep memory recording (their history travels inside
// checkpoints).
func (cfg Config) logMode() bool {
	return cfg.StateDir != "" && cfg.RecordDecisions && !cfg.Hosted
}

// restore loads a previous incarnation's state from cfg.StateDir, if present.
// Incremental manifests (manifest-*.json referencing the chunk store) take
// precedence; a state dir holding only legacy full-state files (shard-*.json)
// restores through the unchanged legacy path. In log mode the per-shard
// decision logs are then opened and rolled back to the restored round.
func (s *Service) restore(pl *placement) (int, error) {
	restored, resharded, found, err := s.restoreManifests(pl)
	if err != nil {
		return 0, err
	}
	if !found {
		restored, err = s.restoreLegacy(pl)
		if err != nil {
			return 0, err
		}
	}
	if s.cfg.logMode() {
		if err := s.setupDecLogs(pl, resharded, !found); err != nil {
			return 0, err
		}
	}
	return restored, nil
}

// restoreLegacy loads per-shard full-state checkpoint files, if present.
// Either the full checkpoint set exists or none of it: a partial state dir
// means a failed or foreign checkpoint, and resuming from it would silently
// lose tenants. The set's own shards count is authoritative — when it
// differs from the current configuration, ReshardCheckpoints re-routes every
// tenant through the current ring under a bumped placement epoch.
func (s *Service) restoreLegacy(pl *placement) (int, error) {
	files, err := filepath.Glob(filepath.Join(s.cfg.StateDir, "shard-*.json"))
	if err != nil {
		return 0, fmt.Errorf("serve: probing state dir: %w", err)
	}
	if len(files) == 0 {
		return 0, nil
	}
	// Decode the whole set first: the files agree on their own shard count,
	// round, and placement epoch, and indices cover 0..shards-1 exactly.
	datas := make([][]byte, 0, len(files))
	cps := make([]*shardCheckpoint, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return 0, fmt.Errorf("serve: reading %s: %w", f, err)
		}
		cp, err := decodeShardCheckpoint(data)
		if err != nil {
			return 0, fmt.Errorf("serve: %s: %w", f, err)
		}
		datas = append(datas, data)
		cps = append(cps, cp)
	}
	want := cps[0].Shards
	if len(files) != want {
		return 0, fmt.Errorf("serve: state dir %s has %d of %d shard files; refusing a partial restore",
			s.cfg.StateDir, len(files), want)
	}
	byIdx := make([][]byte, want)
	for i, cp := range cps {
		if cp.Shards != want {
			return 0, fmt.Errorf("serve: checkpoint shard counts diverge (%d vs %d)", cp.Shards, want)
		}
		if cp.Round != cps[0].Round {
			return 0, fmt.Errorf("serve: shard rounds diverge in checkpoint (%d vs %d); shards tick in lockstep", cp.Round, cps[0].Round)
		}
		if cp.PlacementEpoch != cps[0].PlacementEpoch {
			return 0, fmt.Errorf("serve: placement epochs diverge in checkpoint (%d vs %d)", cp.PlacementEpoch, cps[0].PlacementEpoch)
		}
		if byIdx[cp.Shard] != nil {
			return 0, fmt.Errorf("serve: state dir repeats shard %d", cp.Shard)
		}
		byIdx[cp.Shard] = datas[i]
	}
	if want != s.cfg.Shards {
		// The set was taken under a different shard count: re-route every
		// tenant through the current ring. The transform bumps the placement
		// epoch past the checkpointed one, so clients that pinned the old
		// epoch are told to re-resolve.
		byIdx, err = ReshardCheckpoints(byIdx, s.cfg.Shards)
		if err != nil {
			return 0, fmt.Errorf("serve: re-routing %d-shard checkpoint set into %d shards: %w", want, s.cfg.Shards, err)
		}
	}
	restored := 0
	for i, sh := range pl.shards {
		if err := sh.restoreShard(byIdx[i], pl.ring); err != nil {
			return 0, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		restored += len(sh.tenants)
	}
	pl.epoch = pl.shards[0].epoch
	s.round.Store(pl.shards[0].round)
	return restored, nil
}

// shardManifestPath is one shard's incremental checkpoint manifest. The name
// deliberately does not match the legacy shard-*.json glob, so the two
// formats coexist in one state dir without confusing either restore path.
func (s *Service) shardManifestPath(i int) string {
	return filepath.Join(s.cfg.StateDir, fmt.Sprintf("manifest-%04d.json", i))
}

// shardDecLogDir is one shard's decision-log directory.
func shardDecLogDir(stateDir string, i int) string {
	return filepath.Join(stateDir, "declog", fmt.Sprintf("shard-%04d", i))
}

// Round returns the next global round.
func (s *Service) Round() int64 { return s.round.Load() }

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Virtual reports whether the service runs in virtual-time mode.
func (s *Service) Virtual() bool { return s.cfg.RoundEvery == 0 }

// ShardFor reports which shard the current placement routes a tenant to.
func (s *Service) ShardFor(tenant string) int {
	pl := s.pl.Load()
	return pl.ring.ShardOf(tenant)
}

// Epoch returns the current placement epoch (zero until the first reshard).
func (s *Service) Epoch() int64 { return s.pl.Load().epoch }

// Start launches the real-time round ticker. A no-op in virtual-time mode.
func (s *Service) Start() {
	if s.Virtual() {
		return
	}
	s.startOnce.Do(func() {
		s.tickerStop = make(chan struct{})
		s.tickerDone = make(chan struct{})
		go func() {
			defer close(s.tickerDone)
			t := time.NewTicker(s.cfg.RoundEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// A tick error only means the service began draining
					// between the channel receive and the tick; the loop
					// exits on the next select either way.
					_, _ = s.Tick(1) // drain race only; see comment
				case <-s.tickerStop:
					return
				}
			}
		}()
	})
}

// Tick advances all shards by n rounds and returns the new next round. In a
// classic service shards tick in lockstep (a barrier separates rounds, so
// every shard's round counter stays aligned); in hosted mode every open shard
// advances n rounds from its own counter and the returned round is the
// maximum across open shards.
func (s *Service) Tick(n int) (int64, error) {
	if n <= 0 {
		return s.round.Load(), fmt.Errorf("serve: tick count must be positive, got %d", n)
	}
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	if s.draining.Load() {
		return s.round.Load(), fmt.Errorf("serve: service is draining")
	}
	if s.cfg.Hosted {
		return s.tickHosted(n)
	}
	// Reshard swaps the placement under tickMu, so the shard set is stable
	// for the whole multi-round tick.
	pl := s.pl.Load()
	for i := 0; i < n; i++ {
		r := s.round.Load()
		var wg sync.WaitGroup
		wg.Add(len(pl.shards))
		cmd := &tickCmd{round: r, done: &wg}
		for _, sh := range pl.shards {
			sh.ch <- shardCmd{tick: cmd} //lint:ignore lockcheck tickMu is the round barrier, and shard goroutines drain their channels unconditionally until Close
		}
		wg.Wait()
		s.round.Store(r + 1)
	}
	return s.round.Load(), nil
}

// tickHosted fans a self-tick to every shard concurrently; closed shards
// report themselves and are skipped. Caller holds tickMu.
func (s *Service) tickHosted(n int) (int64, error) {
	shards := s.pl.Load().shards
	replies := make([]chan selfTickResult, len(shards))
	for i, sh := range shards {
		replies[i] = make(chan selfTickResult, 1)
		sh.ch <- shardCmd{selfTick: &selfTickCmd{n: n, reply: replies[i]}}
	}
	maxRound := int64(0)
	ticked := 0
	var firstErr error
	for _, reply := range replies {
		res := <-reply
		switch {
		case res.err == nil:
			ticked++
			if res.round > maxRound {
				maxRound = res.round
			}
		case errors.Is(res.err, errShardClosed):
			// Not hosted here; its owner ticks it.
		case firstErr == nil:
			firstErr = res.err
		}
	}
	if firstErr != nil {
		return maxRound, firstErr
	}
	if ticked == 0 {
		// No leases held: nothing advanced, and storing the zero maxRound
		// would reset the service-wide counter. Tell the caller instead.
		return s.round.Load(), fmt.Errorf("serve: no open shards to tick")
	}
	s.round.Store(maxRound)
	return maxRound, nil
}

// TickShard advances one hosted shard by n rounds from its own round counter.
// It exists so a placement-following driver can realign shards that diverged
// during a failover (the dead worker's shards resume at their checkpoint
// rounds, behind the survivors).
func (s *Service) TickShard(shard, n int) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("serve: tick count must be positive, got %d", n)
	}
	if !s.cfg.Hosted {
		return 0, fmt.Errorf("serve: per-shard ticks require hosted mode")
	}
	pl := s.pl.Load()
	if shard < 0 || shard >= len(pl.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(pl.shards))
	}
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	if s.draining.Load() {
		return 0, fmt.Errorf("serve: service is draining")
	}
	reply := make(chan selfTickResult, 1)
	pl.shards[shard].ch <- shardCmd{selfTick: &selfTickCmd{n: n, reply: reply}} //lint:ignore lockcheck tickMu is the round barrier, and shard goroutines drain their channels unconditionally until Close
	res := <-reply                                                              //lint:ignore lockcheck the shard goroutine always answers a selfTick on the buffered reply channel
	if res.err != nil {
		return res.round, res.err
	}
	if res.round > s.round.Load() {
		s.round.Store(res.round)
	}
	return res.round, nil
}

// SyncShard re-offers a hosted shard's current state to OnShardCheckpoint at
// its current round, without ticking, and returns that round. Drivers call it
// when the dispatcher's checkpoint store lags the shard (a tick whose hook
// push failed): it restores the invariant that a restored shard is never more
// than one round behind the live one.
func (s *Service) SyncShard(shard int) (int64, error) {
	if !s.cfg.Hosted {
		return 0, fmt.Errorf("serve: SyncShard requires hosted mode")
	}
	pl := s.pl.Load()
	if shard < 0 || shard >= len(pl.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(pl.shards))
	}
	reply := make(chan selfTickResult, 1)
	pl.shards[shard].ch <- shardCmd{sync: &syncCmd{reply: reply}}
	res := <-reply
	return res.round, res.err
}

// OpenShard opens a hosted shard, restoring it from checkpoint bytes when
// data is non-empty (an empty checkpoint opens the shard fresh at round 0).
// Returns the shard's next round. The worker daemon calls this when the
// dispatcher grants it a lease.
func (s *Service) OpenShard(shard int, data []byte) (int64, error) {
	if !s.cfg.Hosted {
		return 0, fmt.Errorf("serve: OpenShard requires hosted mode")
	}
	pl := s.pl.Load()
	if shard < 0 || shard >= len(pl.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(pl.shards))
	}
	reply := make(chan openResult, 1)
	pl.shards[shard].ch <- shardCmd{openShard: &openCmd{data: data, reply: reply}}
	res := <-reply
	return res.round, res.err
}

// CloseShard snapshots a hosted shard, drops its state, and marks it closed.
// The returned bytes are the final checkpoint — the handoff artifact uploaded
// to the dispatcher when a lease is revoked gracefully.
func (s *Service) CloseShard(shard int) ([]byte, error) {
	if !s.cfg.Hosted {
		return nil, fmt.Errorf("serve: CloseShard requires hosted mode")
	}
	pl := s.pl.Load()
	if shard < 0 || shard >= len(pl.shards) {
		return nil, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(pl.shards))
	}
	reply := make(chan snapshotResult, 1)
	pl.shards[shard].ch <- shardCmd{close: &closeCmd{reply: reply}}
	res := <-reply
	return res.data, res.err
}

// SnapshotShard returns a checkpoint of one shard without disturbing it.
func (s *Service) SnapshotShard(shard int) ([]byte, error) {
	pl := s.pl.Load()
	if shard < 0 || shard >= len(pl.shards) {
		return nil, fmt.Errorf("serve: shard %d out of range [0, %d)", shard, len(pl.shards))
	}
	reply := make(chan snapshotResult, 1)
	pl.shards[shard].ch <- shardCmd{snapshot: &snapshotCmd{reply: reply}}
	res := <-reply
	return res.data, res.err
}

// OpenShards reports which shards are currently open, in index order.
func (s *Service) OpenShards() []int {
	st := s.Stats()
	var open []int
	for _, row := range st.PerShard {
		if row.Open {
			open = append(open, row.Shard)
		}
	}
	return open
}

// BeginDrain stops admissions and the round ticker. Idempotent. After it
// returns, no new jobs are accepted (submits get 503), no further rounds
// tick, and any in-flight tick has completed — the service state is frozen
// at a round boundary, ready for Checkpoint.
func (s *Service) BeginDrain() {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		if s.tickerStop != nil {
			close(s.tickerStop)
			<-s.tickerDone
		}
	})
	// Barrier: an in-flight Tick holds tickMu until its round completes, so
	// acquiring and releasing it guarantees the state rests at a round
	// boundary when BeginDrain returns.
	s.tickMu.Lock()
	s.tickMu.Unlock()
}

// Checkpoint cuts an incremental checkpoint: every shard serializes only its
// dirty tenants into the content-addressed chunk store and commits a small
// manifest (written atomically via rename). Clean tenants reuse their prior
// chunk references and evicted tenants commit as stubs, so a steady-state cut
// costs bytes proportional to what changed, not to the tenant population.
// After the manifests commit, legacy full-state files and orphan chunks (the
// strandings of any earlier crash) are removed. Safe to call live: the round
// barrier is held for the whole cut, so it lands exactly between rounds.
func (s *Service) Checkpoint() error {
	if s.cfg.StateDir == "" {
		return fmt.Errorf("serve: no state dir configured")
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("serve: creating state dir: %w", err)
	}
	// Hold the round barrier: no tick (and so no tick-time eviction chunk
	// write) can interleave between the manifest commits and the orphan GC.
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	pl := s.pl.Load()
	var roots []uint64
	for i, sh := range pl.shards {
		reply := make(chan cutResult, 1)
		sh.ch <- shardCmd{cut: &cutCmd{reply: reply}} //lint:ignore lockcheck tickMu is the round barrier, and shard goroutines drain their channels unconditionally until Close
		res := <-reply                                //lint:ignore lockcheck the shard goroutine always answers a cut on the buffered reply channel
		if res.err != nil {
			return res.err
		}
		if err := atomicio.WriteFile(s.shardManifestPath(i), res.manifest, 0o644); err != nil {
			return fmt.Errorf("serve: writing shard %d manifest: %w", i, err)
		}
		roots = append(roots, res.roots...)
	}
	// The manifests are committed; everything else in the state dir is now
	// redundant. Remove legacy full-state files (this incarnation's restores
	// go through the manifests), manifests of shards a merge removed, and
	// decision-log dirs beyond the current pool.
	legacy, err := filepath.Glob(filepath.Join(s.cfg.StateDir, "shard-*.json"))
	if err != nil {
		return fmt.Errorf("serve: probing state dir: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(s.cfg.StateDir, "manifest-*.json"))
	if err != nil {
		return fmt.Errorf("serve: probing state dir: %w", err)
	}
	for _, f := range append(legacy, stale...) {
		keep := false
		for i := range pl.shards {
			if f == s.shardManifestPath(i) {
				keep = true
				break
			}
		}
		if !keep {
			if err := os.Remove(f); err != nil {
				return fmt.Errorf("serve: removing stale state file %s: %w", f, err)
			}
		}
	}
	if err := s.removeStaleDecLogs(len(pl.shards)); err != nil {
		return err
	}
	// Orphan GC: chunks outside the closure of the committed manifests can
	// never be read again (a crash between a chunk write and a manifest
	// rename strands exactly such chunks).
	if _, err := s.store.GC(roots); err != nil {
		return fmt.Errorf("serve: collecting orphan chunks: %w", err)
	}
	return nil
}

// removeStaleDecLogs drops decision-log directories of shards beyond the
// current pool (left behind by a merge).
func (s *Service) removeStaleDecLogs(shards int) error {
	root := filepath.Join(s.cfg.StateDir, "declog")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("serve: probing decision log dir: %w", err)
	}
	for _, e := range entries {
		var i int
		if n, err := fmt.Sscanf(e.Name(), "shard-%d", &i); err != nil || n != 1 {
			continue
		}
		if i >= shards {
			if err := os.RemoveAll(filepath.Join(root, e.Name())); err != nil {
				return fmt.Errorf("serve: removing stale decision log %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// Close stops the shard goroutines. The caller must guarantee no concurrent
// Handler traffic or Tick calls: Close is the last step of the shutdown
// order (BeginDrain, HTTP shutdown, Checkpoint, Close).
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.stopOnce.Do(func() {
			if s.tickerStop != nil {
				close(s.tickerStop)
				<-s.tickerDone
			}
		})
		pl := s.pl.Load()
		for _, sh := range pl.shards {
			sh.stop()
		}
		for _, sh := range pl.retired {
			sh.stop()
		}
	})
}

// Stats assembles the service-level stats response.
func (s *Service) Stats() *StatsResponse {
	pl := s.pl.Load()
	resp := &StatsResponse{
		Schema:   StatsSchema,
		Round:    s.round.Load(),
		Shards:   len(pl.shards),
		Virtual:  s.Virtual(),
		Draining: s.draining.Load(),
		UptimeNs: obs.Now() - s.bootNs,
		Epoch:    pl.epoch,
		Reshards: s.met.reshards.Value(),
		RSSBytes: obs.RSSBytes(),
	}
	classAgg := map[string]*ClassStats{}
	var classOrder []string
	for _, sh := range pl.shards {
		reply := make(chan ShardStats, 1)
		sh.ch <- shardCmd{stats: &statsCmd{reply: reply}}
		st := <-reply
		resp.PerShard = append(resp.PerShard, st)
		resp.Totals.add(st)
		for _, cs := range st.Classes {
			agg := classAgg[cs.Name]
			if agg == nil {
				agg = &ClassStats{Name: cs.Name, Weight: cs.Weight}
				classAgg[cs.Name] = agg
				classOrder = append(classOrder, cs.Name)
			}
			agg.Share += cs.Share
			agg.Backlog += cs.Backlog
			agg.Accepted += cs.Accepted
			agg.Rejected += cs.Rejected
		}
	}
	for _, name := range classOrder {
		resp.Classes = append(resp.Classes, *classAgg[name])
	}
	resp.Totals.Shard = -1
	resp.Totals.Round = resp.Round
	return resp
}

// MergedMetrics returns the service-level metric snapshot: the per-shard
// registries (live and retired — retired shards carry the pre-merge
// admission history) merged with the service registry.
func (s *Service) MergedMetrics() (*obs.Snapshot, error) {
	pl := s.pl.Load()
	snaps := make([]*obs.Snapshot, 0, len(pl.shards)+len(pl.retired)+1)
	for _, sh := range pl.shards {
		snaps = append(snaps, sh.met.reg.Snapshot())
	}
	for _, sh := range pl.retired {
		snaps = append(snaps, sh.met.reg.Snapshot())
	}
	snaps = append(snaps, s.met.reg.Snapshot())
	return obs.MergeSnapshots(snaps...)
}

// StatsSchema versions the /v1/stats response format.
const StatsSchema = "rrserve-stats/v1"

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Schema   string `json:"schema"`
	Round    int64  `json:"round"`
	Shards   int    `json:"shards"`
	Virtual  bool   `json:"virtual"`
	Draining bool   `json:"draining"`
	UptimeNs int64  `json:"uptime_ns"`
	// Epoch is the current placement epoch (zero until the first reshard)
	// and Reshards the number of reshards this process has performed.
	Epoch    int64 `json:"epoch"`
	Reshards int64 `json:"reshards"`
	// RSSBytes is the process's resident set size when the stats were
	// assembled (0 when the platform does not expose it). It is what the
	// cold-tenant paging work bounds, so it rides the stats response.
	RSSBytes int64 `json:"rss_bytes,omitempty"`

	Totals   ShardStats   `json:"totals"`
	PerShard []ShardStats `json:"per_shard"`
	// Classes aggregates per-class admission across shards (shares summed
	// over shards, so a class's Share is its service-wide queued-job slice).
	Classes []ClassStats `json:"classes,omitempty"`
}
