package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HardenedServer wraps a handler in an http.Server with bounded read, header,
// write, and idle timeouts, so a stalled or hostile peer (slowloris) cannot
// pin a connection — and with it a drain — forever. Every daemon in the repo
// (rrserve, rrdispatch, rrworker) serves through this.
func HardenedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// WriteTimeout doubles as the write deadline on drain: a response that
		// cannot be flushed within it is abandoned rather than holding
		// Shutdown hostage.
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}
}

// maxSubmitBody caps the request body of POST /v1/jobs. Generous for
// MaxBatchJobs-sized batches while bounding what a hostile client can make
// the decoder buffer.
const maxSubmitBody = 8 << 20

// maxResponseBody caps what the typed client buffers from one response;
// recorded decision streams are the largest payloads and stay far below it.
const maxResponseBody = 64 << 20

// maxPlacementRetries bounds how many times a handler re-routes a command
// that bounced off a shard's epoch fence. Each retry means the placement
// flipped mid-flight; more than a handful in one request means the pool is
// resharding pathologically fast and the client should back off.
const maxPlacementRetries = 32

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs       submit one batch for one tenant (wire.go)
//	POST /v1/tick       advance rounds (virtual-time mode only; ?rounds=n,
//	                    and in hosted mode ?shard=i ticks one shard from its
//	                    own round counter)
//	POST /v1/sync       re-push one hosted shard's checkpoint at its current
//	                    round without ticking (?shard=i); drivers use it when
//	                    the dispatcher's stored round lags the shard
//	POST /v1/reshard    resize the pool under live traffic (ReshardRequest)
//	GET  /v1/stats      service + per-shard stats (StatsResponse)
//	GET  /v1/decisions  a tenant's recorded decision stream (?tenant=...)
//	GET  /metrics       merged per-shard metric snapshot (obs JSON format)
//	GET  /healthz       liveness: 200 once the shards are running
//	GET  /readyz        readiness: 200 while accepting jobs, 503 draining
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleSubmit)
	mux.HandleFunc("/v1/tick", s.handleTick)
	mux.HandleFunc("/v1/sync", s.handleSync)
	mux.HandleFunc("/v1/reshard", s.handleReshard)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/decisions", s.handleDecisions)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// IsBinaryContent reports whether a Content-Type names the binary wire
// format (parameters after ';' are ignored).
func IsBinaryContent(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeBinary
}

// acceptsBinary reports whether an Accept header asks for binary responses.
// The check is a substring match on the media type: the client sends exactly
// one type, and anything fancier (q-values) still means "binary is fine".
func acceptsBinary(accept string) bool {
	return strings.Contains(accept, ContentTypeBinary)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	binReq := IsBinaryContent(r.Header.Get("Content-Type"))
	binResp := acceptsBinary(r.Header.Get("Accept"))
	fb := acquireFrameBuf()
	defer releaseFrameBuf(fb)
	if err := fb.readFrom(r.Body, maxSubmitBody+1); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	body := fb.b
	if len(body) > maxSubmitBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", maxSubmitBody))
		return
	}
	// Decode by the request's Content-Type. The binary path reuses a pooled
	// request (zero steady-state allocations); the JSON path stays the
	// allocate-per-request debug oracle it always was. Errors are JSON either
	// way: they must be readable across a codec mismatch.
	var req *SubmitRequest
	if binReq {
		req = AcquireSubmitRequest()
		defer ReleaseSubmitRequest(req)
		if err := DecodeSubmitBinaryInto(req, body); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		var err error
		if req, err = DecodeSubmit(body); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	// Park: a reshard in progress holds new submissions at the gate until
	// routing flips; they then proceed under the new epoch.
	if g := s.gate.Load(); g != nil {
		s.met.parked.Inc()
		<-*g
	}
	pl := s.pl.Load()
	if req.Epoch != 0 && req.Epoch != pl.epoch {
		writeErrorCode(w, http.StatusConflict, ErrCodeEpochSkew, pl.epoch,
			fmt.Sprintf("request asserts placement epoch %d, service is at %d", req.Epoch, pl.epoch))
		return
	}
	sh := pl.shards[pl.ring.ShardOf(req.Tenant)]
	wm := sh.met.wire
	wm.BytesIn.Add(int64(len(body)))
	if binReq {
		wm.FramesBinary.Inc()
	} else {
		wm.FramesJSON.Inc()
	}
	var res submitResult
	for attempt := 0; ; attempt++ {
		reply := make(chan submitResult, 1)
		sh.ch <- shardCmd{submit: &submitCmd{req: req, epoch: pl.epoch, reply: reply}}
		res = <-reply
		if res.status != statusWrongPlacement {
			break
		}
		// Lost a race with a reshard: the shard fenced onto a newer epoch
		// before our command arrived. Park if the gate is still up, reload the
		// placement, and re-route.
		if attempt >= maxPlacementRetries {
			writeError(w, http.StatusServiceUnavailable, "placement is changing; retry")
			return
		}
		if g := s.gate.Load(); g != nil {
			s.met.parked.Inc()
			<-*g
		}
		pl = s.pl.Load()
		if req.Epoch != 0 && req.Epoch != pl.epoch {
			writeErrorCode(w, http.StatusConflict, ErrCodeEpochSkew, pl.epoch,
				fmt.Sprintf("request asserts placement epoch %d, service is at %d", req.Epoch, pl.epoch))
			return
		}
		sh = pl.shards[pl.ring.ShardOf(req.Tenant)]
	}
	if res.status != http.StatusOK {
		if res.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
		}
		writeError(w, res.status, res.err)
		return
	}
	resp := SubmitResponse{
		Schema:   WireSchema,
		Accepted: len(req.Jobs),
		Round:    res.round,
		Backlog:  res.backlog,
		Epoch:    pl.epoch,
	}
	if binResp {
		// The body buffer is free again (the decoded request does not alias
		// it), so the response frame is encoded into it — the response path
		// allocates nothing either.
		out := AppendSubmitResponseBinary(fb.b[:0], &resp)
		fb.b = out
		wm.BytesOut.Add(int64(len(out)))
		writeBinary(w, http.StatusOK, out)
		return
	}
	data, err := MarshalResponse(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	wm.BytesOut.Add(int64(len(data)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data) // best-effort: a vanished client owns its connection
}

// writeBinary writes one encoded frame with the binary content type.
func writeBinary(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(status)
	_, _ = w.Write(frame) // best-effort: a vanished client owns its connection
}

// retryAfterSeconds is the Retry-After value for 429s: one round duration
// rounded up (real-time mode), or 1 second in virtual-time mode, where the
// backlog drains only when the driver ticks.
func (s *Service) retryAfterSeconds() string {
	if s.Virtual() {
		return "1"
	}
	secs := int64(s.cfg.RoundEvery.Seconds()) + 1
	return strconv.FormatInt(secs, 10)
}

func (s *Service) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.Virtual() {
		writeError(w, http.StatusConflict, "service runs a real-time round ticker; /v1/tick is for virtual-time mode")
		return
	}
	nshards := len(s.pl.Load().shards)
	n := 1
	shard := -1
	if v := r.URL.Query().Get("rounds"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 || parsed > 1<<20 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid rounds %q (want 1..%d)", v, 1<<20))
			return
		}
		n = parsed
	}
	if v := r.URL.Query().Get("shard"); v != "" {
		parsed, perr := strconv.Atoi(v)
		if perr != nil || parsed < 0 || parsed >= nshards {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid shard %q (want 0..%d)", v, nshards-1))
			return
		}
		shard = parsed
	}
	// A binary tick carries the same parameters as a request frame; the v2
	// client sends both (query for old servers, frame for new), so the frame
	// is authoritative here when present.
	if IsBinaryContent(r.Header.Get("Content-Type")) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1024))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
			return
		}
		fn, fshard, err := DecodeTickBinary(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if fn <= 0 || fn > 1<<20 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid rounds %d (want 1..%d)", fn, 1<<20))
			return
		}
		if fshard != -1 && (fshard < 0 || fshard >= nshards) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid shard %d (want 0..%d)", fshard, nshards-1))
			return
		}
		n, shard = fn, fshard
	}
	var round int64
	var err error
	if shard >= 0 {
		round, err = s.TickShard(shard, n)
		if errors.Is(err, errShardClosed) {
			writeError(w, http.StatusMisdirectedRequest, err.Error())
			return
		}
	} else {
		round, err = s.Tick(n)
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if acceptsBinary(r.Header.Get("Accept")) {
		writeBinary(w, http.StatusOK, EncodeTickResponseBinary(round))
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{Schema: StatsSchema, Round: round})
}

// TickResponse is the body of POST /v1/tick.
type TickResponse struct {
	Schema string `json:"schema"`
	Round  int64  `json:"round"`
}

// handleSync re-pushes one hosted shard's checkpoint at its current round.
func (s *Service) handleSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	nshards := len(s.pl.Load().shards)
	shard := -1
	if v := r.URL.Query().Get("shard"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 || parsed >= nshards {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid shard %q (want 0..%d)", v, nshards-1))
			return
		}
		shard = parsed
	}
	// As with tick: a binary sync frame is authoritative when present.
	if IsBinaryContent(r.Header.Get("Content-Type")) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1024))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
			return
		}
		fshard, err := DecodeSyncBinary(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		shard = fshard
	}
	if shard < 0 || shard >= nshards {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid shard %d (want 0..%d)", shard, nshards-1))
		return
	}
	round, err := s.SyncShard(shard)
	if errors.Is(err, errShardClosed) {
		writeError(w, http.StatusMisdirectedRequest, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if acceptsBinary(r.Header.Get("Accept")) {
		writeBinary(w, http.StatusOK, EncodeTickResponseBinary(round))
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{Schema: StatsSchema, Round: round})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	tenantID := r.URL.Query().Get("tenant")
	if err := ValidateTenant(tenantID); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var res decisionsResult
	pl := s.pl.Load()
	for attempt := 0; ; attempt++ {
		sh := pl.shards[pl.ring.ShardOf(tenantID)]
		reply := make(chan decisionsResult, 1)
		sh.ch <- shardCmd{decisions: &decisionsCmd{tenant: tenantID, epoch: pl.epoch, reply: reply}}
		res = <-reply
		if res.status != statusWrongPlacement {
			break
		}
		if attempt >= maxPlacementRetries {
			writeError(w, http.StatusServiceUnavailable, "placement is changing; retry")
			return
		}
		if g := s.gate.Load(); g != nil {
			<-*g
		}
		pl = s.pl.Load()
	}
	if res.status != http.StatusOK {
		writeError(w, res.status, res.err)
		return
	}
	writeJSON(w, http.StatusOK, res.resp)
}

// handleReshard resizes the pool under live traffic (POST /v1/reshard).
func (s *Service) handleReshard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4096))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	req, err := DecodeReshard(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.Reshard(req.Shards)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap, err := s.MergedMetrics()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := snap.WriteJSON(w); err != nil {
		return // client went away mid-write; nothing to salvage
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeBody(w, http.StatusOK, []byte("ok\n"))
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeBody(w, http.StatusServiceUnavailable, []byte("draining\n"))
		return
	}
	writeBody(w, http.StatusOK, []byte("ready\n"))
}

// writeJSON writes v as indented JSON, matching json.MarshalIndent with
// two-space indent plus a trailing newline. The encoding is part of the
// /v1/decisions contract: the determinism tests reproduce it byte for byte.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := MarshalResponse(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data) // best-effort: a vanished client owns its connection
}

// MarshalResponse is the canonical response encoding of every JSON endpoint:
// MarshalIndent with two-space indent and a trailing newline. Exported so
// byte-identity tests (and clients that want to diff responses) can
// reproduce the exact bytes.
func MarshalResponse(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: encoding response: %w", err)
	}
	return append(data, '\n'), nil
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeErrorCode(w, status, "", 0, msg)
}

// writeErrorCode writes a typed error: code and epoch let clients react
// mechanically (epoch_skew → adopt the hinted epoch and retry).
func writeErrorCode(w http.ResponseWriter, status int, code string, epoch int64, msg string) {
	data, err := MarshalResponse(ErrorResponse{Error: msg, Code: code, Epoch: epoch})
	if err != nil {
		// Unreachable: ErrorResponse always marshals.
		data = []byte(`{"error":"encoding failure"}` + "\n")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data) // best-effort: a vanished client owns its connection
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.WriteHeader(status)
	_, _ = w.Write(body) // best-effort: a vanished client owns its connection
}
