package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"rrsched/internal/ckptstore"
	"rrsched/internal/obs"
)

// ReshardSchema versions the reshard request/response wire format.
const ReshardSchema = "rrserve-reshard/v1"

// ReshardRequest is the body of POST /v1/reshard: resize the pool to Shards
// under live traffic.
type ReshardRequest struct {
	Schema string `json:"schema"`
	Shards int    `json:"shards"`
}

// ReshardResponse describes a completed reshard.
type ReshardResponse struct {
	Schema string `json:"schema"`
	// From and Shards are the shard counts before and after.
	From   int `json:"from"`
	Shards int `json:"shards"`
	// Epoch is the new placement epoch; clients asserting the old epoch get
	// a typed 409 until they adopt it.
	Epoch int64 `json:"epoch"`
	// Round is the round boundary the migration happened at.
	Round int64 `json:"round"`
	// Moved is the number of tenants migrated shard-to-shard, and
	// MigratedBytes the total size of their checkpoint frames.
	Moved         int   `json:"moved_tenants"`
	MigratedBytes int64 `json:"migrated_bytes"`
	DurationNs    int64 `json:"duration_ns"`
}

// DecodeReshard parses and validates a reshard request. Never panics on
// arbitrary bytes; anything it accepts re-encodes (EncodeReshard) to the
// same request — the fixed point FuzzDecodeReshard pins.
func DecodeReshard(data []byte) (*ReshardRequest, error) {
	var req ReshardRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("serve: decoding reshard request: %w", err)
	}
	if err := validateReshard(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeReshard validates and serializes a reshard request.
func EncodeReshard(req *ReshardRequest) ([]byte, error) {
	if err := validateReshard(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

func validateReshard(req *ReshardRequest) error {
	if req.Schema != ReshardSchema {
		return fmt.Errorf("serve: reshard schema %q, want %q", req.Schema, ReshardSchema)
	}
	if req.Shards < 1 || req.Shards > MaxShards {
		return fmt.Errorf("serve: reshard to %d shards out of range (1..%d)", req.Shards, MaxShards)
	}
	return nil
}

// ErrReshardBudget marks a reshard refused because its migration plan
// exceeds some class's slice of Config.ReshardBudget. The pool is left
// exactly as it was.
var ErrReshardBudget = errors.New("serve: reshard migration exceeds class budget")

// reshardWorker is the Worker field on migration checkpoint frames; it
// identifies in-process reshard traffic in the frame format shared with the
// dispatcher tier.
const reshardWorker = "reshard"

// Reshard resizes the pool to newShards under live traffic. The sequence:
// park new submissions behind the gate, fence every shard onto the new
// epoch (in-flight submissions bounce and re-park), checkpoint the tenants
// the new ring routes elsewhere into binary checkpoint frames, restore them
// on their target shards, then atomically flip routing by swapping the
// placement and releasing the gate. Parked submissions replay under the new
// epoch; decision streams are untouched because all migration happens at a
// round boundary (tickMu is held throughout).
//
// Classic services only — hosted pools reshard through the dispatcher,
// which owns their placement.
func (s *Service) Reshard(newShards int) (*ReshardResponse, error) {
	if s.cfg.Hosted {
		return nil, fmt.Errorf("serve: hosted services reshard via the dispatcher")
	}
	if newShards < 1 || newShards > MaxShards {
		return nil, fmt.Errorf("serve: reshard to %d shards out of range (1..%d)", newShards, MaxShards)
	}
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	if s.draining.Load() {
		return nil, fmt.Errorf("serve: service is draining")
	}
	t0 := obs.Now()

	// Park: submissions arriving from here on wait for the flip.
	gate := make(chan struct{})
	s.gate.Store(&gate)
	released := false
	release := func() {
		if !released {
			released = true
			s.gate.Store(nil)
			close(gate)
		}
	}
	defer release()

	// Hold the round barrier: the whole migration happens between rounds.
	s.tickMu.Lock()
	defer s.tickMu.Unlock()

	old := s.pl.Load()
	if newShards == len(old.shards) {
		return nil, fmt.Errorf("serve: service already has %d shards", newShards)
	}
	newEpoch := old.epoch + 1
	round := s.round.Load()

	// Build the grown shards first: no side effects yet, so failure needs no
	// rollback.
	surviving := len(old.shards)
	if newShards < surviving {
		surviving = newShards
	}
	shards := make([]*shard, newShards)
	copy(shards, old.shards[:surviving])
	for i := surviving; i < newShards; i++ {
		sh, err := newShard(i, s.cfg)
		if err != nil {
			return nil, err
		}
		sh.epoch = newEpoch
		sh.nshards = newShards
		sh.round = round
		sh.store = s.store
		if s.cfg.logMode() {
			// A grown shard's log dir may hold stale segments from a previous
			// incarnation at a higher shard count; start it clean.
			dir := shardDecLogDir(s.cfg.StateDir, i)
			if err := os.RemoveAll(dir); err != nil {
				return nil, fmt.Errorf("serve: clearing decision log of grown shard %d: %w", i, err)
			}
			l, err := ckptstore.OpenDecLog(dir, 0)
			if err != nil {
				return nil, err
			}
			sh.declog = l
		}
		shards[i] = sh
	}

	// Phase 1: fence. Every old shard adopts the new epoch; submissions
	// routed under the old placement bounce back to the handler, which parks
	// on the gate.
	s.fenceShards(old.shards, newEpoch, newShards)
	rollback := func() { s.fenceShards(old.shards, old.epoch, len(old.shards)) }

	// Phase 2: plan. Each shard serializes the tenants the new ring routes
	// elsewhere into checkpoint frames.
	ring := newHashRing(newShards)
	moves, err := s.planMoves(old.shards, ring, newShards, newEpoch)
	if err != nil {
		rollback()
		return nil, err
	}
	if err := s.checkReshardBudget(moves); err != nil {
		rollback()
		return nil, err
	}

	// Phase 3: commit. Restore movers on their targets, then drop them from
	// their sources. Inject-before-remove: until removal, a mover's state
	// exists on both shards, but only the target is reachable after the flip
	// and only the source before a rollback.
	moved, bytes := 0, int64(0)
	byTarget := make([][]migrationFrame, newShards)
	for _, frames := range moves {
		for _, mf := range frames {
			byTarget[mf.target] = append(byTarget[mf.target], mf)
			moved++
			bytes += int64(len(mf.data))
		}
	}
	for target, frames := range byTarget {
		if len(frames) == 0 {
			continue
		}
		if err := s.injectMoves(shards[target], target >= surviving, frames); err != nil {
			// Unreachable in practice (the frames were built two phases ago);
			// unwind the partial injections and re-fence the old epoch.
			for t := 0; t <= target; t++ {
				if len(byTarget[t]) > 0 {
					s.removeMoved(shards[t], t >= surviving, byTarget[t])
				}
			}
			rollback()
			return nil, err
		}
	}
	for i, frames := range moves {
		if len(frames) > 0 {
			s.removeMoved(old.shards[i], false, frames)
		}
	}

	// Start the grown shards and flip routing.
	for i := surviving; i < newShards; i++ {
		shards[i].start()
	}
	retired := append([]*shard{}, old.retired...)
	if newShards < len(old.shards) {
		// Merged-away shards keep running: a handler that routed just before
		// the flip may still send them a command, which bounces off the epoch
		// fence. They hold no tenants and are never ticked again.
		retired = append(retired, old.shards[newShards:]...)
	}
	s.pl.Store(&placement{epoch: newEpoch, ring: ring, shards: shards, retired: retired})
	release()

	dur := obs.Now() - t0
	s.met.reshards.Inc()
	s.met.reshardTenants.Add(int64(moved))
	s.met.reshardBytes.Add(bytes)
	s.met.reshardNs.Observe(dur)
	return &ReshardResponse{
		Schema:        ReshardSchema,
		From:          len(old.shards),
		Shards:        newShards,
		Epoch:         newEpoch,
		Round:         round,
		Moved:         moved,
		MigratedBytes: bytes,
		DurationNs:    dur,
	}, nil
}

// fenceShards synchronously installs a placement epoch on every shard.
func (s *Service) fenceShards(shards []*shard, epoch int64, nshards int) {
	replies := make([]chan struct{}, len(shards))
	for i, sh := range shards {
		replies[i] = make(chan struct{}, 1)
		sh.ch <- shardCmd{place: &placeCmd{epoch: epoch, nshards: nshards, reply: replies[i]}}
	}
	for _, r := range replies {
		<-r
	}
}

// planMoves collects every shard's migration frames: the tenants the target
// ring routes off the shard, serialized but not yet removed.
func (s *Service) planMoves(shards []*shard, ring hashRing, nshards int, newEpoch int64) ([][]migrationFrame, error) {
	replies := make([]chan planResult, len(shards))
	for i, sh := range shards {
		replies[i] = make(chan planResult, 1)
		sh.ch <- shardCmd{plan: &planCmd{ring: ring, nshards: nshards, newEpoch: newEpoch, reply: replies[i]}}
	}
	out := make([][]migrationFrame, len(shards))
	var firstErr error
	for i, r := range replies {
		res := <-r
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		out[i] = res.frames
	}
	return out, firstErr
}

// checkReshardBudget enforces Config.ReshardBudget split across classes by
// weight: every class's migrated bytes must fit its slice.
func (s *Service) checkReshardBudget(moves [][]migrationFrame) error {
	budget := s.cfg.ReshardBudget
	if budget == 0 {
		return nil
	}
	classes := normalizeClasses(s.cfg.Classes)
	var sum int64
	for _, c := range classes {
		sum += c.Weight
	}
	byClass := map[string]int64{}
	for _, frames := range moves {
		for _, mf := range frames {
			byClass[mf.class] += int64(len(mf.data))
		}
	}
	for _, c := range classes {
		slice := budget * c.Weight / sum
		if used := byClass[c.Name]; used > slice {
			return fmt.Errorf("%w: class %q needs %d bytes of its %d-byte slice (budget %d)",
				ErrReshardBudget, c.Name, used, slice, budget)
		}
	}
	return nil
}

// injectMoves restores migration frames on their target shard. A running
// shard adopts them on its own goroutine; a freshly built one (not started
// yet) is written directly.
func (s *Service) injectMoves(sh *shard, fresh bool, frames []migrationFrame) error {
	if fresh {
		return sh.adoptFrames(frames)
	}
	reply := make(chan error, 1)
	sh.ch <- shardCmd{inject: &injectCmd{frames: frames, reply: reply}}
	return <-reply
}

// removeMoved drops migrated tenants from a shard.
func (s *Service) removeMoved(sh *shard, fresh bool, frames []migrationFrame) {
	names := make([]string, len(frames))
	for i, mf := range frames {
		names[i] = mf.tenant
	}
	if fresh {
		sh.handleRemove(names)
		return
	}
	reply := make(chan struct{}, 1)
	sh.ch <- shardCmd{remove: &removeCmd{tenants: names, reply: reply}}
	<-reply
}

// handlePlan serializes every tenant the target ring routes off this shard
// into a migration frame: the tenant's checkpoint JSON wrapped in a binary
// checkpoint frame addressed to its new shard. Recorded decision streams
// travel with the tenant whenever recording is on (in log mode as streaming
// records riding the frame), so /v1/decisions is seamless across the move.
// Clean chunk-backed residents and evicted stubs move as tiny chunk
// references — the chunk store is shared across shards, so only the dirty
// state pays serialization (and only it counts against the reshard budget).
// Runs on the shard goroutine.
func (sh *shard) handlePlan(cmd *planCmd) planResult {
	var frames []migrationFrame
	for _, name := range sh.order {
		target := cmd.ring.ShardOf(name)
		if target == sh.idx && sh.idx < cmd.nshards {
			continue
		}
		tn := sh.tenants[name]
		var tcp tenantCheckpoint
		if sh.store != nil && !tn.dirty && tn.chunk.ID != 0 {
			tcp = tenantCheckpoint{
				Name:  name,
				Epoch: tn.epoch,
				Chunk: ckptstore.FormatChunkID(tn.chunk.ID),
				Chain: tn.chunk.Chain,
			}
			if tn.class != 0 || sh.classes[tn.class].Name != DefaultClass {
				tcp.Class = sh.classes[tn.class].Name
			}
		} else {
			full, err := sh.checkpointTenant(tn, sh.cfg.RecordDecisions && sh.declog == nil)
			if err != nil {
				return planResult{err: err}
			}
			tcp = full
		}
		if err := sh.attachLogDecisions(&tcp); err != nil {
			return planResult{err: err}
		}
		enc, err := sh.encodeFrame(&tcp, cmd.newEpoch, target)
		if err != nil {
			return planResult{err: err}
		}
		frames = append(frames, migrationFrame{
			tenant: name,
			class:  sh.classes[tn.class].Name,
			target: target,
			data:   enc,
		})
	}
	// Evicted stubs migrate too (sorted for deterministic plan order): their
	// state already lives in the shared chunk store, so the frame is only the
	// reference plus identity.
	stubs := make([]string, 0, len(sh.evicted))
	for name := range sh.evicted {
		stubs = append(stubs, name)
	}
	sort.Strings(stubs)
	for _, name := range stubs {
		target := cmd.ring.ShardOf(name)
		if target == sh.idx && sh.idx < cmd.nshards {
			continue
		}
		stub := sh.evicted[name]
		tcp := tenantCheckpoint{
			Name:    name,
			Epoch:   stub.epoch,
			Evicted: true,
			Chunk:   ckptstore.FormatChunkID(stub.chunk.ID),
			Chain:   stub.chunk.Chain,
		}
		if stub.class != 0 || sh.classes[stub.class].Name != DefaultClass {
			tcp.Class = sh.classes[stub.class].Name
		}
		if err := sh.attachLogDecisions(&tcp); err != nil {
			return planResult{err: err}
		}
		enc, err := sh.encodeFrame(&tcp, cmd.newEpoch, target)
		if err != nil {
			return planResult{err: err}
		}
		frames = append(frames, migrationFrame{
			tenant: name,
			class:  sh.classes[stub.class].Name,
			target: target,
			data:   enc,
		})
	}
	return planResult{frames: frames}
}

// attachLogDecisions copies a migrating tenant's streaming-log records onto
// its frame, so the target shard can replay them into its own log.
func (sh *shard) attachLogDecisions(tcp *tenantCheckpoint) error {
	if sh.declog == nil {
		return nil
	}
	if sh.declogErr != nil {
		return fmt.Errorf("serve: shard %d decision log failed earlier: %w", sh.idx, sh.declogErr)
	}
	recs, err := sh.declog.ReadTenant(tcp.Name)
	if err != nil {
		return fmt.Errorf("serve: reading decision log of migrating tenant %q: %w", tcp.Name, err)
	}
	for _, rec := range recs {
		tcp.LogDecisions = append(tcp.LogDecisions, logDecision{Round: rec.Round, Decision: rec.Payload})
	}
	return nil
}

// encodeFrame wraps one tenant checkpoint in a binary migration frame
// addressed to its target shard under the new epoch.
func (sh *shard) encodeFrame(tcp *tenantCheckpoint, newEpoch int64, target int) ([]byte, error) {
	data, err := json.Marshal(tcp)
	if err != nil {
		return nil, fmt.Errorf("serve: serializing tenant %q for migration: %w", tcp.Name, err)
	}
	enc, err := EncodeCheckpointFrame(&CheckpointFrame{
		Worker: reshardWorker,
		Shard:  target,
		Epoch:  newEpoch,
		Round:  sh.round,
		Data:   data,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: framing tenant %q for migration: %w", tcp.Name, err)
	}
	return enc, nil
}

// adoptFrames restores migration frames onto this shard: the inject half of
// the checkpoint→transfer→restore path. Runs on the shard goroutine (or
// before it starts, for shards created by a split).
func (sh *shard) adoptFrames(frames []migrationFrame) error {
	for _, mf := range frames {
		cf, err := DecodeCheckpointFrame(mf.data)
		if err != nil {
			return fmt.Errorf("serve: decoding migration frame for tenant %q: %w", mf.tenant, err)
		}
		if cf.Shard != sh.idx {
			return fmt.Errorf("serve: migration frame for shard %d delivered to shard %d", cf.Shard, sh.idx)
		}
		if cf.Round != sh.round {
			return fmt.Errorf("serve: migration frame at round %d, shard %d is at %d", cf.Round, sh.idx, sh.round)
		}
		var tcp tenantCheckpoint
		if err := json.Unmarshal(cf.Data, &tcp); err != nil {
			return fmt.Errorf("serve: decoding migrated tenant %q: %w", mf.tenant, err)
		}
		if err := ValidateTenant(tcp.Name); err != nil {
			return fmt.Errorf("serve: migrated tenant: %w", err)
		}
		if _, dup := sh.tenants[tcp.Name]; dup {
			return fmt.Errorf("serve: migration repeats tenant %q on shard %d", tcp.Name, sh.idx)
		}
		if _, dup := sh.evicted[tcp.Name]; dup {
			return fmt.Errorf("serve: migration repeats tenant %q on shard %d", tcp.Name, sh.idx)
		}
		if tcp.Chunk != "" {
			if err := sh.adoptChunkFrame(&tcp, cf.Round); err != nil {
				return err
			}
		} else {
			tn, err := sh.buildTenant(&tcp, cf.Round)
			if err != nil {
				return err
			}
			sh.adoptTenant(tn)
		}
		if len(tcp.LogDecisions) > 0 {
			if sh.declog == nil {
				return fmt.Errorf("serve: migrated tenant %q carries log decisions, shard %d has no decision log", tcp.Name, sh.idx)
			}
			for _, ld := range tcp.LogDecisions {
				if err := sh.declog.Append(tcp.Name, ld.Round, ld.Decision); err != nil {
					return fmt.Errorf("serve: replaying decision log of migrated tenant %q: %w", tcp.Name, err)
				}
			}
		}
	}
	sort.Strings(sh.order)
	sh.setStateGauges()
	sh.setPagingGauges()
	return nil
}

// adoptChunkFrame restores one chunk-reference migration frame: an evicted
// stub stays a stub (the chunk store is shared, nothing to copy), a clean
// resident is resolved from its chunk.
func (sh *shard) adoptChunkFrame(tcp *tenantCheckpoint, round int64) error {
	if sh.store == nil {
		return fmt.Errorf("serve: migrated tenant %q is chunk-backed, shard %d has no chunk store", tcp.Name, sh.idx)
	}
	ref, err := ckptstore.TenantRef{Name: tcp.Name, Chunk: tcp.Chunk, Chain: tcp.Chain}.Ref()
	if err != nil {
		return fmt.Errorf("serve: migrated tenant %q: %w", tcp.Name, err)
	}
	if tcp.Evicted {
		class, ok := sh.restoreClass(tcp.Class)
		if !ok {
			return fmt.Errorf("serve: migrated tenant %q has unknown class %q", tcp.Name, tcp.Class)
		}
		if !sh.store.Has(ref.ID) {
			return fmt.Errorf("serve: migrated tenant %q references missing chunk %s", tcp.Name, tcp.Chunk)
		}
		if tcp.Epoch < 0 || tcp.Epoch > round {
			return fmt.Errorf("serve: migrated tenant %q has epoch %d outside [0, %d]", tcp.Name, tcp.Epoch, round)
		}
		sh.evicted[tcp.Name] = evictedStub{chunk: ref, epoch: tcp.Epoch, class: class}
		return nil
	}
	payload, _, err := sh.store.Resolve(ref.ID)
	if err != nil {
		return fmt.Errorf("serve: resolving migrated tenant %q: %w", tcp.Name, err)
	}
	var tchunk tenantChunkPayload
	if err := json.Unmarshal(payload, &tchunk); err != nil {
		return fmt.Errorf("serve: decoding chunk of migrated tenant %q: %w", tcp.Name, err)
	}
	if tchunk.Tenant.Name != tcp.Name {
		return fmt.Errorf("serve: tenant %q chunk holds tenant %q", tcp.Name, tchunk.Tenant.Name)
	}
	if tchunk.Round < 0 || tchunk.Round > round {
		return fmt.Errorf("serve: tenant %q chunk round %d outside [0, %d]", tcp.Name, tchunk.Round, round)
	}
	tn, err := sh.buildTenant(&tchunk.Tenant, tchunk.Round)
	if err != nil {
		return err
	}
	tn.chunk = ref
	tn.lastActive = round
	sh.adoptTenant(tn)
	return nil
}

// handleRemove drops the named tenants (their state now lives on another
// shard). Runs on the shard goroutine.
func (sh *shard) handleRemove(names []string) {
	drop := make(map[string]bool, len(names))
	for _, name := range names {
		tn := sh.tenants[name]
		if tn == nil {
			if _, ok := sh.evicted[name]; ok {
				// A migrated stub: its state lives in the shared chunk store and
				// now belongs to the target shard.
				delete(sh.evicted, name)
				sh.setPagingGauges()
			}
			continue
		}
		drop[name] = true
		if tn.dirty {
			sh.clearDirty(tn)
		}
		delete(sh.tenants, name)
		sh.backlog -= len(tn.queued)
		sh.classBacklog[tn.class] -= len(tn.queued)
		sh.inflight -= len(tn.inflight)
	}
	if len(drop) == 0 {
		return
	}
	order := make([]string, 0, len(sh.order)-len(drop))
	for _, name := range sh.order {
		if !drop[name] {
			order = append(order, name)
		}
	}
	sh.order = order
	sh.setStateGauges()
}

// ReshardCheckpoints transforms a complete checkpoint set taken under one
// shard count into an equivalent set for newShards shards: every tenant is
// re-routed through the newShards-ring, rounds are preserved, and the
// placement epoch is bumped past the input's. The boot-restore path uses it
// to accept resharded state, and the dispatcher uses it to resize a hosted
// fleet between rounds.
func ReshardCheckpoints(old [][]byte, newShards int) ([][]byte, error) {
	if newShards < 1 || newShards > MaxShards {
		return nil, fmt.Errorf("serve: reshard to %d shards out of range (1..%d)", newShards, MaxShards)
	}
	if len(old) == 0 {
		return nil, fmt.Errorf("serve: no checkpoints to reshard")
	}
	cps := make([]*shardCheckpoint, len(old))
	for i, data := range old {
		cp, err := decodeShardCheckpoint(data)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d checkpoint: %w", i, err)
		}
		if cp.Shard != i {
			return nil, fmt.Errorf("serve: checkpoint %d names shard %d", i, cp.Shard)
		}
		if cp.Shards != len(old) {
			return nil, fmt.Errorf("serve: checkpoint %d was taken with %d shards, set has %d", i, cp.Shards, len(old))
		}
		if i > 0 && cp.Round != cps[0].Round {
			return nil, fmt.Errorf("serve: shard rounds diverge in checkpoint set (%d vs %d)", cp.Round, cps[0].Round)
		}
		if i > 0 && cp.PlacementEpoch != cps[0].PlacementEpoch {
			return nil, fmt.Errorf("serve: placement epochs diverge in checkpoint set (%d vs %d)", cp.PlacementEpoch, cps[0].PlacementEpoch)
		}
		cps[i] = cp
	}
	ring := newHashRing(newShards)
	out := make([]*shardCheckpoint, newShards)
	for i := range out {
		out[i] = &shardCheckpoint{
			Schema:         StateSchema,
			Shard:          i,
			Shards:         newShards,
			Round:          cps[0].Round,
			PlacementEpoch: cps[0].PlacementEpoch + 1,
		}
	}
	seen := make(map[string]bool)
	for _, cp := range cps {
		for i := range cp.Tenants {
			tcp := cp.Tenants[i]
			if seen[tcp.Name] {
				return nil, fmt.Errorf("serve: checkpoint set repeats tenant %q", tcp.Name)
			}
			seen[tcp.Name] = true
			t := ring.ShardOf(tcp.Name)
			out[t].Tenants = append(out[t].Tenants, tcp)
		}
	}
	res := make([][]byte, newShards)
	for i, cp := range out {
		sort.Slice(cp.Tenants, func(a, b int) bool { return cp.Tenants[a].Name < cp.Tenants[b].Name })
		data, err := json.MarshalIndent(cp, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("serve: serializing resharded shard %d: %w", i, err)
		}
		res[i] = data
	}
	return res, nil
}
