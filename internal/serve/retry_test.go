package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler serves a scripted sequence of failures before succeeding,
// exercising every retryable path: 500s, connection resets, and 429s with
// Retry-After.
type flakyHandler struct {
	calls  atomic.Int64
	script []string // per attempt: "500", "429", "reset", "ok"
	final  http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(f.calls.Add(1)) - 1
	step := "ok"
	if n < len(f.script) {
		step = f.script[n]
	}
	switch step {
	case "500":
		writeError(w, http.StatusInternalServerError, "transient")
	case "429":
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "backpressure")
	case "reset":
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		_ = conn.Close() // deliberate mid-request reset
	default:
		f.final.ServeHTTP(w, r)
	}
}

// newRecordedClient returns a client whose sleeps are recorded instead of
// slept, so backoff schedules are assertable and tests stay fast.
func newRecordedClient(base string, policy RetryPolicy) (*Client, *[]time.Duration) {
	c := NewClientPolicy(base, policy)
	slept := &[]time.Duration{}
	c.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return c, slept
}

func retryBackend(t *testing.T) http.Handler {
	t.Helper()
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc.Handler()
}

// TestClientRetriesFlakyServer drives a submit through a 500, a connection
// reset, and then success; the client must land the batch and back off
// between attempts with jittered, growing delays.
func TestClientRetriesFlakyServer(t *testing.T) {
	fh := &flakyHandler{script: []string{"500", "reset"}, final: retryBackend(t)}
	srv := httptest.NewServer(fh)
	defer srv.Close()
	client, slept := newRecordedClient(srv.URL, RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 7,
	})
	out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err != nil || !out.Accepted {
		t.Fatalf("submit through flaky server: out=%+v err=%v", out, err)
	}
	if got := fh.calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("client slept %d times, want 2: %v", len(*slept), *slept)
	}
	for i, d := range *slept {
		base := 10 * time.Millisecond << i
		if d < base/2 || d >= base {
			t.Fatalf("backoff %d = %v outside jitter window [%v, %v)", i, d, base/2, base)
		}
	}
}

// TestClientRetryBudgetExhausted pins that a persistently failing server
// surfaces the last error after exactly MaxAttempts tries.
func TestClientRetryBudgetExhausted(t *testing.T) {
	fh := &flakyHandler{script: []string{"500", "500", "500", "500", "500", "500"}, final: retryBackend(t)}
	srv := httptest.NewServer(fh)
	defer srv.Close()
	client, slept := newRecordedClient(srv.URL, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 7,
	})
	_, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("err = %v, want the final 500", err)
	}
	if got := fh.calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want MaxAttempts=3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("client slept %d times, want 2", len(*slept))
	}
}

// TestClientHonorsRetryAfter pins the 429 paths: without RetryBackpressure a
// 429 surfaces immediately as a Rejected outcome; with it, the client waits
// at least the server's Retry-After before the next attempt.
func TestClientHonorsRetryAfter(t *testing.T) {
	// Default policy: no backpressure retries, single attempt, outcome visible.
	fh := &flakyHandler{script: []string{"429"}, final: retryBackend(t)}
	srv := httptest.NewServer(fh)
	defer srv.Close()
	client, slept := newRecordedClient(srv.URL, DefaultRetryPolicy())
	out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err != nil || !out.Rejected || out.RetryAfter != time.Second {
		t.Fatalf("429 outcome: out=%+v err=%v", out, err)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept on a non-retried 429: %v", *slept)
	}

	// Backpressure retries on: the wait is floored at Retry-After (1s),
	// far above the 1ms base backoff.
	fh2 := &flakyHandler{script: []string{"429"}, final: retryBackend(t)}
	srv2 := httptest.NewServer(fh2)
	defer srv2.Close()
	client2, slept2 := newRecordedClient(srv2.URL, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
		RetryBackpressure: true, Seed: 7,
	})
	out, err = client2.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err != nil || !out.Accepted {
		t.Fatalf("submit through 429: out=%+v err=%v", out, err)
	}
	if len(*slept2) != 1 || (*slept2)[0] < time.Second {
		t.Fatalf("Retry-After not honored: slept %v, want >= 1s", *slept2)
	}
}

// TestClientNeverRetriesDrain pins that 503 (draining) is terminal: no
// retries, Refused outcome.
func TestClientNeverRetriesDrain(t *testing.T) {
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	svc.BeginDrain()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client, slept := newRecordedClient(srv.URL, RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
		RetryBackpressure: true, Seed: 7,
	})
	out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}}})
	if err != nil || !out.Refused {
		t.Fatalf("drain outcome: out=%+v err=%v", out, err)
	}
	if len(*slept) != 0 {
		t.Fatalf("client retried a draining server: %v", *slept)
	}
}
