package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// WireSchemaV2 is the negotiated binary wire format: length-prefixed
// little-endian frames carrying the same submit/tick/sync/checkpoint payloads
// as the JSON schema. A request decoded from a binary frame carries this
// schema string; the JSON codec keeps requiring WireSchema exactly, so the
// Schema field always names the codec the request actually traveled in.
//
// JSON stays first-class: it is the debugging format and the differential
// oracle — every binary codec property is tested by comparing against the
// JSON round trip of the same value.
const WireSchemaV2 = "rrserve/v2"

// Content types negotiated on /v1/jobs, /v1/tick, and /v1/sync. A request
// with ContentTypeBinary carries a binary frame; a request with any other
// (or no) Content-Type is decoded as JSON, which keeps old clients working
// unchanged. A response is binary only when the request's Accept includes
// ContentTypeBinary. Error responses are always JSON (ErrorResponse): errors
// are for humans and fallback logic, and must survive a codec mismatch.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-rrserve-bin"
)

// Binary frame layout (all integers little-endian):
//
//	offset  size  field
//	0       2     magic "rB"
//	2       1     version (2)
//	3       1     frame type (FrameType)
//	4       4     payload length
//	8       ...   payload
//
// The payload length is authoritative: a frame whose buffer is shorter is
// truncated (ErrFrameTruncated), longer carries trailing garbage
// (ErrFrameHeader), and a declared length beyond MaxFramePayload is rejected
// before any payload is touched (ErrFrameOversized).
const (
	frameMagic0  = 'r'
	frameMagic1  = 'B'
	frameVersion = 2

	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 8

	// MaxFramePayload caps a frame's declared payload length. Checkpoint
	// frames carry full shard state, so the bound matches the largest HTTP
	// body any endpoint accepts.
	MaxFramePayload = 64 << 20
)

// FrameType tags a binary frame's payload.
type FrameType byte

// Frame types of the rrserve/v2 wire.
const (
	FrameSubmit FrameType = iota + 1
	FrameSubmitResponse
	FrameTick
	FrameTickResponse
	FrameSync
	FrameCheckpoint
)

// Typed frame errors: negotiation and robustness tests match on these with
// errors.Is, and the HTTP layer maps them all to 400s.
var (
	// ErrFrameHeader marks a malformed header or payload structure: bad
	// magic, unknown version or type, or trailing bytes after the payload.
	ErrFrameHeader = errors.New("serve: malformed binary frame")
	// ErrFrameTruncated marks a frame shorter than its declared length (a
	// mid-frame connection drop surfaces as this or as a body read error).
	ErrFrameTruncated = errors.New("serve: truncated binary frame")
	// ErrFrameOversized marks a declared payload length beyond MaxFramePayload.
	ErrFrameOversized = errors.New("serve: binary frame length exceeds bound")
)

// binJobLen is the per-job payload size: id int64, color int32, delay int64.
const binJobLen = 20

// appendFrameHeader appends a header with a zero payload length, to be
// patched by patchFrameLen once the payload is in place.
func appendFrameHeader(dst []byte, t FrameType) []byte {
	return append(dst, frameMagic0, frameMagic1, frameVersion, byte(t), 0, 0, 0, 0)
}

// patchFrameLen writes the payload length into the header of the frame that
// starts at start. The caller guarantees the header was appended at start.
func patchFrameLen(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start+4:start+8], uint32(len(dst)-start-FrameHeaderLen))
	return dst
}

// SplitFrame validates a complete frame and returns its type and payload.
// The payload aliases data; callers that retain it must copy.
func SplitFrame(data []byte) (FrameType, []byte, error) {
	if len(data) < FrameHeaderLen {
		return 0, nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrFrameTruncated, len(data), FrameHeaderLen)
	}
	if data[0] != frameMagic0 || data[1] != frameMagic1 {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x%02x", ErrFrameHeader, data[0], data[1])
	}
	if data[2] != frameVersion {
		return 0, nil, fmt.Errorf("%w: version %d, want %d", ErrFrameHeader, data[2], frameVersion)
	}
	t := FrameType(data[3])
	if t < FrameSubmit || t > FrameCheckpoint {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrFrameHeader, data[3])
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: declared payload %d, max %d", ErrFrameOversized, n, MaxFramePayload)
	}
	payload := data[FrameHeaderLen:]
	if uint64(len(payload)) < uint64(n) {
		return 0, nil, fmt.Errorf("%w: payload %d of declared %d bytes", ErrFrameTruncated, len(payload), n)
	}
	if uint64(len(payload)) > uint64(n) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrFrameHeader, uint64(len(payload))-uint64(n))
	}
	return t, payload[:n], nil
}

// splitTypedFrame is SplitFrame plus a frame-type check.
func splitTypedFrame(data []byte, want FrameType) ([]byte, error) {
	t, payload, err := SplitFrame(data)
	if err != nil {
		return nil, err
	}
	if t != want {
		return nil, fmt.Errorf("%w: frame type %d, want %d", ErrFrameHeader, t, want)
	}
	return payload, nil
}

// AppendSubmitBinary validates req and appends its binary frame to dst.
// Schema may be WireSchema or WireSchemaV2 (the frame's version byte is the
// schema on the wire); everything else is held to the same invariants as the
// JSON encoder.
func AppendSubmitBinary(dst []byte, req *SubmitRequest) ([]byte, error) {
	if req.Schema != WireSchema && req.Schema != WireSchemaV2 {
		return dst, fmt.Errorf("serve: submit schema %q, want %q or %q", req.Schema, WireSchema, WireSchemaV2)
	}
	if err := validateSubmitMeta(req.Class, req.Epoch); err != nil {
		return dst, err
	}
	var ck delayChecker
	if err := validateSubmitBody(req.Tenant, req.Jobs, &ck); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = appendFrameHeader(dst, FrameSubmit)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(req.Tenant)))
	dst = append(dst, req.Tenant...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Jobs)))
	for i := range req.Jobs {
		j := &req.Jobs[i]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(j.ID))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(j.Color))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(j.Delay))
	}
	// Optional routing-metadata trailer: [u16 class len][class][i64 epoch].
	// Emitted only when either field is set, so legacy frames (and their
	// golden bytes) are unchanged — the canonical encoding of a metadata-free
	// batch has no trailer.
	if req.Class != "" || req.Epoch != 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(req.Class)))
		dst = append(dst, req.Class...)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Epoch))
	}
	return patchFrameLen(dst, start), nil
}

// EncodeSubmitBinary validates and serializes a submit request as one binary
// frame.
func EncodeSubmitBinary(req *SubmitRequest) ([]byte, error) {
	return AppendSubmitBinary(nil, req)
}

// DecodeSubmitBinary parses and validates a binary submit frame. It never
// panics on arbitrary bytes, and any frame it accepts re-encodes
// (EncodeSubmitBinary) to an equivalent batch — the fixed-point property
// FuzzDecodeSubmitBinary pins, mirroring the JSON decoder's.
func DecodeSubmitBinary(data []byte) (*SubmitRequest, error) {
	req := &SubmitRequest{}
	if err := DecodeSubmitBinaryInto(req, data); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeSubmitBinaryInto decodes a binary submit frame into req, reusing
// req.Jobs capacity. With a pooled request (AcquireSubmitRequest) and an
// interned tenant the steady-state decode path performs zero heap
// allocations — the property the AllocsPerRun pins hold the hot path to.
func DecodeSubmitBinaryInto(req *SubmitRequest, data []byte) error {
	payload, err := splitTypedFrame(data, FrameSubmit)
	if err != nil {
		return err
	}
	if len(payload) < 2 {
		return fmt.Errorf("%w: submit payload missing tenant length", ErrFrameTruncated)
	}
	tl := int(binary.LittleEndian.Uint16(payload))
	rest := payload[2:]
	if tl > MaxTenantLen {
		return fmt.Errorf("serve: tenant id of %d bytes, max %d", tl, MaxTenantLen)
	}
	if tl > len(rest) {
		return fmt.Errorf("%w: submit payload truncated inside tenant id", ErrFrameTruncated)
	}
	tb := rest[:tl]
	rest = rest[tl:]
	if err := validateTenantBytes(tb); err != nil {
		return err
	}
	if len(rest) < 4 {
		return fmt.Errorf("%w: submit payload missing job count", ErrFrameTruncated)
	}
	n := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if n == 0 {
		return fmt.Errorf("serve: submit batch for tenant %q has no jobs", tb)
	}
	if n > MaxBatchJobs {
		return fmt.Errorf("serve: submit batch has %d jobs, max %d", n, MaxBatchJobs)
	}
	if len(rest) < n*binJobLen {
		return fmt.Errorf("%w: %d job bytes for %d jobs (want %d)", ErrFrameTruncated, len(rest), n, n*binJobLen)
	}
	trailer := rest[n*binJobLen:]
	req.Class, req.Epoch = "", 0
	if len(trailer) > 0 {
		// Routing-metadata trailer: [u16 class len][class][i64 epoch].
		// Legacy frames simply end after the jobs.
		if len(trailer) < 2 {
			return fmt.Errorf("%w: submit trailer missing class length", ErrFrameTruncated)
		}
		cl := int(binary.LittleEndian.Uint16(trailer))
		if cl > MaxClassLen {
			return fmt.Errorf("serve: class name of %d bytes, max %d", cl, MaxClassLen)
		}
		if len(trailer) < 2+cl+8 {
			return fmt.Errorf("%w: submit trailer %d bytes, want %d", ErrFrameTruncated, len(trailer), 2+cl+8)
		}
		if len(trailer) > 2+cl+8 {
			return fmt.Errorf("%w: %d trailing bytes after submit trailer", ErrFrameHeader, len(trailer)-(2+cl+8))
		}
		cb := trailer[2 : 2+cl]
		if cl > 0 {
			if err := validateTenantBytes(cb); err != nil {
				return fmt.Errorf("serve: invalid class name: %w", err)
			}
			req.Class = tenantInterner.get(cb)
		}
		req.Epoch = int64(binary.LittleEndian.Uint64(trailer[2+cl:]))
		if err := validateSubmitMeta(req.Class, req.Epoch); err != nil {
			return err
		}
	}
	req.Schema = WireSchemaV2
	req.Tenant = tenantInterner.get(tb)
	if cap(req.Jobs) < n {
		req.Jobs = make([]SubmitJob, n)
	} else {
		req.Jobs = req.Jobs[:n]
	}
	off := 0
	for i := 0; i < n; i++ {
		req.Jobs[i] = SubmitJob{
			ID:    int64(binary.LittleEndian.Uint64(rest[off:])),
			Color: int32(binary.LittleEndian.Uint32(rest[off+8:])),
			Delay: int64(binary.LittleEndian.Uint64(rest[off+12:])),
		}
		off += binJobLen
	}
	var ck delayChecker
	return validateSubmitBody(req.Tenant, req.Jobs, &ck)
}

// AppendSubmitResponseBinary appends a submit response frame to dst.
func AppendSubmitResponseBinary(dst []byte, resp *SubmitResponse) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst, FrameSubmitResponse)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.Accepted))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(resp.Round))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(resp.Backlog))
	// Placement-epoch trailer, present only once the epoch is non-zero —
	// pre-reshard responses keep the legacy 20-byte payload.
	if resp.Epoch != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(resp.Epoch))
	}
	return patchFrameLen(dst, start)
}

// DecodeSubmitResponseBinary parses a submit response frame (20 bytes, or 28
// with the placement-epoch trailer).
func DecodeSubmitResponseBinary(data []byte) (*SubmitResponse, error) {
	payload, err := splitTypedFrame(data, FrameSubmitResponse)
	if err != nil {
		return nil, err
	}
	if len(payload) != 20 && len(payload) != 28 {
		return nil, fmt.Errorf("%w: submit response payload %d bytes, want 20 or 28", ErrFrameHeader, len(payload))
	}
	resp := &SubmitResponse{
		Schema:   WireSchemaV2,
		Accepted: int(binary.LittleEndian.Uint32(payload)),
		Round:    int64(binary.LittleEndian.Uint64(payload[4:])),
		Backlog:  int(int64(binary.LittleEndian.Uint64(payload[12:]))),
	}
	if len(payload) == 28 {
		resp.Epoch = int64(binary.LittleEndian.Uint64(payload[20:]))
	}
	return resp, nil
}

// EncodeTickBinary encodes a tick request frame: advance rounds rounds on
// shard (-1 means every shard in lockstep).
func EncodeTickBinary(rounds, shard int) []byte {
	dst := appendFrameHeader(nil, FrameTick)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rounds))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(shard)))
	return patchFrameLen(dst, 0)
}

// DecodeTickBinary parses a tick request frame.
func DecodeTickBinary(data []byte) (rounds, shard int, err error) {
	payload, err := splitTypedFrame(data, FrameTick)
	if err != nil {
		return 0, 0, err
	}
	if len(payload) != 8 {
		return 0, 0, fmt.Errorf("%w: tick payload %d bytes, want 8", ErrFrameHeader, len(payload))
	}
	rounds = int(binary.LittleEndian.Uint32(payload))
	shard = int(int32(binary.LittleEndian.Uint32(payload[4:])))
	return rounds, shard, nil
}

// EncodeTickResponseBinary encodes a tick/sync response frame carrying the
// next round.
func EncodeTickResponseBinary(round int64) []byte {
	dst := appendFrameHeader(nil, FrameTickResponse)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(round))
	return patchFrameLen(dst, 0)
}

// DecodeTickResponseBinary parses a tick/sync response frame.
func DecodeTickResponseBinary(data []byte) (int64, error) {
	payload, err := splitTypedFrame(data, FrameTickResponse)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: tick response payload %d bytes, want 8", ErrFrameHeader, len(payload))
	}
	return int64(binary.LittleEndian.Uint64(payload)), nil
}

// EncodeSyncBinary encodes a sync request frame for one hosted shard.
func EncodeSyncBinary(shard int) []byte {
	dst := appendFrameHeader(nil, FrameSync)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(shard)))
	return patchFrameLen(dst, 0)
}

// DecodeSyncBinary parses a sync request frame.
func DecodeSyncBinary(data []byte) (int, error) {
	payload, err := splitTypedFrame(data, FrameSync)
	if err != nil {
		return 0, err
	}
	if len(payload) != 4 {
		return 0, fmt.Errorf("%w: sync payload %d bytes, want 4", ErrFrameHeader, len(payload))
	}
	return int(int32(binary.LittleEndian.Uint32(payload))), nil
}

// maxFrameWorkerLen bounds the worker name in a checkpoint frame. The
// dispatch layer enforces its own (tighter) bound after decoding; this one
// only keeps the frame parser honest.
const maxFrameWorkerLen = 512

// CheckpointFrame is the binary form of a shard checkpoint push: routing
// metadata plus the opaque checkpoint bytes, carried raw instead of embedded
// in a JSON document. The dispatch layer converts to/from its CheckpointPush
// and runs its own validation, so the two codecs share one invariant set.
type CheckpointFrame struct {
	Worker string
	Shard  int
	Epoch  int64
	Round  int64
	Final  bool
	Data   []byte
}

// EncodeCheckpointFrame serializes a checkpoint frame.
func EncodeCheckpointFrame(f *CheckpointFrame) ([]byte, error) {
	if len(f.Worker) == 0 || len(f.Worker) > maxFrameWorkerLen {
		return nil, fmt.Errorf("serve: checkpoint frame worker name of %d bytes, want 1..%d", len(f.Worker), maxFrameWorkerLen)
	}
	if len(f.Data) == 0 {
		return nil, fmt.Errorf("serve: checkpoint frame for shard %d has no data", f.Shard)
	}
	if len(f.Data) > MaxFramePayload-FrameHeaderLen-len(f.Worker)-32 {
		return nil, fmt.Errorf("serve: checkpoint frame data of %d bytes exceeds frame bound", len(f.Data))
	}
	dst := appendFrameHeader(make([]byte, 0, FrameHeaderLen+32+len(f.Worker)+len(f.Data)), FrameCheckpoint)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Worker)))
	dst = append(dst, f.Worker...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(f.Shard)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Epoch))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Round))
	final := byte(0)
	if f.Final {
		final = 1
	}
	dst = append(dst, final)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Data)))
	dst = append(dst, f.Data...)
	return patchFrameLen(dst, 0), nil
}

// DecodeCheckpointFrame parses a checkpoint frame. The Data slice aliases
// data; callers that retain it must copy.
func DecodeCheckpointFrame(data []byte) (*CheckpointFrame, error) {
	payload, err := splitTypedFrame(data, FrameCheckpoint)
	if err != nil {
		return nil, err
	}
	if len(payload) < 2 {
		return nil, fmt.Errorf("%w: checkpoint payload missing worker length", ErrFrameTruncated)
	}
	wl := int(binary.LittleEndian.Uint16(payload))
	rest := payload[2:]
	if wl == 0 || wl > maxFrameWorkerLen {
		return nil, fmt.Errorf("serve: checkpoint frame worker name of %d bytes, want 1..%d", wl, maxFrameWorkerLen)
	}
	if wl > len(rest) {
		return nil, fmt.Errorf("%w: checkpoint payload truncated inside worker name", ErrFrameTruncated)
	}
	worker := string(rest[:wl])
	rest = rest[wl:]
	if len(rest) < 25 {
		return nil, fmt.Errorf("%w: checkpoint payload %d fixed bytes, want 25", ErrFrameTruncated, len(rest))
	}
	f := &CheckpointFrame{
		Worker: worker,
		Shard:  int(int32(binary.LittleEndian.Uint32(rest))),
		Epoch:  int64(binary.LittleEndian.Uint64(rest[4:])),
		Round:  int64(binary.LittleEndian.Uint64(rest[12:])),
	}
	switch rest[20] {
	case 0:
	case 1:
		f.Final = true
	default:
		return nil, fmt.Errorf("%w: checkpoint final flag 0x%02x", ErrFrameHeader, rest[20])
	}
	dl := int(binary.LittleEndian.Uint32(rest[21:]))
	rest = rest[25:]
	if dl == 0 {
		return nil, fmt.Errorf("serve: checkpoint frame for shard %d has no data", f.Shard)
	}
	if dl != len(rest) {
		return nil, fmt.Errorf("%w: %d data bytes, declared %d", ErrFrameTruncated, len(rest), dl)
	}
	f.Data = rest
	return f, nil
}

// maxInternedTenants bounds the tenant interning table: beyond it, new
// tenant names fall back to plain per-decode allocation, so a hostile stream
// of unique names cannot pin unbounded memory.
const maxInternedTenants = 1 << 16

// internTable deduplicates tenant name strings across decodes. The read path
// is a lock-free-in-spirit RLock plus Go's allocation-free map[string] lookup
// by []byte key; only the first occurrence of a tenant allocates, which is
// what "zero steady-state allocs" means on the decode path.
type internTable struct {
	mu sync.RWMutex
	m  map[string]string
}

var tenantInterner = internTable{m: map[string]string{}}

func (ti *internTable) get(b []byte) string {
	ti.mu.RLock()
	s, ok := ti.m[string(b)] // compiler elides this conversion's allocation
	ti.mu.RUnlock()
	if ok {
		return s
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if s, ok := ti.m[string(b)]; ok {
		return s
	}
	if len(ti.m) >= maxInternedTenants {
		return string(b)
	}
	s = string(b)
	ti.m[s] = s
	return s
}

// PoolStats reports cumulative acquire/release counts of one pool. After
// every in-flight request has completed, Gets == Puts — the leak invariant
// the negotiation edge tests assert.
type PoolStats struct {
	Gets int64
	Puts int64
}

var (
	submitReqPool = sync.Pool{New: func() any { return &SubmitRequest{} }}
	submitReqGets atomic.Int64
	submitReqPuts atomic.Int64
)

// AcquireSubmitRequest takes a pooled request for DecodeSubmitBinaryInto.
// Release with ReleaseSubmitRequest once the request (and every error string
// derived from it) is no longer referenced.
func AcquireSubmitRequest() *SubmitRequest {
	submitReqGets.Add(1)
	req, _ := submitReqPool.Get().(*SubmitRequest)
	return req
}

// ReleaseSubmitRequest returns a request to the pool, keeping the Jobs
// capacity for reuse.
func ReleaseSubmitRequest(req *SubmitRequest) {
	submitReqPuts.Add(1)
	req.Schema = ""
	req.Tenant = ""
	req.Jobs = req.Jobs[:0]
	submitReqPool.Put(req)
}

// SubmitRequestPoolStats reports the submit-request pool's acquire/release
// balance.
func SubmitRequestPoolStats() PoolStats {
	return PoolStats{Gets: submitReqGets.Load(), Puts: submitReqPuts.Load()}
}

// maxPooledFrameBuf caps the capacity of a buffer returned to the pool, so a
// single outsized checkpoint cannot pin its high-water allocation forever.
const maxPooledFrameBuf = 4 << 20

// frameBuf is a pooled byte buffer for request bodies and encoded frames,
// wrapped in a struct so sync.Pool stores a single pointer.
type frameBuf struct {
	b []byte
}

var (
	frameBufPool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}
	frameBufGets atomic.Int64
	frameBufPuts atomic.Int64
)

func acquireFrameBuf() *frameBuf {
	frameBufGets.Add(1)
	fb, _ := frameBufPool.Get().(*frameBuf)
	return fb
}

func releaseFrameBuf(fb *frameBuf) {
	frameBufPuts.Add(1)
	if cap(fb.b) > maxPooledFrameBuf {
		return
	}
	fb.b = fb.b[:0]
	frameBufPool.Put(fb)
}

// FrameBufferPoolStats reports the frame-buffer pool's acquire/release
// balance.
func FrameBufferPoolStats() PoolStats {
	return PoolStats{Gets: frameBufGets.Load(), Puts: frameBufPuts.Load()}
}

// readFrom fills the buffer from r, reading at most limit bytes (the caller
// passes its bound plus one and checks the length, mirroring the LimitReader
// idiom). The buffer's capacity is reused across requests, so a steady-state
// read allocates nothing.
func (fb *frameBuf) readFrom(r io.Reader, limit int) error {
	b := fb.b[:0]
	for len(b) < limit {
		if len(b) == cap(b) {
			nb := make([]byte, len(b), 2*cap(b)+4096)
			copy(nb, b)
			b = nb
		}
		space := cap(b) - len(b)
		if space > limit-len(b) {
			space = limit - len(b)
		}
		n, err := r.Read(b[len(b) : len(b)+space])
		b = b[:len(b)+n]
		if err == io.EOF {
			fb.b = b
			return nil
		}
		if err != nil {
			fb.b = b
			return err
		}
	}
	fb.b = b
	return nil
}
