package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual nodes per shard on the hash ring.
// 64 keeps the per-shard tenant load within a few percent of uniform for the
// shard counts this service targets while the ring stays tiny.
const ringReplicas = 64

// hashRing maps tenant IDs to shards by consistent hashing: each shard
// contributes ringReplicas points, and a tenant lands on the first point at
// or after its own hash (wrapping). The mapping is a pure function of the
// shard count, so a restored service re-derives exactly the placement the
// checkpoint was written under.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newHashRing builds the ring for the given shard count.
func newHashRing(shards int) hashRing {
	r := hashRing{points: make([]ringPoint, 0, shards*ringReplicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	// Ties (hash collisions between vnode labels) resolve to the lower shard
	// index so the placement is a total function of the shard count.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// ShardOf returns the shard owning the tenant.
func (r hashRing) ShardOf(tenant string) int {
	h := hash64(tenant)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Ring is the exported tenant→shard consistent-hash mapping, for callers
// outside the service — the dispatcher and its placement-following driver —
// that must agree with every worker on where a tenant lives. The mapping is a
// pure function of the shard count.
type Ring struct {
	r hashRing
}

// NewRing builds the ring for the given shard count.
func NewRing(shards int) (Ring, error) {
	if shards <= 0 {
		return Ring{}, fmt.Errorf("serve: need at least one shard, got %d", shards)
	}
	return Ring{r: newHashRing(shards)}, nil
}

// ShardOf returns the shard owning the tenant.
func (r Ring) ShardOf(tenant string) int { return r.r.ShardOf(tenant) }

// hash64 is FNV-1a with a 64-bit avalanche finalizer, stable across
// processes and architectures. Raw FNV-1a folds the last byte in with a
// single multiply, so keys that differ only in a trailing digit (tenant-001,
// tenant-002, ...) land within ~15 primes of each other — far closer than a
// ring arc — and whole sequential tenant families collapse onto one shard.
// The finalizer (MurmurHash3 fmix64) spreads that residue across all 64
// bits, making consecutive names as independent as random ones.
func hash64(s string) uint64 {
	h := fnv.New64a()
	// hash/fnv's Write is documented to never fail.
	_, _ = h.Write([]byte(s)) // infallible per hash.Hash contract
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
