package serve

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeSubmit pins two properties of the wire decoder on arbitrary
// bytes: it never panics (errors are the only failure mode), and anything it
// accepts survives an encode/decode round trip unchanged — the canonical
// form is a fixed point.
func FuzzDecodeSubmit(f *testing.F) {
	seed := [][]byte{
		[]byte(""),
		[]byte("{}"),
		[]byte("null"),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":4},{"id":1,"color":1,"delay":8}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":1,"color":0,"delay":4},{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v2","tenant":"t","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":-1,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":0}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[]}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSubmit(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip: encode re-validates, and decoding
		// the canonical bytes reproduces the same request value.
		enc, err := EncodeSubmit(req)
		if err != nil {
			t.Fatalf("decoded request fails to encode: %v\ninput: %q", err, data)
		}
		again, err := DecodeSubmit(enc)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v\nencoded: %q", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed the request:\nfirst:  %+v\nsecond: %+v", req, again)
		}
	})
}

// jsonFuzzSeeds is the FuzzDecodeSubmit seed list, shared so the binary
// targets start from the same corpus (cross-encoded where the JSON parses).
func jsonFuzzSeeds() [][]byte {
	return [][]byte{
		[]byte(""),
		[]byte("{}"),
		[]byte("null"),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":4},{"id":1,"color":1,"delay":8}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":1,"color":0,"delay":4},{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v2","tenant":"t","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":-1,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":0}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[]}`),
	}
}

// FuzzDecodeSubmitBinary mirrors FuzzDecodeSubmit for the rrserve/v2 frame
// decoder: arbitrary bytes never panic, and any accepted frame reaches the
// encode→decode fixed point. The corpus is the JSON seed list cross-encoded
// into frames where it parses, plus malformed-frame seeds.
func FuzzDecodeSubmitBinary(f *testing.F) {
	for _, s := range jsonFuzzSeeds() {
		if req, err := DecodeSubmit(s); err == nil {
			if frame, err := EncodeSubmitBinary(req); err == nil {
				f.Add(frame)
			}
		}
		f.Add(s) // raw JSON bytes double as malformed-frame seeds
	}
	if frame, err := EncodeSubmitBinary(&SubmitRequest{
		Schema: WireSchema, Tenant: "fuzz", Jobs: []SubmitJob{{ID: 1, Delay: 4}, {ID: 2, Color: 1, Delay: 8}},
	}); err == nil {
		f.Add(frame)
		f.Add(frame[:len(frame)-3])                     // truncated payload
		f.Add(frame[:FrameHeaderLen])                   // header only
		f.Add(append(append([]byte(nil), frame...), 0)) // trailing byte
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSubmitBinary(data)
		if err != nil {
			return
		}
		enc, err := EncodeSubmitBinary(req)
		if err != nil {
			t.Fatalf("decoded frame fails to encode: %v\ninput: %q", err, data)
		}
		again, err := DecodeSubmitBinary(enc)
		if err != nil {
			t.Fatalf("canonical frame fails to decode: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("binary round trip changed the request:\nfirst:  %+v\nsecond: %+v", req, again)
		}
		// The canonical frame is a byte-level fixed point too.
		enc2, err := EncodeSubmitBinary(again)
		if err != nil {
			t.Fatalf("re-encoding canonical frame: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical frame bytes are not a fixed point")
		}
	})
}

// FuzzBinaryRoundTrip fuzzes JSON submit bodies and holds the two codecs to
// each other: any batch the JSON decoder accepts must cross-encode into a
// binary frame, decode back, and re-encode as JSON to the exact canonical
// bytes of the JSON round trip — the differential property on arbitrary
// fuzzer-shaped input rather than a fixed seed population.
func FuzzBinaryRoundTrip(f *testing.F) {
	for _, s := range jsonFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSubmit(data)
		if err != nil {
			return
		}
		canonical, err := EncodeSubmit(req)
		if err != nil {
			t.Fatalf("JSON round trip fails to re-encode: %v", err)
		}
		frame, err := EncodeSubmitBinary(req)
		if err != nil {
			t.Fatalf("JSON-accepted batch fails binary encode: %v\ninput: %q", err, data)
		}
		viaBinary, err := DecodeSubmitBinary(frame)
		if err != nil {
			t.Fatalf("binary frame of a valid batch fails to decode: %v", err)
		}
		viaBinary.Schema = WireSchema
		fromBinary, err := EncodeSubmit(viaBinary)
		if err != nil {
			t.Fatalf("binary round trip fails JSON encode: %v", err)
		}
		if !bytes.Equal(fromBinary, canonical) {
			t.Fatalf("binary round trip diverges from JSON oracle:\nbinary: %s\njson:   %s", fromBinary, canonical)
		}
	})
}
