package serve

import (
	"reflect"
	"testing"
)

// FuzzDecodeSubmit pins two properties of the wire decoder on arbitrary
// bytes: it never panics (errors are the only failure mode), and anything it
// accepts survives an encode/decode round trip unchanged — the canonical
// form is a fixed point.
func FuzzDecodeSubmit(f *testing.F) {
	seed := [][]byte{
		[]byte(""),
		[]byte("{}"),
		[]byte("null"),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":4},{"id":1,"color":1,"delay":8}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":1,"color":0,"delay":4},{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v2","tenant":"t","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"","jobs":[{"id":0,"color":0,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":-1,"delay":4}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[{"id":0,"color":0,"delay":0}]}`),
		[]byte(`{"schema":"rrserve/v1","tenant":"t","jobs":[]}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSubmit(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip: encode re-validates, and decoding
		// the canonical bytes reproduces the same request value.
		enc, err := EncodeSubmit(req)
		if err != nil {
			t.Fatalf("decoded request fails to encode: %v\ninput: %q", err, data)
		}
		again, err := DecodeSubmit(enc)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v\nencoded: %q", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed the request:\nfirst:  %+v\nsecond: %+v", req, again)
		}
	})
}
