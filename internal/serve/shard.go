package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"rrsched/internal/ckptstore"
	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/stream"
)

// errShardClosed marks operations against a hosted shard this worker does not
// currently hold a lease for; Tick skips such shards, submit handlers map it
// to 421.
var errShardClosed = errors.New("shard is not hosted on this worker")

// tenant is one tenant's scheduling state inside a shard. All fields are
// owned by the shard goroutine.
type tenant struct {
	name string
	// epoch is the global round of the tenant's first scheduled round: the
	// tenant's scheduler runs on local rounds (global - epoch), so a tenant
	// appearing late does not pay a catch-up walk from global round 0.
	epoch int64
	sched *stream.Scheduler
	// queued holds accepted jobs awaiting the next round tick. Arrival is
	// stamped at push time.
	queued []model.Job
	// maxID is the highest job ID accepted so far (-1 before the first).
	// Submissions must exceed it, which rejects duplicates in O(1).
	maxID int64
	// delays mirrors the per-color delay bounds registered so far, so an
	// inconsistent submission is rejected at admission instead of poisoning
	// a round's Push.
	delays map[model.Color]int64
	// inflight tracks color and local arrival round of jobs pushed into the
	// scheduler and not yet executed or dropped — the metadata the metrics
	// layer needs when a decision only carries job IDs.
	inflight map[int64]jobMeta
	// decisions is the recorded decision stream (Config.RecordDecisions).
	decisions []stream.Decision
	// class indexes the tenant's QoS class in the shard's class table. A
	// tenant binds its class on first submit and keeps it for life (including
	// across checkpoints and migrations).
	class int
	// dirty marks state changes since the tenant's last chunk write: admitted
	// jobs, pushed jobs, or a non-trivial decision. Clean tenants are skipped
	// by delta checkpoints (their chunk is re-referenced) and are eligible for
	// eviction. Trivial decisions on an idle tenant do NOT dirty it — the
	// restore path reconstructs them exactly by fast-forwarding.
	dirty bool
	// lastActive is the global round after the tenant last did anything
	// (admission or a non-empty push/decision); eviction triggers on
	// round - lastActive.
	lastActive int64
	// chunk is the content-addressed chunk holding the tenant's last cut
	// state (zero Ref before the first cut after a change).
	chunk ckptstore.Ref
}

type jobMeta struct {
	Color   model.Color
	Arrival int64 // local round
}

// shardMetrics bundles the per-shard instrument handles: the standard
// scheduler vocabulary plus the serve-specific ingest instruments.
type shardMetrics struct {
	reg  *obs.Registry
	sm   *obs.SchedulerMetrics
	wire *obs.WireMetrics
	ckm  *obs.CkptMetrics

	accepted *obs.Counter // jobs admitted
	rejected *obs.Counter // jobs refused with 429 (watermark)
	refused  *obs.Counter // jobs refused with 400/503 (invalid, draining)
	backlog  *obs.Gauge   // queued jobs awaiting the next tick
	tenants  *obs.Gauge   // live tenants on this shard
	tickNs   *obs.Histogram
	submitNs *obs.Histogram

	classAccepted *obs.CounterVec // jobs admitted, by tenant class
	classRejected *obs.CounterVec // jobs 429-rejected, by tenant class
}

// Serve-specific metric names (the scheduler vocabulary lives in obs).
const (
	MetricAccepted = "serve_accepted_jobs_total"
	MetricRejected = "serve_rejected_jobs_total"
	MetricRefused  = "serve_refused_jobs_total"
	MetricBacklog  = "serve_backlog_jobs"
	MetricTenants  = "serve_tenants"
	MetricTickNs   = "serve_tick_ns"
	MetricSubmitNs = "serve_submit_ns"

	MetricClassAccepted = "serve_class_accepted_jobs_total"
	MetricClassRejected = "serve_class_rejected_jobs_total"
)

func newShardMetrics() (*shardMetrics, error) {
	m := &shardMetrics{reg: obs.NewRegistry()}
	var err error
	if m.sm, err = obs.NewSchedulerMetrics(m.reg); err != nil {
		return nil, err
	}
	if m.wire, err = obs.NewWireMetrics(m.reg); err != nil {
		return nil, err
	}
	if m.ckm, err = obs.NewCkptMetrics(m.reg); err != nil {
		return nil, err
	}
	if m.accepted, err = m.reg.Counter(MetricAccepted); err != nil {
		return nil, err
	}
	if m.rejected, err = m.reg.Counter(MetricRejected); err != nil {
		return nil, err
	}
	if m.refused, err = m.reg.Counter(MetricRefused); err != nil {
		return nil, err
	}
	if m.backlog, err = m.reg.Gauge(MetricBacklog); err != nil {
		return nil, err
	}
	if m.tenants, err = m.reg.Gauge(MetricTenants); err != nil {
		return nil, err
	}
	// 1 µs to ~17 s in powers of four: round ticks batch many pushes.
	if m.tickNs, err = m.reg.Histogram(MetricTickNs, obs.ExpBuckets(1024, 4, 13)); err != nil {
		return nil, err
	}
	// 256 ns to ~1 s: per-batch admission work.
	if m.submitNs, err = m.reg.Histogram(MetricSubmitNs, obs.ExpBuckets(256, 4, 12)); err != nil {
		return nil, err
	}
	if m.classAccepted, err = m.reg.CounterVec(MetricClassAccepted, "class"); err != nil {
		return nil, err
	}
	if m.classRejected, err = m.reg.CounterVec(MetricClassRejected, "class"); err != nil {
		return nil, err
	}
	return m, nil
}

// shard owns a subset of tenants. A single goroutine (run) serializes every
// state mutation — submissions, round ticks, checkpoints — so scheduling
// decisions are reproducible no matter how requests interleave on the wire.
type shard struct {
	idx int
	cfg Config
	ch  chan shardCmd
	wg  sync.WaitGroup

	met *shardMetrics

	// Everything below is owned by the shard goroutine.
	// open is whether the shard accepts work. Always true in a classic
	// service; in hosted mode (Config.Hosted) a shard is closed until the
	// worker daemon receives a lease for it and calls OpenShard.
	open     bool
	round    int64 // next round to tick
	tenants  map[string]*tenant
	order    []string // sorted tenant names: the deterministic visit order
	backlog  int      // total queued jobs across tenants
	inflight int      // jobs pushed into schedulers and not yet resolved
	// epoch is the placement epoch this shard is serving under. A submit
	// routed under a different epoch bounces (statusWrongPlacement) so the
	// handler re-resolves against the current placement — the fence that
	// makes the routing flip atomic from the shard's point of view.
	epoch int64
	// nshards is the ring size of the current placement, written into
	// checkpoints (a reshard changes it without restarting the process).
	nshards int
	// Tenant-class state: the normalized class table, name→index, the
	// per-class watermark share, and the per-class queued-job count.
	classes      []TenantClass
	classIdx     map[string]int
	classShare   []int
	classBacklog []int

	// Incremental checkpoint state. store is the durable on-disk chunk store
	// (classic service with a StateDir); pool/acked/lastClosure implement the
	// hosted bundle protocol (Config.CheckpointBundles). declog is the shard's
	// streaming decision log in log mode; an append failure is stashed in
	// declogErr and surfaced at the next cut or decisions read. evicted holds
	// stubs for cold tenants paged out to the chunk store; dirtyCount counts
	// resident tenants with dirty set.
	store       *ckptstore.Store
	declog      *ckptstore.DecLog
	declogErr   error
	evicted     map[string]evictedStub
	dirtyCount  int
	pool        *ckptstore.MemStore
	acked       map[uint64]bool
	lastClosure map[uint64]bool
}

// statusWrongPlacement is the internal submitResult status for a command
// routed under a stale placement epoch. Never surfaces on the wire: the HTTP
// handler reloads the placement and resends.
const statusWrongPlacement = -1

// shardCmd is the message type of the shard goroutine. Exactly one of the
// fields is set.
type shardCmd struct {
	submit    *submitCmd
	tick      *tickCmd
	selfTick  *selfTickCmd
	sync      *syncCmd
	openShard *openCmd
	close     *closeCmd
	snapshot  *snapshotCmd
	stats     *statsCmd
	decisions *decisionsCmd
	place     *placeCmd
	plan      *planCmd
	remove    *removeCmd
	inject    *injectCmd
	cut       *cutCmd
}

type submitCmd struct {
	req *SubmitRequest
	// epoch is the placement epoch the HTTP handler routed under; the shard
	// bounces the command when it disagrees with its own epoch.
	epoch int64
	reply chan submitResult
}

type submitResult struct {
	status  int // http status: 200, 429, or 400
	err     string
	round   int64
	backlog int
}

type tickCmd struct {
	round int64
	done  *sync.WaitGroup
}

// selfTickCmd advances a hosted shard n rounds from its own round counter
// (hosted shards tick independently: a restored shard resumes at its
// checkpoint round regardless of its new host's other shards). After the last
// round the shard snapshots itself and invokes Config.OnShardCheckpoint, so
// when the tick call returns the caller knows the latest state has been
// offered to the checkpoint store.
type selfTickCmd struct {
	n     int
	reply chan selfTickResult
}

type selfTickResult struct {
	round int64 // next round after ticking
	err   error
}

// syncCmd re-offers a hosted shard's current state to Config.OnShardCheckpoint
// without ticking. It exists for the failure window where a tick advanced the
// shard but the hook's push was lost: a placement-following driver that finds
// the checkpoint store behind the shard uses sync to close the gap before
// counting the round as durable.
type syncCmd struct {
	reply chan selfTickResult
}

// openCmd opens a hosted shard, restoring from checkpoint bytes when data is
// non-empty.
type openCmd struct {
	data  []byte
	reply chan openResult
}

type openResult struct {
	round int64
	err   error
}

// closeCmd snapshots a hosted shard, drops its state, and marks it closed.
type closeCmd struct {
	reply chan snapshotResult
}

type snapshotCmd struct {
	reply chan snapshotResult
}

type snapshotResult struct {
	data []byte
	err  error
}

type statsCmd struct {
	reply chan ShardStats
}

type decisionsCmd struct {
	tenant string
	epoch  int64
	reply  chan decisionsResult
}

// placeCmd fences the shard onto a placement epoch: submissions routed under
// any other epoch bounce until the reshard flips routing (or rolls back).
type placeCmd struct {
	epoch   int64
	nshards int
	reply   chan struct{}
}

// planCmd asks the shard to serialize every tenant that the target ring
// routes elsewhere into migration frames, without removing them yet.
type planCmd struct {
	ring     hashRing
	nshards  int
	newEpoch int64
	reply    chan planResult
}

type planResult struct {
	frames []migrationFrame
	err    error
}

// migrationFrame is one tenant's serialized state in flight between shards
// during a reshard: a binary checkpoint frame (rrserve/v2) wrapping the
// tenant's checkpoint JSON.
type migrationFrame struct {
	tenant string
	class  string
	target int
	data   []byte // encoded CheckpointFrame
}

// removeCmd drops the named tenants from the shard (their state has been
// handed to their new shard).
type removeCmd struct {
	tenants []string
	reply   chan struct{}
}

// injectCmd adopts migration frames produced by planCmd on another shard.
type injectCmd struct {
	frames []migrationFrame
	reply  chan error
}

type decisionsResult struct {
	status int
	err    string
	resp   *DecisionsResponse
}

func newShard(idx int, cfg Config) (*shard, error) {
	met, err := newShardMetrics()
	if err != nil {
		return nil, err
	}
	classes := normalizeClasses(cfg.Classes)
	classIdx := make(map[string]int, len(classes))
	for i, c := range classes {
		classIdx[c.Name] = i
	}
	return &shard{
		idx: idx,
		cfg: cfg,
		ch:  make(chan shardCmd, 64),
		met: met,
		// Hosted shards stay closed until a lease arrives (OpenShard).
		open:         !cfg.Hosted,
		tenants:      map[string]*tenant{},
		evicted:      map[string]evictedStub{},
		nshards:      cfg.Shards,
		classes:      classes,
		classIdx:     classIdx,
		classShare:   classShares(classes, cfg.Watermark),
		classBacklog: make([]int, len(classes)),
	}, nil
}

// start launches the shard goroutine.
func (sh *shard) start() {
	sh.wg.Add(1)
	go sh.run()
}

// stop closes the command channel and waits for the goroutine to exit. The
// caller guarantees no further sends (the service only stops shards after the
// HTTP server has shut down and the ticker has stopped).
func (sh *shard) stop() {
	close(sh.ch)
	sh.wg.Wait()
}

// run is the shard goroutine: one blocking receive per wakeup, then a
// non-blocking drain of everything already queued. Coalescing matters under
// concurrent ingest: a burst of submissions costs one goroutine wakeup
// instead of one scheduler round trip per request, and the drained batch
// size is recorded so the amortization is observable. Handling order is
// channel order either way, so determinism is untouched.
func (sh *shard) run() {
	defer sh.wg.Done()
	defer sh.closeDecLog()
	for {
		cmd, ok := <-sh.ch
		if !ok {
			return
		}
		batch := int64(1)
		sh.handleCmd(cmd)
		for drained := false; !drained; {
			select {
			case cmd, ok := <-sh.ch:
				if !ok {
					sh.met.wire.Coalesced.Observe(batch)
					return
				}
				sh.handleCmd(cmd)
				batch++
			default:
				drained = true
			}
		}
		sh.met.wire.Coalesced.Observe(batch)
	}
}

// handleCmd dispatches one shard command. Exactly one field of cmd is set.
func (sh *shard) handleCmd(cmd shardCmd) {
	switch {
	case cmd.submit != nil:
		t0 := obs.Now()
		cmd.submit.reply <- sh.handleSubmit(cmd.submit.req, cmd.submit.epoch)
		sh.met.submitNs.Observe(obs.Now() - t0)
	case cmd.tick != nil:
		t0 := obs.Now()
		sh.handleTick(cmd.tick.round)
		sh.met.tickNs.Observe(obs.Now() - t0)
		cmd.tick.done.Done()
	case cmd.selfTick != nil:
		t0 := obs.Now()
		cmd.selfTick.reply <- sh.handleSelfTick(cmd.selfTick.n)
		sh.met.tickNs.Observe(obs.Now() - t0)
	case cmd.sync != nil:
		cmd.sync.reply <- sh.handleSync()
	case cmd.openShard != nil:
		cmd.openShard.reply <- sh.handleOpen(cmd.openShard.data)
	case cmd.close != nil:
		cmd.close.reply <- sh.handleClose()
	case cmd.snapshot != nil:
		data, err := sh.checkpoint()
		cmd.snapshot.reply <- snapshotResult{data: data, err: err}
	case cmd.stats != nil:
		cmd.stats.reply <- sh.stats()
	case cmd.decisions != nil:
		cmd.decisions.reply <- sh.handleDecisions(cmd.decisions.tenant, cmd.decisions.epoch)
	case cmd.place != nil:
		sh.epoch = cmd.place.epoch
		sh.nshards = cmd.place.nshards
		cmd.place.reply <- struct{}{}
	case cmd.plan != nil:
		cmd.plan.reply <- sh.handlePlan(cmd.plan)
	case cmd.remove != nil:
		sh.handleRemove(cmd.remove.tenants)
		cmd.remove.reply <- struct{}{}
	case cmd.inject != nil:
		cmd.inject.reply <- sh.adoptFrames(cmd.inject.frames)
	case cmd.cut != nil:
		cmd.cut.reply <- sh.handleCut()
	}
}

// handleSelfTick ticks a hosted shard n rounds from its own counter and then
// offers a fresh checkpoint to Config.OnShardCheckpoint. A hook failure does
// not roll the rounds back — the decisions are made — but it is surfaced so
// the caller knows the store may be behind the shard; handleSync closes that
// gap without ticking further.
func (sh *shard) handleSelfTick(n int) selfTickResult {
	if !sh.open {
		return selfTickResult{round: sh.round, err: fmt.Errorf("serve: shard %d: %w", sh.idx, errShardClosed)}
	}
	for i := 0; i < n; i++ {
		sh.handleTick(sh.round)
	}
	if err := sh.offerCheckpoint(); err != nil {
		return selfTickResult{round: sh.round, err: err}
	}
	return selfTickResult{round: sh.round}
}

// handleSync re-offers the shard's current state to Config.OnShardCheckpoint
// at its current round, without ticking. No-op (but still a success, echoing
// the round) when no hook is configured.
func (sh *shard) handleSync() selfTickResult {
	if !sh.open {
		return selfTickResult{round: sh.round, err: fmt.Errorf("serve: shard %d: %w", sh.idx, errShardClosed)}
	}
	if err := sh.offerCheckpoint(); err != nil {
		return selfTickResult{round: sh.round, err: err}
	}
	return selfTickResult{round: sh.round}
}

// handleOpen opens a hosted shard, restoring from checkpoint bytes when data
// is non-empty. An empty checkpoint opens the shard fresh at round 0.
func (sh *shard) handleOpen(data []byte) openResult {
	if sh.open {
		return openResult{round: sh.round, err: fmt.Errorf("serve: shard %d is already open", sh.idx)}
	}
	if len(data) > 0 {
		if err := sh.restoreShard(data, newHashRing(sh.cfg.Shards)); err != nil {
			sh.clear()
			return openResult{err: err}
		}
	}
	sh.open = true
	return openResult{round: sh.round}
}

// handleClose snapshots the shard, drops its state, and marks it closed. The
// returned bytes are the shard's final checkpoint — the handoff artifact a
// worker uploads when a lease is revoked gracefully.
func (sh *shard) handleClose() snapshotResult {
	if !sh.open {
		return snapshotResult{err: fmt.Errorf("serve: shard %d is not open", sh.idx)}
	}
	data, err := sh.checkpoint()
	if err != nil {
		return snapshotResult{err: err}
	}
	sh.clear()
	return snapshotResult{data: data}
}

// clear resets the shard's goroutine-owned state to closed-and-empty. The
// cumulative counters survive (they describe this process's history); the
// level gauges drop to zero because the state they measured is gone.
func (sh *shard) clear() {
	sh.open = false
	sh.round = 0
	sh.tenants = map[string]*tenant{}
	sh.order = nil
	sh.backlog = 0
	sh.inflight = 0
	sh.classBacklog = make([]int, len(sh.classes))
	sh.evicted = map[string]evictedStub{}
	sh.dirtyCount = 0
	sh.pool = nil
	sh.acked = nil
	sh.lastClosure = nil
	sh.met.tenants.Set(0)
	sh.met.backlog.Set(0)
	sh.met.sm.QueueDepth.Set(0)
	sh.met.ckm.DirtyTenants.Set(0)
	sh.setPagingGauges()
}

// handleSubmit admits or rejects one batch. Admission is all-or-nothing:
// every job is validated against the tenant's registered state before any is
// queued. epoch is the placement epoch the handler routed under; a mismatch
// bounces the command back for re-routing instead of admitting under a stale
// placement.
func (sh *shard) handleSubmit(req *SubmitRequest, epoch int64) submitResult {
	n := len(req.Jobs)
	if epoch != sh.epoch {
		// Routed under a placement this shard no longer (or does not yet)
		// serve. Not an error and not counted as refused work: the handler
		// re-resolves and resends.
		return submitResult{status: statusWrongPlacement, round: sh.round, backlog: sh.backlog}
	}
	if !sh.open {
		// Hosted mode: this worker does not hold the shard's lease. 421 tells
		// the client to refresh placement and resend elsewhere.
		sh.met.refused.Add(int64(n))
		return submitResult{
			status:  http.StatusMisdirectedRequest,
			err:     fmt.Sprintf("shard %d is not hosted on this worker (stale placement?)", sh.idx),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	tn := sh.tenants[req.Tenant]
	if tn == nil && len(sh.evicted) > 0 {
		var err error
		if tn, err = sh.faultIn(req.Tenant); err != nil {
			sh.met.refused.Add(int64(n))
			return submitResult{
				status:  http.StatusInternalServerError,
				err:     fmt.Sprintf("faulting in tenant %q: %v", req.Tenant, err),
				round:   sh.round,
				backlog: sh.backlog,
			}
		}
	}
	// Resolve the batch's tenant class before any admission decision, so an
	// unknown or conflicting class is a 400 regardless of backlog pressure.
	class, ok := sh.resolveClass(tn, req.Class)
	if !ok {
		sh.met.refused.Add(int64(n))
		return submitResult{
			status:  http.StatusBadRequest,
			err:     fmt.Sprintf("tenant %q names unknown class %q", req.Tenant, req.Class),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	if tn != nil && req.Class != "" && tn.class != class {
		sh.met.refused.Add(int64(n))
		return submitResult{
			status:  http.StatusBadRequest,
			err:     fmt.Sprintf("tenant %q is bound to class %q, batch says %q", req.Tenant, sh.classes[tn.class].Name, req.Class),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	if tn != nil {
		class = tn.class
	}
	if sh.backlog+n > sh.cfg.Watermark {
		sh.met.rejected.Add(int64(n))
		sh.met.classRejected.With(sh.classes[class].Name).Add(int64(n))
		return submitResult{
			status:  http.StatusTooManyRequests,
			err:     fmt.Sprintf("shard %d backlog %d + batch %d exceeds watermark %d", sh.idx, sh.backlog, n, sh.cfg.Watermark),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	if sh.classBacklog[class]+n > sh.classShare[class] {
		// Per-class admission watermark: the shard watermark split by class
		// weight. With the implicit single default class the share equals the
		// watermark, so this check only bites under configured classes.
		sh.met.rejected.Add(int64(n))
		sh.met.classRejected.With(sh.classes[class].Name).Add(int64(n))
		return submitResult{
			status:  http.StatusTooManyRequests,
			err:     fmt.Sprintf("shard %d class %q backlog %d + batch %d exceeds class share %d", sh.idx, sh.classes[class].Name, sh.classBacklog[class], n, sh.classShare[class]),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	maxID := int64(-1)
	var delays map[model.Color]int64
	if tn != nil {
		maxID = tn.maxID
		delays = tn.delays
	}
	if req.Jobs[n-1].ID <= maxID {
		// Every ID in the batch is at or below the high-water mark. Because
		// admission is all-or-nothing and IDs increase strictly, a resend of a
		// previously accepted batch lands here in full — report it as a
		// duplicate (409) so retrying clients can treat the batch as admitted.
		// This is what makes resends after an ambiguous transport failure safe.
		//
		// The contract is that a resend is the original batch, byte for byte:
		// the high-water mark proves every ID in it was admitted, not that the
		// batch's payloads match what landed, so a client that re-chunks jobs
		// into different batch boundaries after a failure is outside the
		// contract (serve.Client and the dispatch driver always resend
		// verbatim). The delay-bound check below is the cheap part of content
		// verification: a "resend" whose delays contradict the registered
		// bounds is rejected instead of being waved through as admitted.
		for _, j := range req.Jobs {
			if d, ok := delays[model.Color(j.Color)]; ok && d != j.Delay {
				sh.met.refused.Add(int64(n))
				return submitResult{
					status:  http.StatusBadRequest,
					err:     fmt.Sprintf("tenant %q duplicate batch disagrees with admitted state: color %d has delay bound %d, batch says %d", req.Tenant, j.Color, d, j.Delay),
					round:   sh.round,
					backlog: sh.backlog,
				}
			}
		}
		return submitResult{
			status:  http.StatusConflict,
			err:     fmt.Sprintf("tenant %q batch ids %d..%d all at or below high-water id %d (duplicate batch)", req.Tenant, req.Jobs[0].ID, req.Jobs[n-1].ID, maxID),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	if req.Jobs[0].ID <= maxID {
		sh.met.refused.Add(int64(n))
		return submitResult{
			status:  http.StatusBadRequest,
			err:     fmt.Sprintf("tenant %q job id %d not above high-water id %d (ids must be strictly increasing)", req.Tenant, req.Jobs[0].ID, maxID),
			round:   sh.round,
			backlog: sh.backlog,
		}
	}
	for _, j := range req.Jobs {
		if d, ok := delays[model.Color(j.Color)]; ok && d != j.Delay {
			sh.met.refused.Add(int64(n))
			return submitResult{
				status:  http.StatusBadRequest,
				err:     fmt.Sprintf("tenant %q color %d has delay bound %d, batch says %d", req.Tenant, j.Color, d, j.Delay),
				round:   sh.round,
				backlog: sh.backlog,
			}
		}
	}
	if tn == nil {
		sched, err := stream.New(stream.Config{Delta: sh.cfg.Delta, Resources: sh.cfg.Resources})
		if err != nil {
			// Unreachable: Config.validate checked the same parameters.
			sh.met.refused.Add(int64(n))
			return submitResult{status: http.StatusInternalServerError, err: err.Error(), round: sh.round, backlog: sh.backlog}
		}
		tn = &tenant{
			name:     req.Tenant,
			epoch:    sh.round,
			sched:    sched,
			maxID:    -1,
			delays:   map[model.Color]int64{},
			inflight: map[int64]jobMeta{},
			class:    class,
		}
		sh.tenants[req.Tenant] = tn
		i := sort.SearchStrings(sh.order, req.Tenant)
		sh.order = append(sh.order, "")
		copy(sh.order[i+1:], sh.order[i:])
		sh.order[i] = req.Tenant
		sh.met.tenants.Set(int64(len(sh.tenants)))
	}
	for _, j := range req.Jobs {
		tn.delays[model.Color(j.Color)] = j.Delay
		// Arrival is stamped at the next tick; see handleTick.
		tn.queued = append(tn.queued, model.Job{ID: j.ID, Color: model.Color(j.Color), Delay: j.Delay})
	}
	tn.maxID = req.Jobs[n-1].ID
	sh.markDirty(tn)
	tn.lastActive = sh.round
	sh.backlog += n
	sh.classBacklog[tn.class] += n
	sh.met.backlog.Set(int64(sh.backlog))
	sh.met.accepted.Add(int64(n))
	sh.met.classAccepted.With(sh.classes[tn.class].Name).Add(int64(n))
	return submitResult{status: http.StatusOK, round: sh.round, backlog: sh.backlog}
}

// resolveClass maps a batch's class name to an index in the shard's class
// table. An empty name selects the existing tenant's bound class, or the
// "default" class for a new tenant.
func (sh *shard) resolveClass(tn *tenant, name string) (int, bool) {
	if name == "" {
		if tn != nil {
			return tn.class, true
		}
		i, ok := sh.classIdx[DefaultClass]
		return i, ok
	}
	i, ok := sh.classIdx[name]
	return i, ok
}

// handleTick advances every tenant one round. Tenants are visited in sorted
// name order and each tenant's queued jobs are pushed sorted by ID, so the
// decision streams are independent of submission interleaving.
func (sh *shard) handleTick(round int64) {
	if round != sh.round {
		// The service ticks all shards in lockstep; a mismatch would be a
		// serve bug, not an input error. Skip rather than corrupt: the next
		// aligned tick resynchronizes.
		return
	}
	for _, name := range sh.order {
		tn := sh.tenants[name]
		local := round - tn.epoch
		jobs := tn.queued
		tn.queued = nil
		for i := range jobs {
			jobs[i].Arrival = local
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		dec, err := tn.sched.Push(local, jobs)
		if err != nil {
			// Unreachable by construction: admission validated every job
			// against the tenant's registered delays and ID high-water mark.
			// Refuse to guess at recovery; count the round as refused work.
			sh.met.refused.Add(int64(len(jobs)))
			sh.backlog -= len(jobs)
			sh.classBacklog[tn.class] -= len(jobs)
			continue
		}
		sh.backlog -= len(jobs)
		sh.classBacklog[tn.class] -= len(jobs)
		sh.inflight += len(jobs)
		for _, j := range jobs {
			tn.inflight[j.ID] = jobMeta{Color: j.Color, Arrival: local}
		}
		sh.observeDecision(tn, dec)
		if len(jobs) > 0 || len(dec.Reconfigs)+len(dec.Executions)+len(dec.Dropped) > 0 {
			// Pushed jobs or a non-trivial decision changed scheduler state; a
			// trivial decision on an idle tenant did not (the restore path
			// fast-forwards through trivial rounds, reconstructing it exactly).
			sh.markDirty(tn)
			tn.lastActive = round + 1
		}
		if sh.cfg.RecordDecisions {
			sh.recordDecision(tn, dec)
		}
	}
	sh.round = round + 1
	sh.met.sm.Rounds.Inc()
	sh.met.backlog.Set(int64(sh.backlog))
	sh.maybeEvict()
}

// observeDecision folds one round's decision into the shard metrics and
// retires the resolved jobs from the inflight table.
func (sh *shard) observeDecision(tn *tenant, dec stream.Decision) {
	sm := sh.met.sm
	if n := len(dec.Reconfigs); n > 0 {
		sm.Reconfigs.Add(int64(n))
		sm.ReconfigCost.Add(int64(n) * sh.cfg.Delta)
	}
	for _, id := range dec.Dropped {
		meta, ok := tn.inflight[id]
		if ok {
			delete(tn.inflight, id)
			sh.inflight--
			sm.Drops.With(meta.Color.String()).Inc()
		}
		sm.Dropped.Inc()
		sm.DropCost.Inc()
	}
	for _, ex := range dec.Executions {
		if meta, ok := tn.inflight[ex.JobID]; ok {
			delete(tn.inflight, ex.JobID)
			sh.inflight--
			sm.PendingAge.Observe(dec.Round - meta.Arrival)
		}
		sm.Executed.Inc()
	}
	sm.QueueDepth.Set(int64(sh.inflight))
}

// handleDecisions returns a tenant's recorded decision stream.
func (sh *shard) handleDecisions(name string, epoch int64) decisionsResult {
	if epoch != sh.epoch {
		return decisionsResult{status: statusWrongPlacement}
	}
	if !sh.cfg.RecordDecisions {
		return decisionsResult{status: http.StatusNotFound, err: "decision recording is disabled (start the service with record-decisions)"}
	}
	if sh.declog != nil {
		return sh.decisionsFromLog(name)
	}
	tn := sh.tenants[name]
	if tn == nil {
		return decisionsResult{status: http.StatusNotFound, err: fmt.Sprintf("unknown tenant %q", name)}
	}
	// Copy: the reply outlives this command, and the goroutine keeps
	// appending on later ticks.
	decs := make([]stream.Decision, len(tn.decisions))
	copy(decs, tn.decisions)
	return decisionsResult{
		status: http.StatusOK,
		resp: &DecisionsResponse{
			Schema:         DecisionsSchema,
			Tenant:         tn.name,
			Shard:          sh.idx,
			Epoch:          tn.epoch,
			Round:          sh.round,
			PlacementEpoch: sh.epoch,
			Decisions:      decs,
		},
	}
}

// stats summarizes the shard for /v1/stats.
func (sh *shard) stats() ShardStats {
	s := ShardStats{
		Shard:    sh.idx,
		Open:     sh.open,
		Round:    sh.round,
		Tenants:  len(sh.tenants),
		Backlog:  sh.backlog,
		Accepted: sh.met.accepted.Value(),
		Rejected: sh.met.rejected.Value(),
		Refused:  sh.met.refused.Value(),
	}
	s.Executed = sh.met.sm.Executed.Value()
	s.Dropped = sh.met.sm.Dropped.Value()
	s.Reconfigs = sh.met.sm.Reconfigs.Value()
	s.ReconfigCost = sh.met.sm.ReconfigCost.Value()
	s.Inflight = sh.inflight
	s.PlacementEpoch = sh.epoch
	s.Evicted = len(sh.evicted)
	s.Dirty = sh.dirtyCount
	s.Classes = make([]ClassStats, len(sh.classes))
	for i, c := range sh.classes {
		s.Classes[i] = ClassStats{
			Name:     c.Name,
			Weight:   c.Weight,
			Share:    sh.classShare[i],
			Backlog:  sh.classBacklog[i],
			Accepted: sh.met.classAccepted.With(c.Name).Value(),
			Rejected: sh.met.classRejected.With(c.Name).Value(),
		}
	}
	return s
}

// ShardStats is one shard's row in the /v1/stats response.
type ShardStats struct {
	Shard int `json:"shard"`
	// Open is whether the shard currently accepts work. Always true in a
	// classic service; in hosted mode it tracks the worker's leases. The
	// totals row leaves it false — count open per-shard rows instead.
	Open         bool  `json:"open"`
	Round        int64 `json:"round"`
	Tenants      int   `json:"tenants"`
	Backlog      int   `json:"backlog"`
	Inflight     int   `json:"inflight"`
	Accepted     int64 `json:"accepted"`
	Rejected     int64 `json:"rejected"`
	Refused      int64 `json:"refused"`
	Executed     int64 `json:"executed"`
	Dropped      int64 `json:"dropped"`
	Reconfigs    int64 `json:"reconfigs"`
	ReconfigCost int64 `json:"reconfig_cost"`
	// Evicted counts cold tenants paged out to the chunk store (Tenants counts
	// residents only); Dirty counts residents changed since their last chunk.
	Evicted int `json:"evicted,omitempty"`
	Dirty   int `json:"dirty,omitempty"`
	// PlacementEpoch is the placement epoch the shard serves under; zero
	// until the first reshard.
	PlacementEpoch int64 `json:"placement_epoch,omitempty"`
	// Classes breaks admission down by tenant class (omitted on the totals
	// row, which aggregates classes service-wide in StatsResponse.Classes).
	Classes []ClassStats `json:"classes,omitempty"`
}

// ClassStats is one tenant class's admission row, per shard and aggregated
// service-wide.
type ClassStats struct {
	Name   string `json:"name"`
	Weight int64  `json:"weight"`
	// Share is the class's slice of the shard watermark (per-shard rows) or
	// the sum of its per-shard slices (the service aggregate).
	Share    int   `json:"share"`
	Backlog  int   `json:"backlog"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
}

// add accumulates o into s for the service-level totals row.
func (s *ShardStats) add(o ShardStats) {
	s.Tenants += o.Tenants
	s.Evicted += o.Evicted
	s.Dirty += o.Dirty
	s.Backlog += o.Backlog
	s.Inflight += o.Inflight
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Refused += o.Refused
	s.Executed += o.Executed
	s.Dropped += o.Dropped
	s.Reconfigs += o.Reconfigs
	s.ReconfigCost += o.ReconfigCost
}

// DecisionsSchema versions the /v1/decisions response format.
const DecisionsSchema = "rrserve-decisions/v1"

// DecisionsResponse is the body of GET /v1/decisions?tenant=...: the
// tenant's full recorded decision stream, in tenant-local rounds.
type DecisionsResponse struct {
	Schema string `json:"schema"`
	Tenant string `json:"tenant"`
	Shard  int    `json:"shard"`
	// Epoch is the global round of the tenant's local round 0.
	Epoch int64 `json:"epoch"`
	// Round is the shard's next global round.
	Round int64 `json:"round"`
	// PlacementEpoch is the placement epoch the tenant's shard serves under;
	// zero until the first reshard moves the ring off its boot placement.
	PlacementEpoch int64             `json:"placement_epoch"`
	Decisions      []stream.Decision `json:"decisions"`
}
