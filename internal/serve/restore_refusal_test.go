package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"rrsched/internal/ckptstore"
)

// checkpointedStateDir produces a valid two-shard drain checkpoint to mangle.
func checkpointedStateDir(t *testing.T) (Config, string) {
	t.Helper()
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64, StateDir: t.TempDir()}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	client := NewClient(srv.URL)
	for i := 0; i < 8; i++ {
		submitJobs(t, client, fmt.Sprintf("tenant-%d", i), SubmitJob{ID: 0, Color: 0, Delay: 4})
	}
	srv.Close()
	if _, err := svc.Tick(2); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	svc.BeginDrain()
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	svc.Close()
	return cfg, cfg.StateDir
}

// TestRestoreRejectsTruncatedFile pins that a checkpoint cut short mid-write
// (torn file, full disk) refuses to restore instead of booting a service with
// silently missing tenants.
func TestRestoreRejectsTruncatedFile(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	path := filepath.Join(dir, "manifest-0000.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted a truncated checkpoint")
	}
}

// TestRestoreRejectsSchemaSkew pins that a checkpoint from a different format
// version is refused: the schema string is the compatibility contract.
func TestRestoreRejectsSchemaSkew(t *testing.T) {
	cfg, dir := checkpointedStateDir(t)
	path := filepath.Join(dir, "manifest-0000.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	skewed := bytes.Replace(data, []byte(ckptstore.ManifestSchema), []byte("rrckpt/v0"), 1)
	if bytes.Equal(skewed, data) {
		t.Fatal("schema string not found in manifest")
	}
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, _, err = New(cfg)
	if err == nil {
		t.Fatal("restore accepted a schema skew")
	}
	if want := "rrckpt/v0"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("skew error does not name the offending schema: %v", err)
	}
}

// TestOpenShardRejectsBadCheckpoints pins the hosted-mode refusal paths: a
// lease grant carrying a damaged or misrouted checkpoint must fail the open
// (the worker then declines the lease) rather than serve corrupted state.
func TestOpenShardRejectsBadCheckpoints(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64,
		Hosted: true, RecordDecisions: true, CheckpointDecisions: true}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	// Build a real checkpoint on shard 0: open, admit a tenant that hashes
	// there, tick, close.
	if _, err := svc.OpenShard(0, nil); err != nil {
		t.Fatalf("OpenShard: %v", err)
	}
	ring := newHashRing(cfg.Shards)
	tenant := ""
	for i := 0; tenant == ""; i++ {
		if name := fmt.Sprintf("tenant-%d", i); ring.ShardOf(name) == 0 {
			tenant = name
		}
	}
	if out := submitJobs(t, client, tenant, SubmitJob{ID: 0, Color: 0, Delay: 4}); !out.Accepted {
		t.Fatalf("submit: %+v", out)
	}
	if _, err := svc.TickShard(0, 3); err != nil {
		t.Fatalf("TickShard: %v", err)
	}
	good, err := svc.CloseShard(0)
	if err != nil {
		t.Fatalf("CloseShard: %v", err)
	}

	// Garbage bytes.
	if _, err := svc.OpenShard(0, []byte("{torn")); err == nil {
		t.Fatal("OpenShard accepted garbage")
	}
	// A checkpoint addressed to the other shard (misrouted grant).
	if _, err := svc.OpenShard(1, good); err == nil {
		t.Fatal("OpenShard accepted a checkpoint for a different shard")
	}
	// A decision-count mismatch: the history no longer covers every round
	// since the tenant's epoch, so a restored stream could silently skip
	// rounds.
	var cp shardCheckpoint
	if err := json.Unmarshal(good, &cp); err != nil {
		t.Fatalf("decoding checkpoint: %v", err)
	}
	if len(cp.Tenants) != 1 || len(cp.Tenants[0].Decisions) == 0 {
		t.Fatalf("fixture checkpoint lacks decisions: %d tenants", len(cp.Tenants))
	}
	cp.Tenants[0].Decisions = cp.Tenants[0].Decisions[:len(cp.Tenants[0].Decisions)-1]
	mangled, err := json.Marshal(cp)
	if err != nil {
		t.Fatalf("re-encoding checkpoint: %v", err)
	}
	if _, err := svc.OpenShard(0, mangled); err == nil {
		t.Fatal("OpenShard accepted a truncated decision history")
	}

	// The pristine checkpoint still restores, and double-open is refused.
	round, err := svc.OpenShard(0, good)
	if err != nil {
		t.Fatalf("OpenShard with pristine checkpoint: %v", err)
	}
	if round != 3 {
		t.Fatalf("restored round %d, want 3", round)
	}
	if _, err := svc.OpenShard(0, good); err == nil {
		t.Fatal("OpenShard accepted an already-open shard")
	}
}
