package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rrsched/internal/ckptstore"
)

// Decision-log lifecycle for log mode (durable classic service with recording
// on): per-shard streaming logs under StateDir/declog/shard-NNNN, rolled back
// to the last committed manifest at boot, redistributed when the shard count
// changes, and seeded from legacy embedded decision history exactly once.

// setupDecLogs opens every shard's decision log and rolls it back to the
// restored round (records past the last committed manifest describe rounds
// the restore rewound). When the restore re-routed a checkpoint set taken
// under a different shard count, the logs are first redistributed through the
// new ring; when the restore came from legacy full-state files (or nothing),
// the logs are wiped — without a committed manifest their content is
// uncommitted — and rebuilt from any decision history the legacy checkpoint
// embedded.
func (s *Service) setupDecLogs(pl *placement, resharded, legacy bool) error {
	root := filepath.Join(s.cfg.StateDir, "declog")
	if legacy {
		if err := os.RemoveAll(root); err != nil {
			return fmt.Errorf("serve: wiping stale decision logs: %w", err)
		}
	} else if resharded {
		if err := s.redistributeDecLogs(pl); err != nil {
			return err
		}
	}
	round := s.round.Load()
	for i, sh := range pl.shards {
		l, err := ckptstore.OpenDecLog(shardDecLogDir(s.cfg.StateDir, i), 0)
		if err != nil {
			return err
		}
		if err := l.TruncateFrom(round); err != nil {
			return err
		}
		sh.declog = l
	}
	// A legacy checkpoint with CheckpointDecisions embedded full decision
	// history; stream it into the log once so the resident copy can drop.
	for _, sh := range pl.shards {
		for _, name := range sh.order {
			tn := sh.tenants[name]
			if len(tn.decisions) == 0 {
				continue
			}
			for _, dec := range tn.decisions {
				if len(dec.Reconfigs) == 0 && len(dec.Executions) == 0 && len(dec.Dropped) == 0 {
					continue
				}
				payload, err := json.Marshal(dec)
				if err != nil {
					return fmt.Errorf("serve: migrating decisions of tenant %q: %w", name, err)
				}
				if err := sh.declog.Append(name, tn.epoch+dec.Round, payload); err != nil {
					return fmt.Errorf("serve: migrating decisions of tenant %q: %w", name, err)
				}
			}
			tn.decisions = nil
		}
		if err := sh.declog.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// redistributeDecLogs rebuilds the decision logs for a new shard count: every
// record from every existing log is re-routed through the new ring. Per-tenant
// append order is preserved because a tenant's records all live in one source
// log and source logs are walked in index order.
func (s *Service) redistributeDecLogs(pl *placement) error {
	root := filepath.Join(s.cfg.StateDir, "declog")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("serve: probing decision log dir: %w", err)
	}
	var dirs []int
	for _, e := range entries {
		var i int
		if n, err := fmt.Sscanf(e.Name(), "shard-%d", &i); err == nil && n == 1 && e.Name() == fmt.Sprintf("shard-%04d", i) {
			dirs = append(dirs, i)
		}
	}
	sort.Ints(dirs)
	type logRec struct {
		tenant string
		rec    ckptstore.LogRecord
	}
	var recs []logRec
	for _, idx := range dirs {
		l, err := ckptstore.OpenDecLog(filepath.Join(root, fmt.Sprintf("shard-%04d", idx)), 0)
		if err != nil {
			return err
		}
		err = l.ReadAll(func(tenant string, rec ckptstore.LogRecord) error {
			recs = append(recs, logRec{tenant: tenant, rec: rec})
			return nil
		})
		if cerr := l.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if err := os.RemoveAll(root); err != nil {
		return fmt.Errorf("serve: clearing decision logs for redistribution: %w", err)
	}
	targets := make([]*ckptstore.DecLog, len(pl.shards))
	for i := range pl.shards {
		l, err := ckptstore.OpenDecLog(shardDecLogDir(s.cfg.StateDir, i), 0)
		if err != nil {
			return err
		}
		targets[i] = l
	}
	for _, r := range recs {
		t := pl.ring.ShardOf(r.tenant)
		if err := targets[t].Append(r.tenant, r.rec.Round, r.rec.Payload); err != nil {
			return err
		}
	}
	for _, l := range targets {
		if err := l.Close(); err != nil {
			return err
		}
	}
	return nil
}

// closeDecLog flushes and closes the shard's decision log, if any. Called
// when the shard goroutine exits; errors are stashed like append errors (the
// state they would protect is gone anyway — the last cut already flushed).
func (sh *shard) closeDecLog() {
	if sh.declog == nil {
		return
	}
	if err := sh.declog.Close(); err != nil && sh.declogErr == nil {
		sh.declogErr = err
	}
}
