// Package serve is the network scheduling service over the stream scheduler:
// a shard pool of per-tenant stream.Scheduler instances keyed by consistent
// hashing of the tenant ID, an HTTP ingest layer with watermark-based
// admission control, a round ticker (real-time or virtual), and graceful
// drain to per-shard checkpoints that restore decision-identically.
//
// The design constraint throughout is that the ingest layer must never
// perturb scheduling: each shard owns a single goroutine that serializes
// submissions and round advancement, tenants are visited in sorted order,
// and a tenant's queued jobs are pushed sorted by ID — so the per-tenant
// decision stream is byte-identical to feeding the same arrivals to a bare
// stream.Scheduler sequentially.
package serve

import (
	"encoding/json"
	"fmt"
)

// WireSchema versions the submit wire format; requests carrying any other
// schema string are rejected so format evolution stays explicit.
const WireSchema = "rrserve/v1"

// Wire-format bounds. They exist to keep a single malformed or hostile
// request from pinning memory: the decoder rejects anything beyond them
// before the batch reaches a shard.
const (
	// MaxBatchJobs caps the jobs in one submit request.
	MaxBatchJobs = 65536
	// MaxTenantLen caps the tenant ID length in bytes.
	MaxTenantLen = 256
	// MaxDelayBound caps a job's delay bound. Far beyond any real workload,
	// but small enough that arrival+delay arithmetic can never overflow.
	MaxDelayBound = int64(1) << 32
	// MaxClassLen caps a tenant-class name length in bytes.
	MaxClassLen = 64
	// MaxShards caps the shard count a service (or a reshard request) may
	// name, matching the dispatch tier's placement bound.
	MaxShards = 4096
)

// SubmitJob is one job on the wire. The service assigns the arrival round
// (jobs arrive "now" — they are scheduled at the shard's next round tick),
// so the wire job carries only identity, color, and delay bound.
type SubmitJob struct {
	// ID identifies the job within its tenant. IDs must be strictly
	// increasing across a tenant's lifetime (and therefore within a batch);
	// the shard rejects anything at or below the highest ID it has accepted,
	// which makes duplicate-suppression O(1) instead of O(history).
	ID int64 `json:"id"`
	// Color is the job's color (category); non-negative.
	Color int32 `json:"color"`
	// Delay is the delay bound D_ℓ of the job's color. All jobs of one color
	// must carry the same bound, within a batch and across the tenant's life.
	Delay int64 `json:"delay"`
}

// SubmitRequest is the body of POST /v1/jobs: one batch of jobs for one
// tenant. Batches are admitted all-or-nothing, so a 429 never leaves a batch
// half-queued.
type SubmitRequest struct {
	Schema string      `json:"schema"`
	Tenant string      `json:"tenant"`
	Jobs   []SubmitJob `json:"jobs"`
	// Class optionally names the tenant's QoS class. Empty selects the
	// tenant's bound class (or the "default" class for a new tenant); a
	// non-empty class must match the configured class the tenant is bound to.
	Class string `json:"class,omitempty"`
	// Epoch optionally asserts the placement epoch the sender routed under.
	// Zero means "no assertion". A non-zero epoch that does not match the
	// service's current placement epoch is answered with a typed 409
	// (ErrCodeEpochSkew) carrying the current epoch as a retry hint.
	Epoch int64 `json:"epoch,omitempty"`
}

// SubmitResponse is the body of a successful submit.
type SubmitResponse struct {
	Schema string `json:"schema"`
	// Accepted is the number of jobs queued (always len(Jobs): admission is
	// all-or-nothing).
	Accepted int `json:"accepted"`
	// Round is the global round at which the batch will be pushed into the
	// tenant's scheduler (the shard's next tick).
	Round int64 `json:"round"`
	// Backlog is the shard's queued-job count after this batch.
	Backlog int `json:"backlog"`
	// Epoch is the placement epoch the batch was admitted under. Zero (and
	// omitted) until the first reshard bumps the epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// ErrCodeEpochSkew is the machine-readable code on a 409 produced by a
// submit that asserted a placement epoch other than the service's current
// one. The response's Epoch field carries the current epoch so the client
// can adopt it and retry without a stats round trip.
const ErrCodeEpochSkew = "epoch_skew"

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a machine-readable error class for responses a client is
	// expected to react to programmatically (currently only epoch_skew);
	// empty for plain errors.
	Code string `json:"code,omitempty"`
	// Epoch carries the service's current placement epoch on epoch_skew
	// responses.
	Epoch int64 `json:"epoch,omitempty"`
}

// DecodeSubmit parses and validates a submit request. It never panics on
// arbitrary bytes, and any request it accepts re-encodes (EncodeSubmit) to an
// equivalent batch — the round-trip property FuzzDecodeSubmit pins.
func DecodeSubmit(data []byte) (*SubmitRequest, error) {
	var req SubmitRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("serve: decoding submit request: %w", err)
	}
	if err := validateSubmit(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeSubmit validates and serializes a submit request.
func EncodeSubmit(req *SubmitRequest) ([]byte, error) {
	if err := validateSubmit(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

// validateSubmit enforces the JSON codec's wire invariants: the v1 schema
// string plus the codec-independent body invariants of validateSubmitBody.
func validateSubmit(req *SubmitRequest) error {
	if req.Schema != WireSchema {
		return fmt.Errorf("serve: submit schema %q, want %q", req.Schema, WireSchema)
	}
	if err := validateSubmitMeta(req.Class, req.Epoch); err != nil {
		return err
	}
	var ck delayChecker
	return validateSubmitBody(req.Tenant, req.Jobs, &ck)
}

// validateSubmitMeta enforces the invariants of the optional routing
// metadata shared by the JSON and binary submit codecs: class-name shape and
// a non-negative epoch assertion.
func validateSubmitMeta(class string, epoch int64) error {
	if class != "" {
		if err := ValidateClass(class); err != nil {
			return err
		}
	}
	if epoch < 0 {
		return fmt.Errorf("serve: negative epoch assertion %d", epoch)
	}
	return nil
}

// validateSubmitBody enforces the invariants shared by every submit codec —
// JSON and binary, encode and decode: tenant shape, batch bounds, per-job
// field ranges, strictly increasing IDs, and per-color delay-bound
// consistency within the batch. The caller supplies the delayChecker so the
// scratch state lives on its stack (the binary decode path must not allocate).
func validateSubmitBody(tenant string, jobs []SubmitJob, ck *delayChecker) error {
	if err := ValidateTenant(tenant); err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("serve: submit batch for tenant %q has no jobs", tenant)
	}
	if len(jobs) > MaxBatchJobs {
		return fmt.Errorf("serve: submit batch has %d jobs, max %d", len(jobs), MaxBatchJobs)
	}
	for i := range jobs {
		j := &jobs[i]
		if j.ID < 0 {
			return fmt.Errorf("serve: job %d has negative id", j.ID)
		}
		if i > 0 && j.ID <= jobs[i-1].ID {
			return fmt.Errorf("serve: batch ids not strictly increasing (%d after %d)", j.ID, jobs[i-1].ID)
		}
		if j.Color < 0 {
			return fmt.Errorf("serve: job %d has negative color %d", j.ID, j.Color)
		}
		if j.Delay <= 0 || j.Delay > MaxDelayBound {
			return fmt.Errorf("serve: job %d has delay bound %d out of range (1..%d)", j.ID, j.Delay, MaxDelayBound)
		}
		if d, seen := ck.register(j.Color, j.Delay); seen && d != j.Delay {
			return fmt.Errorf("serve: batch gives color %d delay bounds %d and %d", j.Color, d, j.Delay)
		}
	}
	return nil
}

// delayCheckerSlots sizes the delayChecker's inline open-addressed table.
// 256 slots at a 3/4 load factor cover batches with up to 192 distinct
// colors without touching the heap.
const delayCheckerSlots = 256

// delayChecker verifies per-color delay-bound consistency within one batch.
// It replaces a per-call map: a fixed-size open-addressed table lives on the
// caller's stack, and only a batch with more distinct colors than the table
// holds spills to an allocated map — so the steady-state decode path stays
// allocation-free.
type delayChecker struct {
	n     int
	keys  [delayCheckerSlots]int64 // color+1; 0 marks an empty slot
	vals  [delayCheckerSlots]int64
	spill map[int32]int64
}

// register records color→delay on first sight; for a color seen before it
// returns the registered bound and true (without overwriting).
func (c *delayChecker) register(color int32, delay int64) (int64, bool) {
	if c.spill != nil {
		prev, seen := c.spill[color]
		if !seen {
			c.spill[color] = delay
		}
		return prev, seen
	}
	key := int64(color) + 1
	// Fibonacci hashing on the color's low 32 bits; linear probing.
	i := int((uint32(color) * 2654435761) >> 24)
	for {
		switch c.keys[i] {
		case key:
			return c.vals[i], true
		case 0:
			if c.n >= delayCheckerSlots*3/4 {
				// Table crowded: migrate to a map and continue there. Rare
				// (>192 distinct colors in one batch) and amortized over a
				// batch at least that long.
				c.spill = make(map[int32]int64, 2*delayCheckerSlots)
				for j, k := range c.keys {
					if k != 0 {
						c.spill[int32(k-1)] = c.vals[j]
					}
				}
				c.spill[color] = delay
				return 0, false
			}
			c.keys[i] = key
			c.vals[i] = delay
			c.n++
			return 0, false
		}
		i++
		if i == delayCheckerSlots {
			i = 0
		}
	}
}

// ValidateTenant checks a tenant ID: non-empty, bounded, and free of control
// characters (tenant IDs travel in URLs, logs, and checkpoint files).
func ValidateTenant(tenant string) error {
	return validateTenantBytes(tenant)
}

// ValidateClass checks a tenant-class name: non-empty, bounded by
// MaxClassLen, and free of control characters (class names travel on the
// wire, in metric labels, and in checkpoint files).
func ValidateClass(class string) error {
	if len(class) == 0 {
		return fmt.Errorf("serve: empty class name")
	}
	if len(class) > MaxClassLen {
		return fmt.Errorf("serve: class name of %d bytes, max %d", len(class), MaxClassLen)
	}
	for i := 0; i < len(class); i++ {
		if class[i] < 0x20 || class[i] == 0x7f {
			return fmt.Errorf("serve: class name contains control byte 0x%02x", class[i])
		}
	}
	return nil
}

// validateTenantBytes is ValidateTenant over either string or []byte, so the
// binary decoder can validate in place without converting (and allocating).
func validateTenantBytes[T string | []byte](tenant T) error {
	if len(tenant) == 0 {
		return fmt.Errorf("serve: empty tenant id")
	}
	if len(tenant) > MaxTenantLen {
		return fmt.Errorf("serve: tenant id of %d bytes, max %d", len(tenant), MaxTenantLen)
	}
	for i := 0; i < len(tenant); i++ {
		if tenant[i] < 0x20 || tenant[i] == 0x7f {
			return fmt.Errorf("serve: tenant id contains control byte 0x%02x", tenant[i])
		}
	}
	return nil
}
