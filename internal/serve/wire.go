// Package serve is the network scheduling service over the stream scheduler:
// a shard pool of per-tenant stream.Scheduler instances keyed by consistent
// hashing of the tenant ID, an HTTP ingest layer with watermark-based
// admission control, a round ticker (real-time or virtual), and graceful
// drain to per-shard checkpoints that restore decision-identically.
//
// The design constraint throughout is that the ingest layer must never
// perturb scheduling: each shard owns a single goroutine that serializes
// submissions and round advancement, tenants are visited in sorted order,
// and a tenant's queued jobs are pushed sorted by ID — so the per-tenant
// decision stream is byte-identical to feeding the same arrivals to a bare
// stream.Scheduler sequentially.
package serve

import (
	"encoding/json"
	"fmt"
)

// WireSchema versions the submit wire format; requests carrying any other
// schema string are rejected so format evolution stays explicit.
const WireSchema = "rrserve/v1"

// Wire-format bounds. They exist to keep a single malformed or hostile
// request from pinning memory: the decoder rejects anything beyond them
// before the batch reaches a shard.
const (
	// MaxBatchJobs caps the jobs in one submit request.
	MaxBatchJobs = 65536
	// MaxTenantLen caps the tenant ID length in bytes.
	MaxTenantLen = 256
	// MaxDelayBound caps a job's delay bound. Far beyond any real workload,
	// but small enough that arrival+delay arithmetic can never overflow.
	MaxDelayBound = int64(1) << 32
)

// SubmitJob is one job on the wire. The service assigns the arrival round
// (jobs arrive "now" — they are scheduled at the shard's next round tick),
// so the wire job carries only identity, color, and delay bound.
type SubmitJob struct {
	// ID identifies the job within its tenant. IDs must be strictly
	// increasing across a tenant's lifetime (and therefore within a batch);
	// the shard rejects anything at or below the highest ID it has accepted,
	// which makes duplicate-suppression O(1) instead of O(history).
	ID int64 `json:"id"`
	// Color is the job's color (category); non-negative.
	Color int32 `json:"color"`
	// Delay is the delay bound D_ℓ of the job's color. All jobs of one color
	// must carry the same bound, within a batch and across the tenant's life.
	Delay int64 `json:"delay"`
}

// SubmitRequest is the body of POST /v1/jobs: one batch of jobs for one
// tenant. Batches are admitted all-or-nothing, so a 429 never leaves a batch
// half-queued.
type SubmitRequest struct {
	Schema string      `json:"schema"`
	Tenant string      `json:"tenant"`
	Jobs   []SubmitJob `json:"jobs"`
}

// SubmitResponse is the body of a successful submit.
type SubmitResponse struct {
	Schema string `json:"schema"`
	// Accepted is the number of jobs queued (always len(Jobs): admission is
	// all-or-nothing).
	Accepted int `json:"accepted"`
	// Round is the global round at which the batch will be pushed into the
	// tenant's scheduler (the shard's next tick).
	Round int64 `json:"round"`
	// Backlog is the shard's queued-job count after this batch.
	Backlog int `json:"backlog"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeSubmit parses and validates a submit request. It never panics on
// arbitrary bytes, and any request it accepts re-encodes (EncodeSubmit) to an
// equivalent batch — the round-trip property FuzzDecodeSubmit pins.
func DecodeSubmit(data []byte) (*SubmitRequest, error) {
	var req SubmitRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("serve: decoding submit request: %w", err)
	}
	if err := validateSubmit(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeSubmit validates and serializes a submit request.
func EncodeSubmit(req *SubmitRequest) ([]byte, error) {
	if err := validateSubmit(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

// validateSubmit enforces the wire invariants shared by the decoder and the
// encoder: schema, tenant shape, batch bounds, per-job field ranges, strictly
// increasing IDs, and per-color delay-bound consistency within the batch.
func validateSubmit(req *SubmitRequest) error {
	if req.Schema != WireSchema {
		return fmt.Errorf("serve: submit schema %q, want %q", req.Schema, WireSchema)
	}
	if err := ValidateTenant(req.Tenant); err != nil {
		return err
	}
	if len(req.Jobs) == 0 {
		return fmt.Errorf("serve: submit batch for tenant %q has no jobs", req.Tenant)
	}
	if len(req.Jobs) > MaxBatchJobs {
		return fmt.Errorf("serve: submit batch has %d jobs, max %d", len(req.Jobs), MaxBatchJobs)
	}
	delays := make(map[int32]int64, 4)
	for i, j := range req.Jobs {
		if j.ID < 0 {
			return fmt.Errorf("serve: job %d has negative id", j.ID)
		}
		if i > 0 && j.ID <= req.Jobs[i-1].ID {
			return fmt.Errorf("serve: batch ids not strictly increasing (%d after %d)", j.ID, req.Jobs[i-1].ID)
		}
		if j.Color < 0 {
			return fmt.Errorf("serve: job %d has negative color %d", j.ID, j.Color)
		}
		if j.Delay <= 0 || j.Delay > MaxDelayBound {
			return fmt.Errorf("serve: job %d has delay bound %d out of range (1..%d)", j.ID, j.Delay, MaxDelayBound)
		}
		if d, ok := delays[j.Color]; ok && d != j.Delay {
			return fmt.Errorf("serve: batch gives color %d delay bounds %d and %d", j.Color, d, j.Delay)
		}
		delays[j.Color] = j.Delay
	}
	return nil
}

// ValidateTenant checks a tenant ID: non-empty, bounded, and free of control
// characters (tenant IDs travel in URLs, logs, and checkpoint files).
func ValidateTenant(tenant string) error {
	if tenant == "" {
		return fmt.Errorf("serve: empty tenant id")
	}
	if len(tenant) > MaxTenantLen {
		return fmt.Errorf("serve: tenant id of %d bytes, max %d", len(tenant), MaxTenantLen)
	}
	for i := 0; i < len(tenant); i++ {
		if tenant[i] < 0x20 || tenant[i] == 0x7f {
			return fmt.Errorf("serve: tenant id contains control byte 0x%02x", tenant[i])
		}
	}
	return nil
}
